//! Property-based coverage of the `sdvbs-wire` codec, mirroring the HTTP
//! parser proptests: encode → decode is the identity for **every message
//! type**, every strict prefix of a frame is "incomplete" (buffer layer)
//! or a typed `Truncated`/`Closed` (stream layer) — never a panic — and
//! corrupt payload bytes are typed `Malformed` errors.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use sdvbs_core::{ExecPolicy, InputSize};
use sdvbs_runner::{HostMeta, Job, KernelStatRecord, RunRecord, RunStatus};
use sdvbs_trace::jsonl::Value;
use sdvbs_trace::{MetricsRegistry, Phase, TraceEvent};
use sdvbs_wire::{decode_frame, encode_frame, read_msg, Message, WireError, PROTO_VERSION};

/// Maps bytes onto a printable name alphabet (including characters that
/// need JSON escaping, so the string path is exercised).
fn name(bytes: &[u8]) -> String {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789 _-:/\"\\";
    bytes
        .iter()
        .map(|b| ALPHABET[*b as usize % ALPHABET.len()] as char)
        .collect()
}

/// A deterministic job spec from draw material.
fn job(seed: u64, pick: u64) -> Job {
    let size = match pick % 4 {
        0 => InputSize::Sqcif,
        1 => InputSize::Qcif,
        2 => InputSize::Cif,
        _ => InputSize::Custom {
            width: 16 + (pick % 64) as usize,
            height: 12 + (pick % 48) as usize,
        },
    };
    let policy = match (pick / 4) % 3 {
        0 => ExecPolicy::Serial,
        1 => ExecPolicy::Auto,
        _ => ExecPolicy::Threads(1 + (pick % 7) as usize),
    };
    Job::new("Disparity Map", size, policy, seed, 1 + (pick % 5) as usize)
}

/// A deterministic run record from draw material.
fn record(seed: u64, ms: f64, quarantined: bool) -> RunRecord {
    RunRecord {
        job_id: seed % 100,
        benchmark: "Feature Tracking".into(),
        size: "qcif".into(),
        policy: "threads:2".into(),
        threads: 2,
        seed,
        iterations: 3,
        status: if quarantined {
            RunStatus::Panicked
        } else {
            RunStatus::Completed
        },
        times_ms: vec![ms, ms * 1.5, ms * 0.5],
        min_ms: ms * 0.5,
        p50_ms: ms,
        mean_ms: ms,
        max_ms: ms * 1.5,
        wall_ms: ms * 4.0,
        quality: if seed.is_multiple_of(2) {
            Some(0.75)
        } else {
            None
        },
        detail: format!("tracked {seed} features"),
        kernels: vec![KernelStatRecord {
            name: "Gaussian".into(),
            self_ms: ms * 0.25,
            calls: seed % 17,
            percent: 25.0,
        }],
        non_kernel_percent: 3.5,
        occupancy_mode: "summed-cpu".into(),
        host: HostMeta {
            os: "wire-test-os".into(),
            cpu: "wire-test-cpu".into(),
            logical_cpus: 8,
        },
        attempts: 1 + (seed % 3) as u32,
        injected: if seed.is_multiple_of(3) {
            vec!["panic".into()]
        } else {
            Vec::new()
        },
        quarantined,
    }
}

/// Builds one message of each of the 15 protocol types from draw
/// material; `pick` selects the variant.
fn message(pick: usize, seed: u64, text: &[u8], ms: f64) -> Message {
    match pick % 15 {
        0 => Message::Hello {
            version: PROTO_VERSION,
            role: "coordinator".into(),
            name: name(text),
        },
        1 => Message::HelloOk {
            version: PROTO_VERSION,
            worker: name(text),
            now_us: seed,
        },
        2 => Message::Heartbeat { seq: seed },
        3 => Message::HeartbeatOk {
            seq: seed,
            now_us: seed.wrapping_mul(3) % 1_000_000_000,
        },
        4 => Message::Dispatch {
            id: seed,
            spec: job(seed, seed / 7),
        },
        5 => Message::Busy { id: seed },
        6 => Message::Done {
            id: seed,
            record: Box::new(record(seed, ms, false)),
        },
        7 => Message::Rejected {
            id: seed,
            detail: name(text),
        },
        8 => Message::MetricsReq,
        9 => {
            let mut registry = MetricsRegistry::new();
            registry.incr("jobs_executed", seed % 1000);
            registry.incr(&format!("ctr_{}", name(text)), 1 + seed % 5);
            registry.observe("job_exec_ms", ms);
            registry.observe("job_exec_ms", ms * 2.0);
            registry.observe("queue_wait_ms", ms * 0.125);
            Message::MetricsOk { registry }
        }
        10 => Message::TraceReq,
        11 => {
            let track = (seed % 2048) as u32;
            let t0 = seed % 1_000_000;
            Message::TraceOk {
                events: vec![
                    TraceEvent::new(name(text), "meta", Phase::Meta, 0, track),
                    TraceEvent::new("Disparity Map", "job", Phase::Begin, t0, track),
                    {
                        let mut ev =
                            TraceEvent::new("inject:panic", "fault", Phase::Instant, t0 + 5, track);
                        ev.args = vec![("attempt".into(), Value::Num(1.0))];
                        ev
                    },
                    TraceEvent::new("Disparity Map", "end", Phase::End, t0 + 10, track),
                ],
                now_us: seed,
            }
        }
        12 => Message::Drain,
        13 => Message::DrainOk {
            completed: seed % 500,
            rejected: seed % 17,
        },
        _ => Message::Error {
            message: name(text),
        },
    }
}

proptest! {
    /// encode → decode is the identity for every message type, consuming
    /// exactly the frame's bytes (buffer layer) and reading exactly one
    /// message (stream layer).
    #[test]
    fn every_message_type_roundtrips(
        pick in 0usize..15,
        seed in 0u64..1_000_000,
        text in proptest::collection::vec(0u8..=255, 0..24),
        ms in 0.001f64..500.0,
    ) {
        let msg = message(pick, seed, &text, ms);
        let frame = encode_frame(&msg);
        let (decoded, consumed) = decode_frame(&frame)
            .expect("well-formed frame")
            .expect("complete frame");
        prop_assert_eq!(consumed, frame.len());
        prop_assert_eq!(&decoded, &msg);
        let mut cursor = std::io::Cursor::new(frame);
        prop_assert_eq!(read_msg(&mut cursor).expect("stream read"), msg);
    }

    /// Every strict prefix of every frame is incomplete at the buffer
    /// layer (`Ok(None)`: more bytes can always finish it) and a typed
    /// `Truncated`/`Closed` at the stream layer. No input panics.
    #[test]
    fn torn_frames_yield_typed_errors_never_panics(
        pick in 0usize..15,
        seed in 0u64..1_000_000,
        text in proptest::collection::vec(0u8..=255, 0..24),
        ms in 0.001f64..500.0,
        cut_seed in 0usize..100_000,
    ) {
        let msg = message(pick, seed, &text, ms);
        let frame = encode_frame(&msg);
        let cut = cut_seed % frame.len();
        prop_assert!(decode_frame(&frame[..cut]).expect("prefix is not an error").is_none());
        let mut cursor = std::io::Cursor::new(frame[..cut].to_vec());
        match read_msg(&mut cursor) {
            Err(WireError::Closed) => prop_assert_eq!(cut, 0),
            Err(WireError::Truncated { wanted, got }) => {
                prop_assert_eq!(got, cut);
                prop_assert!(wanted > got);
                // The reported target is the header or the whole frame.
                prop_assert!(wanted == 4 || wanted == frame.len());
            }
            other => return Err(TestCaseError::fail(
                format!("cut {cut}: expected Closed/Truncated, got {other:?}"))),
        }
    }

    /// Two frames back to back decode in sequence from one buffer, each
    /// consuming its own bytes (the coordinator's read loop pipelines).
    #[test]
    fn pipelined_frames_decode_in_order(
        seed in 0u64..1_000_000,
        text in proptest::collection::vec(0u8..=255, 0..16),
        ms in 0.001f64..500.0,
    ) {
        let a = message(4, seed, &text, ms);      // Dispatch
        let b = message(6, seed + 1, &text, ms);  // Done
        let bytes = [encode_frame(&a), encode_frame(&b)].concat();
        let (first, used) = decode_frame(&bytes).unwrap().expect("first frame");
        prop_assert_eq!(first, a);
        let (second, used_b) = decode_frame(&bytes[used..]).unwrap().expect("second frame");
        prop_assert_eq!(second, b);
        prop_assert_eq!(used + used_b, bytes.len());
    }

    /// Corrupting a frame's payload yields a typed Malformed (or an
    /// incomplete read when the corruption hides inside a still-valid
    /// JSON string) — never a panic or a bogus success of another type.
    #[test]
    fn corrupt_payload_bytes_never_panic(
        seed in 0u64..1_000_000,
        flip_at_seed in 0usize..100_000,
        flip_to in 0u8..=255,
    ) {
        let msg = message(4, seed, b"x", 1.0); // Dispatch: nested spec object
        let mut frame = encode_frame(&msg);
        let flip_at = 4 + flip_at_seed % (frame.len() - 4);
        frame[flip_at] = flip_to;
        // Must return *something* typed: Ok(Some) if the flip was benign
        // (e.g. same byte), Ok(None) never (length untouched), or a
        // Malformed error. The property is the absence of panics.
        match decode_frame(&frame) {
            Ok(Some(_)) | Err(WireError::Malformed(_)) => {}
            other => return Err(TestCaseError::fail(
                format!("unexpected outcome {other:?}"))),
        }
    }
}
