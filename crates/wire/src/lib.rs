//! `sdvbs-wire` — the cluster tier's hand-rolled wire protocol.
//!
//! The SD-VBS serving daemon scales out by sharding jobs across worker
//! processes; this crate is the protocol they speak: **length-prefixed
//! JSONL over TCP** with a versioned hello/handshake, heartbeats, job
//! dispatch, result/metrics/trace streaming, and a two-phase drain — all
//! over `std::net`, no external dependencies, in the spirit of the
//! workspace's other hand-rolled transports (the HTTP/1.1 front end, the
//! JSONL store).
//!
//! * [`frame`] — the framing codec: 4-byte big-endian length + one JSON
//!   message per frame, capped at [`frame::MAX_FRAME`]. Buffer-level
//!   (`decode_frame`) and stream-level (`read_msg`/`write_msg`) APIs.
//! * [`message`] — the [`Message`] vocabulary and its JSON mapping.
//! * [`error`] — the typed [`WireError`] taxonomy. Torn frames, EOF, bad
//!   versions, and malformed payloads are all distinct, typed, and
//!   panic-free, so the coordinator can tell a dead worker from a broken
//!   one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod frame;
pub mod message;
pub mod transport;

pub use error::WireError;
pub use frame::{decode_frame, encode_frame, read_msg, write_msg, MAX_FRAME, PROTO_VERSION};
pub use message::Message;
pub use transport::{tcp_pair, FrameRx, FrameTx, TcpFrameRx, TcpFrameTx};
