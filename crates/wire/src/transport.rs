//! The transport abstraction under the cluster protocol.
//!
//! The coordinator and worker loops never touch `TcpStream` directly —
//! they speak through [`FrameTx`] (a shareable, internally serialized
//! sender) and [`FrameRx`] (a blocking single-reader receiver). Production
//! code wires these to TCP with [`TcpFrameTx`]/[`TcpFrameRx`]
//! ([`tcp_pair`] splits one connected stream into both halves); the
//! `sdvbs-sim` crate substitutes a deterministic in-memory network whose
//! delivery order, latency, drops, and partitions come from a seeded
//! schedule — same protocol logic, simulated wire.
//!
//! The split mirrors how the cluster actually uses a link: several
//! threads send on it (dispatcher, heartbeat, rpc) while exactly one
//! reader thread drains it, so `FrameTx::send` takes `&self` and
//! serializes internally while `FrameRx::recv` takes `&mut self`.

use crate::error::WireError;
use crate::frame::{read_msg, write_msg};
use crate::message::Message;
use std::net::TcpStream;
use std::sync::{Mutex, PoisonError};

/// The sending half of a framed link. Shareable across threads; each
/// `send` writes one whole frame atomically with respect to other senders
/// on the same handle.
pub trait FrameTx: Send + Sync {
    /// Writes one message as a complete frame and flushes.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] (or transport-specific `Closed`) when the peer
    /// is unreachable — the caller treats any error as a broken link.
    fn send(&self, msg: &Message) -> Result<(), WireError>;
}

/// The receiving half of a framed link: a blocking read of exactly one
/// message at a time, owned by a single reader.
pub trait FrameRx: Send {
    /// Blocks until one full message arrives.
    ///
    /// # Errors
    ///
    /// [`WireError::Closed`] for a clean EOF between frames,
    /// [`WireError::Truncated`] for EOF inside one, and the codec's
    /// `Malformed`/`TooLarge` for corrupt payloads.
    fn recv(&mut self) -> Result<Message, WireError>;
}

/// [`FrameTx`] over a shared [`TcpStream`]: writes are serialized by an
/// internal mutex so concurrent senders interleave whole frames, never
/// bytes.
pub struct TcpFrameTx {
    stream: Mutex<TcpStream>,
}

impl TcpFrameTx {
    /// Wraps a connected stream (typically a `try_clone` of the one the
    /// reader holds).
    pub fn new(stream: TcpStream) -> Self {
        TcpFrameTx {
            stream: Mutex::new(stream),
        }
    }
}

impl FrameTx for TcpFrameTx {
    fn send(&self, msg: &Message) -> Result<(), WireError> {
        let mut stream = self.stream.lock().unwrap_or_else(PoisonError::into_inner);
        write_msg(&mut *stream, msg)
    }
}

/// [`FrameRx`] over an owned [`TcpStream`].
pub struct TcpFrameRx {
    stream: TcpStream,
}

impl TcpFrameRx {
    /// Wraps a connected stream.
    pub fn new(stream: TcpStream) -> Self {
        TcpFrameRx { stream }
    }
}

impl FrameRx for TcpFrameRx {
    fn recv(&mut self) -> Result<Message, WireError> {
        read_msg(&mut self.stream)
    }
}

/// Splits one connected TCP stream into its send and receive halves via
/// `try_clone`, the shape both cluster endpoints want.
///
/// # Errors
///
/// [`WireError::Io`] if the clone fails.
pub fn tcp_pair(stream: TcpStream) -> Result<(TcpFrameTx, TcpFrameRx), WireError> {
    let writer = stream.try_clone()?;
    Ok((TcpFrameTx::new(writer), TcpFrameRx::new(stream)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn tcp_halves_carry_frames_both_ways() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            let (tx, mut rx) = tcp_pair(stream).unwrap();
            tx.send(&Message::Heartbeat { seq: 7 }).unwrap();
            rx.recv().unwrap()
        });
        let (stream, _) = listener.accept().unwrap();
        let (tx, mut rx) = tcp_pair(stream).unwrap();
        assert_eq!(rx.recv().unwrap(), Message::Heartbeat { seq: 7 });
        tx.send(&Message::HeartbeatOk { seq: 7, now_us: 1 })
            .unwrap();
        assert_eq!(
            client.join().unwrap(),
            Message::HeartbeatOk { seq: 7, now_us: 1 }
        );
        // Dropping both server halves closes the socket; the client side
        // would now observe Closed — covered by the cluster tests.
    }
}
