//! The message vocabulary of the cluster protocol.
//!
//! Every frame carries exactly one [`Message`], serialized as a JSON
//! object with a `"type"` discriminator. The conversation between a
//! coordinator and a worker:
//!
//! ```text
//! coordinator → worker        worker → coordinator
//! ----------------------      -----------------------------
//! Hello                       HelloOk        (versioned handshake)
//! Heartbeat                   HeartbeatOk    (liveness + clock sample)
//! Dispatch                    Done | Rejected | Busy
//! MetricsReq                  MetricsOk
//! TraceReq                    TraceOk
//! Drain                       DrainOk        (two-phase drain)
//!                             Error          (typed protocol fault)
//! ```
//!
//! Clock samples (`now_us`) ride on the handshake, heartbeats, and trace
//! replies so the coordinator can estimate each worker's trace-epoch skew
//! and merge per-worker tracks onto one timeline
//! ([`sdvbs_trace::merge_process_traces`]).

use crate::error::WireError;
use sdvbs_runner::{Job, RunRecord};
use sdvbs_trace::jsonl::Value;
use sdvbs_trace::{event_from_chrome, event_to_chrome, MetricsRegistry, TraceEvent};

/// One protocol message. See the module docs for who sends what.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Coordinator's opening message on a fresh connection.
    Hello {
        /// The sender's [`crate::frame::PROTO_VERSION`].
        version: u32,
        /// The sender's role (`"coordinator"`).
        role: String,
        /// The sender's self-chosen name.
        name: String,
    },
    /// Worker's handshake acceptance.
    HelloOk {
        /// The worker's protocol version.
        version: u32,
        /// The worker's self-chosen name (lands in drain reports and
        /// trace track labels).
        worker: String,
        /// The worker's trace clock at send time, for epoch-skew
        /// estimation.
        now_us: u64,
    },
    /// Liveness probe.
    Heartbeat {
        /// Echoed back in the matching [`Message::HeartbeatOk`].
        seq: u64,
    },
    /// Liveness answer.
    HeartbeatOk {
        /// The probed sequence number.
        seq: u64,
        /// The worker's trace clock at send time.
        now_us: u64,
    },
    /// Run this job.
    Dispatch {
        /// Coordinator-side job id, echoed on every reply about this job.
        id: u64,
        /// The job spec.
        spec: Job,
    },
    /// The worker's queue refused the dispatch (admission control); the
    /// coordinator should place the job elsewhere.
    Busy {
        /// The refused job.
        id: u64,
    },
    /// The job executed; here is its record.
    Done {
        /// The finished job.
        id: u64,
        /// The run record (boxed: it dominates the variant size).
        record: Box<RunRecord>,
    },
    /// The worker refused or abandoned the job without a record (e.g. it
    /// was still queued when a drain started).
    Rejected {
        /// The rejected job.
        id: u64,
        /// Why.
        detail: String,
    },
    /// Ask for the worker's metrics registry.
    MetricsReq,
    /// The worker's metrics registry, losslessly (raw histogram samples).
    MetricsOk {
        /// The registry snapshot.
        registry: MetricsRegistry,
    },
    /// Ask for the worker's trace events.
    TraceReq,
    /// The worker's trace events plus a clock sample for skew correction.
    TraceOk {
        /// The events, on the worker's own tracks and timeline.
        events: Vec<TraceEvent>,
        /// The worker's trace clock at send time.
        now_us: u64,
    },
    /// Begin a graceful drain: finish running jobs, reject queued ones,
    /// then answer [`Message::DrainOk`].
    Drain,
    /// The worker finished draining.
    DrainOk {
        /// Jobs that executed to completion over this link's lifetime.
        completed: u64,
        /// Jobs rejected without executing.
        rejected: u64,
    },
    /// A typed protocol fault the peer should log (and usually drop the
    /// link over).
    Error {
        /// What went wrong.
        message: String,
    },
}

impl Message {
    /// The `"type"` discriminator this message serializes under.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::Hello { .. } => "hello",
            Message::HelloOk { .. } => "hello_ok",
            Message::Heartbeat { .. } => "heartbeat",
            Message::HeartbeatOk { .. } => "heartbeat_ok",
            Message::Dispatch { .. } => "dispatch",
            Message::Busy { .. } => "busy",
            Message::Done { .. } => "done",
            Message::Rejected { .. } => "rejected",
            Message::MetricsReq => "metrics_req",
            Message::MetricsOk { .. } => "metrics_ok",
            Message::TraceReq => "trace_req",
            Message::TraceOk { .. } => "trace_ok",
            Message::Drain => "drain",
            Message::DrainOk { .. } => "drain_ok",
            Message::Error { .. } => "error",
        }
    }

    /// Serializes the message as its JSON object.
    pub fn to_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = vec![("type".into(), Value::Str(self.kind().into()))];
        match self {
            Message::Hello {
                version,
                role,
                name,
            } => {
                pairs.push(("version".into(), Value::Num(f64::from(*version))));
                pairs.push(("role".into(), Value::Str(role.clone())));
                pairs.push(("name".into(), Value::Str(name.clone())));
            }
            Message::HelloOk {
                version,
                worker,
                now_us,
            } => {
                pairs.push(("version".into(), Value::Num(f64::from(*version))));
                pairs.push(("worker".into(), Value::Str(worker.clone())));
                pairs.push(("now_us".into(), Value::Num(*now_us as f64)));
            }
            Message::Heartbeat { seq } => {
                pairs.push(("seq".into(), Value::Num(*seq as f64)));
            }
            Message::HeartbeatOk { seq, now_us } => {
                pairs.push(("seq".into(), Value::Num(*seq as f64)));
                pairs.push(("now_us".into(), Value::Num(*now_us as f64)));
            }
            Message::Dispatch { id, spec } => {
                pairs.push(("id".into(), Value::Num(*id as f64)));
                pairs.push(("spec".into(), spec.to_value()));
            }
            Message::Busy { id } => {
                pairs.push(("id".into(), Value::Num(*id as f64)));
            }
            Message::Done { id, record } => {
                pairs.push(("id".into(), Value::Num(*id as f64)));
                // A RunRecord's JSONL line is produced by our own emitter
                // and always reparses; treat a failure as the bug it is.
                let record = Value::parse(&record.to_json_line())
                    .expect("RunRecord::to_json_line emits valid JSON");
                pairs.push(("record".into(), record));
            }
            Message::Rejected { id, detail } => {
                pairs.push(("id".into(), Value::Num(*id as f64)));
                pairs.push(("detail".into(), Value::Str(detail.clone())));
            }
            Message::MetricsReq | Message::TraceReq | Message::Drain => {}
            Message::MetricsOk { registry } => {
                pairs.push((
                    "counters".into(),
                    Value::Obj(
                        registry
                            .counters()
                            .map(|(n, v)| (n.to_string(), Value::Num(v as f64)))
                            .collect(),
                    ),
                ));
                pairs.push((
                    "histograms".into(),
                    Value::Obj(
                        registry
                            .histograms()
                            .map(|(n, h)| {
                                (
                                    n.to_string(),
                                    Value::Arr(
                                        h.samples().iter().map(|&s| Value::Num(s)).collect(),
                                    ),
                                )
                            })
                            .collect(),
                    ),
                ));
            }
            Message::TraceOk { events, now_us } => {
                pairs.push((
                    "events".into(),
                    Value::Arr(events.iter().map(event_to_chrome).collect()),
                ));
                pairs.push(("now_us".into(), Value::Num(*now_us as f64)));
            }
            Message::DrainOk {
                completed,
                rejected,
            } => {
                pairs.push(("completed".into(), Value::Num(*completed as f64)));
                pairs.push(("rejected".into(), Value::Num(*rejected as f64)));
            }
            Message::Error { message } => {
                pairs.push(("message".into(), Value::Str(message.clone())));
            }
        }
        Value::Obj(pairs)
    }

    /// Parses a [`Message::to_value`]-shaped object.
    ///
    /// # Errors
    ///
    /// [`WireError::Malformed`] for a missing/unknown `"type"` or a
    /// variant missing its fields — never a panic.
    pub fn from_value(v: &Value) -> Result<Message, WireError> {
        let kind = v
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| WireError::Malformed("message without a \"type\" field".into()))?;
        let str_field = |name: &str| -> Result<String, WireError> {
            v.get(name)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| WireError::Malformed(format!("{kind}: missing string {name:?}")))
        };
        let u64_field = |name: &str| -> Result<u64, WireError> {
            v.get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| WireError::Malformed(format!("{kind}: missing integer {name:?}")))
        };
        match kind {
            "hello" => Ok(Message::Hello {
                version: u64_field("version")? as u32,
                role: str_field("role")?,
                name: str_field("name")?,
            }),
            "hello_ok" => Ok(Message::HelloOk {
                version: u64_field("version")? as u32,
                worker: str_field("worker")?,
                now_us: u64_field("now_us")?,
            }),
            "heartbeat" => Ok(Message::Heartbeat {
                seq: u64_field("seq")?,
            }),
            "heartbeat_ok" => Ok(Message::HeartbeatOk {
                seq: u64_field("seq")?,
                now_us: u64_field("now_us")?,
            }),
            "dispatch" => Ok(Message::Dispatch {
                id: u64_field("id")?,
                spec: Job::from_value(
                    v.get("spec")
                        .ok_or_else(|| WireError::Malformed("dispatch: missing spec".into()))?,
                )
                .map_err(|e| WireError::Malformed(format!("dispatch: bad spec: {e}")))?,
            }),
            "busy" => Ok(Message::Busy {
                id: u64_field("id")?,
            }),
            "done" => {
                let record = v
                    .get("record")
                    .ok_or_else(|| WireError::Malformed("done: missing record".into()))?;
                let line = record.to_string();
                let record = RunRecord::from_json_line(&line)
                    .map_err(|e| WireError::Malformed(format!("done: bad record: {e}")))?;
                Ok(Message::Done {
                    id: u64_field("id")?,
                    record: Box::new(record),
                })
            }
            "rejected" => Ok(Message::Rejected {
                id: u64_field("id")?,
                detail: str_field("detail")?,
            }),
            "metrics_req" => Ok(Message::MetricsReq),
            "metrics_ok" => {
                let mut registry = MetricsRegistry::new();
                if let Some(Value::Obj(counters)) = v.get("counters") {
                    for (name, val) in counters {
                        let val = val.as_u64().ok_or_else(|| {
                            WireError::Malformed(format!("metrics_ok: bad counter {name:?}"))
                        })?;
                        registry.incr(name, val);
                    }
                }
                if let Some(Value::Obj(hists)) = v.get("histograms") {
                    for (name, samples) in hists {
                        let samples = samples.as_array().ok_or_else(|| {
                            WireError::Malformed(format!("metrics_ok: bad histogram {name:?}"))
                        })?;
                        for s in samples {
                            let s = s.as_f64().ok_or_else(|| {
                                WireError::Malformed(format!(
                                    "metrics_ok: non-numeric sample in {name:?}"
                                ))
                            })?;
                            registry.observe(name, s);
                        }
                    }
                }
                Ok(Message::MetricsOk { registry })
            }
            "trace_req" => Ok(Message::TraceReq),
            "trace_ok" => {
                let events = v
                    .get("events")
                    .and_then(Value::as_array)
                    .ok_or_else(|| WireError::Malformed("trace_ok: missing events".into()))?
                    .iter()
                    .map(|e| {
                        event_from_chrome(e)
                            .map_err(|e| WireError::Malformed(format!("trace_ok: {e}")))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Message::TraceOk {
                    events,
                    now_us: u64_field("now_us")?,
                })
            }
            "drain" => Ok(Message::Drain),
            "drain_ok" => Ok(Message::DrainOk {
                completed: u64_field("completed")?,
                rejected: u64_field("rejected")?,
            }),
            "error" => Ok(Message::Error {
                message: str_field("message")?,
            }),
            other => Err(WireError::Malformed(format!(
                "unknown message type {other:?}"
            ))),
        }
    }
}
