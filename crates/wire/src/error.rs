//! The typed error surface of the wire protocol.
//!
//! Every failure mode a peer can observe — a torn frame, an oversized
//! length prefix, malformed JSON, a version mismatch, a protocol-order
//! violation — is a distinct [`WireError`] variant, so callers can tell
//! "the worker died mid-frame" (requeue its jobs) from "the worker spoke
//! garbage" (quarantine the link). Nothing in this crate panics on peer
//! input.

use std::fmt;

/// A wire-protocol failure. See the module docs for the taxonomy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The peer closed the connection cleanly (EOF on a frame boundary).
    Closed,
    /// The connection ended mid-frame: `got` of `wanted` bytes arrived.
    /// The difference from [`WireError::Closed`] matters — a torn frame
    /// means work may have been lost in flight.
    Truncated {
        /// Bytes the frame needed.
        wanted: usize,
        /// Bytes that actually arrived.
        got: usize,
    },
    /// The length prefix exceeds the frame cap; the peer is broken or
    /// hostile and the link must be dropped.
    TooLarge {
        /// The declared payload length.
        len: usize,
        /// The cap it violated ([`crate::frame::MAX_FRAME`]).
        max: usize,
    },
    /// An I/O error from the underlying socket.
    Io(String),
    /// The payload was not UTF-8, not JSON, or not a known message shape.
    Malformed(String),
    /// The peers disagree on the protocol version.
    BadVersion {
        /// Our [`crate::frame::PROTO_VERSION`].
        ours: u32,
        /// The version the peer announced.
        theirs: u32,
    },
    /// A well-formed message arrived out of protocol order (e.g. a
    /// `Dispatch` before the handshake completed).
    Protocol(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Closed => write!(f, "connection closed by peer"),
            WireError::Truncated { wanted, got } => {
                write!(f, "torn frame: got {got} of {wanted} bytes")
            }
            WireError::TooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            WireError::Io(e) => write!(f, "i/o error: {e}"),
            WireError::Malformed(why) => write!(f, "malformed message: {why}"),
            WireError::BadVersion { ours, theirs } => {
                write!(f, "protocol version mismatch: ours {ours}, peer {theirs}")
            }
            WireError::Protocol(why) => write!(f, "protocol violation: {why}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e.to_string())
    }
}
