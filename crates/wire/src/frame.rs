//! Length-prefixed framing over byte streams.
//!
//! A frame is a 4-byte big-endian payload length followed by exactly that
//! many bytes of UTF-8 JSON — one [`Message`] object per frame (the JSONL
//! discipline of the rest of the workspace, carried over TCP with an
//! explicit length so a reader never has to scan for a newline inside a
//! record). The length covers the payload only and is capped at
//! [`MAX_FRAME`]; a prefix above the cap is a typed protocol breach, not
//! an allocation.
//!
//! Two API layers:
//!
//! * **Buffer layer** ([`encode_frame`] / [`decode_frame`]) for callers
//!   that own their buffering: decode returns `Ok(None)` while the frame
//!   is still incomplete, so a read loop can simply append and retry.
//! * **Stream layer** ([`write_msg`] / [`read_msg`]) over any
//!   `Read`/`Write`: a blocking read of exactly one message, with EOF
//!   *between* frames reported as [`WireError::Closed`] and EOF *inside*
//!   a frame as [`WireError::Truncated`] — the distinction worker-death
//!   handling rests on.

use crate::error::WireError;
use crate::message::Message;
use sdvbs_trace::jsonl::Value;
use std::io::{Read, Write};

/// Protocol version carried in the handshake. Bump on any change to the
/// message vocabulary or framing.
pub const PROTO_VERSION: u32 = 1;

/// Hard cap on a frame's payload length. Generous for the largest real
/// message (a trace snapshot), small enough that a corrupt or hostile
/// length prefix cannot drive an allocation.
pub const MAX_FRAME: usize = 16 << 20;

/// Serializes one message as a complete frame.
pub fn encode_frame(msg: &Message) -> Vec<u8> {
    let payload = msg.to_value().to_string();
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload.as_bytes());
    out
}

/// Decodes the first complete frame in `buf`.
///
/// Returns `Ok(None)` while the buffer holds only a partial frame (read
/// more and retry), `Ok(Some((message, consumed)))` on success.
///
/// # Errors
///
/// [`WireError::TooLarge`] for a length prefix above [`MAX_FRAME`],
/// [`WireError::Malformed`] for a payload that is not UTF-8, not JSON, or
/// not a known message. Never panics on any input.
pub fn decode_frame(buf: &[u8]) -> Result<Option<(Message, usize)>, WireError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > MAX_FRAME {
        return Err(WireError::TooLarge {
            len,
            max: MAX_FRAME,
        });
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    let payload = std::str::from_utf8(&buf[4..4 + len])
        .map_err(|_| WireError::Malformed("frame payload is not UTF-8".into()))?;
    let value =
        Value::parse(payload).map_err(|e| WireError::Malformed(format!("bad JSON: {e}")))?;
    Ok(Some((Message::from_value(&value)?, 4 + len)))
}

/// Writes one message as a frame and flushes.
///
/// # Errors
///
/// [`WireError::Io`] on any socket error.
pub fn write_msg<W: Write>(w: &mut W, msg: &Message) -> Result<(), WireError> {
    w.write_all(&encode_frame(msg))?;
    w.flush()?;
    Ok(())
}

/// Blocking read of exactly one message.
///
/// # Errors
///
/// [`WireError::Closed`] for EOF on a frame boundary,
/// [`WireError::Truncated`] for EOF mid-frame, plus everything
/// [`decode_frame`] reports.
pub fn read_msg<R: Read>(r: &mut R) -> Result<Message, WireError> {
    let mut header = [0u8; 4];
    read_full(r, &mut header, true)?;
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(WireError::TooLarge {
            len,
            max: MAX_FRAME,
        });
    }
    let mut payload = vec![0u8; len];
    read_full(r, &mut payload, false).map_err(|e| match e {
        // EOF right after the header is still a torn frame.
        WireError::Closed => WireError::Truncated {
            wanted: 4 + len,
            got: 4,
        },
        WireError::Truncated { wanted, got } => WireError::Truncated {
            wanted: 4 + wanted,
            got: 4 + got,
        },
        other => other,
    })?;
    let text = std::str::from_utf8(&payload)
        .map_err(|_| WireError::Malformed("frame payload is not UTF-8".into()))?;
    let value = Value::parse(text).map_err(|e| WireError::Malformed(format!("bad JSON: {e}")))?;
    Message::from_value(&value)
}

/// Fills `buf` completely. `at_boundary` selects how EOF-before-anything
/// is classified: a clean [`WireError::Closed`] at a frame boundary, a
/// [`WireError::Truncated`] inside one.
fn read_full<R: Read>(r: &mut R, buf: &mut [u8], at_boundary: bool) -> Result<(), WireError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 && at_boundary {
                    Err(WireError::Closed)
                } else {
                    Err(WireError::Truncated {
                        wanted: buf.len(),
                        got: filled,
                    })
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_roundtrip_and_eof_classification() {
        let msg = Message::Heartbeat { seq: 42 };
        let bytes = encode_frame(&msg);
        // Full stream: one message, then a clean Closed.
        let mut cursor = std::io::Cursor::new(bytes.clone());
        assert_eq!(read_msg(&mut cursor).unwrap(), msg);
        assert_eq!(read_msg(&mut cursor).unwrap_err(), WireError::Closed);
        // Every strict prefix is Truncated (or Closed at zero bytes). A
        // cut inside the header reports `wanted: 4` — the total frame
        // length is unknowable until the header arrives.
        for cut in 1..bytes.len() {
            let mut cursor = std::io::Cursor::new(bytes[..cut].to_vec());
            match read_msg(&mut cursor).unwrap_err() {
                WireError::Truncated { wanted, got } => {
                    assert_eq!(wanted, if cut < 4 { 4 } else { bytes.len() });
                    assert_eq!(got, cut);
                }
                other => panic!("cut {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_prefix_is_rejected_without_allocating() {
        let mut bytes = ((MAX_FRAME + 1) as u32).to_be_bytes().to_vec();
        bytes.extend_from_slice(b"x");
        assert!(matches!(
            decode_frame(&bytes),
            Err(WireError::TooLarge { .. })
        ));
        let mut cursor = std::io::Cursor::new(bytes);
        assert!(matches!(
            read_msg(&mut cursor),
            Err(WireError::TooLarge { .. })
        ));
    }

    #[test]
    fn non_utf8_and_non_json_payloads_are_malformed() {
        let mut bytes = 2u32.to_be_bytes().to_vec();
        bytes.extend_from_slice(&[0xff, 0xfe]);
        assert!(matches!(decode_frame(&bytes), Err(WireError::Malformed(_))));
        let mut bytes = 3u32.to_be_bytes().to_vec();
        bytes.extend_from_slice(b"{{{");
        assert!(matches!(decode_frame(&bytes), Err(WireError::Malformed(_))));
    }
}
