//! Multiclass classification via one-vs-rest binary SVMs.
//!
//! The paper cites "The Application of Support Vector Machine in Pattern
//! Recognition" as the benchmark's motivating application; real pattern
//! recognition is rarely binary, so the suite provides the standard
//! one-vs-rest reduction on top of either trainer.

use crate::data::Dataset;
use crate::model::{SvmConfig, SvmError, SvmModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sdvbs_matrix::Matrix;
use sdvbs_profile::Profiler;

/// A one-vs-rest multiclass classifier: one binary [`SvmModel`] per class.
#[derive(Debug, Clone)]
pub struct MulticlassSvm {
    models: Vec<SvmModel>,
}

impl MulticlassSvm {
    /// Trains one binary model per class with the provided trainer
    /// (`train_smo` or `train_interior_point`).
    ///
    /// `y` holds class indices in `0..classes`.
    ///
    /// # Errors
    ///
    /// * [`SvmError::InvalidInput`] if labels are out of range, a class is
    ///   empty, or `classes < 2`.
    /// * Any error from the underlying binary trainer.
    pub fn train<F>(
        x: &Matrix,
        y: &[usize],
        classes: usize,
        cfg: &SvmConfig,
        prof: &mut Profiler,
        mut trainer: F,
    ) -> Result<Self, SvmError>
    where
        F: FnMut(&Matrix, &[f64], &SvmConfig, &mut Profiler) -> Result<SvmModel, SvmError>,
    {
        if classes < 2 {
            return Err(SvmError::InvalidInput("need at least two classes".into()));
        }
        if y.len() != x.rows() {
            return Err(SvmError::InvalidInput(format!(
                "{} labels for {} samples",
                y.len(),
                x.rows()
            )));
        }
        if let Some(&bad) = y.iter().find(|&&l| l >= classes) {
            return Err(SvmError::InvalidInput(format!(
                "label {bad} out of range for {classes} classes"
            )));
        }
        for c in 0..classes {
            if !y.contains(&c) {
                return Err(SvmError::InvalidInput(format!("class {c} has no samples")));
            }
        }
        let mut models = Vec::with_capacity(classes);
        for c in 0..classes {
            let binary: Vec<f64> = y.iter().map(|&l| if l == c { 1.0 } else { -1.0 }).collect();
            models.push(trainer(x, &binary, cfg, prof)?);
        }
        Ok(MulticlassSvm { models })
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.models.len()
    }

    /// Predicts the class with the largest decision value.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimensionality.
    pub fn classify(&self, x: &[f64]) -> usize {
        let mut best = 0usize;
        let mut best_v = f64::NEG_INFINITY;
        for (c, model) in self.models.iter().enumerate() {
            let v = model.decision(x);
            if v > best_v {
                best_v = v;
                best = c;
            }
        }
        best
    }

    /// Fraction of rows classified as their label.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are inconsistent or the set is empty.
    pub fn accuracy(&self, x: &Matrix, y: &[usize]) -> f64 {
        assert_eq!(x.rows(), y.len(), "labels must match samples");
        assert!(!y.is_empty(), "evaluation set must be non-empty");
        let correct = (0..x.rows())
            .filter(|&i| self.classify(x.row(i)) == y[i])
            .count();
        correct as f64 / y.len() as f64
    }
}

/// Generates `classes` Gaussian clusters in `dims` dimensions with
/// integer labels (the multiclass analogue of
/// [`gaussian_clusters`](crate::gaussian_clusters)); 75% of samples go to
/// the training split.
///
/// # Panics
///
/// Panics if `samples < 4 * classes`, `classes < 2`, or `dims == 0`.
pub fn multiclass_clusters(
    samples: usize,
    dims: usize,
    classes: usize,
    separation: f64,
    seed: u64,
) -> (Dataset, Vec<usize>, Vec<usize>) {
    assert!(classes >= 2 && dims > 0, "need >=2 classes and >=1 dim");
    assert!(samples >= 4 * classes, "need at least 4 samples per class");
    let mut rng = StdRng::seed_from_u64(seed);
    let gauss = |rng: &mut StdRng| -> f64 {
        let u1: f64 = rng.gen_range(1e-12..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    };
    // One random unit mean direction per class, scaled by the separation.
    let means: Vec<Vec<f64>> = (0..classes)
        .map(|_| {
            let mut v: Vec<f64> = (0..dims).map(|_| gauss(&mut rng)).collect();
            let norm = v.iter().map(|a| a * a).sum::<f64>().sqrt().max(1e-9);
            for a in &mut v {
                *a *= separation / norm;
            }
            v
        })
        .collect();
    let mut xs: Vec<Vec<f64>> = Vec::with_capacity(samples);
    let mut labels = Vec::with_capacity(samples);
    for i in 0..samples {
        let c = i % classes;
        let row: Vec<f64> = (0..dims).map(|d| means[c][d] + gauss(&mut rng)).collect();
        xs.push(row);
        labels.push(c);
    }
    let n_train = (3 * samples) / 4;
    let pack = |rows: &[Vec<f64>]| {
        let mut m = Matrix::zeros(rows.len(), dims);
        for (i, r) in rows.iter().enumerate() {
            m.row_mut(i).copy_from_slice(r);
        }
        m
    };
    let ds = Dataset {
        train_x: pack(&xs[..n_train]),
        train_y: vec![0.0; n_train], // unused by the multiclass API
        test_x: pack(&xs[n_train..]),
        test_y: vec![0.0; samples - n_train],
    };
    (ds, labels[..n_train].to_vec(), labels[n_train..].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smo::train_smo;

    #[test]
    fn four_class_clusters_classify_well() {
        let (ds, train_y, test_y) = multiclass_clusters(240, 8, 4, 6.0, 5);
        let mut prof = Profiler::new();
        let model = MulticlassSvm::train(
            &ds.train_x,
            &train_y,
            4,
            &SvmConfig::default(),
            &mut prof,
            train_smo,
        )
        .unwrap();
        assert_eq!(model.classes(), 4);
        let acc = model.accuracy(&ds.test_x, &test_y);
        assert!(acc > 0.9, "multiclass accuracy {acc}");
    }

    #[test]
    fn interior_point_trainer_also_works() {
        use crate::interior::train_interior_point;
        let (ds, train_y, test_y) = multiclass_clusters(150, 6, 3, 6.0, 9);
        let cfg = SvmConfig {
            tolerance: 1e-4,
            max_iterations: 80,
            ..SvmConfig::default()
        };
        let mut prof = Profiler::new();
        let model = MulticlassSvm::train(
            &ds.train_x,
            &train_y,
            3,
            &cfg,
            &mut prof,
            train_interior_point,
        )
        .unwrap();
        let acc = model.accuracy(&ds.test_x, &test_y);
        assert!(acc > 0.85, "multiclass IP accuracy {acc}");
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let (ds, train_y, _) = multiclass_clusters(80, 4, 2, 4.0, 1);
        let mut prof = Profiler::new();
        // Too few classes.
        assert!(MulticlassSvm::train(
            &ds.train_x,
            &train_y,
            1,
            &SvmConfig::default(),
            &mut prof,
            train_smo
        )
        .is_err());
        // Label out of range.
        let mut bad = train_y.clone();
        bad[0] = 9;
        assert!(MulticlassSvm::train(
            &ds.train_x,
            &bad,
            2,
            &SvmConfig::default(),
            &mut prof,
            train_smo
        )
        .is_err());
        // Missing class.
        let all_zero: Vec<usize> = vec![0; train_y.len()];
        assert!(MulticlassSvm::train(
            &ds.train_x,
            &all_zero,
            2,
            &SvmConfig::default(),
            &mut prof,
            train_smo
        )
        .is_err());
    }

    #[test]
    fn classes_are_balanced_in_generator() {
        let (_, train_y, test_y) = multiclass_clusters(120, 4, 3, 5.0, 3);
        for c in 0..3 {
            let n = train_y.iter().filter(|&&l| l == c).count();
            assert!(n > 20, "class {c} underrepresented: {n}");
        }
        assert!(!test_y.is_empty());
    }
}
