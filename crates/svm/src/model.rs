//! SVM configuration, kernels and the trained model.

use sdvbs_matrix::Matrix;
use std::error::Error;
use std::fmt;

/// The kernel function `K(x, z)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KernelKind {
    /// `K(x, z) = x · z`.
    Linear,
    /// `K(x, z) = (gamma · x · z + coef0)^degree` — the paper's polynomial
    /// kernel.
    Polynomial {
        /// Polynomial degree (≥ 1).
        degree: u32,
        /// Inner-product scaling.
        gamma: f64,
        /// Additive constant.
        coef0: f64,
    },
}

impl KernelKind {
    /// Evaluates the kernel on two feature vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors differ in length.
    pub fn eval(&self, x: &[f64], z: &[f64]) -> f64 {
        assert_eq!(x.len(), z.len(), "feature vectors must have equal length");
        let dot: f64 = x.iter().zip(z).map(|(a, b)| a * b).sum();
        match *self {
            KernelKind::Linear => dot,
            KernelKind::Polynomial {
                degree,
                gamma,
                coef0,
            } => (gamma * dot + coef0).powi(degree as i32),
        }
    }
}

/// Training configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvmConfig {
    /// Soft-margin penalty `C`.
    pub c: f64,
    /// Kernel function.
    pub kernel: KernelKind,
    /// Convergence tolerance on KKT violations.
    pub tolerance: f64,
    /// Iteration budget (SMO passes / interior-point Newton steps).
    pub max_iterations: usize,
}

impl Default for SvmConfig {
    fn default() -> Self {
        SvmConfig {
            c: 1.0,
            kernel: KernelKind::Linear,
            tolerance: 1e-3,
            max_iterations: 200,
        }
    }
}

/// Errors from SVM training.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SvmError {
    /// Inputs malformed: empty set, length mismatch, or labels not ±1.
    InvalidInput(String),
    /// The solver failed to reach the tolerance in the iteration budget.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
    },
}

impl fmt::Display for SvmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SvmError::InvalidInput(m) => write!(f, "invalid svm input: {m}"),
            SvmError::NoConvergence { iterations } => {
                write!(
                    f,
                    "svm training did not converge within {iterations} iterations"
                )
            }
        }
    }
}

impl Error for SvmError {}

/// Validates a training set, returning the sample count.
pub(crate) fn validate_inputs(x: &Matrix, y: &[f64], cfg: &SvmConfig) -> Result<usize, SvmError> {
    let n = x.rows();
    if n == 0 || x.cols() == 0 {
        return Err(SvmError::InvalidInput(
            "training set must be non-empty".into(),
        ));
    }
    if y.len() != n {
        return Err(SvmError::InvalidInput(format!(
            "{} labels for {} samples",
            y.len(),
            n
        )));
    }
    if !y.iter().all(|&l| l == 1.0 || l == -1.0) {
        return Err(SvmError::InvalidInput("labels must be +1 or -1".into()));
    }
    if y.iter().all(|&l| l == y[0]) {
        return Err(SvmError::InvalidInput(
            "both classes must be present".into(),
        ));
    }
    let c_positive = cfg.c.partial_cmp(&0.0) == Some(std::cmp::Ordering::Greater);
    if !c_positive {
        return Err(SvmError::InvalidInput(format!(
            "C must be positive, got {}",
            cfg.c
        )));
    }
    if !x.as_slice().iter().all(|v| v.is_finite()) {
        return Err(SvmError::InvalidInput(
            "features contain non-finite values".into(),
        ));
    }
    Ok(n)
}

/// A trained support vector machine.
#[derive(Debug, Clone)]
pub struct SvmModel {
    pub(crate) support_x: Matrix,
    pub(crate) coef: Vec<f64>, // alpha_i * y_i for each support vector
    pub(crate) bias: f64,
    pub(crate) kernel: KernelKind,
}

impl SvmModel {
    /// Number of support vectors retained.
    pub fn support_vectors(&self) -> usize {
        self.support_x.rows()
    }

    /// The bias term `b`.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Decision value `f(x) = Σ αᵢyᵢK(xᵢ, x) + b`.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimensionality.
    pub fn decision(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.support_x.cols(), "feature dimension mismatch");
        let mut acc = self.bias;
        for i in 0..self.support_x.rows() {
            acc += self.coef[i] * self.kernel.eval(self.support_x.row(i), x);
        }
        acc
    }

    /// Predicted label (`+1.0` or `-1.0`).
    pub fn classify(&self, x: &[f64]) -> f64 {
        if self.decision(x) >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Fraction of rows of `x` classified as their label in `y`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are inconsistent or the set is empty.
    pub fn accuracy(&self, x: &Matrix, y: &[f64]) -> f64 {
        assert_eq!(x.rows(), y.len(), "labels must match samples");
        assert!(!y.is_empty(), "evaluation set must be non-empty");
        let correct = (0..x.rows())
            .filter(|&i| self.classify(x.row(i)) == y[i])
            .count();
        correct as f64 / y.len() as f64
    }

    /// Builds a model from a dual solution, keeping only support vectors
    /// (α above `sv_threshold`) and computing the bias from free support
    /// vectors.
    pub(crate) fn from_dual(
        x: &Matrix,
        y: &[f64],
        alpha: &[f64],
        c: f64,
        kernel: KernelKind,
    ) -> SvmModel {
        let n = x.rows();
        let sv_threshold = 1e-6 * c;
        let sv_idx: Vec<usize> = (0..n).filter(|&i| alpha[i] > sv_threshold).collect();
        let mut support = Matrix::zeros(sv_idx.len(), x.cols());
        let mut coef = Vec::with_capacity(sv_idx.len());
        for (r, &i) in sv_idx.iter().enumerate() {
            support.row_mut(r).copy_from_slice(x.row(i));
            coef.push(alpha[i] * y[i]);
        }
        // Bias from free support vectors (0 < alpha < C): y_i - sum_j coef_j K(x_j, x_i).
        let mut bias_sum = 0.0;
        let mut bias_count = 0usize;
        for (r, &i) in sv_idx.iter().enumerate() {
            if alpha[i] < c - sv_threshold {
                let mut f = 0.0;
                for (r2, &j) in sv_idx.iter().enumerate() {
                    let _ = j;
                    f += coef[r2] * kernel.eval(support.row(r2), support.row(r));
                }
                bias_sum += y[i] - f;
                bias_count += 1;
            }
        }
        let bias = if bias_count > 0 {
            bias_sum / bias_count as f64
        } else if !sv_idx.is_empty() {
            // All SVs at bound: fall back to averaging over all of them.
            let mut s = 0.0;
            for (r, &i) in sv_idx.iter().enumerate() {
                let mut f = 0.0;
                for (r2, c2) in coef.iter().enumerate() {
                    f += c2 * kernel.eval(support.row(r2), support.row(r));
                }
                s += y[i] - f;
            }
            s / sv_idx.len() as f64
        } else {
            0.0
        };
        SvmModel {
            support_x: support,
            coef,
            bias,
            kernel,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_kernel_is_dot_product() {
        let k = KernelKind::Linear;
        assert_eq!(k.eval(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn polynomial_kernel_matches_formula() {
        let k = KernelKind::Polynomial {
            degree: 2,
            gamma: 0.5,
            coef0: 1.0,
        };
        // (0.5 * 4 + 1)^2 = 9
        assert!((k.eval(&[2.0], &[2.0]) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn validation_catches_bad_inputs() {
        let x = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let cfg = SvmConfig::default();
        assert!(validate_inputs(&x, &[1.0], &cfg).is_err()); // length
        assert!(validate_inputs(&x, &[1.0, 2.0], &cfg).is_err()); // labels
        assert!(validate_inputs(&x, &[1.0, 1.0], &cfg).is_err()); // one class
        assert!(validate_inputs(&x, &[1.0, -1.0], &cfg).is_ok());
        let bad_c = SvmConfig { c: 0.0, ..cfg };
        assert!(validate_inputs(&x, &[1.0, -1.0], &bad_c).is_err());
    }

    #[test]
    fn model_decision_is_linear_in_coefs() {
        // One support vector at (1, 0) with coef 2 and bias -1:
        // f(x) = 2 * (x . (1,0)) - 1.
        let model = SvmModel {
            support_x: Matrix::from_rows(&[&[1.0, 0.0]]),
            coef: vec![2.0],
            bias: -1.0,
            kernel: KernelKind::Linear,
        };
        assert!((model.decision(&[3.0, 5.0]) - 5.0).abs() < 1e-12);
        assert_eq!(model.classify(&[3.0, 5.0]), 1.0);
        assert_eq!(model.classify(&[0.0, 0.0]), -1.0);
    }
}
