//! Sequential minimal optimization — the baseline trainer used to
//! cross-validate the paper's interior-point method.
//!
//! The working-set selection follows Keerthi et al.'s maximal-violating-
//! pair rule (the scheme used by libsvm), which is provably convergent —
//! unlike Platt's original second-choice heuristic, which can limit-cycle.

use crate::model::{validate_inputs, SvmConfig, SvmError, SvmModel};
use sdvbs_matrix::Matrix;
use sdvbs_profile::Profiler;

/// Trains a soft-margin SVM with SMO (maximal-violating-pair working-set
/// selection).
///
/// Kernel attribution: `MatrixOps` (Gram matrix), `Learning` (the SMO
/// pair updates).
///
/// # Errors
///
/// * [`SvmError::InvalidInput`] for malformed inputs.
/// * [`SvmError::NoConvergence`] if the KKT gap stays above the tolerance
///   after `cfg.max_iterations * n` pair updates.
pub fn train_smo(
    x: &Matrix,
    y: &[f64],
    cfg: &SvmConfig,
    prof: &mut Profiler,
) -> Result<SvmModel, SvmError> {
    let n = validate_inputs(x, y, cfg)?;
    // Precompute the kernel (Gram) matrix — the "Matrix Ops" kernel.
    let k = prof.kernel("MatrixOps", |_| {
        Matrix::from_fn(n, n, |i, j| cfg.kernel.eval(x.row(i), x.row(j)))
    });
    let c = cfg.c;
    let tol = cfg.tolerance;
    let result = prof.kernel("Learning", |_| {
        let mut alpha = vec![0.0f64; n];
        // Dual gradient G_i = y_i f0(x_i) - 1; starts at -1 with alpha = 0.
        let mut g = vec![-1.0f64; n];
        let max_updates = cfg.max_iterations.saturating_mul(n).max(1000);
        let mut updates = 0usize;
        loop {
            // Maximal violating pair: i from I_up maximizing -y G, j from
            // I_low minimizing -y G.
            let mut gmax = f64::NEG_INFINITY;
            let mut gmin = f64::INFINITY;
            let mut i_sel = usize::MAX;
            let mut j_sel = usize::MAX;
            for t in 0..n {
                let v = -y[t] * g[t];
                let in_up = (y[t] > 0.0 && alpha[t] < c) || (y[t] < 0.0 && alpha[t] > 0.0);
                let in_low = (y[t] < 0.0 && alpha[t] < c) || (y[t] > 0.0 && alpha[t] > 0.0);
                if in_up && v > gmax {
                    gmax = v;
                    i_sel = t;
                }
                if in_low && v < gmin {
                    gmin = v;
                    j_sel = t;
                }
            }
            if i_sel == usize::MAX || j_sel == usize::MAX || gmax - gmin < tol {
                let bias = match (gmax.is_finite(), gmin.is_finite()) {
                    (true, true) => 0.5 * (gmax + gmin),
                    _ => 0.0,
                };
                return Ok((alpha, bias));
            }
            if updates >= max_updates {
                return Err(SvmError::NoConvergence {
                    iterations: updates,
                });
            }
            updates += 1;
            let (i, j) = (i_sel, j_sel);
            let (ai_old, aj_old) = (alpha[i], alpha[j]);
            let quad = (k[(i, i)] + k[(j, j)] - 2.0 * k[(i, j)]).max(1e-12);
            if y[i] != y[j] {
                let delta = (-g[i] - g[j]) / quad;
                let diff = ai_old - aj_old;
                alpha[i] += delta;
                alpha[j] += delta;
                if diff > 0.0 && alpha[j] < 0.0 {
                    alpha[j] = 0.0;
                    alpha[i] = diff;
                } else if diff <= 0.0 && alpha[i] < 0.0 {
                    alpha[i] = 0.0;
                    alpha[j] = -diff;
                }
                if diff > 0.0 && alpha[i] > c {
                    alpha[i] = c;
                    alpha[j] = c - diff;
                } else if diff <= 0.0 && alpha[j] > c {
                    alpha[j] = c;
                    alpha[i] = c + diff;
                }
            } else {
                let delta = (g[i] - g[j]) / quad;
                let sum = ai_old + aj_old;
                alpha[i] -= delta;
                alpha[j] += delta;
                if sum > c && alpha[i] > c {
                    alpha[i] = c;
                    alpha[j] = sum - c;
                } else if sum <= c && alpha[j] < 0.0 {
                    alpha[j] = 0.0;
                    alpha[i] = sum;
                }
                if sum > c && alpha[j] > c {
                    alpha[j] = c;
                    alpha[i] = sum - c;
                } else if sum <= c && alpha[i] < 0.0 {
                    alpha[i] = 0.0;
                    alpha[j] = sum;
                }
            }
            // Gradient maintenance: G_t += Q_ti dA_i + Q_tj dA_j, with
            // Q_ts = y_t y_s K_ts.
            let dai = alpha[i] - ai_old;
            let daj = alpha[j] - aj_old;
            if dai != 0.0 || daj != 0.0 {
                for t in 0..n {
                    g[t] += y[t] * (y[i] * k[(t, i)] * dai + y[j] * k[(t, j)] * daj);
                }
            }
        }
    });
    let (alpha, bias) = result?;
    let mut model = SvmModel::from_dual(x, y, &alpha, c, cfg.kernel);
    // The maximal-violating-pair bias estimate is the midpoint of the KKT
    // interval; prefer it over the support-vector average when available.
    model.bias = bias;
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{concentric_rings, gaussian_clusters};
    use crate::model::KernelKind;

    #[test]
    fn separable_clusters_classify_well() {
        let d = gaussian_clusters(120, 6, 6.0, 7);
        let mut prof = Profiler::new();
        let model = train_smo(&d.train_x, &d.train_y, &SvmConfig::default(), &mut prof).unwrap();
        assert!(model.accuracy(&d.train_x, &d.train_y) > 0.95);
        assert!(model.accuracy(&d.test_x, &d.test_y) > 0.9);
        // A separable problem needs few support vectors.
        assert!(model.support_vectors() < d.train_x.rows() / 2);
    }

    #[test]
    fn polynomial_kernel_solves_rings_where_linear_fails() {
        let d = concentric_rings(160, 2, 1.0, 3.0, 5);
        let mut prof = Profiler::new();
        let linear = train_smo(&d.train_x, &d.train_y, &SvmConfig::default(), &mut prof).unwrap();
        let poly_cfg = SvmConfig {
            kernel: KernelKind::Polynomial {
                degree: 2,
                gamma: 1.0,
                coef0: 1.0,
            },
            ..SvmConfig::default()
        };
        let poly = train_smo(&d.train_x, &d.train_y, &poly_cfg, &mut prof).unwrap();
        let lin_acc = linear.accuracy(&d.test_x, &d.test_y);
        let poly_acc = poly.accuracy(&d.test_x, &d.test_y);
        assert!(poly_acc > 0.9, "poly accuracy {poly_acc}");
        assert!(
            poly_acc > lin_acc + 0.15,
            "linear {lin_acc} vs poly {poly_acc}"
        );
    }

    #[test]
    fn free_support_vectors_sit_on_the_margin() {
        let d = gaussian_clusters(100, 4, 6.0, 11);
        let mut prof = Profiler::new();
        let cfg = SvmConfig {
            c: 10.0,
            ..SvmConfig::default()
        };
        let model = train_smo(&d.train_x, &d.train_y, &cfg, &mut prof).unwrap();
        // Decision values of correctly classified training points are >= ~1
        // or <= ~-1 for a (nearly) separable problem.
        let mut margin_ok = 0;
        let mut total = 0;
        for i in 0..d.train_x.rows() {
            let f = model.decision(d.train_x.row(i));
            total += 1;
            if f * d.train_y[i] > 0.8 {
                margin_ok += 1;
            }
        }
        assert!(margin_ok as f64 > 0.9 * total as f64, "{margin_ok}/{total}");
    }

    #[test]
    fn kernel_attribution() {
        let d = gaussian_clusters(60, 4, 3.0, 3);
        let mut prof = Profiler::new();
        prof.run(|p| train_smo(&d.train_x, &d.train_y, &SvmConfig::default(), p).unwrap());
        let rep = prof.report();
        assert!(rep.occupancy("MatrixOps").is_some());
        assert!(rep.occupancy("Learning").is_some());
    }

    #[test]
    fn invalid_inputs_error() {
        let mut prof = Profiler::new();
        let x = Matrix::from_rows(&[&[1.0], &[2.0]]);
        assert!(matches!(
            train_smo(&x, &[1.0, 2.0], &SvmConfig::default(), &mut prof),
            Err(SvmError::InvalidInput(_))
        ));
    }

    #[test]
    fn kkt_conditions_hold_at_solution() {
        let d = gaussian_clusters(80, 4, 5.0, 31);
        let mut prof = Profiler::new();
        let cfg = SvmConfig {
            c: 2.0,
            ..SvmConfig::default()
        };
        let model = train_smo(&d.train_x, &d.train_y, &cfg, &mut prof).unwrap();
        for i in 0..d.train_x.rows() {
            let margin = model.decision(d.train_x.row(i)) * d.train_y[i];
            // No training point may be badly misclassified at convergence
            // of a well-separated problem.
            assert!(margin > -0.5, "point {i} margin {margin}");
        }
    }
}
