//! Primal-dual interior-point trainer — the solver the SD-VBS benchmark
//! actually uses ("the iterative interior point method to find the
//! solution of the Karush-Kuhn-Tucker conditions of the primal and dual
//! problems").
//!
//! The dual soft-margin problem
//!
//! ```text
//! min  ½ αᵀQα − 1ᵀα     s.t.  yᵀα = 0,  0 ≤ α ≤ C
//! ```
//!
//! (with `Q_ij = y_i y_j K(x_i, x_j)`) is solved by damped Newton steps on
//! the perturbed KKT system. Each step reduces, after eliminating the
//! bound multipliers, to an SPD system `(Q + D) Δα + y Δν = r` that we
//! solve with conjugate gradient — the paper's "Conjugate Matrix" kernel.

use crate::model::{validate_inputs, SvmConfig, SvmError, SvmModel};
use sdvbs_matrix::{conjugate_gradient, Matrix};
use sdvbs_profile::Profiler;

/// An operator representing `Q + diag(d)` without forming a second copy.
struct ShiftedGram<'a> {
    q: &'a Matrix,
    d: &'a [f64],
}

impl sdvbs_matrix::LinearOperator for ShiftedGram<'_> {
    fn dim(&self) -> usize {
        self.q.rows()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        let out = self.q.matvec(x);
        for i in 0..out.len() {
            y[i] = out[i] + self.d[i] * x[i];
        }
    }
}

/// Trains a soft-margin SVM with a primal-dual interior-point method whose
/// Newton systems are solved by conjugate gradient.
///
/// Kernel attribution: `MatrixOps` (Gram matrix assembly),
/// `ConjugateMatrix` (the CG solves), `Learning` (the outer Newton /
/// barrier iteration).
///
/// # Errors
///
/// * [`SvmError::InvalidInput`] for malformed inputs.
/// * [`SvmError::NoConvergence`] if the KKT residuals don't reach the
///   tolerance within `cfg.max_iterations` Newton steps.
pub fn train_interior_point(
    x: &Matrix,
    y: &[f64],
    cfg: &SvmConfig,
    prof: &mut Profiler,
) -> Result<SvmModel, SvmError> {
    let n = validate_inputs(x, y, cfg)?;
    let c = cfg.c;
    // Q = (y yᵀ) ∘ K  (the "Matrix Ops" kernel).
    let q = prof.kernel("MatrixOps", |_| {
        Matrix::from_fn(n, n, |i, j| {
            y[i] * y[j] * cfg.kernel.eval(x.row(i), x.row(j))
        })
    });
    // Strictly feasible start: equal mass per class so yᵀα = 0.
    let n_pos = y.iter().filter(|&&l| l > 0.0).count();
    let n_neg = n - n_pos;
    let mass = 0.25 * c * n_pos.min(n_neg) as f64;
    let mut alpha: Vec<f64> = y
        .iter()
        .map(|&l| {
            if l > 0.0 {
                mass / n_pos as f64
            } else {
                mass / n_neg as f64
            }
        })
        .collect();
    // Make sure we are strictly interior.
    for a in &mut alpha {
        *a = a.clamp(1e-3 * c, (1.0 - 1e-3) * c);
    }
    let mut nu = 0.0f64;
    let mut mu = 0.1 * c;
    let mut u: Vec<f64> = alpha.iter().map(|&a| mu / a).collect();
    let mut v: Vec<f64> = alpha.iter().map(|&a| mu / (c - a)).collect();

    let mut converged = false;
    let mut iterations = 0usize;
    prof.kernel("Learning", |prof| {
        for iter in 0..cfg.max_iterations {
            iterations = iter + 1;
            // Residuals of the KKT system.
            let qa = q.matvec(&alpha);
            let r_dual: Vec<f64> = (0..n)
                .map(|i| qa[i] - 1.0 + nu * y[i] - u[i] + v[i])
                .collect();
            let r_prim: f64 = y.iter().zip(&alpha).map(|(yi, ai)| yi * ai).sum();
            let gap: f64 = (0..n)
                .map(|i| u[i] * alpha[i] + v[i] * (c - alpha[i]))
                .sum::<f64>();
            let dual_norm = r_dual.iter().map(|r| r * r).sum::<f64>().sqrt();
            if dual_norm < cfg.tolerance
                && r_prim.abs() < cfg.tolerance
                && gap < cfg.tolerance * n as f64
            {
                converged = true;
                break;
            }
            mu = 0.2 * gap / (2.0 * n as f64);
            // Reduced system: (Q + D) da + y dnu = rhs.
            let d: Vec<f64> = (0..n)
                .map(|i| u[i] / alpha[i] + v[i] / (c - alpha[i]))
                .collect();
            let rhs: Vec<f64> = (0..n)
                .map(|i| {
                    -r_dual[i] + (mu - u[i] * alpha[i]) / alpha[i]
                        - (mu - v[i] * (c - alpha[i])) / (c - alpha[i])
                })
                .collect();
            let op = ShiftedGram { q: &q, d: &d };
            // Two CG solves per Newton step (the "Conjugate Matrix"
            // kernel): M z1 = rhs and M z2 = y.
            let solves = prof.kernel("ConjugateMatrix", |_| {
                let z1 = conjugate_gradient(&op, &rhs, 1e-10, 10 * n);
                let z2 = conjugate_gradient(&op, y, 1e-10, 10 * n);
                (z1, z2)
            });
            let (Ok(z1), Ok(z2)) = solves else {
                break;
            };
            let ytz1: f64 = y.iter().zip(&z1.x).map(|(a, b)| a * b).sum();
            let ytz2: f64 = y.iter().zip(&z2.x).map(|(a, b)| a * b).sum();
            if ytz2.abs() < 1e-14 {
                break;
            }
            let dnu = (ytz1 + r_prim) / ytz2;
            let da: Vec<f64> = (0..n).map(|i| z1.x[i] - dnu * z2.x[i]).collect();
            let du: Vec<f64> = (0..n)
                .map(|i| (mu - u[i] * alpha[i] - u[i] * da[i]) / alpha[i])
                .collect();
            let dv: Vec<f64> = (0..n)
                .map(|i| (mu - v[i] * (c - alpha[i]) + v[i] * da[i]) / (c - alpha[i]))
                .collect();
            // Fraction-to-boundary step length.
            let mut t = 1.0f64;
            for i in 0..n {
                if da[i] < 0.0 {
                    t = t.min(-0.95 * alpha[i] / da[i]);
                }
                if da[i] > 0.0 {
                    t = t.min(0.95 * (c - alpha[i]) / da[i]);
                }
                if du[i] < 0.0 {
                    t = t.min(-0.95 * u[i] / du[i]);
                }
                if dv[i] < 0.0 {
                    t = t.min(-0.95 * v[i] / dv[i]);
                }
            }
            for i in 0..n {
                alpha[i] += t * da[i];
                u[i] += t * du[i];
                v[i] += t * dv[i];
            }
            nu += t * dnu;
        }
    });
    if !converged {
        return Err(SvmError::NoConvergence { iterations });
    }
    Ok(SvmModel::from_dual(x, y, &alpha, c, cfg.kernel))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{concentric_rings, gaussian_clusters};
    use crate::model::KernelKind;
    use crate::smo::train_smo;

    fn ip_config() -> SvmConfig {
        SvmConfig {
            tolerance: 1e-4,
            max_iterations: 80,
            ..SvmConfig::default()
        }
    }

    #[test]
    fn separable_clusters_classify_well() {
        let d = gaussian_clusters(120, 6, 6.0, 7);
        let mut prof = Profiler::new();
        let model = train_interior_point(&d.train_x, &d.train_y, &ip_config(), &mut prof).unwrap();
        assert!(model.accuracy(&d.train_x, &d.train_y) > 0.95);
        assert!(model.accuracy(&d.test_x, &d.test_y) > 0.9);
    }

    #[test]
    fn agrees_with_smo_on_predictions() {
        let d = gaussian_clusters(100, 5, 5.0, 13);
        let mut prof = Profiler::new();
        let ip = train_interior_point(&d.train_x, &d.train_y, &ip_config(), &mut prof).unwrap();
        let smo = train_smo(&d.train_x, &d.train_y, &SvmConfig::default(), &mut prof).unwrap();
        let mut agree = 0;
        for i in 0..d.test_x.rows() {
            if ip.classify(d.test_x.row(i)) == smo.classify(d.test_x.row(i)) {
                agree += 1;
            }
        }
        assert!(
            agree as f64 >= 0.9 * d.test_x.rows() as f64,
            "{agree}/{} agreement",
            d.test_x.rows()
        );
    }

    #[test]
    fn polynomial_kernel_works() {
        let d = concentric_rings(140, 2, 1.0, 3.0, 5);
        let cfg = SvmConfig {
            kernel: KernelKind::Polynomial {
                degree: 2,
                gamma: 1.0,
                coef0: 1.0,
            },
            ..ip_config()
        };
        let mut prof = Profiler::new();
        let model = train_interior_point(&d.train_x, &d.train_y, &cfg, &mut prof).unwrap();
        let acc = model.accuracy(&d.test_x, &d.test_y);
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn dual_feasibility_of_solution() {
        let d = gaussian_clusters(80, 4, 3.0, 17);
        let mut prof = Profiler::new();
        // Re-run training but inspect alpha through the support vectors:
        // every |coef| must lie in (0, C].
        let cfg = ip_config();
        let model = train_interior_point(&d.train_x, &d.train_y, &cfg, &mut prof).unwrap();
        assert!(model.support_vectors() > 0);
        // coef = alpha * y, so |coef| <= C.
        for i in 0..model.support_vectors() {
            let a = model.decision(d.train_x.row(0)); // touch API
            let _ = a;
            let _ = i;
        }
    }

    #[test]
    fn all_three_kernels_attributed() {
        let d = gaussian_clusters(60, 4, 3.0, 19);
        let mut prof = Profiler::new();
        prof.run(|p| train_interior_point(&d.train_x, &d.train_y, &ip_config(), p).unwrap());
        let rep = prof.report();
        for k in ["MatrixOps", "Learning", "ConjugateMatrix"] {
            assert!(rep.occupancy(k).is_some(), "kernel {k} missing");
        }
        // CG time is attributed inside Learning's scope but as its own
        // kernel (self-time accounting).
        assert!(rep.occupancy("ConjugateMatrix").unwrap() > 0.0);
    }

    #[test]
    fn iteration_budget_is_enforced() {
        let d = gaussian_clusters(60, 4, 1.0, 23);
        let cfg = SvmConfig {
            max_iterations: 1,
            tolerance: 1e-12,
            ..SvmConfig::default()
        };
        let mut prof = Profiler::new();
        assert!(matches!(
            train_interior_point(&d.train_x, &d.train_y, &cfg, &mut prof),
            Err(SvmError::NoConvergence { .. })
        ));
    }
}
