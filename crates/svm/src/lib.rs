//! SD-VBS benchmark 6: **SVM** — support vector machine training and
//! classification.
//!
//! SVMs separate two classes with a maximal geometric margin. The SD-VBS
//! benchmark "uses the iterative interior point method to find the
//! solution of the Karush-Kuhn-Tucker conditions of the primal and dual
//! problems" on a 500×64 working set, split into a *training* and a
//! *classification* phase dominated by "heavy polynomial functions and
//! matrix operations".
//!
//! This crate provides both:
//!
//! * [`train_interior_point`] — a primal-dual interior-point solver for
//!   the dual soft-margin QP whose inner Newton systems are solved with
//!   conjugate gradient (the paper's `Matrix Ops` / `Learning` /
//!   `Conjugate Matrix` kernel split);
//! * [`train_smo`] — a sequential minimal optimization baseline, used to
//!   cross-validate the interior-point trainer.
//!
//! # Examples
//!
//! ```
//! use sdvbs_profile::Profiler;
//! use sdvbs_svm::{gaussian_clusters, train_smo, KernelKind, SvmConfig};
//!
//! let data = gaussian_clusters(80, 8, 6.0, 42);
//! let mut prof = Profiler::new();
//! let model = train_smo(&data.train_x, &data.train_y, &SvmConfig::default(), &mut prof).unwrap();
//! let acc = model.accuracy(&data.test_x, &data.test_y);
//! assert!(acc > 0.9);
//! # let _ = KernelKind::Linear;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod data;
mod interior;
mod model;
mod multiclass;
mod smo;

pub use data::{concentric_rings, gaussian_clusters, Dataset};
pub use interior::train_interior_point;
pub use model::{KernelKind, SvmConfig, SvmError, SvmModel};
pub use multiclass::{multiclass_clusters, MulticlassSvm};
pub use smo::train_smo;
