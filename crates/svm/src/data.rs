//! Synthetic datasets replacing the paper's 500×64 training corpus.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sdvbs_matrix::Matrix;

/// A train/test split with ±1 labels.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Training features (`n_train × dims`).
    pub train_x: Matrix,
    /// Training labels (±1).
    pub train_y: Vec<f64>,
    /// Test features.
    pub test_x: Matrix,
    /// Test labels (±1).
    pub test_y: Vec<f64>,
}

fn gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Two Gaussian clusters in `dims` dimensions whose means are `separation`
/// standard deviations apart along a random direction. 75% of the samples
/// go to the training split.
///
/// # Panics
///
/// Panics if `samples < 8` or `dims == 0`.
pub fn gaussian_clusters(samples: usize, dims: usize, separation: f64, seed: u64) -> Dataset {
    assert!(samples >= 8, "need at least 8 samples");
    assert!(dims > 0, "need at least one dimension");
    let mut rng = StdRng::seed_from_u64(seed);
    // Random unit separation direction.
    let mut dir: Vec<f64> = (0..dims).map(|_| gauss(&mut rng)).collect();
    let norm = dir.iter().map(|v| v * v).sum::<f64>().sqrt();
    for v in &mut dir {
        *v /= norm;
    }
    let mut xs = Vec::with_capacity(samples);
    let mut ys = Vec::with_capacity(samples);
    for i in 0..samples {
        let label = if i % 2 == 0 { 1.0 } else { -1.0 };
        let row: Vec<f64> = (0..dims)
            .map(|d| gauss(&mut rng) + 0.5 * separation * label * dir[d])
            .collect();
        xs.push(row);
        ys.push(label);
    }
    split(xs, ys, dims)
}

/// Two concentric shells: class +1 inside radius `r_inner`, class −1 near
/// radius `r_outer`. Not linearly separable; a polynomial kernel of degree
/// ≥ 2 separates it.
///
/// # Panics
///
/// Panics if `samples < 8`, `dims == 0`, or the radii are not increasing.
pub fn concentric_rings(
    samples: usize,
    dims: usize,
    r_inner: f64,
    r_outer: f64,
    seed: u64,
) -> Dataset {
    assert!(
        samples >= 8 && dims > 0,
        "need at least 8 samples and one dimension"
    );
    assert!(
        0.0 < r_inner && r_inner < r_outer,
        "radii must satisfy 0 < inner < outer"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut xs = Vec::with_capacity(samples);
    let mut ys = Vec::with_capacity(samples);
    for i in 0..samples {
        let label = if i % 2 == 0 { 1.0 } else { -1.0 };
        let target_r = if label > 0.0 { r_inner } else { r_outer };
        // Random direction scaled to the target radius with jitter.
        let mut v: Vec<f64> = (0..dims).map(|_| gauss(&mut rng)).collect();
        let norm = v.iter().map(|a| a * a).sum::<f64>().sqrt().max(1e-9);
        let r = target_r * (1.0 + 0.1 * gauss(&mut rng));
        for a in &mut v {
            *a *= r / norm;
        }
        xs.push(v);
        ys.push(label);
    }
    split(xs, ys, dims)
}

fn split(xs: Vec<Vec<f64>>, ys: Vec<f64>, dims: usize) -> Dataset {
    let n = xs.len();
    let n_train = (3 * n) / 4;
    let pack = |rows: &[Vec<f64>]| {
        let mut m = Matrix::zeros(rows.len(), dims);
        for (i, r) in rows.iter().enumerate() {
            m.row_mut(i).copy_from_slice(r);
        }
        m
    };
    Dataset {
        train_x: pack(&xs[..n_train]),
        train_y: ys[..n_train].to_vec(),
        test_x: pack(&xs[n_train..]),
        test_y: ys[n_train..].to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clusters_have_balanced_labels() {
        let d = gaussian_clusters(100, 8, 3.0, 1);
        assert_eq!(d.train_x.rows(), 75);
        assert_eq!(d.test_x.rows(), 25);
        let pos = d.train_y.iter().filter(|&&l| l > 0.0).count();
        assert!((30..=45).contains(&pos));
    }

    #[test]
    fn clusters_are_separated_along_some_direction() {
        let d = gaussian_clusters(200, 4, 4.0, 2);
        // Difference of class means should have norm ~ separation.
        let mut mean_pos = [0.0; 4];
        let mut mean_neg = vec![0.0; 4];
        let (mut np, mut nn) = (0, 0);
        for i in 0..d.train_x.rows() {
            let row = d.train_x.row(i);
            if d.train_y[i] > 0.0 {
                for (m, v) in mean_pos.iter_mut().zip(row) {
                    *m += v;
                }
                np += 1;
            } else {
                for (m, v) in mean_neg.iter_mut().zip(row) {
                    *m += v;
                }
                nn += 1;
            }
        }
        let gap: f64 = mean_pos
            .iter()
            .zip(&mean_neg)
            .map(|(p, q)| (p / np as f64 - q / nn as f64).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!(gap > 3.0, "class gap {gap}");
    }

    #[test]
    fn rings_have_distinct_radii() {
        let d = concentric_rings(100, 3, 1.0, 3.0, 3);
        for i in 0..d.train_x.rows() {
            let r: f64 = d.train_x.row(i).iter().map(|v| v * v).sum::<f64>().sqrt();
            if d.train_y[i] > 0.0 {
                assert!(r < 2.0, "inner point at radius {r}");
            } else {
                assert!(r > 2.0, "outer point at radius {r}");
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = gaussian_clusters(40, 4, 2.0, 9);
        let b = gaussian_clusters(40, 4, 2.0, 9);
        assert_eq!(a.train_x, b.train_x);
        let c = gaussian_clusters(40, 4, 2.0, 10);
        assert_ne!(a.train_x, c.train_x);
    }
}
