//! The simulated network: latency, ordering, and partitions.
//!
//! The production transport is TCP, and the model keeps TCP's contract:
//! a link never reorders or silently drops frames — each direction of
//! each coordinator↔worker link delivers in send order (delivery times
//! are forced strictly monotone per direction). What the simulation *can*
//! vary is delay: every frame draws a latency from the configured window,
//! and a partition holds a worker's frames (both directions) until the
//! window heals, exactly the way a partition looks to TCP — retransmits
//! land everything after connectivity returns, nothing is lost unless a
//! process actually crashes.
//!
//! "Reorder" chaos is therefore cross-link: a wide latency window makes
//! frames on *different* links interleave in wildly different orders
//! while each single link stays FIFO — the only reordering a TCP-based
//! protocol can legally experience.

use crate::rng::SimRng;

/// One direction of one link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Coordinator → worker `w`.
    ToWorker(usize),
    /// Worker `w` → coordinator.
    ToCoord(usize),
}

impl Dir {
    fn worker(self) -> usize {
        match self {
            Dir::ToWorker(w) | Dir::ToCoord(w) => w,
        }
    }
}

/// A connectivity hole between the coordinator and one worker: frames
/// sent inside `[from_us, until_us)` deliver after `until_us`.
#[derive(Debug, Clone, Copy)]
pub struct Partition {
    /// The worker cut off.
    pub worker: usize,
    /// Window start (virtual µs).
    pub from_us: u64,
    /// Window end (virtual µs).
    pub until_us: u64,
}

/// Latency window for every frame.
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Minimum one-way latency (µs). Must be ≥ 1 so a request/reply
    /// cycle always advances virtual time (no same-instant livelock).
    pub latency_min_us: u64,
    /// Maximum one-way latency (µs).
    pub latency_max_us: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            latency_min_us: 500,
            latency_max_us: 5_000,
        }
    }
}

/// The network model: computes delivery times.
pub struct SimNet {
    cfg: NetConfig,
    partitions: Vec<Partition>,
    /// Last delivery time per direction per worker, for the TCP FIFO
    /// guarantee. Indexed `[worker]`, `.0` to-worker / `.1` to-coord.
    last: Vec<(u64, u64)>,
}

impl SimNet {
    /// A network over `workers` links.
    pub fn new(cfg: NetConfig, workers: usize, partitions: Vec<Partition>) -> Self {
        SimNet {
            cfg: NetConfig {
                latency_min_us: cfg.latency_min_us.max(1),
                latency_max_us: cfg.latency_max_us.max(cfg.latency_min_us.max(1)),
            },
            partitions,
            last: vec![(0, 0); workers],
        }
    }

    /// The configured latency ceiling (the bound the staleness invariant
    /// is judged against).
    pub fn latency_max_us(&self) -> u64 {
        self.cfg.latency_max_us
    }

    /// The partition schedule.
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// Whether `worker`'s link is partitioned at `at_us`.
    pub fn partitioned(&self, worker: usize, at_us: u64) -> bool {
        self.partitions
            .iter()
            .any(|p| p.worker == worker && (p.from_us..p.until_us).contains(&at_us))
    }

    /// When a frame sent now on `dir` arrives. Draws jitter from `rng`,
    /// defers across any partition covering the send instant, and clamps
    /// to after the link's previous delivery (FIFO).
    pub fn delivery(&mut self, rng: &mut SimRng, now_us: u64, dir: Dir) -> u64 {
        let jitter = rng.range(self.cfg.latency_min_us, self.cfg.latency_max_us + 1);
        let mut at = now_us + jitter;
        let w = dir.worker();
        for p in &self.partitions {
            if p.worker == w && (p.from_us..p.until_us).contains(&now_us) {
                // TCP retransmission: the frame lands once the partition
                // heals, plus a fresh propagation delay.
                at = at.max(p.until_us + self.cfg.latency_min_us);
            }
        }
        let slot = &mut self.last[w];
        let prev = match dir {
            Dir::ToWorker(_) => &mut slot.0,
            Dir::ToCoord(_) => &mut slot.1,
        };
        at = at.max(*prev + 1);
        *prev = at;
        at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_link_delivery_is_fifo() {
        let mut net = SimNet::new(
            NetConfig {
                latency_min_us: 1,
                latency_max_us: 10_000,
            },
            2,
            Vec::new(),
        );
        let mut rng = SimRng::new(3);
        let mut prev = 0;
        for _ in 0..100 {
            let at = net.delivery(&mut rng, 50, Dir::ToWorker(0));
            assert!(at > prev, "same-direction frames never reorder");
            prev = at;
        }
        // The other direction and the other worker are independent.
        assert!(net.delivery(&mut rng, 50, Dir::ToCoord(0)) < prev);
        assert!(net.delivery(&mut rng, 50, Dir::ToWorker(1)) < prev);
    }

    #[test]
    fn partitions_defer_delivery_until_heal() {
        let mut net = SimNet::new(
            NetConfig {
                latency_min_us: 10,
                latency_max_us: 20,
            },
            1,
            vec![Partition {
                worker: 0,
                from_us: 100,
                until_us: 5_000,
            }],
        );
        let mut rng = SimRng::new(1);
        assert!(net.partitioned(0, 100));
        assert!(!net.partitioned(0, 5_000));
        let at = net.delivery(&mut rng, 150, Dir::ToCoord(0));
        assert!(at >= 5_010, "frame holds until the partition heals: {at}");
        // A frame sent after the heal is unaffected by the window, only
        // by FIFO behind the held frame.
        let at2 = net.delivery(&mut rng, 5_000, Dir::ToCoord(0));
        assert!(at2 > at && at2 <= at.max(5_020) + 1);
    }
}
