//! `sdvbs-sim` — deterministic simulation testing for the SD-VBS cluster
//! stack.
//!
//! The distributed serving tier (`sdvbs-serve --cluster`) is a
//! coordinator sharding jobs over TCP to worker processes, with
//! heartbeat failure detection, orphan requeue, retry budgets, and
//! two-phase drain. Its failure modes — a worker dying mid-job, a link
//! partitioning for just longer than the liveness window, a stalled
//! process resurrecting after its jobs were requeued — are exactly the
//! schedules threads and real sockets make unreproducible.
//!
//! This crate runs that protocol on a **single-threaded discrete-event
//! simulator** instead:
//!
//! * time is a [`sdvbs_exec::VirtualClock`] advanced by the event loop —
//!   a thousand simulated seconds of heartbeats and backoff replay in
//!   milliseconds;
//! * the network is a model of TCP ([`net::SimNet`]): per-link FIFO, no
//!   silent loss, seeded latency, partitions that hold frames until they
//!   heal;
//! * faults are planned from the seed ([`faults`]): crashes, stalls,
//!   partitions, reorder — so **the failing seed is the reproduction**;
//! * the protocol logic is *shared with production*: every decision goes
//!   through [`sdvbs_serve::protocol`], and every message round-trips
//!   the real [`sdvbs_wire`] frame codec.
//!
//! [`harness::run_sim`] executes one seed and checks the invariants in
//! [`invariants`]; [`harness::explore`] sweeps a seed range; the
//! `sdvbs-sim` binary exposes both (`explore`, `replay`) for CI and for
//! humans chasing a failing seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faults;
pub mod harness;
pub mod invariants;
pub mod model;
pub mod net;
pub mod rng;
pub mod sched;

pub use faults::{plan, FaultSchedule, FaultSpec};
pub use harness::{explore, run_sim, ExploreReport, SeedResult, SimConfig, SimOutcome, SimStats};
pub use invariants::{check, CheckContext};
pub use model::{JobState, ModelConfig, SimJob, SimModel};
pub use net::{Dir, NetConfig, Partition, SimNet};
pub use rng::SimRng;
pub use sched::EventQueue;
