//! Seed-replayable fault schedules.
//!
//! A [`FaultSpec`] names *which kinds* of chaos a run is allowed
//! (`crash,partition,stall,reorder`); [`plan`] turns the spec plus the
//! run's RNG into a concrete [`FaultSchedule`] — which worker crashes
//! when, which links partition for how long, which processes stall. The
//! schedule is drawn before the simulation starts and is a pure function
//! of `(spec, seed)`, so printing a failing seed is a complete
//! reproduction recipe.
//!
//! One worker (seed-chosen) is exempt from crashes so the cluster always
//! retains a survivor: total loss is a separate, already-deterministic
//! code path (every job quarantines with "no live workers") and drowning
//! every run in it would hide the interesting schedules.

use crate::net::Partition;
use crate::rng::SimRng;
use std::fmt;

/// Which fault kinds a run may inject.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultSpec {
    /// Workers may crash (process death: state lost, link broken).
    pub crash: bool,
    /// Links may partition (frames held until the window heals).
    pub partition: bool,
    /// Workers may stall (alive but unresponsive for a window).
    pub stall: bool,
    /// Latency window widens drastically, interleaving links.
    pub reorder: bool,
}

impl FaultSpec {
    /// No chaos at all.
    pub fn none() -> Self {
        FaultSpec::default()
    }

    /// Parses a comma-separated kind list, e.g. `"crash,partition"`.
    /// Empty and `"none"` mean no faults.
    ///
    /// # Errors
    ///
    /// Names an unknown kind.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut out = FaultSpec::none();
        for part in spec.split(',') {
            match part.trim() {
                "" | "none" => {}
                "crash" => out.crash = true,
                "partition" => out.partition = true,
                "stall" => out.stall = true,
                "reorder" => out.reorder = true,
                other => {
                    return Err(format!(
                        "unknown fault kind {other:?} (crash, partition, stall, reorder)"
                    ))
                }
            }
        }
        Ok(out)
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut kinds = Vec::new();
        if self.crash {
            kinds.push("crash");
        }
        if self.partition {
            kinds.push("partition");
        }
        if self.stall {
            kinds.push("stall");
        }
        if self.reorder {
            kinds.push("reorder");
        }
        if kinds.is_empty() {
            f.write_str("none")
        } else {
            f.write_str(&kinds.join(","))
        }
    }
}

/// A concrete, fully-timed chaos schedule for one run.
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    /// `(at_us, worker)` process deaths.
    pub crashes: Vec<(u64, usize)>,
    /// `(worker, from_us, until_us)` unresponsiveness windows.
    pub stalls: Vec<(usize, u64, u64)>,
    /// Link partitions, handed to the network model.
    pub partitions: Vec<Partition>,
    /// Whether the latency window is widened.
    pub reorder: bool,
}

/// Draws a schedule from the run's RNG. `liveness_us` scales partition
/// and stall windows so they straddle the staleness boundary — some stay
/// sub-critical (the protocol must ride them out), some exceed it (the
/// protocol must declare death and recover).
pub fn plan(
    spec: FaultSpec,
    rng: &mut SimRng,
    workers: usize,
    duration_us: u64,
    liveness_us: u64,
) -> FaultSchedule {
    let mut out = FaultSchedule {
        reorder: spec.reorder,
        ..FaultSchedule::default()
    };
    if workers == 0 || duration_us == 0 {
        return out;
    }
    let survivor = rng.range(0, workers as u64) as usize;
    if spec.crash {
        for w in 0..workers {
            if w != survivor && rng.chance(0.6) {
                let at = rng.range(duration_us / 10, duration_us * 9 / 10);
                out.crashes.push((at, w));
            }
        }
        out.crashes.sort_unstable();
    }
    if spec.partition {
        let count = rng.range(1, 3);
        for _ in 0..count {
            let worker = rng.range(0, workers as u64) as usize;
            let from_us = rng.range(duration_us / 20, duration_us * 7 / 10);
            let len = rng.range(liveness_us / 2, liveness_us * 5 / 2);
            out.partitions.push(Partition {
                worker,
                from_us,
                until_us: from_us + len,
            });
        }
    }
    if spec.stall {
        let count = rng.range(1, 3);
        for _ in 0..count {
            let worker = rng.range(0, workers as u64) as usize;
            let from_us = rng.range(duration_us / 20, duration_us * 7 / 10);
            let len = rng.range(liveness_us / 2, liveness_us * 5 / 2);
            out.stalls.push((worker, from_us, from_us + len));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_parse_and_display_round_trip() {
        let s = FaultSpec::parse("crash, partition,stall,reorder").unwrap();
        assert!(s.crash && s.partition && s.stall && s.reorder);
        assert_eq!(s.to_string(), "crash,partition,stall,reorder");
        assert_eq!(FaultSpec::parse("").unwrap(), FaultSpec::none());
        assert_eq!(FaultSpec::parse("none").unwrap(), FaultSpec::none());
        assert_eq!(FaultSpec::none().to_string(), "none");
        assert!(FaultSpec::parse("explode").is_err());
    }

    #[test]
    fn schedules_are_deterministic_and_spare_a_survivor() {
        let spec = FaultSpec::parse("crash,partition,stall").unwrap();
        for seed in 0..20 {
            let a = plan(spec, &mut SimRng::new(seed), 4, 20_000_000, 3_000_000);
            let b = plan(spec, &mut SimRng::new(seed), 4, 20_000_000, 3_000_000);
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
            let crashed: Vec<usize> = a.crashes.iter().map(|&(_, w)| w).collect();
            assert!(crashed.len() < 4, "at least one worker survives");
        }
    }
}
