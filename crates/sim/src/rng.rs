//! The simulation's single random stream.
//!
//! Everything nondeterministic in a simulated run — job arrival times,
//! execution durations, network latency draws, fault placement — comes
//! from one [`SimRng`] seeded by the run's seed. Because the simulator is
//! single-threaded and event order is total, the draw sequence is a pure
//! function of the seed, which is what makes a run replayable: same seed,
//! same draws, same schedule, same outcome, bit for bit.
//!
//! The generator is splitmix64 — the same finalizer the runner's fault
//! layer uses — which is plenty for schedule diversity and has no global
//! state to leak between runs.

/// A seeded splitmix64 stream.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// A stream determined entirely by `seed`.
    pub fn new(seed: u64) -> Self {
        // Pre-mix so seed 0 does not start the stream at the weak
        // all-zero state.
        SimRng {
            state: seed ^ 0x5157_5f53_4456_4253,
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `lo..hi` (half-open). `lo` when the range is
    /// empty. The modulo bias is irrelevant at schedule scale.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform draw in `0.0..1.0`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// True with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(1);
        let mut c = SimRng::new(2);
        let sa: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = SimRng::new(7);
        for _ in 0..1000 {
            let v = rng.range(10, 20);
            assert!((10..20).contains(&v));
        }
        assert_eq!(rng.range(5, 5), 5);
        assert_eq!(rng.range(9, 3), 9);
    }
}
