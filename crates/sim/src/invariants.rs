//! The properties every simulated run must uphold.
//!
//! Each check returns human-readable violation strings naming the job or
//! worker involved; the harness attaches the seed, which is the whole
//! reproduction recipe. The four properties are the ones the cluster's
//! correctness story rests on:
//!
//! 1. **No job lost or double-completed** — every admitted job reaches a
//!    terminal state exactly once, across any schedule of crashes,
//!    stalls, and partitions.
//! 2. **Retry budget** — a job never begins more than `budget + 1`
//!    executions, and a quarantine-by-exhaustion happens at exactly that
//!    count (the unified accounting of [`sdvbs_serve::protocol`]).
//! 3. **Drain terminates** — once a drain starts, the cluster reaches
//!    quiescence: every job terminal, the stop broadcast sent, the event
//!    queue empty before the horizon.
//! 4. **Staleness honesty** — the coordinator never declares a live,
//!    responsive worker dead: every staleness-based death must be
//!    explained by a crash, a stall, or a partition overlapping the
//!    liveness window (message latency is otherwise bounded well below
//!    the liveness threshold, so heartbeats flow).

use crate::faults::FaultSchedule;
use crate::model::{JobState, SimJob, SimModel};

/// Context the checks need beyond the model itself.
pub struct CheckContext<'a> {
    /// The fault schedule the run executed.
    pub schedule: &'a FaultSchedule,
    /// Liveness window (µs).
    pub liveness_us: u64,
    /// Retry budget.
    pub retry_budget: u32,
    /// Events left unprocessed (nonzero means the horizon tripped).
    pub events_left: usize,
    /// Final virtual time (µs).
    pub end_us: u64,
    /// Hard horizon (µs).
    pub horizon_us: u64,
}

/// Runs every invariant over a finished model. Empty means the run is
/// clean.
pub fn check(model: &SimModel, ctx: &CheckContext<'_>) -> Vec<String> {
    let mut violations = Vec::new();
    no_lost_or_double(model.jobs(), &mut violations);
    retry_budget(model.jobs(), ctx.retry_budget, &mut violations);
    drain_terminates(model, ctx, &mut violations);
    staleness_honesty(model, ctx, &mut violations);
    violations
}

/// Invariant 1: terminal exactly once.
fn no_lost_or_double(jobs: &[SimJob], out: &mut Vec<String>) {
    for (id, job) in jobs.iter().enumerate() {
        if !job.state.is_terminal() {
            out.push(format!(
                "job {id} lost: final state {:?} after quiescence",
                job.state
            ));
        }
        if job.terminal_transitions > 1 {
            out.push(format!(
                "job {id} double-completed: {} terminal transitions",
                job.terminal_transitions
            ));
        }
        if matches!(job.state, JobState::Done) && job.record.is_none() {
            out.push(format!("job {id} done without a record"));
        }
    }
}

/// Invariant 2: `attempts` never exceeds `budget + 1`, and an
/// exhaustion quarantine consumed the whole budget.
fn retry_budget(jobs: &[SimJob], budget: u32, out: &mut Vec<String>) {
    let max = budget.saturating_add(1);
    for (id, job) in jobs.iter().enumerate() {
        if job.attempts_high > max {
            out.push(format!(
                "job {id} began {} executions; budget allows {max}",
                job.attempts_high
            ));
        }
        if let JobState::Quarantined(why) = &job.state {
            if why.starts_with("quarantined after") && job.attempts != max {
                out.push(format!(
                    "job {id} quarantined by exhaustion at {} attempts, not {max}",
                    job.attempts
                ));
            }
        }
    }
}

/// Invariant 3: the drain finished and the world went quiet.
fn drain_terminates(model: &SimModel, ctx: &CheckContext<'_>, out: &mut Vec<String>) {
    if ctx.events_left > 0 || ctx.end_us > ctx.horizon_us {
        out.push(format!(
            "run did not quiesce: {} events unprocessed at t={}µs (horizon {}µs)",
            ctx.events_left, ctx.end_us, ctx.horizon_us
        ));
    }
    if !model.drain_complete() {
        out.push("drain never completed: stop broadcast was not reached".to_string());
    }
}

/// Invariant 4: every staleness death has a fault that explains it.
///
/// A stale verdict at time `t` means no heartbeat reply landed during
/// `[t - liveness, t]`. With latency bounded at `latency_max ≪ liveness`
/// that requires the worker to have been crashed, stalled into that
/// window, or partitioned into it (a partition delays replies by up to
/// its length). Anything else is a false positive — the bug this
/// invariant exists to catch.
fn staleness_honesty(model: &SimModel, ctx: &CheckContext<'_>, out: &mut Vec<String>) {
    let slack = 2 * model.latency_max_us() + ctx.liveness_us;
    for death in &model.audit.deaths {
        if !death.stale {
            continue;
        }
        let (w, t) = (death.worker, death.at_us);
        let crashed = ctx
            .schedule
            .crashes
            .iter()
            .any(|&(at, cw)| cw == w && at <= t);
        let stalled = ctx.schedule.stalls.iter().any(|&(sw, from, until)| {
            sw == w && from <= t && until + slack >= t.saturating_sub(ctx.liveness_us)
        });
        let partitioned = ctx.schedule.partitions.iter().any(|p| {
            p.worker == w
                && p.from_us <= t
                && p.until_us + slack >= t.saturating_sub(ctx.liveness_us)
        });
        if !(crashed || stalled || partitioned) {
            out.push(format!(
                "worker w{w} declared stale-dead at t={t}µs with no crash, stall, or \
                 partition in the liveness window (false-positive death)"
            ));
        }
    }
}
