//! The discrete-event scheduler: a priority queue over virtual time.
//!
//! Determinism rests on the tie-break: events at the same microsecond pop
//! in the order they were pushed (a monotone sequence number), so two
//! runs that push the same events observe the same total order — there is
//! no dependence on heap internals or iteration order anywhere.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled event: fire time in virtual microseconds plus the
/// tie-breaking push sequence.
struct Scheduled<E> {
    at_us: u64,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at_us == other.at_us && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first,
        // FIFO within a microsecond.
        (other.at_us, other.seq).cmp(&(self.at_us, self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// An event queue ordered by `(virtual time, push order)`.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    /// Highest time popped so far; pushes into the past are clamped to it
    /// so virtual time never runs backwards.
    now_us: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now_us: 0,
        }
    }

    /// Schedules `ev` at `at_us` (clamped to now — an event can never
    /// fire in the past).
    pub fn push(&mut self, at_us: u64, ev: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled {
            at_us: at_us.max(self.now_us),
            seq,
            ev,
        });
    }

    /// Pops the earliest event, advancing the queue's notion of now.
    pub fn pop(&mut self) -> Option<(u64, E)> {
        let s = self.heap.pop()?;
        self.now_us = s.at_us;
        Some((s.at_us, s.ev))
    }

    /// The time of the last popped event.
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// Events still scheduled.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_with_fifo_ties() {
        let mut q = EventQueue::new();
        q.push(30, "c");
        q.push(10, "a1");
        q.push(10, "a2");
        q.push(20, "b");
        let order: Vec<(u64, &str)> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![(10, "a1"), (10, "a2"), (20, "b"), (30, "c")]);
    }

    #[test]
    fn past_pushes_clamp_to_now() {
        let mut q = EventQueue::new();
        q.push(100, "late");
        assert_eq!(q.pop(), Some((100, "late")));
        q.push(5, "past");
        assert_eq!(q.pop(), Some((100, "past")));
        assert_eq!(q.now_us(), 100);
    }
}
