//! The deterministic model of the coordinator/worker cluster.
//!
//! This is the production protocol of [`sdvbs_serve::cluster`] and
//! [`sdvbs_serve::worker`] re-hosted on a single-threaded discrete-event
//! scheduler. Three things are shared with production outright, so the
//! model cannot drift from the code it tests:
//!
//! * **every decision** — shard choice, orphan fate, retry exhaustion,
//!   staleness — is the corresponding pure function in
//!   [`sdvbs_serve::protocol`];
//! * **every message** is a real [`sdvbs_wire::Message`], round-tripped
//!   through [`encode_frame`]/[`decode_frame`] on each hop, so the sim
//!   exercises the production codec on every delivery;
//! * **time** is a real [`sdvbs_exec::VirtualClock`] behind a
//!   [`ClockHandle`] — the same handle type the production config
//!   carries — advanced by the event loop; heartbeat staleness is
//!   measured with `ClockHandle::since` exactly as the coordinator does.
//!
//! What the model replaces is the *mechanics*: threads become events,
//! TCP becomes [`SimNet`] (which keeps TCP's FIFO-per-link, no-silent-
//! loss contract), and worker engines become queued virtual executions.
//! Faults — crashes, stalls, partitions — come from a seed-planned
//! [`FaultSchedule`], so any run reproduces from its seed alone.

use crate::faults::FaultSchedule;
use crate::net::{Dir, NetConfig, SimNet};
use crate::rng::SimRng;
use crate::sched::EventQueue;
use sdvbs_exec::ClockHandle;
use sdvbs_runner::{policy_label, size_label, HostMeta, Job, RunRecord, RunStatus};
use sdvbs_serve::protocol::{self, OrphanDisposition, RetryPolicy};
use sdvbs_serve::spec_digest;
use sdvbs_wire::{decode_frame, encode_frame, Message};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::time::Duration;

/// Cluster sizing and timing knobs, all in virtual microseconds.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Worker process count.
    pub workers: usize,
    /// Coordinator admission bound (outstanding jobs).
    pub queue_capacity: usize,
    /// Per-worker in-flight cap before the dispatcher steals.
    pub per_worker_inflight: usize,
    /// Heartbeat interval.
    pub heartbeat_us: u64,
    /// Staleness window.
    pub liveness_us: u64,
    /// Retries beyond a job's first execution.
    pub retry_budget: u32,
    /// Worker-side admission bound (queued + running) before `Busy`.
    pub worker_queue: usize,
    /// Concurrent executions per worker.
    pub worker_slots: usize,
    /// Execution-duration window per job.
    pub exec_min_us: u64,
    /// Upper bound of the execution window.
    pub exec_max_us: u64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        // Heartbeat/liveness/budget mirror ClusterConfig::default.
        ModelConfig {
            workers: 3,
            queue_capacity: 1024,
            per_worker_inflight: 8,
            heartbeat_us: 300_000,
            liveness_us: 3_000_000,
            retry_budget: 2,
            // Smaller than per_worker_inflight on purpose: the
            // coordinator can legally overrun a worker's queue, so the
            // Busy-bounce path gets exercised under bursty load.
            worker_queue: 5,
            worker_slots: 2,
            exec_min_us: 50_000,
            exec_max_us: 800_000,
        }
    }
}

/// Mirror of the coordinator's `CJobState`.
#[derive(Debug, Clone, PartialEq)]
pub enum JobState {
    /// Admitted, awaiting dispatch.
    Pending,
    /// Dispatched to worker `i`.
    Dispatched(usize),
    /// Completed with a record.
    Done,
    /// Refused without a result.
    Rejected(String),
    /// Retry budget exhausted (or no live workers).
    Quarantined(String),
}

impl JobState {
    /// Whether the job can never change state again.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Rejected(_) | JobState::Quarantined(_)
        )
    }
}

/// One admitted cluster job plus its audit trail.
#[derive(Debug, Clone)]
pub struct SimJob {
    /// The real spec (digested for sharding exactly as production).
    pub spec: Job,
    /// `spec_digest(&spec)`.
    pub digest: u64,
    /// Lifecycle state.
    pub state: JobState,
    /// Executions begun (the unified accounting of
    /// [`sdvbs_serve::protocol`]).
    pub attempts: u32,
    /// Highest `attempts` ever observed (Busy refunds lower `attempts`,
    /// never this).
    pub attempts_high: u32,
    /// Times the job entered a terminal state. The no-lost/no-double
    /// invariant demands exactly 1.
    pub terminal_transitions: u32,
    /// The completed record, when `Done`.
    pub record: Option<Box<RunRecord>>,
}

/// A recorded worker death.
#[derive(Debug, Clone)]
pub struct Death {
    /// Worker index.
    pub worker: usize,
    /// Virtual time of the declaration.
    pub at_us: u64,
    /// The reason string passed to `mark_dead`.
    pub why: String,
    /// True when declared by heartbeat staleness (vs. a broken link).
    pub stale: bool,
}

/// Everything a simulated run leaves behind for invariant checking.
#[derive(Debug, Clone, Default)]
pub struct RunAudit {
    /// Worker deaths in declaration order.
    pub deaths: Vec<Death>,
    /// Virtual time the drain began, if it did.
    pub drain_started_us: Option<u64>,
    /// Virtual time the coordinator finished draining (all jobs
    /// terminal, Drain sent to survivors).
    pub drain_stopped_us: Option<u64>,
    /// Workers that answered `DrainOk`.
    pub drain_ok: Vec<usize>,
    /// Submissions refused at admission (drain or queue-full): these
    /// never became jobs.
    pub refused_admission: u64,
    /// `Busy` bounces redispatched.
    pub busy_bounces: u64,
    /// Orphans requeued across worker deaths.
    pub requeues: u64,
    /// Jobs stolen off their home shard.
    pub stolen: u64,
}

struct SimWorker {
    crashed: bool,
    stalled_until: u64,
    draining: bool,
    drain_ok_pending: bool,
    /// Queued-but-not-running `(job id, exec_us)`.
    queue: VecDeque<(u64, u64)>,
    /// Running job id → scheduled finish time.
    running: BTreeMap<u64, u64>,
    completed: u64,
    rejected: u64,
}

impl SimWorker {
    fn new() -> Self {
        SimWorker {
            crashed: false,
            stalled_until: 0,
            draining: false,
            drain_ok_pending: false,
            queue: VecDeque::new(),
            running: BTreeMap::new(),
            completed: 0,
            rejected: 0,
        }
    }

    fn outstanding(&self) -> usize {
        self.queue.len() + self.running.len()
    }
}

enum Ev {
    /// The load plan submits `planned[i]`.
    Submit(usize),
    /// A frame arrives at worker `w`.
    ToWorker { w: usize, frame: Vec<u8> },
    /// A frame arrives at the coordinator from worker `w`.
    ToCoord { w: usize, frame: Vec<u8> },
    /// Worker `w`'s link tears (the coordinator's reader sees EOF).
    LinkBroken { w: usize },
    /// The heartbeat loop's next sweep.
    HeartbeatTick,
    /// Worker `w` finishes executing job `id`.
    Finish { w: usize, id: u64 },
    /// Fault: worker `w` dies.
    Crash { w: usize },
    /// Fault: worker `w` stops responding until `until_us`.
    StallStart { w: usize, until_us: u64 },
    /// The operator starts a cluster drain.
    BeginDrain,
}

/// The whole simulated cluster: coordinator, workers, network, clock.
pub struct SimModel {
    cfg: ModelConfig,
    rng: SimRng,
    net: SimNet,
    queue: EventQueue<Ev>,
    clock: ClockHandle,
    virt: std::sync::Arc<sdvbs_exec::VirtualClock>,

    // Coordinator state (mirrors ClusterState + WorkerLink fields).
    jobs: Vec<SimJob>,
    pending: VecDeque<u64>,
    outstanding: usize,
    draining: bool,
    stopping: bool,
    alive: Vec<bool>,
    last_beat: Vec<Duration>,
    dispatched: Vec<BTreeSet<u64>>,
    hb_seq: u64,

    workers: Vec<SimWorker>,
    planned: Vec<Job>,

    /// Deterministic event log; its hash is the run's digest.
    pub log: Vec<String>,
    /// Invariant-relevant observations.
    pub audit: RunAudit,
}

impl SimModel {
    /// Builds a cluster over a planned load and fault schedule. `load` is
    /// `(arrival_us, spec)` pairs; `drain_at_us` starts the drain.
    pub fn new(
        cfg: ModelConfig,
        rng: SimRng,
        net_cfg: NetConfig,
        schedule: &FaultSchedule,
        load: Vec<(u64, Job)>,
        drain_at_us: u64,
    ) -> Self {
        let n = cfg.workers.max(1);
        let (clock, virt) = ClockHandle::simulated();
        let net = SimNet::new(net_cfg, n, schedule.partitions.clone());
        let mut queue = EventQueue::new();
        let mut planned = Vec::with_capacity(load.len());
        for (i, (at, spec)) in load.into_iter().enumerate() {
            queue.push(at, Ev::Submit(i));
            planned.push(spec);
        }
        for &(at, w) in &schedule.crashes {
            queue.push(at, Ev::Crash { w });
        }
        for &(w, from, until) in &schedule.stalls {
            queue.push(from, Ev::StallStart { w, until_us: until });
        }
        queue.push(0, Ev::HeartbeatTick);
        queue.push(drain_at_us, Ev::BeginDrain);
        let t0 = clock.now();
        SimModel {
            cfg,
            rng,
            net,
            queue,
            clock,
            virt,
            jobs: Vec::new(),
            pending: VecDeque::new(),
            outstanding: 0,
            draining: false,
            stopping: false,
            alive: vec![true; n],
            last_beat: vec![t0; n],
            dispatched: vec![BTreeSet::new(); n],
            hb_seq: 0,
            workers: (0..n).map(|_| SimWorker::new()).collect(),
            planned,
            log: Vec::new(),
            audit: RunAudit::default(),
        }
    }

    /// Runs the event loop to quiescence and returns the final virtual
    /// time in microseconds. `horizon_us` is a hard stop against a
    /// non-terminating schedule — reaching it is itself an invariant
    /// failure the checker reports.
    pub fn run(&mut self, horizon_us: u64) -> u64 {
        while let Some((now, ev)) = self.queue.pop() {
            if now > horizon_us {
                self.note(now, "HORIZON exceeded; aborting event loop".to_string());
                return now;
            }
            self.virt.advance_to(Duration::from_micros(now));
            self.handle(now, ev);
        }
        self.queue.now_us()
    }

    /// The admitted jobs, for invariant checks and reporting.
    pub fn jobs(&self) -> &[SimJob] {
        &self.jobs
    }

    /// Events still scheduled (nonzero only when the horizon tripped).
    pub fn events_left(&self) -> usize {
        self.queue.len()
    }

    /// Whether the coordinator finished its drain.
    pub fn drain_complete(&self) -> bool {
        self.stopping
    }

    /// The latency ceiling the staleness invariant is judged against.
    pub fn latency_max_us(&self) -> u64 {
        self.net.latency_max_us()
    }

    fn note(&mut self, now: u64, line: String) {
        self.log.push(format!("{now:>12} {line}"));
    }

    // ---- transport ----------------------------------------------------

    fn send_to_worker(&mut self, now: u64, w: usize, msg: &Message) {
        let frame = encode_frame(msg);
        let at = self.net.delivery(&mut self.rng, now, Dir::ToWorker(w));
        self.queue.push(at, Ev::ToWorker { w, frame });
    }

    fn send_to_coord(&mut self, now: u64, w: usize, msg: &Message) {
        let frame = encode_frame(msg);
        let at = self.net.delivery(&mut self.rng, now, Dir::ToCoord(w));
        self.queue.push(at, Ev::ToCoord { w, frame });
    }

    fn decode(frame: &[u8]) -> Message {
        match decode_frame(frame) {
            Ok(Some((msg, consumed))) if consumed == frame.len() => msg,
            other => unreachable!("sim delivered a torn frame: {other:?}"),
        }
    }

    // ---- event dispatch ------------------------------------------------

    fn handle(&mut self, now: u64, ev: Ev) {
        match ev {
            Ev::Submit(i) => self.submit(now, i),
            Ev::ToWorker { w, frame } => {
                // A stalled worker processes nothing until it wakes; a
                // crashed worker processes nothing ever (the kernel acked
                // the bytes, the process is gone).
                if self.workers[w].crashed {
                    return;
                }
                let wake = self.workers[w].stalled_until;
                if now < wake {
                    self.queue.push(wake, Ev::ToWorker { w, frame });
                    return;
                }
                let msg = Self::decode(&frame);
                self.worker_message(now, w, msg);
            }
            Ev::ToCoord { w, frame } => {
                let msg = Self::decode(&frame);
                self.coord_message(now, w, msg);
            }
            Ev::LinkBroken { w } => {
                // Mirrors reader_loop's Err arm: teardown closure is not
                // a death.
                if !self.stopping {
                    self.mark_dead(now, w, "link closed", false);
                }
            }
            Ev::HeartbeatTick => self.heartbeat_tick(now),
            Ev::Finish { w, id } => self.worker_finish(now, w, id),
            Ev::Crash { w } => self.crash(now, w),
            Ev::StallStart { w, until_us } => {
                if !self.workers[w].crashed {
                    self.workers[w].stalled_until = until_us;
                    self.note(now, format!("fault: w{w} stalls until {until_us}"));
                }
            }
            Ev::BeginDrain => self.begin_drain(now),
        }
    }

    // ---- coordinator ---------------------------------------------------

    /// Mirrors `ClusterEngine::submit` (always `fresh`: the sim's load
    /// has distinct specs, so cache/coalescing — which sit above the
    /// dispatch layer — never engage in production either).
    fn submit(&mut self, now: u64, i: usize) {
        let spec = self.planned[i].clone();
        if self.draining {
            self.audit.refused_admission += 1;
            self.note(now, format!("submit refused (draining): load[{i}]"));
            return;
        }
        if self.outstanding >= self.cfg.queue_capacity.max(1) {
            self.audit.refused_admission += 1;
            self.note(now, format!("submit refused (queue full): load[{i}]"));
            return;
        }
        let id = self.jobs.len() as u64;
        let digest = spec_digest(&spec);
        self.jobs.push(SimJob {
            spec,
            digest,
            state: JobState::Pending,
            attempts: 0,
            attempts_high: 0,
            terminal_transitions: 0,
            record: None,
        });
        self.pending.push_back(id);
        self.outstanding += 1;
        self.note(now, format!("submit id={id} digest={digest:#018x}"));
        self.try_dispatch(now);
    }

    /// Mirrors the dispatcher: drains the pending queue as far as
    /// `protocol::pick_target` allows.
    fn try_dispatch(&mut self, now: u64) {
        while let Some(&id) = self.pending.front() {
            if self.alive.iter().all(|a| !a) {
                self.pending.pop_front();
                self.set_terminal(now, id, JobState::Quarantined("no live workers".into()));
                continue;
            }
            let digest = self.jobs[id as usize].digest;
            let inflight: Vec<usize> = self.dispatched.iter().map(BTreeSet::len).collect();
            let Some(w) =
                protocol::pick_target(digest, &self.alive, &inflight, self.cfg.per_worker_inflight)
            else {
                // Every live worker at its cap: a completion or death
                // will re-trigger dispatch.
                return;
            };
            self.pending.pop_front();
            let job = &mut self.jobs[id as usize];
            job.state = JobState::Dispatched(w);
            job.attempts += 1;
            job.attempts_high = job.attempts_high.max(job.attempts);
            let attempt = job.attempts;
            let spec = job.spec.clone();
            let home = (digest % self.alive.len() as u64) as usize;
            if w != home {
                self.audit.stolen += 1;
            }
            self.dispatched[w].insert(id);
            self.note(now, format!("dispatch id={id} -> w{w} attempt={attempt}"));
            self.send_to_worker(now, w, &Message::Dispatch { id, spec });
        }
    }

    /// Mirrors `reader_loop` message handling.
    fn coord_message(&mut self, now: u64, w: usize, msg: Message) {
        match msg {
            Message::Done { id, record } => {
                self.dispatched[w].remove(&id);
                let Some(job) = self.jobs.get_mut(id as usize) else {
                    return;
                };
                if !matches!(job.state, JobState::Dispatched(_)) {
                    self.note(now, format!("late done id={id} from w{w} ignored"));
                    return;
                }
                job.record = Some(record);
                self.set_terminal(now, id, JobState::Done);
                self.try_dispatch(now);
            }
            Message::Rejected { id, detail } => {
                self.dispatched[w].remove(&id);
                let Some(job) = self.jobs.get(id as usize) else {
                    return;
                };
                if !matches!(job.state, JobState::Dispatched(_)) {
                    return;
                }
                self.set_terminal(now, id, JobState::Rejected(detail));
                self.try_dispatch(now);
            }
            Message::Busy { id } => {
                // The bounced dispatch never executed: give back the
                // charged attempt (unified accounting; see
                // `sdvbs_serve::protocol`).
                self.dispatched[w].remove(&id);
                let Some(job) = self.jobs.get_mut(id as usize) else {
                    return;
                };
                if !matches!(job.state, JobState::Dispatched(_)) {
                    return;
                }
                job.state = JobState::Pending;
                job.attempts = job.attempts.saturating_sub(1);
                self.pending.push_back(id);
                self.audit.busy_bounces += 1;
                self.note(now, format!("busy id={id} from w{w}; requeued"));
                self.try_dispatch(now);
            }
            Message::HeartbeatOk { .. } => {
                // A stale-marked worker's late replies refresh the beat
                // but never resurrect it — exactly production.
                self.last_beat[w] = self.clock.now();
            }
            Message::DrainOk {
                completed,
                rejected,
            } => {
                self.audit.drain_ok.push(w);
                self.alive[w] = false;
                self.note(
                    now,
                    format!("drain_ok from w{w}: completed={completed} rejected={rejected}"),
                );
            }
            Message::Error { message } => {
                self.note(now, format!("worker w{w} error: {message}"));
            }
            _ => {}
        }
    }

    /// Mirrors `ClusterEngine::mark_dead`: idempotent, orphans judged by
    /// the shared policy.
    fn mark_dead(&mut self, now: u64, w: usize, why: &str, stale: bool) {
        if !self.alive[w] {
            return;
        }
        self.alive[w] = false;
        self.audit.deaths.push(Death {
            worker: w,
            at_us: now,
            why: why.to_string(),
            stale,
        });
        self.note(now, format!("worker w{w} declared dead: {why}"));
        let orphans: Vec<u64> = std::mem::take(&mut self.dispatched[w])
            .into_iter()
            .collect();
        let policy = RetryPolicy {
            budget: self.cfg.retry_budget,
        };
        for id in orphans {
            let Some(job) = self.jobs.get(id as usize) else {
                continue;
            };
            if !matches!(job.state, JobState::Dispatched(d) if d == w) {
                continue;
            }
            let attempts = job.attempts;
            match protocol::orphan_disposition(attempts, policy, self.draining) {
                OrphanDisposition::Quarantine => {
                    let detail =
                        format!("quarantined after {attempts} attempts; worker w{w} died mid-run");
                    self.set_terminal(now, id, JobState::Quarantined(detail));
                }
                OrphanDisposition::RejectDraining => {
                    let detail = format!("worker w{w} died during drain");
                    self.set_terminal(now, id, JobState::Rejected(detail));
                }
                OrphanDisposition::Requeue => {
                    self.jobs[id as usize].state = JobState::Pending;
                    self.pending.push_front(id);
                    self.audit.requeues += 1;
                    self.note(now, format!("requeue id={id} (orphan of w{w})"));
                }
            }
        }
        self.try_dispatch(now);
        self.drain_check(now);
    }

    /// Moves a job to a terminal state — the single chokepoint, so the
    /// no-double-terminal invariant is counted exactly.
    fn set_terminal(&mut self, now: u64, id: u64, terminal: JobState) {
        let line = match &terminal {
            JobState::Done => format!("done id={id}"),
            JobState::Rejected(why) => format!("rejected id={id}: {why}"),
            JobState::Quarantined(why) => format!("quarantined id={id}: {why}"),
            other => unreachable!("set_terminal({other:?})"),
        };
        let job = &mut self.jobs[id as usize];
        job.state = terminal;
        job.terminal_transitions += 1;
        self.outstanding = self.outstanding.saturating_sub(1);
        self.note(now, line);
        self.drain_check(now);
    }

    /// Mirrors `heartbeat_loop`'s body: send to the living, then judge
    /// staleness via the shared policy (drain suppresses it).
    fn heartbeat_tick(&mut self, now: u64) {
        if self.stopping {
            return;
        }
        self.hb_seq += 1;
        let seq = self.hb_seq;
        let draining = self.draining;
        for w in 0..self.alive.len() {
            if !self.alive[w] {
                continue;
            }
            self.send_to_worker(now, w, &Message::Heartbeat { seq });
            let age = self.clock.since(self.last_beat[w]);
            if protocol::is_stale(age, Duration::from_micros(self.cfg.liveness_us), draining) {
                self.mark_dead(now, w, "missed heartbeats", true);
            }
        }
        let next = now + self.cfg.heartbeat_us;
        self.queue.push(next, Ev::HeartbeatTick);
    }

    /// Mirrors `begin_drain`: stop admission, reject the undispatched.
    fn begin_drain(&mut self, now: u64) {
        if self.draining {
            return;
        }
        self.draining = true;
        self.audit.drain_started_us = Some(now);
        self.note(now, "drain begins".to_string());
        let pending: Vec<u64> = self.pending.drain(..).collect();
        for id in pending {
            self.set_terminal(
                now,
                id,
                JobState::Rejected("server shutting down before execution".into()),
            );
        }
        self.drain_check(now);
    }

    /// Mirrors the tail of `drain`: once every admitted job is terminal,
    /// raise `stopping` and tell each survivor to drain and exit.
    fn drain_check(&mut self, now: u64) {
        if !self.draining || self.stopping {
            return;
        }
        if !self.jobs.iter().all(|j| j.state.is_terminal()) {
            return;
        }
        self.stopping = true;
        self.audit.drain_stopped_us = Some(now);
        self.note(now, "drain complete; stopping cluster".to_string());
        for w in 0..self.alive.len() {
            if self.alive[w] {
                self.send_to_worker(now, w, &Message::Drain);
            }
        }
    }

    // ---- workers -------------------------------------------------------

    /// Mirrors `serve_coordinator`'s message handling.
    fn worker_message(&mut self, now: u64, w: usize, msg: Message) {
        match msg {
            Message::Dispatch { id, spec } => {
                let full = self.workers[w].outstanding() >= self.cfg.worker_queue.max(1);
                if self.workers[w].draining || full {
                    self.send_to_coord(now, w, &Message::Busy { id });
                    return;
                }
                let exec = self
                    .rng
                    .range(self.cfg.exec_min_us, self.cfg.exec_max_us + 1);
                let worker = &mut self.workers[w];
                if worker.running.len() < self.cfg.worker_slots.max(1) {
                    worker.running.insert(id, now + exec);
                    self.queue.push(now + exec, Ev::Finish { w, id });
                } else {
                    worker.queue.push_back((id, exec));
                }
                // The spec round-tripped the codec; sanity-pin the digest
                // so a codec regression surfaces as a loud sim failure.
                assert_eq!(
                    spec_digest(&spec),
                    self.jobs[id as usize].digest,
                    "spec mutated in transit"
                );
            }
            Message::Heartbeat { seq } => {
                let reply = Message::HeartbeatOk { seq, now_us: now };
                self.send_to_coord(now, w, &reply);
            }
            Message::Drain => {
                let worker = &mut self.workers[w];
                worker.draining = true;
                let queued: Vec<u64> = worker.queue.drain(..).map(|(id, _)| id).collect();
                worker.rejected += queued.len() as u64;
                for id in queued {
                    self.send_to_coord(
                        now,
                        w,
                        &Message::Rejected {
                            id,
                            detail: "worker draining".into(),
                        },
                    );
                }
                if self.workers[w].running.is_empty() {
                    self.send_drain_ok(now, w);
                } else {
                    self.workers[w].drain_ok_pending = true;
                }
            }
            _ => {}
        }
    }

    fn send_drain_ok(&mut self, now: u64, w: usize) {
        let (completed, rejected) = {
            let worker = &self.workers[w];
            (worker.completed, worker.rejected)
        };
        self.send_to_coord(
            now,
            w,
            &Message::DrainOk {
                completed,
                rejected,
            },
        );
    }

    fn worker_finish(&mut self, now: u64, w: usize, id: u64) {
        if self.workers[w].crashed {
            return;
        }
        let wake = self.workers[w].stalled_until;
        if now < wake {
            // The stalled process finishes (and reports) only after it
            // wakes.
            self.queue.push(wake, Ev::Finish { w, id });
            return;
        }
        if self.workers[w].running.remove(&id).is_none() {
            return;
        }
        self.workers[w].completed += 1;
        let record = self.synthesize_record(id);
        self.send_to_coord(
            now,
            w,
            &Message::Done {
                id,
                record: Box::new(record),
            },
        );
        // Promote the next queued job into the freed slot.
        if let Some((next_id, exec)) = self.workers[w].queue.pop_front() {
            self.workers[w].running.insert(next_id, now + exec);
            self.queue.push(now + exec, Ev::Finish { w, id: next_id });
        }
        if self.workers[w].drain_ok_pending && self.workers[w].running.is_empty() {
            self.workers[w].drain_ok_pending = false;
            self.send_drain_ok(now, w);
        }
    }

    fn crash(&mut self, now: u64, w: usize) {
        let worker = &mut self.workers[w];
        if worker.crashed {
            return;
        }
        worker.crashed = true;
        worker.queue.clear();
        worker.running.clear();
        self.note(now, format!("fault: w{w} crashes"));
        // The peer's OS tears the connection down; the coordinator's
        // reader observes it one propagation delay later.
        let at = self.net.delivery(&mut self.rng, now, Dir::ToCoord(w));
        self.queue.push(at, Ev::LinkBroken { w });
    }

    /// A `Done` record a real worker would produce: the sim executes
    /// nothing, but every field the wire schema and store care about is
    /// populated and survives the codec round trip.
    fn synthesize_record(&self, id: u64) -> RunRecord {
        let job = &self.jobs[id as usize];
        let exec_ms = self.cfg.exec_min_us as f64 / 1e3;
        RunRecord {
            job_id: id,
            benchmark: job.spec.benchmark.clone(),
            size: size_label(job.spec.size),
            policy: policy_label(job.spec.policy),
            threads: 1,
            seed: job.spec.seed,
            iterations: job.spec.iterations,
            status: RunStatus::Completed,
            times_ms: vec![exec_ms],
            min_ms: exec_ms,
            p50_ms: exec_ms,
            mean_ms: exec_ms,
            max_ms: exec_ms,
            wall_ms: exec_ms,
            quality: None,
            detail: "simulated execution".into(),
            kernels: Vec::new(),
            non_kernel_percent: 0.0,
            occupancy_mode: "wall-clock".into(),
            host: HostMeta {
                os: "sdvbs-sim".into(),
                cpu: "virtual".into(),
                logical_cpus: 1,
            },
            attempts: job.attempts.max(1),
            injected: Vec::new(),
            quarantined: false,
        }
    }
}
