//! Running, exploring, and replaying simulations.
//!
//! [`run_sim`] executes one seed end to end: plan the load and fault
//! schedule from the seed, run the event loop, check every invariant,
//! and fold the event log into a digest. Two runs of the same
//! [`SimConfig`] produce byte-identical logs and therefore equal digests
//! — that equality *is* the replay guarantee, and `tests/replay.rs` pins
//! it.
//!
//! [`explore`] sweeps a seed range and stops at nothing: every seed runs,
//! every violation is collected, and the report names the first failing
//! seed so `sdvbs-sim replay --seed N` reproduces it exactly.

use crate::faults::{plan, FaultSchedule, FaultSpec};
use crate::invariants::{check, CheckContext};
use crate::model::{JobState, ModelConfig, SimModel};
use crate::net::NetConfig;
use crate::rng::SimRng;
use sdvbs_runner::Job;
use sdvbs_serve::fnv1a;
use std::time::Duration;

/// Everything that determines a simulated run. Two equal configs give
/// bit-identical runs.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The seed: load, faults, latency draws, execution times.
    pub seed: u64,
    /// Simulated duration before the drain begins.
    pub duration: Duration,
    /// Allowed fault kinds.
    pub faults: FaultSpec,
    /// Jobs submitted per simulated second.
    pub jobs_per_sec: u64,
    /// Cluster shape and timing.
    pub model: ModelConfig,
}

impl SimConfig {
    /// A run of `duration` over the default cluster shape.
    pub fn new(seed: u64, duration: Duration, faults: FaultSpec) -> Self {
        SimConfig {
            seed,
            duration,
            faults,
            jobs_per_sec: 3,
            model: ModelConfig::default(),
        }
    }
}

/// Outcome tallies for one run.
#[derive(Debug, Clone, Default)]
pub struct SimStats {
    /// Jobs admitted by the coordinator.
    pub admitted: u64,
    /// Jobs completed with a record.
    pub completed: u64,
    /// Jobs rejected (drain or worker-side).
    pub rejected: u64,
    /// Jobs quarantined.
    pub quarantined: u64,
    /// Submissions refused at admission.
    pub refused_admission: u64,
    /// Orphan requeues across worker deaths.
    pub requeues: u64,
    /// `Busy` bounces.
    pub busy_bounces: u64,
    /// Dispatches stolen off the home shard.
    pub stolen: u64,
    /// Worker deaths declared (stale + link).
    pub deaths: u64,
    /// Deaths declared by heartbeat staleness.
    pub stale_deaths: u64,
}

/// One finished run.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// The seed that produced it.
    pub seed: u64,
    /// FNV-1a over the event log: the replay fingerprint.
    pub digest: u64,
    /// Final virtual time (µs).
    pub end_us: u64,
    /// Outcome tallies.
    pub stats: SimStats,
    /// Invariant violations (empty = clean run).
    pub violations: Vec<String>,
    /// The deterministic event log.
    pub log: Vec<String>,
    /// The fault schedule the seed planned.
    pub schedule: FaultSchedule,
}

/// Builds the seeded job load: arrival times across 95% of the run —
/// the tail deliberately overlaps the drain so drain-time rejection and
/// in-flight-completion sequencing get exercised — with specs drawn
/// over the benchmark names.
fn plan_load(rng: &mut SimRng, cfg: &SimConfig) -> Vec<(u64, Job)> {
    const BENCHES: &[&str] = &[
        "disparity",
        "tracking",
        "mser",
        "sift",
        "stitch",
        "svm",
        "texture_synthesis",
    ];
    let duration_us = cfg.duration.as_micros() as u64;
    let count = (cfg.duration.as_secs().max(1)) * cfg.jobs_per_sec.max(1);
    let mut load = Vec::with_capacity(count as usize);
    for i in 0..count {
        let at = rng.range(0, (duration_us * 19 / 20).max(1));
        let bench = BENCHES[rng.range(0, BENCHES.len() as u64) as usize];
        let spec = Job::new(
            bench,
            sdvbs_core::InputSize::Sqcif,
            sdvbs_core::ExecPolicy::Serial,
            cfg.seed.wrapping_mul(1000).wrapping_add(i),
            1,
        );
        load.push((at, spec));
    }
    load.sort_by_key(|&(at, _)| at);
    load
}

/// Runs one seed end to end.
pub fn run_sim(cfg: &SimConfig) -> SimOutcome {
    let duration_us = cfg.duration.as_micros() as u64;
    let mut rng = SimRng::new(cfg.seed);
    let schedule = plan(
        cfg.faults,
        &mut rng,
        cfg.model.workers,
        duration_us,
        cfg.model.liveness_us,
    );
    let load = plan_load(&mut rng, cfg);
    let net = NetConfig {
        latency_min_us: 500,
        latency_max_us: if schedule.reorder { 80_000 } else { 5_000 },
    };
    let mut model = SimModel::new(cfg.model.clone(), rng, net, &schedule, load, duration_us);
    // Horizon: the drain plus every straggler (partition heals, stalls,
    // full retry chains) must quiesce well inside this.
    let horizon_us = duration_us + 4 * cfg.model.liveness_us + 60_000_000;
    let end_us = model.run(horizon_us);
    let events_left = model.events_left();
    let ctx = CheckContext {
        schedule: &schedule,
        liveness_us: cfg.model.liveness_us,
        retry_budget: cfg.model.retry_budget,
        events_left,
        end_us,
        horizon_us,
    };
    let violations = check(&model, &ctx);
    let mut stats = SimStats {
        admitted: model.jobs().len() as u64,
        refused_admission: model.audit.refused_admission,
        requeues: model.audit.requeues,
        busy_bounces: model.audit.busy_bounces,
        stolen: model.audit.stolen,
        deaths: model.audit.deaths.len() as u64,
        stale_deaths: model.audit.deaths.iter().filter(|d| d.stale).count() as u64,
        ..SimStats::default()
    };
    for job in model.jobs() {
        match job.state {
            JobState::Done => stats.completed += 1,
            JobState::Rejected(_) => stats.rejected += 1,
            JobState::Quarantined(_) => stats.quarantined += 1,
            _ => {}
        }
    }
    let mut preimage = Vec::new();
    for line in &model.log {
        preimage.extend_from_slice(line.as_bytes());
        preimage.push(b'\n');
    }
    SimOutcome {
        seed: cfg.seed,
        digest: fnv1a(&preimage),
        end_us,
        stats,
        violations,
        log: model.log.clone(),
        schedule,
    }
}

/// One seed's row in an exploration report.
#[derive(Debug, Clone)]
pub struct SeedResult {
    /// The seed.
    pub seed: u64,
    /// Its replay digest.
    pub digest: u64,
    /// Simulated microseconds covered.
    pub end_us: u64,
    /// Violations, empty when clean.
    pub violations: Vec<String>,
}

/// A whole seed-range sweep.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Per-seed results in seed order.
    pub results: Vec<SeedResult>,
    /// Total simulated microseconds across the sweep.
    pub total_sim_us: u64,
    /// The first failing seed and its violations, if any failed.
    pub first_failure: Option<(u64, Vec<String>)>,
}

/// Runs every seed in `[from, to)` with the given template (seed field
/// overridden per run).
pub fn explore(from: u64, to: u64, template: &SimConfig) -> ExploreReport {
    let mut results = Vec::new();
    let mut total_sim_us = 0u64;
    let mut first_failure = None;
    for seed in from..to {
        let cfg = SimConfig {
            seed,
            ..template.clone()
        };
        let outcome = run_sim(&cfg);
        total_sim_us += outcome.end_us;
        if !outcome.violations.is_empty() && first_failure.is_none() {
            first_failure = Some((seed, outcome.violations.clone()));
        }
        results.push(SeedResult {
            seed,
            digest: outcome.digest,
            end_us: outcome.end_us,
            violations: outcome.violations,
        });
    }
    ExploreReport {
        results,
        total_sim_us,
        first_failure,
    }
}
