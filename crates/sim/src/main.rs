//! The `sdvbs-sim` CLI: explore seed ranges, replay a failing seed.
//!
//! ```text
//! sdvbs-sim explore --seeds 0..50 --faults crash,partition [--workers N]
//!                   [--duration-s S] [--verbose]
//! sdvbs-sim replay  --seed 17 --faults crash,partition [--trace FILE]
//! ```
//!
//! Exit codes: `0` all invariants hold, `2` usage error, `4` an
//! invariant was violated (the offending seed is printed — replaying it
//! reproduces the run bit for bit).

use sdvbs_sim::{explore, run_sim, FaultSpec, SimConfig, SimOutcome};
use std::io::Write;
use std::time::{Duration, Instant};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("explore") => cmd_explore(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("--help" | "-h") | None => {
            print!("{USAGE}");
            0
        }
        Some(other) => {
            eprintln!("unknown command {other:?}\n{USAGE}");
            2
        }
    };
    std::process::exit(code);
}

const USAGE: &str = "\
sdvbs-sim: deterministic simulation of the sdvbs-serve cluster stack

USAGE:
  sdvbs-sim explore --seeds A..B [--faults KINDS] [--workers N]
                    [--duration-s S] [--jobs-per-sec J] [--verbose]
  sdvbs-sim replay  --seed N [--faults KINDS] [--workers N]
                    [--duration-s S] [--jobs-per-sec J] [--trace FILE]

  KINDS   comma list of crash, partition, stall, reorder (default none)

EXIT CODES:
  0  all invariants hold      2  usage error
  4  invariant violated (offending seed printed; replay it to reproduce)
";

struct Opts {
    seeds: (u64, u64),
    faults: FaultSpec,
    workers: usize,
    duration_s: u64,
    jobs_per_sec: u64,
    trace: Option<String>,
    verbose: bool,
}

fn parse_opts(args: &[String], want_range: bool) -> Result<Opts, String> {
    let mut opts = Opts {
        seeds: (0, 1),
        faults: FaultSpec::none(),
        workers: 3,
        duration_s: 20,
        jobs_per_sec: 3,
        trace: None,
        verbose: false,
    };
    let mut saw_seeds = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--seeds" => {
                let v = value("--seeds")?;
                let (a, b) = v
                    .split_once("..")
                    .ok_or_else(|| format!("--seeds wants A..B, got {v:?}"))?;
                let from = a.parse::<u64>().map_err(|e| format!("--seeds: {e}"))?;
                let to = b.parse::<u64>().map_err(|e| format!("--seeds: {e}"))?;
                if to <= from {
                    return Err(format!("--seeds range {v:?} is empty"));
                }
                opts.seeds = (from, to);
                saw_seeds = true;
            }
            "--seed" => {
                let v = value("--seed")?;
                let s = v.parse::<u64>().map_err(|e| format!("--seed: {e}"))?;
                opts.seeds = (s, s + 1);
                saw_seeds = true;
            }
            "--faults" => opts.faults = FaultSpec::parse(&value("--faults")?)?,
            "--workers" => {
                opts.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--duration-s" => {
                opts.duration_s = value("--duration-s")?
                    .parse()
                    .map_err(|e| format!("--duration-s: {e}"))?
            }
            "--jobs-per-sec" => {
                opts.jobs_per_sec = value("--jobs-per-sec")?
                    .parse()
                    .map_err(|e| format!("--jobs-per-sec: {e}"))?
            }
            "--trace" => opts.trace = Some(value("--trace")?),
            "--verbose" => opts.verbose = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if !saw_seeds {
        return Err(if want_range {
            "explore needs --seeds A..B".to_string()
        } else {
            "replay needs --seed N".to_string()
        });
    }
    Ok(opts)
}

fn config(opts: &Opts, seed: u64) -> SimConfig {
    let mut cfg = SimConfig::new(seed, Duration::from_secs(opts.duration_s), opts.faults);
    cfg.jobs_per_sec = opts.jobs_per_sec;
    cfg.model.workers = opts.workers.max(1);
    cfg
}

fn describe(outcome: &SimOutcome) -> String {
    let s = &outcome.stats;
    format!(
        "seed {:>4}  digest {:016x}  sim {:>6.1}s  jobs {} (done {} rejected {} quarantined {})  \
         deaths {} (stale {})  requeues {}  busy {}  stolen {}",
        outcome.seed,
        outcome.digest,
        outcome.end_us as f64 / 1e6,
        s.admitted,
        s.completed,
        s.rejected,
        s.quarantined,
        s.deaths,
        s.stale_deaths,
        s.requeues,
        s.busy_bounces,
        s.stolen,
    )
}

fn cmd_explore(args: &[String]) -> i32 {
    let opts = match parse_opts(args, true) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return 2;
        }
    };
    let (from, to) = opts.seeds;
    let wall = Instant::now();
    let report = explore(from, to, &config(&opts, from));
    let failures = report
        .results
        .iter()
        .filter(|r| !r.violations.is_empty())
        .count();
    if opts.verbose {
        for r in &report.results {
            let mark = if r.violations.is_empty() {
                "ok  "
            } else {
                "FAIL"
            };
            println!(
                "{mark} seed {:>4}  digest {:016x}  sim {:.1}s",
                r.seed,
                r.digest,
                r.end_us as f64 / 1e6
            );
        }
    }
    println!(
        "explored seeds {from}..{to} (faults: {}): {} runs, {:.1} simulated seconds \
         in {:.2}s wall, {failures} failing",
        opts.faults,
        report.results.len(),
        report.total_sim_us as f64 / 1e6,
        wall.elapsed().as_secs_f64(),
    );
    if let Some((seed, violations)) = &report.first_failure {
        eprintln!("first failing seed: {seed}");
        for v in violations {
            eprintln!("  violation: {v}");
        }
        eprintln!(
            "reproduce with: sdvbs-sim replay --seed {seed} --faults {} --workers {} --duration-s {}",
            opts.faults, opts.workers, opts.duration_s
        );
        return 4;
    }
    0
}

fn cmd_replay(args: &[String]) -> i32 {
    let opts = match parse_opts(args, false) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return 2;
        }
    };
    let seed = opts.seeds.0;
    let outcome = run_sim(&config(&opts, seed));
    println!("{}", describe(&outcome));
    if !outcome.schedule.crashes.is_empty()
        || !outcome.schedule.stalls.is_empty()
        || !outcome.schedule.partitions.is_empty()
    {
        println!("fault schedule: {:?}", outcome.schedule);
    }
    if let Some(path) = &opts.trace {
        match write_trace(path, &outcome) {
            Ok(lines) => println!("wrote {lines} event-log lines to {path}"),
            Err(e) => {
                eprintln!("writing {path}: {e}");
                return 2;
            }
        }
    }
    if !outcome.violations.is_empty() {
        eprintln!("seed {seed} violates invariants:");
        for v in &outcome.violations {
            eprintln!("  violation: {v}");
        }
        return 4;
    }
    0
}

/// Writes the deterministic event log, one line per event, with a
/// header naming the seed and digest so a trace file is self-describing.
fn write_trace(path: &str, outcome: &SimOutcome) -> Result<usize, std::io::Error> {
    let mut f = std::fs::File::create(path)?;
    writeln!(
        f,
        "# sdvbs-sim seed={} digest={:016x} end_us={}",
        outcome.seed, outcome.digest, outcome.end_us
    )?;
    for line in &outcome.log {
        writeln!(f, "{line}")?;
    }
    Ok(outcome.log.len())
}
