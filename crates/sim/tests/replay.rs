//! The replay guarantee: a seed is a complete reproduction recipe.
//!
//! `run_sim` must be a pure function of its `SimConfig` — same seed,
//! same config, byte-identical event log and digest. That equality is
//! what makes "first failing seed: N" from an exploration actionable:
//! `sdvbs-sim replay --seed N` re-executes the exact run that failed.

use sdvbs_sim::{explore, run_sim, FaultSpec, SimConfig};
use std::time::Duration;

fn cfg(seed: u64, faults: &str) -> SimConfig {
    SimConfig::new(
        seed,
        Duration::from_secs(15),
        FaultSpec::parse(faults).expect("valid fault spec"),
    )
}

#[test]
fn same_seed_replays_bit_identically() {
    for faults in [
        "none",
        "crash",
        "crash,partition",
        "stall,reorder",
        "crash,partition,stall,reorder",
    ] {
        let a = run_sim(&cfg(7, faults));
        let b = run_sim(&cfg(7, faults));
        assert_eq!(a.digest, b.digest, "digest diverged under faults={faults}");
        assert_eq!(
            a.end_us, b.end_us,
            "end time diverged under faults={faults}"
        );
        assert_eq!(a.log, b.log, "event log diverged under faults={faults}");
    }
}

#[test]
fn different_seeds_diverge() {
    let digests: Vec<u64> = (0..8)
        .map(|s| run_sim(&cfg(s, "crash,partition,stall")).digest)
        .collect();
    let mut uniq = digests.clone();
    uniq.sort_unstable();
    uniq.dedup();
    assert_eq!(
        uniq.len(),
        digests.len(),
        "distinct seeds collided on a digest: {digests:016x?}"
    );
}

#[test]
fn fault_spec_changes_the_run() {
    let quiet = run_sim(&cfg(11, "none"));
    let chaotic = run_sim(&cfg(11, "crash,partition"));
    assert_ne!(
        quiet.digest, chaotic.digest,
        "enabling faults must change the run"
    );
    assert!(quiet.stats.deaths == 0, "faultless run declared a death");
}

#[test]
fn exploration_is_deterministic() {
    // The whole sweep replays: per-seed digests from two explorations of
    // the same range are identical, so a CI failure on seed N is the
    // same run a developer replays locally.
    let template = cfg(0, "crash,partition,stall");
    let a = explore(0, 6, &template);
    let b = explore(0, 6, &template);
    let da: Vec<u64> = a.results.iter().map(|r| r.digest).collect();
    let db: Vec<u64> = b.results.iter().map(|r| r.digest).collect();
    assert_eq!(da, db);
    assert_eq!(a.total_sim_us, b.total_sim_us);
}
