//! Invariant coverage: the acceptance-gate exploration plus targeted
//! scenarios the seed planner reaches only rarely.
//!
//! The headline test is the ISSUE acceptance criterion: at least 50
//! seeds of 20 simulated seconds each — over 1000 simulated seconds —
//! under crash, partition, and stall faults, with zero invariant
//! violations. The targeted tests construct fault schedules by hand to
//! pin behaviors a random sweep can miss: full retry-budget exhaustion
//! and the all-workers-dead quarantine path.

use sdvbs_core::{ExecPolicy, InputSize};
use sdvbs_runner::Job;
use sdvbs_sim::{
    check, explore, run_sim, CheckContext, FaultSchedule, FaultSpec, JobState, ModelConfig,
    NetConfig, SimConfig, SimModel, SimRng,
};
use std::time::Duration;

#[test]
fn fifty_seeds_of_chaos_hold_every_invariant() {
    let template = SimConfig::new(
        0,
        Duration::from_secs(20),
        FaultSpec::parse("crash,partition,stall").expect("valid spec"),
    );
    let report = explore(0, 50, &template);
    assert!(
        report.first_failure.is_none(),
        "invariant violation: {:?}",
        report.first_failure
    );
    assert!(
        report.total_sim_us >= 1_000_000_000,
        "sweep covered only {}µs of simulated time; the acceptance \
         criterion needs at least 1000 simulated seconds",
        report.total_sim_us
    );
}

#[test]
fn reorder_interleavings_hold_every_invariant() {
    // Reorder widens the latency window to 80ms, interleaving frames
    // across links far more aggressively than the default 5ms cap.
    let template = SimConfig::new(
        0,
        Duration::from_secs(12),
        FaultSpec::parse("crash,partition,stall,reorder").expect("valid spec"),
    );
    let report = explore(0, 12, &template);
    assert!(
        report.first_failure.is_none(),
        "invariant violation under reorder: {:?}",
        report.first_failure
    );
}

#[test]
fn faultless_runs_complete_everything_without_deaths() {
    for seed in 0..8 {
        let outcome = run_sim(&SimConfig::new(
            seed,
            Duration::from_secs(10),
            FaultSpec::none(),
        ));
        assert!(
            outcome.violations.is_empty(),
            "seed {seed}: {:?}",
            outcome.violations
        );
        assert_eq!(
            outcome.stats.deaths, 0,
            "seed {seed} declared a death with no faults"
        );
        assert_eq!(
            outcome.stats.quarantined, 0,
            "seed {seed} quarantined a job with no faults"
        );
        assert!(outcome.stats.completed > 0, "seed {seed} completed nothing");
    }
}

/// Exhaustion quarantine, pinned exactly: crash every worker in
/// sequence while long jobs are running, so an orphan chain burns the
/// whole retry budget (attempts = budget + 1) and the coordinator
/// reports "quarantined after N attempts" — never a lost job, never an
/// extra execution.
#[test]
fn sequential_crashes_exhaust_the_budget_exactly() {
    let cfg = ModelConfig {
        workers: 3,
        // Jobs run 30 simulated seconds; every crash lands mid-run.
        exec_min_us: 30_000_000,
        exec_max_us: 30_000_000,
        ..ModelConfig::default()
    };
    let schedule = FaultSchedule {
        crashes: vec![(2_000_000, 0), (6_000_000, 1), (10_000_000, 2)],
        stalls: vec![],
        partitions: vec![],
        reorder: false,
    };
    let load: Vec<(u64, Job)> = (0..6)
        .map(|i| {
            (
                0,
                Job::new("disparity", InputSize::Sqcif, ExecPolicy::Serial, i, 1),
            )
        })
        .collect();
    let drain_at = 14_000_000;
    let horizon = drain_at + 4 * cfg.liveness_us + 60_000_000;
    let mut model = SimModel::new(
        cfg.clone(),
        SimRng::new(42),
        NetConfig::default(),
        &schedule,
        load,
        drain_at,
    );
    let end_us = model.run(horizon);
    let ctx = CheckContext {
        schedule: &schedule,
        liveness_us: cfg.liveness_us,
        retry_budget: cfg.retry_budget,
        events_left: model.events_left(),
        end_us,
        horizon_us: horizon,
    };
    let violations = check(&model, &ctx);
    assert!(violations.is_empty(), "violations: {violations:?}");

    let max = cfg.retry_budget + 1;
    let mut exhausted = 0;
    for (id, job) in model.jobs().iter().enumerate() {
        match &job.state {
            JobState::Quarantined(why) => {
                assert!(
                    job.attempts_high <= max,
                    "job {id} began {} executions over the {max} allowed",
                    job.attempts_high
                );
                if why.starts_with("quarantined after") {
                    assert_eq!(
                        job.attempts, max,
                        "job {id} quarantined by exhaustion at {} attempts, not {max}",
                        job.attempts
                    );
                    exhausted += 1;
                }
            }
            other => panic!("job {id}: expected quarantine with all workers dead, got {other:?}"),
        }
    }
    assert!(
        exhausted >= 1,
        "no job exhausted its full retry budget; per-job (state, attempts): {:?}",
        model
            .jobs()
            .iter()
            .map(|j| (format!("{:?}", j.state), j.attempts))
            .collect::<Vec<_>>()
    );
}
