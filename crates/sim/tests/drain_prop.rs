//! Property test for two-phase drain sequencing (satellite of the
//! deterministic-simulation work).
//!
//! Any interleaving of `Drain` against in-flight `Dispatch`/`Done`
//! traffic — drain before the load starts, in the thick of it, or after
//! the last arrival, under any combination of crash/partition/stall/
//! reorder faults — must end with every admitted job `Done` or honestly
//! `Rejected`/`Quarantined` with a reason. Never a silently dropped
//! job, never a double completion, and the drain itself always reaches
//! the stop broadcast.

use proptest::prelude::*;
use sdvbs_core::{ExecPolicy, InputSize};
use sdvbs_runner::Job;
use sdvbs_sim::{
    check, plan, CheckContext, FaultSpec, JobState, ModelConfig, NetConfig, SimModel, SimRng,
};

const BENCHES: &[&str] = &["disparity", "tracking", "mser", "svm"];

fn mk_load(rng: &mut SimRng, count: u64, window_us: u64) -> Vec<(u64, Job)> {
    let mut load = Vec::with_capacity(count as usize);
    for i in 0..count {
        let at = rng.range(0, window_us.max(1));
        let bench = BENCHES[rng.range(0, BENCHES.len() as u64) as usize];
        load.push((
            at,
            Job::new(bench, InputSize::Sqcif, ExecPolicy::Serial, i, 1),
        ));
    }
    load.sort_by_key(|&(at, _)| at);
    load
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn drain_never_loses_or_forges_a_job(
        seed in 0u64..100_000,
        // 0..140% of the load window: drain fires before, during, and
        // well after the submissions it races against.
        drain_pct in 0u64..140,
        count in 1u64..40,
        fault_mask in 0u8..16,
    ) {
        let spec = FaultSpec {
            crash: fault_mask & 1 != 0,
            partition: fault_mask & 2 != 0,
            stall: fault_mask & 4 != 0,
            reorder: fault_mask & 8 != 0,
        };
        let cfg = ModelConfig::default();
        let window_us = 6_000_000u64;
        let mut rng = SimRng::new(seed);
        let schedule = plan(spec, &mut rng, cfg.workers, window_us, cfg.liveness_us);
        let load = mk_load(&mut rng, count, window_us);
        let net = NetConfig {
            latency_min_us: 500,
            latency_max_us: if spec.reorder { 80_000 } else { 5_000 },
        };
        let drain_at = window_us * drain_pct / 100;
        let horizon = window_us + 4 * cfg.liveness_us + 60_000_000;
        let mut model = SimModel::new(cfg.clone(), rng, net, &schedule, load, drain_at);
        let end_us = model.run(horizon);
        let ctx = CheckContext {
            schedule: &schedule,
            liveness_us: cfg.liveness_us,
            retry_budget: cfg.retry_budget,
            events_left: model.events_left(),
            end_us,
            horizon_us: horizon,
        };
        let violations = check(&model, &ctx);
        prop_assert!(
            violations.is_empty(),
            "seed {} drain_pct {} faults {:#06b}: {:?}",
            seed, drain_pct, fault_mask, violations
        );
        for (id, job) in model.jobs().iter().enumerate() {
            prop_assert_eq!(
                job.terminal_transitions, 1,
                "job {} finished {} times", id, job.terminal_transitions
            );
            match &job.state {
                JobState::Done => prop_assert!(
                    job.record.is_some(),
                    "job {} done without a run record", id
                ),
                JobState::Rejected(why) | JobState::Quarantined(why) => prop_assert!(
                    !why.is_empty(),
                    "job {} failed without a stated reason", id
                ),
                other => prop_assert!(
                    false,
                    "seed {}: job {} silently dropped in state {:?}", seed, id, other
                ),
            }
        }
    }
}
