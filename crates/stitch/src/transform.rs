//! 2-D affine transforms.

use std::fmt;

/// An affine map `p' = M p + t`, stored as
/// `[m00, m01, tx, m10, m11, ty]` so that
/// `x' = m00·x + m01·y + tx` and `y' = m10·x + m11·y + ty`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Affine {
    coeffs: [f64; 6],
}

impl Affine {
    /// The identity transform.
    pub fn identity() -> Self {
        Affine {
            coeffs: [1.0, 0.0, 0.0, 0.0, 1.0, 0.0],
        }
    }

    /// Builds from the six coefficients `[m00, m01, tx, m10, m11, ty]`.
    pub fn from_coeffs(coeffs: [f64; 6]) -> Self {
        Affine { coeffs }
    }

    /// Pure translation.
    pub fn translation(tx: f64, ty: f64) -> Self {
        Affine {
            coeffs: [1.0, 0.0, tx, 0.0, 1.0, ty],
        }
    }

    /// Rotation by `angle` radians about `(cx, cy)` followed by a
    /// translation `(tx, ty)`.
    pub fn rotation_about(angle: f64, cx: f64, cy: f64, tx: f64, ty: f64) -> Self {
        let (s, c) = angle.sin_cos();
        Affine {
            coeffs: [
                c,
                -s,
                -c * cx + s * cy + cx + tx,
                s,
                c,
                -s * cx - c * cy + cy + ty,
            ],
        }
    }

    /// The raw coefficients `[m00, m01, tx, m10, m11, ty]`.
    pub fn coeffs(&self) -> [f64; 6] {
        self.coeffs
    }

    /// Applies the transform to a point.
    pub fn apply(&self, x: f64, y: f64) -> (f64, f64) {
        let c = &self.coeffs;
        (c[0] * x + c[1] * y + c[2], c[3] * x + c[4] * y + c[5])
    }

    /// Inverse transform.
    ///
    /// Returns `None` if the linear part is singular.
    pub fn inverse(&self) -> Option<Affine> {
        let c = &self.coeffs;
        let det = c[0] * c[4] - c[1] * c[3];
        if det.abs() < 1e-12 {
            return None;
        }
        let inv_det = 1.0 / det;
        let m00 = c[4] * inv_det;
        let m01 = -c[1] * inv_det;
        let m10 = -c[3] * inv_det;
        let m11 = c[0] * inv_det;
        Some(Affine {
            coeffs: [
                m00,
                m01,
                -(m00 * c[2] + m01 * c[5]),
                m10,
                m11,
                -(m10 * c[2] + m11 * c[5]),
            ],
        })
    }

    /// Composition `self ∘ other` (apply `other` first).
    pub fn compose(&self, other: &Affine) -> Affine {
        let a = &self.coeffs;
        let b = &other.coeffs;
        Affine {
            coeffs: [
                a[0] * b[0] + a[1] * b[3],
                a[0] * b[1] + a[1] * b[4],
                a[0] * b[2] + a[1] * b[5] + a[2],
                a[3] * b[0] + a[4] * b[3],
                a[3] * b[1] + a[4] * b[4],
                a[3] * b[2] + a[4] * b[5] + a[5],
            ],
        }
    }

    /// Maximum absolute coefficient difference to another transform
    /// (translation terms weighted as-is, so this is an error in pixels
    /// for the translation and dimensionless for the linear part).
    pub fn max_coeff_diff(&self, other: &Affine) -> f64 {
        self.coeffs
            .iter()
            .zip(&other.coeffs)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl fmt::Display for Affine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = &self.coeffs;
        write!(
            f,
            "[{:+.4} {:+.4} {:+.2}; {:+.4} {:+.4} {:+.2}]",
            c[0], c[1], c[2], c[3], c[4], c[5]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_noop() {
        let t = Affine::identity();
        assert_eq!(t.apply(3.5, -2.0), (3.5, -2.0));
    }

    #[test]
    fn translation_moves_points() {
        let t = Affine::translation(2.0, -1.0);
        assert_eq!(t.apply(1.0, 1.0), (3.0, 0.0));
    }

    #[test]
    fn rotation_about_center_fixes_center() {
        let t = Affine::rotation_about(0.7, 5.0, 7.0, 0.0, 0.0);
        let (x, y) = t.apply(5.0, 7.0);
        assert!((x - 5.0).abs() < 1e-12 && (y - 7.0).abs() < 1e-12);
        // 90 degrees about origin maps (1,0) to (0,1).
        let r = Affine::rotation_about(std::f64::consts::FRAC_PI_2, 0.0, 0.0, 0.0, 0.0);
        let (x, y) = r.apply(1.0, 0.0);
        assert!(x.abs() < 1e-12 && (y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_roundtrips() {
        let t = Affine::rotation_about(0.3, 10.0, 20.0, 5.0, -3.0);
        let inv = t.inverse().unwrap();
        let (x, y) = t.apply(4.0, 9.0);
        let (bx, by) = inv.apply(x, y);
        assert!((bx - 4.0).abs() < 1e-10 && (by - 9.0).abs() < 1e-10);
    }

    #[test]
    fn singular_transform_has_no_inverse() {
        let t = Affine::from_coeffs([1.0, 2.0, 0.0, 2.0, 4.0, 0.0]);
        assert!(t.inverse().is_none());
    }

    #[test]
    fn compose_applies_right_first() {
        let shift = Affine::translation(1.0, 0.0);
        let rot = Affine::rotation_about(std::f64::consts::FRAC_PI_2, 0.0, 0.0, 0.0, 0.0);
        // rot ∘ shift: (0,0) -> (1,0) -> (0,1).
        let (x, y) = rot.compose(&shift).apply(0.0, 0.0);
        assert!(x.abs() < 1e-12 && (y - 1.0).abs() < 1e-12);
        // shift ∘ rot: (0,0) -> (0,0) -> (1,0).
        let (x, y) = shift.compose(&rot).apply(0.0, 0.0);
        assert!((x - 1.0).abs() < 1e-12 && y.abs() < 1e-12);
    }

    #[test]
    fn coeff_diff_measures_worst_term() {
        let a = Affine::identity();
        let b = Affine::translation(0.0, 3.0);
        assert_eq!(a.max_coeff_diff(&b), 3.0);
    }
}
