//! Patch features: Harris corners + ANMS selection + normalized patch
//! descriptors (MOPS-style).

use sdvbs_image::Image;
#[cfg(test)]
use sdvbs_kernels::conv::gaussian_blur;
#[cfg(test)]
use sdvbs_kernels::features::harris_response;
use sdvbs_kernels::features::{anms, local_maxima, Feature};

/// A selected feature with its sampled, bias/gain-normalized patch
/// descriptor.
#[derive(Debug, Clone, PartialEq)]
pub struct PatchFeature {
    /// The corner location and score.
    pub feature: Feature,
    /// Descriptor: an 8×8 patch sampled with 2-pixel spacing from the
    /// blurred image, mean-subtracted and L2-normalized.
    pub descriptor: Vec<f32>,
}

/// Extracts up to `keep` patch features.
///
/// `response` is the precomputed Harris response of `smooth` (a blurred
/// copy of the input); both are produced by the pipeline's `Convolution`
/// kernel so this function can be timed as the `ANMS` kernel.
pub fn extract_patch_features(
    smooth: &Image,
    response: &Image,
    keep: usize,
    robustness: f32,
) -> Vec<PatchFeature> {
    const SPACING: usize = 2;
    const GRID: usize = 8;
    let margin = GRID / 2 * SPACING + 1;
    let threshold = response.max() * 1e-4;
    let candidates = local_maxima(response, threshold, margin);
    let selected = anms(&candidates, keep, robustness);
    selected
        .into_iter()
        .filter_map(|feature| {
            let cx = feature.x;
            let cy = feature.y;
            let mut desc = Vec::with_capacity(GRID * GRID);
            for gy in 0..GRID {
                for gx in 0..GRID {
                    let sx = cx + ((gx as f32) - (GRID as f32 - 1.0) / 2.0) * SPACING as f32;
                    let sy = cy + ((gy as f32) - (GRID as f32 - 1.0) / 2.0) * SPACING as f32;
                    desc.push(smooth.sample_bilinear(sx, sy));
                }
            }
            // Bias/gain normalization.
            let mean: f32 = desc.iter().sum::<f32>() / desc.len() as f32;
            for v in &mut desc {
                *v -= mean;
            }
            let norm: f32 = desc.iter().map(|v| v * v).sum::<f32>().sqrt();
            if norm < 1e-6 {
                return None; // featureless patch
            }
            for v in &mut desc {
                *v /= norm;
            }
            Some(PatchFeature {
                feature,
                descriptor: desc,
            })
        })
        .collect()
}

/// Convenience used by tests: blur + Harris + extraction in one call.
#[cfg(test)]
pub(crate) fn features_of(img: &Image, keep: usize) -> Vec<PatchFeature> {
    let smooth = gaussian_blur(img, 1.5);
    let response = harris_response(&smooth, 2);
    extract_patch_features(&smooth, &response, keep, 1.1)
}

/// Squared L2 distance between two descriptors.
pub(crate) fn descriptor_distance(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdvbs_synth::textured_image;

    #[test]
    fn descriptors_are_normalized() {
        let img = textured_image(96, 96, 4);
        let feats = features_of(&img, 50);
        assert!(feats.len() >= 20, "only {} features", feats.len());
        for f in &feats {
            assert_eq!(f.descriptor.len(), 64);
            let norm: f32 = f.descriptor.iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!((norm - 1.0).abs() < 1e-4);
            let mean: f32 = f.descriptor.iter().sum::<f32>() / 64.0;
            assert!(mean.abs() < 1e-4);
        }
    }

    #[test]
    fn shifted_image_gives_matching_descriptors() {
        use sdvbs_synth::frame_pair;
        let (a, b) = frame_pair(96, 96, 9, 6.0, 0.0);
        let fa = features_of(&a, 60);
        let fb = features_of(&b, 60);
        // For each feature in a, the nearest descriptor in b should sit at
        // (x+6, y) for most features.
        let mut good = 0;
        let mut total = 0;
        for f in &fa {
            let mut best = f32::INFINITY;
            let mut best_pos = (0.0f32, 0.0f32);
            for g in &fb {
                let d = descriptor_distance(&f.descriptor, &g.descriptor);
                if d < best {
                    best = d;
                    best_pos = (g.feature.x, g.feature.y);
                }
            }
            total += 1;
            if (best_pos.0 - f.feature.x - 6.0).abs() < 2.0
                && (best_pos.1 - f.feature.y).abs() < 2.0
            {
                good += 1;
            }
        }
        assert!(good * 2 > total, "{good}/{total} descriptor matches");
    }

    #[test]
    fn flat_image_yields_no_features() {
        let img = Image::filled(64, 64, 50.0);
        assert!(features_of(&img, 50).is_empty());
    }
}
