//! The end-to-end stitching pipeline.

use crate::descriptor::{descriptor_distance, extract_patch_features};
use crate::ransac::{ransac_refit, ransac_sample, RansacEstimate};
use crate::transform::Affine;
use sdvbs_image::Image;
use sdvbs_kernels::conv::gaussian_blur;
use sdvbs_kernels::features::harris_response;
use sdvbs_profile::Profiler;
use std::error::Error;
use std::fmt;

/// Stitching configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StitchConfig {
    /// Features kept per image after ANMS.
    pub features: usize,
    /// Lowe-style ratio-test threshold for descriptor matches.
    pub match_ratio: f32,
    /// RANSAC iteration budget.
    pub ransac_iterations: usize,
    /// Inlier tolerance in pixels.
    pub inlier_tolerance: f64,
    /// Minimum inliers for a trusted alignment.
    pub min_inliers: usize,
    /// Calibration blur sigma.
    pub sigma: f32,
    /// RANSAC seed.
    pub seed: u64,
}

impl Default for StitchConfig {
    fn default() -> Self {
        StitchConfig {
            features: 150,
            match_ratio: 0.8,
            ransac_iterations: 600,
            inlier_tolerance: 2.0,
            min_inliers: 8,
            sigma: 1.5,
            seed: 7,
        }
    }
}

/// Errors from the stitching pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StitchError {
    /// One of the images produced too few features to attempt matching.
    TooFewFeatures {
        /// Features found in the weaker image.
        found: usize,
    },
    /// Matching produced too few correspondences.
    TooFewMatches {
        /// Correspondences after the ratio test.
        found: usize,
    },
    /// RANSAC failed to find a consistent alignment.
    NoAlignment,
    /// An input image is below the structural minimum side length.
    DimensionTooSmall {
        /// Minimum side the pipeline requires.
        min: usize,
        /// The smaller offending side.
        side: usize,
    },
    /// An input image contains NaN or infinite pixels.
    NonFinitePixels,
}

impl fmt::Display for StitchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StitchError::TooFewFeatures { found } => {
                write!(f, "too few features to stitch ({found})")
            }
            StitchError::TooFewMatches { found } => {
                write!(f, "too few descriptor matches ({found})")
            }
            StitchError::NoAlignment => write!(f, "ransac found no consistent alignment"),
            StitchError::DimensionTooSmall { min, side } => {
                write!(f, "image side {side} below the {min}-pixel minimum")
            }
            StitchError::NonFinitePixels => write!(f, "images contain non-finite pixels"),
        }
    }
}

impl Error for StitchError {}

/// The stitched output.
#[derive(Debug, Clone)]
pub struct StitchResult {
    /// Transform mapping image-`b` coordinates into image-`a` coordinates.
    pub b_to_a: Affine,
    /// The blended panorama (in an enlarged canvas whose origin is offset
    /// by [`StitchResult::canvas_offset`] relative to image `a`).
    pub panorama: Image,
    /// Offset of the canvas origin in `a` coordinates `(x, y)`.
    pub canvas_offset: (f64, f64),
    /// Ratio-test matches fed to RANSAC.
    pub matches: usize,
    /// RANSAC inliers supporting the final transform.
    pub inliers: usize,
}

/// Stitches image `b` onto image `a`.
///
/// Kernel attribution: `Convolution` (calibration filtering + Harris),
/// `ANMS` (feature selection + descriptors), `FeatureMatch`
/// (nearest-neighbor + ratio test), `LSSolver` (RANSAC model fitting),
/// `SVD` (inlier refit), `Blend` (warp + feathered blend).
///
/// # Errors
///
/// * [`StitchError::TooFewFeatures`] / [`StitchError::TooFewMatches`] when
///   the images lack texture or overlap.
/// * [`StitchError::NoAlignment`] when RANSAC cannot find a consistent
///   transform.
/// * [`StitchError::DimensionTooSmall`] / [`StitchError::NonFinitePixels`]
///   for degenerate inputs (below 16 pixels on a side, or NaN-poisoned).
pub fn stitch(
    a: &Image,
    b: &Image,
    cfg: &StitchConfig,
    prof: &mut Profiler,
) -> Result<StitchResult, StitchError> {
    let side = a.width().min(a.height()).min(b.width()).min(b.height());
    if side < 16 {
        return Err(StitchError::DimensionTooSmall { min: 16, side });
    }
    if !a.all_finite() || !b.all_finite() {
        return Err(StitchError::NonFinitePixels);
    }
    // Calibration filtering + corner responses.
    let (smooth_a, resp_a, smooth_b, resp_b) = prof.kernel("Convolution", |_| {
        let sa = gaussian_blur(a, cfg.sigma);
        let ra = harris_response(&sa, 2);
        let sb = gaussian_blur(b, cfg.sigma);
        let rb = harris_response(&sb, 2);
        (sa, ra, sb, rb)
    });
    // Feature selection + descriptors.
    let (fa, fb) = prof.kernel("ANMS", |_| {
        (
            extract_patch_features(&smooth_a, &resp_a, cfg.features, 1.1),
            extract_patch_features(&smooth_b, &resp_b, cfg.features, 1.1),
        )
    });
    let weakest = fa.len().min(fb.len());
    if weakest < 8 {
        return Err(StitchError::TooFewFeatures { found: weakest });
    }
    // Descriptor matching with ratio test (b -> a).
    let matches: Vec<(usize, usize)> = prof.kernel("FeatureMatch", |_| {
        let mut out = Vec::new();
        for (ib, pb) in fb.iter().enumerate() {
            let mut best = f32::INFINITY;
            let mut second = f32::INFINITY;
            let mut best_ia = usize::MAX;
            for (ia, pa) in fa.iter().enumerate() {
                let d = descriptor_distance(&pb.descriptor, &pa.descriptor);
                if d < best {
                    second = best;
                    best = d;
                    best_ia = ia;
                } else if d < second {
                    second = d;
                }
            }
            if best_ia != usize::MAX && best < cfg.match_ratio * cfg.match_ratio * second {
                out.push((ib, best_ia));
            }
        }
        out
    });
    if matches.len() < cfg.min_inliers.max(3) {
        return Err(StitchError::TooFewMatches {
            found: matches.len(),
        });
    }
    // RANSAC alignment (exact fits = LS Solver; refit = SVD, timed inside).
    let src: Vec<(f64, f64)> = matches
        .iter()
        .map(|&(ib, _)| (fb[ib].feature.x as f64, fb[ib].feature.y as f64))
        .collect();
    let dst: Vec<(f64, f64)> = matches
        .iter()
        .map(|&(_, ia)| (fa[ia].feature.x as f64, fa[ia].feature.y as f64))
        .collect();
    let consensus = prof.kernel("LSSolver", |_| {
        ransac_sample(
            &src,
            &dst,
            cfg.ransac_iterations,
            cfg.inlier_tolerance,
            cfg.seed,
        )
    });
    let estimate: Option<RansacEstimate> = match consensus {
        Some((inliers, iters)) if inliers.len() >= cfg.min_inliers.max(3) => prof
            .kernel("SVD", |_| {
                ransac_refit(&src, &dst, &inliers, cfg.inlier_tolerance, iters)
            }),
        _ => None,
    };
    let Some(estimate) = estimate else {
        return Err(StitchError::NoAlignment);
    };
    // Warp + feathered blend.
    let (panorama, canvas_offset) = prof.kernel("Blend", |_| blend(a, b, &estimate.transform));
    Ok(StitchResult {
        b_to_a: estimate.transform,
        panorama,
        canvas_offset,
        matches: matches.len(),
        inliers: estimate.inliers.len(),
    })
}

/// Computes the panorama canvas, inverse-warps `b`, and feather-blends.
fn blend(a: &Image, b: &Image, b_to_a: &Affine) -> (Image, (f64, f64)) {
    // Canvas bounds: image a plus transformed corners of b.
    let mut min_x = 0.0f64;
    let mut min_y = 0.0f64;
    let mut max_x = a.width() as f64;
    let mut max_y = a.height() as f64;
    for &(cx, cy) in &[
        (0.0, 0.0),
        (b.width() as f64, 0.0),
        (0.0, b.height() as f64),
        (b.width() as f64, b.height() as f64),
    ] {
        let (x, y) = b_to_a.apply(cx, cy);
        min_x = min_x.min(x);
        min_y = min_y.min(y);
        max_x = max_x.max(x);
        max_y = max_y.max(y);
    }
    let w = (max_x - min_x).ceil() as usize + 1;
    let h = (max_y - min_y).ceil() as usize + 1;
    let a_to_b = b_to_a.inverse().unwrap_or_else(Affine::identity);
    let feather = |x: f64, y: f64, w: f64, h: f64| -> f64 {
        // Distance to the nearest border, normalized (0 at edge).
        let d = x.min(w - x).min(y).min(h - y).max(0.0);
        (d / 16.0).min(1.0)
    };
    let img = Image::from_fn(w, h, |px, py| {
        let ax = px as f64 + min_x;
        let ay = py as f64 + min_y;
        // Weight from image a.
        let in_a = ax >= 0.0 && ay >= 0.0 && ax < a.width() as f64 && ay < a.height() as f64;
        let wa = if in_a {
            feather(ax, ay, a.width() as f64, a.height() as f64)
        } else {
            0.0
        };
        // Weight from image b.
        let (bx, by) = a_to_b.apply(ax, ay);
        let in_b = bx >= 0.0 && by >= 0.0 && bx < b.width() as f64 && by < b.height() as f64;
        let wb = if in_b {
            feather(bx, by, b.width() as f64, b.height() as f64)
        } else {
            0.0
        };
        if wa + wb <= 0.0 {
            // Outside both images (or exactly on a border): fall back to
            // hard membership.
            if in_a {
                return a.sample_bilinear(ax as f32, ay as f32);
            }
            if in_b {
                return b.sample_bilinear(bx as f32, by as f32);
            }
            return 0.0;
        }
        let va = if in_a {
            a.sample_bilinear(ax as f32, ay as f32)
        } else {
            0.0
        };
        let vb = if in_b {
            b.sample_bilinear(bx as f32, by as f32)
        } else {
            0.0
        };
        ((wa * va as f64 + wb * vb as f64) / (wa + wb)) as f32
    });
    (img, (min_x, min_y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdvbs_synth::overlapping_pair;

    #[test]
    fn recovers_known_transform() {
        let pair = overlapping_pair(128, 96, 11, 0.04, 12.0, 5.0);
        let mut prof = Profiler::new();
        let result = stitch(&pair.a, &pair.b, &StitchConfig::default(), &mut prof).unwrap();
        let truth = Affine::from_coeffs(pair.b_to_a);
        let diff = result.b_to_a.max_coeff_diff(&truth);
        assert!(
            diff < 1.0,
            "transform error {diff}: got {} want {truth}",
            result.b_to_a
        );
        assert!(result.inliers >= 10, "{} inliers", result.inliers);
    }

    #[test]
    fn pure_translation_panorama_has_expected_size() {
        let pair = overlapping_pair(100, 80, 3, 0.0, 30.0, 0.0);
        let mut prof = Profiler::new();
        let result = stitch(&pair.a, &pair.b, &StitchConfig::default(), &mut prof).unwrap();
        // b maps 30 px to the right of a: canvas ~130 wide.
        assert!(
            (result.panorama.width() as i64 - 131).unsigned_abs() <= 3,
            "panorama width {}",
            result.panorama.width()
        );
        assert!(result.panorama.height() >= 80);
    }

    #[test]
    fn panorama_matches_a_in_overlap_interior() {
        let pair = overlapping_pair(100, 80, 5, 0.0, 20.0, 8.0);
        let mut prof = Profiler::new();
        let result = stitch(&pair.a, &pair.b, &StitchConfig::default(), &mut prof).unwrap();
        let (ox, oy) = result.canvas_offset;
        // Sample interior points of a and compare against the panorama.
        let mut err = 0.0f32;
        let mut n = 0;
        for y in (30..50).step_by(4) {
            for x in (30..70).step_by(4) {
                let px = (x as f64 - ox) as usize;
                let py = (y as f64 - oy) as usize;
                err += (result.panorama.get(px, py) - pair.a.get(x, y)).abs();
                n += 1;
            }
        }
        assert!(
            err / (n as f32) < 12.0,
            "mean blend error {}",
            err / n as f32
        );
    }

    #[test]
    fn featureless_images_error() {
        let flat = Image::filled(100, 80, 7.0);
        let mut prof = Profiler::new();
        assert!(matches!(
            stitch(&flat, &flat, &StitchConfig::default(), &mut prof),
            Err(StitchError::TooFewFeatures { .. })
        ));
    }

    #[test]
    fn unrelated_images_fail_to_align() {
        use sdvbs_synth::textured_image;
        let a = textured_image(96, 72, 1);
        let b = textured_image(96, 72, 999);
        let mut prof = Profiler::new();
        let out = stitch(&a, &b, &StitchConfig::default(), &mut prof);
        assert!(out.is_err(), "unrelated images should not stitch");
    }

    #[test]
    fn kernel_attribution() {
        let pair = overlapping_pair(96, 72, 13, 0.02, 8.0, 2.0);
        let mut prof = Profiler::new();
        prof.run(|p| stitch(&pair.a, &pair.b, &StitchConfig::default(), p).unwrap());
        let rep = prof.report();
        for k in [
            "Convolution",
            "ANMS",
            "FeatureMatch",
            "LSSolver",
            "SVD",
            "Blend",
        ] {
            assert!(rep.occupancy(k).is_some(), "kernel {k} missing");
        }
    }
}
