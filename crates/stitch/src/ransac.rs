//! RANSAC affine estimation from point correspondences — the paper calls
//! out RANSAC as "iterative, heavily computational" with random data
//! access.

use crate::transform::Affine;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sdvbs_matrix::Matrix;

/// The output of RANSAC model fitting.
#[derive(Debug, Clone)]
pub struct RansacEstimate {
    /// The estimated transform mapping source points onto target points.
    pub transform: Affine,
    /// Indices of the inlier correspondences.
    pub inliers: Vec<usize>,
    /// RANSAC iterations actually run.
    pub iterations: usize,
}

/// A `(source, target)` point correspondence.
type Pair = ((f64, f64), (f64, f64));

/// Fits an exact affine transform through three correspondences by solving
/// the 6×6 linear system. Returns `None` for degenerate (collinear)
/// samples.
fn affine_from_three(pairs: &[Pair; 3]) -> Option<Affine> {
    let mut a = Matrix::zeros(6, 6);
    let mut b = vec![0.0; 6];
    for (k, &((xs, ys), (xt, yt))) in pairs.iter().enumerate() {
        let r = 2 * k;
        a[(r, 0)] = xs;
        a[(r, 1)] = ys;
        a[(r, 2)] = 1.0;
        a[(r + 1, 3)] = xs;
        a[(r + 1, 4)] = ys;
        a[(r + 1, 5)] = 1.0;
        b[r] = xt;
        b[r + 1] = yt;
    }
    let lu = a.lu().ok()?;
    let x = lu.solve(&b).ok()?;
    Some(Affine::from_coeffs([x[0], x[1], x[2], x[3], x[4], x[5]]))
}

/// Least-squares affine refit over a set of correspondences, solved
/// through the SVD pseudo-inverse (the paper's "SVD" kernel).
///
/// Returns `None` if fewer than three correspondences are given or the
/// system is rank-deficient.
pub(crate) fn refit_affine_svd(
    src: &[(f64, f64)],
    dst: &[(f64, f64)],
    indices: &[usize],
) -> Option<Affine> {
    if indices.len() < 3 {
        return None;
    }
    let m = indices.len();
    let mut a = Matrix::zeros(2 * m, 6);
    let mut b = vec![0.0; 2 * m];
    for (k, &i) in indices.iter().enumerate() {
        let (xs, ys) = src[i];
        let (xt, yt) = dst[i];
        let r = 2 * k;
        a[(r, 0)] = xs;
        a[(r, 1)] = ys;
        a[(r, 2)] = 1.0;
        a[(r + 1, 3)] = xs;
        a[(r + 1, 4)] = ys;
        a[(r + 1, 5)] = 1.0;
        b[r] = xt;
        b[r + 1] = yt;
    }
    let svd = a.svd().ok()?;
    if svd.rank(1e-10) < 6 {
        return None;
    }
    // x = V Σ⁻¹ Uᵀ b.
    let utb = svd.u().transpose().matvec(&b);
    let scaled: Vec<f64> = utb
        .iter()
        .zip(svd.singular_values())
        .map(|(v, s)| v / s)
        .collect();
    let x = svd.v().matvec(&scaled);
    Some(Affine::from_coeffs([x[0], x[1], x[2], x[3], x[4], x[5]]))
}

/// RANSAC over affine models: repeatedly samples three correspondences,
/// fits exactly (the inner "LS Solver" uses), and keeps the model with the
/// most inliers within `tol` pixels.
///
/// Returns `None` if no model with at least `min_inliers` inliers is
/// found.
///
/// # Panics
///
/// Panics if `src` and `dst` differ in length.
pub fn estimate_affine_ransac(
    src: &[(f64, f64)],
    dst: &[(f64, f64)],
    iterations: usize,
    tol: f64,
    min_inliers: usize,
    seed: u64,
) -> Option<RansacEstimate> {
    let (best_inliers, iters_run) = ransac_sample(src, dst, iterations, tol, seed)?;
    if best_inliers.len() < min_inliers.max(3) {
        return None;
    }
    ransac_refit(src, dst, &best_inliers, tol, iters_run)
}

/// The sampling phase of RANSAC: returns the best consensus set and the
/// iterations run (the pipeline times this as the "LS Solver" kernel).
pub(crate) fn ransac_sample(
    src: &[(f64, f64)],
    dst: &[(f64, f64)],
    iterations: usize,
    tol: f64,
    seed: u64,
) -> Option<(Vec<usize>, usize)> {
    assert_eq!(src.len(), dst.len(), "correspondence lists must align");
    let n = src.len();
    if n < 3 {
        return None;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let tol2 = tol * tol;
    let mut best_inliers: Vec<usize> = Vec::new();
    let mut iters_run = 0usize;
    for _ in 0..iterations {
        iters_run += 1;
        // Three distinct indices.
        let i0 = rng.gen_range(0..n);
        let mut i1 = rng.gen_range(0..n);
        while i1 == i0 {
            i1 = rng.gen_range(0..n);
        }
        let mut i2 = rng.gen_range(0..n);
        while i2 == i0 || i2 == i1 {
            i2 = rng.gen_range(0..n);
        }
        let Some(model) =
            affine_from_three(&[(src[i0], dst[i0]), (src[i1], dst[i1]), (src[i2], dst[i2])])
        else {
            continue;
        };
        let inliers: Vec<usize> = (0..n)
            .filter(|&i| {
                let (px, py) = model.apply(src[i].0, src[i].1);
                let dx = px - dst[i].0;
                let dy = py - dst[i].1;
                dx * dx + dy * dy <= tol2
            })
            .collect();
        if inliers.len() > best_inliers.len() {
            best_inliers = inliers;
            // Early exit when almost everything is an inlier.
            if best_inliers.len() * 10 >= n * 9 {
                break;
            }
        }
    }
    if best_inliers.is_empty() {
        return None;
    }
    Some((best_inliers, iters_run))
}

/// The refit phase of RANSAC: SVD least squares over the consensus set,
/// then a final inlier recount (the pipeline times this as the "SVD"
/// kernel).
pub(crate) fn ransac_refit(
    src: &[(f64, f64)],
    dst: &[(f64, f64)],
    consensus: &[usize],
    tol: f64,
    iterations: usize,
) -> Option<RansacEstimate> {
    let transform = refit_affine_svd(src, dst, consensus)?;
    let tol2 = tol * tol;
    let inliers: Vec<usize> = (0..src.len())
        .filter(|&i| {
            let (px, py) = transform.apply(src[i].0, src[i].1);
            let dx = px - dst[i].0;
            let dy = py - dst[i].1;
            dx * dx + dy * dy <= tol2
        })
        .collect();
    Some(RansacEstimate {
        transform,
        inliers,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> Affine {
        Affine::rotation_about(0.1, 40.0, 30.0, 12.0, -5.0)
    }

    type PointSet = Vec<(f64, f64)>;

    fn correspondences(outliers: usize, seed: u64) -> (PointSet, PointSet) {
        let t = truth();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut src = Vec::new();
        let mut dst = Vec::new();
        for i in 0..40 {
            let x = ((i * 13) % 80) as f64;
            let y = ((i * 29) % 60) as f64;
            src.push((x, y));
            let (tx, ty) = t.apply(x, y);
            // Small inlier noise.
            dst.push((tx + rng.gen_range(-0.3..0.3), ty + rng.gen_range(-0.3..0.3)));
        }
        for k in 0..outliers {
            src.push(((k * 7 % 80) as f64, (k * 11 % 60) as f64));
            dst.push((rng.gen_range(0.0..80.0), rng.gen_range(0.0..60.0)));
        }
        (src, dst)
    }

    #[test]
    fn exact_three_point_fit_recovers_transform() {
        let t = truth();
        let pts = [(0.0, 0.0), (10.0, 3.0), (4.0, 20.0)];
        let pairs = [
            (pts[0], t.apply(pts[0].0, pts[0].1)),
            (pts[1], t.apply(pts[1].0, pts[1].1)),
            (pts[2], t.apply(pts[2].0, pts[2].1)),
        ];
        let fit = affine_from_three(&pairs).unwrap();
        assert!(fit.max_coeff_diff(&t) < 1e-9);
    }

    #[test]
    fn collinear_sample_is_degenerate() {
        let pairs = [
            ((0.0, 0.0), (1.0, 1.0)),
            ((1.0, 1.0), (2.0, 2.0)),
            ((2.0, 2.0), (3.0, 3.0)),
        ];
        assert!(affine_from_three(&pairs).is_none());
    }

    #[test]
    fn ransac_recovers_under_heavy_outliers() {
        let (src, dst) = correspondences(30, 5); // 43% outliers
        let est = estimate_affine_ransac(&src, &dst, 500, 1.5, 10, 7).unwrap();
        assert!(
            est.transform.max_coeff_diff(&truth()) < 0.6,
            "{}",
            est.transform
        );
        assert!(est.inliers.len() >= 35, "{} inliers", est.inliers.len());
    }

    #[test]
    fn clean_data_gives_near_exact_fit() {
        let (src, dst) = correspondences(0, 9);
        let est = estimate_affine_ransac(&src, &dst, 200, 1.5, 10, 3).unwrap();
        assert!(est.transform.max_coeff_diff(&truth()) < 0.3);
        assert_eq!(est.inliers.len(), 40);
    }

    #[test]
    fn svd_refit_matches_exact_on_noiseless_data() {
        let t = truth();
        let src: Vec<(f64, f64)> = (0..12)
            .map(|i| ((i % 4) as f64 * 10.0, (i / 4) as f64 * 15.0))
            .collect();
        let dst: Vec<(f64, f64)> = src.iter().map(|&(x, y)| t.apply(x, y)).collect();
        let idx: Vec<usize> = (0..12).collect();
        let fit = refit_affine_svd(&src, &dst, &idx).unwrap();
        assert!(fit.max_coeff_diff(&t) < 1e-9);
    }

    #[test]
    fn too_few_matches_returns_none() {
        let src = vec![(0.0, 0.0), (1.0, 0.0)];
        let dst = src.clone();
        assert!(estimate_affine_ransac(&src, &dst, 10, 1.0, 3, 1).is_none());
    }

    #[test]
    fn deterministic_in_seed() {
        let (src, dst) = correspondences(10, 3);
        let a = estimate_affine_ransac(&src, &dst, 300, 1.5, 10, 42).unwrap();
        let b = estimate_affine_ransac(&src, &dst, 300, 1.5, 10, 42).unwrap();
        assert_eq!(a.transform, b.transform);
        assert_eq!(a.inliers, b.inliers);
    }
}
