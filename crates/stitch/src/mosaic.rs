//! Multi-image mosaicing: chain pairwise alignments into one panorama
//! (the paper's "segmented panorama or high-resolution image" use case).

use crate::pipeline::{stitch, StitchConfig, StitchError};
use crate::transform::Affine;
use sdvbs_image::Image;
use sdvbs_profile::Profiler;

/// The result of stitching an ordered sequence of overlapping views.
#[derive(Debug, Clone)]
pub struct MosaicResult {
    /// `to_first[k]` maps image `k`'s coordinates into image 0's frame
    /// (`to_first[0]` is the identity).
    pub to_first: Vec<Affine>,
    /// The blended panorama canvas.
    pub panorama: Image,
    /// Offset of the canvas origin in image-0 coordinates.
    pub canvas_offset: (f64, f64),
}

/// Stitches an ordered sequence of overlapping views into one panorama.
///
/// Each consecutive pair is aligned with the full [`stitch`] pipeline (so
/// all kernel scopes report per pair), the pairwise transforms are
/// composed into image 0's frame, and every view is feather-blended onto
/// a common canvas.
///
/// # Errors
///
/// Propagates the pairwise [`StitchError`] of the first pair that fails
/// to align; a sequence of fewer than two images is reported as
/// [`StitchError::TooFewMatches`].
pub fn stitch_sequence(
    images: &[Image],
    cfg: &StitchConfig,
    prof: &mut Profiler,
) -> Result<MosaicResult, StitchError> {
    if images.len() < 2 {
        return Err(StitchError::TooFewMatches { found: 0 });
    }
    // Pairwise alignments, composed into image 0's frame.
    let mut to_first = vec![Affine::identity()];
    for k in 1..images.len() {
        let pair = stitch(&images[k - 1], &images[k], cfg, prof)?;
        let prev = to_first[k - 1];
        to_first.push(prev.compose(&pair.b_to_a));
    }
    // Canvas bounds over all transformed corners.
    let mut min_x = 0.0f64;
    let mut min_y = 0.0f64;
    let mut max_x = 0.0f64;
    let mut max_y = 0.0f64;
    for (img, t) in images.iter().zip(&to_first) {
        for &(cx, cy) in &[
            (0.0, 0.0),
            (img.width() as f64, 0.0),
            (0.0, img.height() as f64),
            (img.width() as f64, img.height() as f64),
        ] {
            let (x, y) = t.apply(cx, cy);
            min_x = min_x.min(x);
            min_y = min_y.min(y);
            max_x = max_x.max(x);
            max_y = max_y.max(y);
        }
    }
    let w = (max_x - min_x).ceil() as usize + 1;
    let h = (max_y - min_y).ceil() as usize + 1;
    let inverses: Vec<Affine> = to_first
        .iter()
        .map(|t| t.inverse().unwrap_or_else(Affine::identity))
        .collect();
    let feather = |x: f64, y: f64, w: f64, h: f64| -> f64 {
        let d = x.min(w - x).min(y).min(h - y).max(0.0);
        (d / 16.0).min(1.0)
    };
    let panorama = prof.kernel("Blend", |_| {
        Image::from_fn(w, h, |px, py| {
            let gx = px as f64 + min_x;
            let gy = py as f64 + min_y;
            let mut acc = 0.0f64;
            let mut wsum = 0.0f64;
            for (img, inv) in images.iter().zip(&inverses) {
                let (lx, ly) = inv.apply(gx, gy);
                let in_img =
                    lx >= 0.0 && ly >= 0.0 && lx < img.width() as f64 && ly < img.height() as f64;
                if !in_img {
                    continue;
                }
                let wgt = feather(lx, ly, img.width() as f64, img.height() as f64).max(1e-4);
                acc += wgt * img.sample_bilinear(lx as f32, ly as f32) as f64;
                wsum += wgt;
            }
            if wsum > 0.0 {
                (acc / wsum) as f32
            } else {
                0.0
            }
        })
    });
    Ok(MosaicResult {
        to_first,
        panorama,
        canvas_offset: (min_x, min_y),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdvbs_synth::textured_image;

    /// Three views of one wide scene, each shifted 40 px right.
    fn three_views() -> (Vec<Image>, f64) {
        let shift = 40.0;
        let big = textured_image(260, 100, 77);
        let views = (0..3)
            .map(|k| Image::from_fn(120, 90, |x, y| big.get(x + k * shift as usize + 8, y + 4)))
            .collect();
        (views, shift)
    }

    #[test]
    fn three_view_translation_mosaic() {
        let (views, shift) = three_views();
        let mut prof = Profiler::new();
        let mosaic = stitch_sequence(&views, &StitchConfig::default(), &mut prof).unwrap();
        // View k maps into view 0's frame at +k*shift in x.
        for (k, t) in mosaic.to_first.iter().enumerate() {
            let truth = Affine::translation(k as f64 * shift, 0.0);
            let diff = t.max_coeff_diff(&truth);
            assert!(diff < 1.5, "view {k}: transform error {diff} ({t})");
        }
        // Canvas spans ~120 + 2*40 = 200 columns.
        assert!(
            (mosaic.panorama.width() as i64 - 201).unsigned_abs() <= 4,
            "panorama width {}",
            mosaic.panorama.width()
        );
        assert!(mosaic.panorama.height() >= 90);
    }

    #[test]
    fn mosaic_content_matches_source_views() {
        let (views, _) = three_views();
        let mut prof = Profiler::new();
        let mosaic = stitch_sequence(&views, &StitchConfig::default(), &mut prof).unwrap();
        let (ox, oy) = mosaic.canvas_offset;
        // Interior of view 0 must appear unchanged in the canvas.
        let mut err = 0.0f32;
        let mut n = 0;
        for y in (25..65).step_by(5) {
            for x in (25..60).step_by(5) {
                let px = (x as f64 - ox) as usize;
                let py = (y as f64 - oy) as usize;
                err += (mosaic.panorama.get(px, py) - views[0].get(x, y)).abs();
                n += 1;
            }
        }
        assert!(
            err / (n as f32) < 10.0,
            "mean canvas error {}",
            err / n as f32
        );
    }

    #[test]
    fn single_image_is_rejected() {
        let mut prof = Profiler::new();
        let img = textured_image(64, 64, 1);
        assert!(matches!(
            stitch_sequence(&[img], &StitchConfig::default(), &mut prof),
            Err(StitchError::TooFewMatches { .. })
        ));
    }

    #[test]
    fn unrelated_middle_image_fails() {
        let (mut views, _) = three_views();
        views[1] = textured_image(120, 90, 999);
        let mut prof = Profiler::new();
        assert!(stitch_sequence(&views, &StitchConfig::default(), &mut prof).is_err());
    }
}
