//! SD-VBS benchmark 8: **Image Stitch** — feature-based image mosaicing.
//!
//! Stitching combines photographs with overlapping fields of view into one
//! panorama. The paper decomposes the benchmark into image calibration
//! (filtering), feature extraction (gradient preprocessing + the **ANMS**
//! adaptive non-maximal suppression kernel), feature matching (the
//! iterative, non-deterministic **RANSAC** kernel), and image blending —
//! with **LS Solver**, **SVD** and **Convolution** as its Figure 3/Table IV
//! kernels.
//!
//! Pipeline:
//!
//! 1. `Convolution` — Gaussian calibration filtering and Harris corner
//!    responses.
//! 2. `ANMS` — spatially adaptive feature selection plus normalized patch
//!    descriptors.
//! 3. `FeatureMatch` — nearest-neighbor descriptor matching with ratio
//!    test.
//! 4. `LSSolver` — RANSAC over exact 3-point affine fits.
//! 5. `SVD` — final inlier refit via SVD pseudo-inverse.
//! 6. `Blend` — inverse warp with bilinear sampling and feather blending.
//!
//! # Examples
//!
//! ```
//! use sdvbs_profile::Profiler;
//! use sdvbs_stitch::{stitch, StitchConfig};
//! use sdvbs_synth::overlapping_pair;
//!
//! let pair = overlapping_pair(128, 96, 3, 0.03, 10.0, 4.0);
//! let mut prof = Profiler::new();
//! let result = stitch(&pair.a, &pair.b, &StitchConfig::default(), &mut prof).unwrap();
//! assert!(result.inliers >= 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod descriptor;
mod mosaic;
mod pipeline;
mod ransac;
mod transform;

pub use descriptor::{extract_patch_features, PatchFeature};
pub use mosaic::{stitch_sequence, MosaicResult};
pub use pipeline::{stitch, StitchConfig, StitchError, StitchResult};
pub use ransac::{estimate_affine_ransac, RansacEstimate};
pub use transform::Affine;
