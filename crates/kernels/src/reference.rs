//! Naive scalar reference kernels.
//!
//! These are the original per-pixel closure implementations (branchy
//! `get_clamped` on every tap) that the vectorized interior/border fast
//! paths in [`crate::conv`] and [`crate::integral`] replaced. They are
//! retained verbatim as the **source of truth for bit-identical
//! equivalence**: the `simd_equivalence` and `border_equivalence` test
//! suites compare every fast-path kernel against these across random
//! sizes, seeds, and [`sdvbs_exec::ExecPolicy`] variants.
//!
//! Nothing in the production pipelines calls these; they exist so the fast
//! paths always have a slow, obviously-correct implementation to answer to.

use crate::integral::IntegralImage;
use sdvbs_image::Image;

/// Naive row convolution: per-pixel clamped taps, ascending tap order.
///
/// # Panics
///
/// Panics if `k` is empty or has even length.
pub fn convolve_rows(img: &Image, k: &[f32]) -> Image {
    assert!(
        !k.is_empty() && k.len() % 2 == 1,
        "kernel must have odd length"
    );
    let half = (k.len() / 2) as isize;
    Image::from_fn(img.width(), img.height(), |x, y| {
        let mut acc = 0.0f32;
        for (i, &kv) in k.iter().enumerate() {
            let sx = x as isize + i as isize - half;
            acc += kv * img.get_clamped(sx, y as isize);
        }
        acc
    })
}

/// Naive column convolution: per-pixel clamped taps, ascending tap order.
///
/// # Panics
///
/// Panics if `k` is empty or has even length.
pub fn convolve_cols(img: &Image, k: &[f32]) -> Image {
    assert!(
        !k.is_empty() && k.len() % 2 == 1,
        "kernel must have odd length"
    );
    let half = (k.len() / 2) as isize;
    Image::from_fn(img.width(), img.height(), |x, y| {
        let mut acc = 0.0f32;
        for (i, &kv) in k.iter().enumerate() {
            let sy = y as isize + i as isize - half;
            acc += kv * img.get_clamped(x as isize, sy);
        }
        acc
    })
}

/// Naive dense 2-D convolution: per-pixel clamped taps in `(ky, kx)` order.
///
/// # Panics
///
/// Panics if the kernel dimensions are even, zero, or don't match `k`'s
/// length.
pub fn convolve_2d(img: &Image, k: &[f32], kw: usize, kh: usize) -> Image {
    assert!(
        kw % 2 == 1 && kh % 2 == 1 && kw > 0 && kh > 0,
        "kernel must be odd-sized"
    );
    assert_eq!(k.len(), kw * kh, "kernel buffer must match dimensions");
    let hw = (kw / 2) as isize;
    let hh = (kh / 2) as isize;
    Image::from_fn(img.width(), img.height(), |x, y| {
        let mut acc = 0.0f32;
        for ky in 0..kh {
            for kx in 0..kw {
                let sx = x as isize + kx as isize - hw;
                let sy = y as isize + ky as isize - hh;
                acc += k[ky * kw + kx] * img.get_clamped(sx, sy);
            }
        }
        acc
    })
}

/// Naive clipped window sum: one asserted [`IntegralImage::sum`] call per
/// pixel (the original "Area Sum" loop).
pub fn area_sum(img: &Image, radius: usize) -> Image {
    let ii = IntegralImage::new(img);
    let w = img.width();
    let h = img.height();
    Image::from_fn(w, h, |x, y| {
        let x0 = x.saturating_sub(radius);
        let y0 = y.saturating_sub(radius);
        let x1 = (x + radius + 1).min(w);
        let y1 = (y + radius + 1).min(h);
        ii.sum(x0, y0, x1 - x0, y1 - y0) as f32
    })
}

/// Naive integral-image build: per-pixel `get` with explicit index math.
pub fn integral_table(img: &Image) -> Vec<f64> {
    let w = img.width();
    let h = img.height();
    let stride = w + 1;
    let mut table = vec![0.0f64; stride * (h + 1)];
    for y in 0..h {
        let mut row_acc = 0.0f64;
        for x in 0..w {
            row_acc += img.get(x, y) as f64;
            table[(y + 1) * stride + x + 1] = table[y * stride + x + 1] + row_acc;
        }
    }
    table
}
