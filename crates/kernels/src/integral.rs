//! Integral images and O(1) window sums — the "Integral Image" and
//! "Area Sum" kernels shared by disparity, tracking, SIFT and face
//! detection.
//!
//! The table build and the windowed-sum consumers are written in
//! row-slice form: whole source and table rows are borrowed once and
//! walked with contiguous iterators, so the inner loops carry no per-pixel
//! bounds checks or coordinate clamping. Window sums over full rows
//! ([`IntegralImage::clipped_window_sums_into`]) split into an interior
//! path (fixed-offset slice reads, autovectorizable) and a thin clipped
//! border path, bit-identical to per-pixel [`IntegralImage::sum`] calls.

use sdvbs_exec::ExecPolicy;
use sdvbs_image::Image;

/// A summed-area table over an image, stored in `f64` to avoid the
/// catastrophic cancellation `f32` accumulation would suffer on CIF-sized
/// frames.
///
/// `sum(x0, y0, w, h)` returns the sum of the pixel rectangle with top-left
/// corner `(x0, y0)` in constant time.
///
/// # Examples
///
/// ```
/// use sdvbs_image::Image;
/// use sdvbs_kernels::integral::IntegralImage;
///
/// let img = Image::filled(10, 10, 2.0);
/// let ii = IntegralImage::new(&img);
/// assert_eq!(ii.sum(3, 3, 4, 2), 16.0);
/// ```
#[derive(Debug, Clone)]
pub struct IntegralImage {
    width: usize,
    height: usize,
    /// `(width+1) × (height+1)` table with a zero top row and left column,
    /// so window lookups need no boundary special-casing.
    table: Vec<f64>,
}

impl IntegralImage {
    /// Builds the summed-area table (one pass over the image).
    pub fn new(img: &Image) -> Self {
        Self::from_mapped(img, |v| v as f64)
    }

    /// Builds a summed-area table of squared pixel values, used for O(1)
    /// window variance (Viola–Jones lighting normalization).
    pub fn squared(img: &Image) -> Self {
        Self::from_mapped(img, |v| (v as f64) * (v as f64))
    }

    fn from_mapped(img: &Image, f: impl Fn(f32) -> f64) -> Self {
        let w = img.width();
        let h = img.height();
        let stride = w + 1;
        let mut table = vec![0.0f64; stride * (h + 1)];
        for y in 0..h {
            // Borrow the previous and current table rows as slices and walk
            // them with the source row in lockstep: the running prefix sum
            // is an inherent serial dependence, but the slice form removes
            // the per-pixel index math and bounds checks of the naive loop
            // (same additions in the same order — bit-identical table).
            let (prev, cur) = table[y * stride..(y + 2) * stride].split_at_mut(stride);
            let mut row_acc = 0.0f64;
            for ((c, &p), &v) in cur[1..].iter_mut().zip(&prev[1..]).zip(img.row(y)) {
                row_acc += f(v);
                *c = p + row_acc;
            }
        }
        IntegralImage {
            width: w,
            height: h,
            table,
        }
    }

    /// Width of the source image.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height of the source image.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Sum of the `w × h` rectangle with top-left corner `(x0, y0)`.
    ///
    /// # Panics
    ///
    /// Panics if the rectangle exceeds the image bounds.
    #[inline]
    pub fn sum(&self, x0: usize, y0: usize, w: usize, h: usize) -> f64 {
        assert!(
            x0 + w <= self.width && y0 + h <= self.height,
            "window ({x0},{y0},{w},{h}) out of bounds for {}x{}",
            self.width,
            self.height
        );
        let stride = self.width + 1;
        let a = self.table[y0 * stride + x0];
        let b = self.table[y0 * stride + x0 + w];
        let c = self.table[(y0 + h) * stride + x0];
        let d = self.table[(y0 + h) * stride + x0 + w];
        d - b - c + a
    }

    /// Mean of the `w × h` rectangle at `(x0, y0)`.
    ///
    /// # Panics
    ///
    /// Panics if the rectangle is empty or out of bounds.
    pub fn mean(&self, x0: usize, y0: usize, w: usize, h: usize) -> f64 {
        assert!(w > 0 && h > 0, "window must be non-empty");
        self.sum(x0, y0, w, h) / (w * h) as f64
    }

    /// Borrows row `y` of the `(width+1) × (height+1)` summed-area table
    /// (`0 ..= height`, row 0 being the zero pad row).
    ///
    /// This is the raw ingredient of the vectorized window-sum consumers:
    /// with the top and bottom table rows of a window band in hand, the
    /// sums of a whole row of equal-height windows are fixed-offset slice
    /// reads (`bot[x1] - top[x1] - bot[x0] + top[x0]`, the same operation
    /// order as [`IntegralImage::sum`]) with no per-window asserts.
    ///
    /// # Panics
    ///
    /// Panics if `y > self.height()`.
    #[inline]
    pub fn table_row(&self, y: usize) -> &[f64] {
        assert!(y <= self.height, "table row {y} out of bounds");
        let stride = self.width + 1;
        &self.table[y * stride..(y + 1) * stride]
    }

    /// Writes, for every pixel of image row `y`, the sum of the
    /// surrounding `(2·radius + 1)²` window clipped to the image into
    /// `out` — one output row of the "Area Sum" kernel.
    ///
    /// Interior columns (full horizontal windows) take a branch-free
    /// fixed-offset slice loop; the clipped left/right borders fall back
    /// to per-pixel clamped lookups. Both evaluate the exact
    /// `d - b - c + a` expression of [`IntegralImage::sum`], so the row is
    /// bit-identical to per-pixel `sum` calls.
    ///
    /// # Panics
    ///
    /// Panics if `y >= self.height()` or `out.len() != self.width()`.
    pub fn clipped_window_sums_into(&self, radius: usize, y: usize, out: &mut [f32]) {
        let w = self.width;
        let h = self.height;
        assert!(y < h, "row {y} out of bounds");
        assert_eq!(out.len(), w, "output row must match the image width");
        let y0 = y.saturating_sub(radius);
        let y1 = (y + radius + 1).min(h);
        let top = self.table_row(y0);
        let bot = self.table_row(y1);
        let lo = radius.min(w);
        let hi = w.saturating_sub(radius).max(lo);
        // Clipped border columns.
        for x in (0..lo).chain(hi..w) {
            let x0 = x.saturating_sub(radius);
            let x1 = (x + radius + 1).min(w);
            out[x] = (bot[x1] - top[x1] - bot[x0] + top[x0]) as f32;
        }
        // Interior columns: `hi > lo` implies `lo == radius`, so pixel
        // `x = lo + j` reads table offsets `j` and `j + span` directly.
        let span = 2 * radius + 1;
        for (j, o) in out[lo..hi].iter_mut().enumerate() {
            *o = (bot[j + span] - top[j + span] - bot[j] + top[j]) as f32;
        }
    }
}

/// Computes, for every pixel, the sum of the surrounding
/// `(2 radius + 1)²` window clipped to the image — the tracker's
/// "Area Sum" kernel. Runs in O(pixels) via an integral image.
pub fn area_sum(img: &Image, radius: usize) -> Image {
    area_sum_with(img, radius, ExecPolicy::Serial)
}

/// [`area_sum`] under an execution policy: output rows are distributed
/// over worker threads, each filled through the vectorized
/// [`IntegralImage::clipped_window_sums_into`] row path. Bit-identical to
/// the serial result for any policy.
pub fn area_sum_with(img: &Image, radius: usize, policy: ExecPolicy) -> Image {
    let ii = IntegralImage::new(img);
    Image::from_rows_with(img.width(), img.height(), policy, |y, out| {
        ii.clipped_window_sums_into(radius, y, out);
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_sum_matches_naive() {
        let img = Image::from_fn(7, 5, |x, y| (x * 3 + y) as f32);
        let ii = IntegralImage::new(&img);
        let naive: f64 = img.as_slice().iter().map(|&v| v as f64).sum();
        assert!((ii.sum(0, 0, 7, 5) - naive).abs() < 1e-9);
    }

    #[test]
    fn window_sums_match_naive() {
        let img = Image::from_fn(9, 9, |x, y| ((x * 31 + y * 17) % 11) as f32);
        let ii = IntegralImage::new(&img);
        for (x0, y0, w, h) in [(0, 0, 1, 1), (2, 3, 4, 5), (8, 8, 1, 1), (0, 4, 9, 2)] {
            let mut naive = 0.0f64;
            for y in y0..y0 + h {
                for x in x0..x0 + w {
                    naive += img.get(x, y) as f64;
                }
            }
            assert!(
                (ii.sum(x0, y0, w, h) - naive).abs() < 1e-9,
                "window {x0},{y0},{w},{h}"
            );
        }
    }

    #[test]
    fn zero_area_windows_are_zero() {
        let img = Image::filled(4, 4, 5.0);
        let ii = IntegralImage::new(&img);
        assert_eq!(ii.sum(2, 2, 0, 0), 0.0);
        assert_eq!(ii.sum(2, 2, 0, 2), 0.0);
    }

    #[test]
    fn squared_table_gives_window_variance() {
        let img = Image::from_fn(4, 1, |x, _| x as f32); // 0 1 2 3
        let ii = IntegralImage::new(&img);
        let ii2 = IntegralImage::squared(&img);
        let n = 4.0;
        let mean = ii.sum(0, 0, 4, 1) / n;
        let var = ii2.sum(0, 0, 4, 1) / n - mean * mean;
        assert!((mean - 1.5).abs() < 1e-9);
        assert!((var - 1.25).abs() < 1e-9);
    }

    #[test]
    fn mean_of_constant_region() {
        let img = Image::filled(6, 6, 3.5);
        let ii = IntegralImage::new(&img);
        assert!((ii.mean(1, 1, 4, 4) - 3.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oversized_window_panics() {
        let ii = IntegralImage::new(&Image::new(3, 3));
        ii.sum(1, 1, 3, 3);
    }

    #[test]
    fn area_sum_interior_matches_window() {
        let img = Image::filled(10, 10, 1.0);
        let s = area_sum(&img, 1);
        assert_eq!(s.get(5, 5), 9.0); // full 3x3 window
        assert_eq!(s.get(0, 0), 4.0); // clipped to 2x2
        assert_eq!(s.get(9, 0), 4.0);
    }

    #[test]
    fn area_sum_equals_naive_on_random_pattern() {
        let img = Image::from_fn(8, 6, |x, y| ((x * 7 + y * 13) % 5) as f32);
        let s = area_sum(&img, 2);
        // Naive check at a few pixels.
        for &(px, py) in &[(3usize, 3usize), (0, 5), (7, 0)] {
            let mut naive = 0.0f32;
            for y in py.saturating_sub(2)..(py + 3).min(6) {
                for x in px.saturating_sub(2)..(px + 3).min(8) {
                    naive += img.get(x, y);
                }
            }
            assert!((s.get(px, py) - naive).abs() < 1e-4);
        }
    }
}
