//! Integral images and O(1) window sums — the "Integral Image" and
//! "Area Sum" kernels shared by disparity, tracking, SIFT and face
//! detection.

use sdvbs_image::Image;

/// A summed-area table over an image, stored in `f64` to avoid the
/// catastrophic cancellation `f32` accumulation would suffer on CIF-sized
/// frames.
///
/// `sum(x0, y0, w, h)` returns the sum of the pixel rectangle with top-left
/// corner `(x0, y0)` in constant time.
///
/// # Examples
///
/// ```
/// use sdvbs_image::Image;
/// use sdvbs_kernels::integral::IntegralImage;
///
/// let img = Image::filled(10, 10, 2.0);
/// let ii = IntegralImage::new(&img);
/// assert_eq!(ii.sum(3, 3, 4, 2), 16.0);
/// ```
#[derive(Debug, Clone)]
pub struct IntegralImage {
    width: usize,
    height: usize,
    /// `(width+1) × (height+1)` table with a zero top row and left column,
    /// so window lookups need no boundary special-casing.
    table: Vec<f64>,
}

impl IntegralImage {
    /// Builds the summed-area table (one pass over the image).
    pub fn new(img: &Image) -> Self {
        Self::from_mapped(img, |v| v as f64)
    }

    /// Builds a summed-area table of squared pixel values, used for O(1)
    /// window variance (Viola–Jones lighting normalization).
    pub fn squared(img: &Image) -> Self {
        Self::from_mapped(img, |v| (v as f64) * (v as f64))
    }

    fn from_mapped(img: &Image, f: impl Fn(f32) -> f64) -> Self {
        let w = img.width();
        let h = img.height();
        let stride = w + 1;
        let mut table = vec![0.0f64; stride * (h + 1)];
        for y in 0..h {
            let mut row_acc = 0.0f64;
            for x in 0..w {
                row_acc += f(img.get(x, y));
                table[(y + 1) * stride + x + 1] = table[y * stride + x + 1] + row_acc;
            }
        }
        IntegralImage {
            width: w,
            height: h,
            table,
        }
    }

    /// Width of the source image.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height of the source image.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Sum of the `w × h` rectangle with top-left corner `(x0, y0)`.
    ///
    /// # Panics
    ///
    /// Panics if the rectangle exceeds the image bounds.
    #[inline]
    pub fn sum(&self, x0: usize, y0: usize, w: usize, h: usize) -> f64 {
        assert!(
            x0 + w <= self.width && y0 + h <= self.height,
            "window ({x0},{y0},{w},{h}) out of bounds for {}x{}",
            self.width,
            self.height
        );
        let stride = self.width + 1;
        let a = self.table[y0 * stride + x0];
        let b = self.table[y0 * stride + x0 + w];
        let c = self.table[(y0 + h) * stride + x0];
        let d = self.table[(y0 + h) * stride + x0 + w];
        d - b - c + a
    }

    /// Mean of the `w × h` rectangle at `(x0, y0)`.
    ///
    /// # Panics
    ///
    /// Panics if the rectangle is empty or out of bounds.
    pub fn mean(&self, x0: usize, y0: usize, w: usize, h: usize) -> f64 {
        assert!(w > 0 && h > 0, "window must be non-empty");
        self.sum(x0, y0, w, h) / (w * h) as f64
    }
}

/// Computes, for every pixel, the sum of the surrounding
/// `(2 radius + 1)²` window clipped to the image — the tracker's
/// "Area Sum" kernel. Runs in O(pixels) via an integral image.
pub fn area_sum(img: &Image, radius: usize) -> Image {
    let ii = IntegralImage::new(img);
    let w = img.width();
    let h = img.height();
    Image::from_fn(w, h, |x, y| {
        let x0 = x.saturating_sub(radius);
        let y0 = y.saturating_sub(radius);
        let x1 = (x + radius + 1).min(w);
        let y1 = (y + radius + 1).min(h);
        ii.sum(x0, y0, x1 - x0, y1 - y0) as f32
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_sum_matches_naive() {
        let img = Image::from_fn(7, 5, |x, y| (x * 3 + y) as f32);
        let ii = IntegralImage::new(&img);
        let naive: f64 = img.as_slice().iter().map(|&v| v as f64).sum();
        assert!((ii.sum(0, 0, 7, 5) - naive).abs() < 1e-9);
    }

    #[test]
    fn window_sums_match_naive() {
        let img = Image::from_fn(9, 9, |x, y| ((x * 31 + y * 17) % 11) as f32);
        let ii = IntegralImage::new(&img);
        for (x0, y0, w, h) in [(0, 0, 1, 1), (2, 3, 4, 5), (8, 8, 1, 1), (0, 4, 9, 2)] {
            let mut naive = 0.0f64;
            for y in y0..y0 + h {
                for x in x0..x0 + w {
                    naive += img.get(x, y) as f64;
                }
            }
            assert!(
                (ii.sum(x0, y0, w, h) - naive).abs() < 1e-9,
                "window {x0},{y0},{w},{h}"
            );
        }
    }

    #[test]
    fn zero_area_windows_are_zero() {
        let img = Image::filled(4, 4, 5.0);
        let ii = IntegralImage::new(&img);
        assert_eq!(ii.sum(2, 2, 0, 0), 0.0);
        assert_eq!(ii.sum(2, 2, 0, 2), 0.0);
    }

    #[test]
    fn squared_table_gives_window_variance() {
        let img = Image::from_fn(4, 1, |x, _| x as f32); // 0 1 2 3
        let ii = IntegralImage::new(&img);
        let ii2 = IntegralImage::squared(&img);
        let n = 4.0;
        let mean = ii.sum(0, 0, 4, 1) / n;
        let var = ii2.sum(0, 0, 4, 1) / n - mean * mean;
        assert!((mean - 1.5).abs() < 1e-9);
        assert!((var - 1.25).abs() < 1e-9);
    }

    #[test]
    fn mean_of_constant_region() {
        let img = Image::filled(6, 6, 3.5);
        let ii = IntegralImage::new(&img);
        assert!((ii.mean(1, 1, 4, 4) - 3.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oversized_window_panics() {
        let ii = IntegralImage::new(&Image::new(3, 3));
        ii.sum(1, 1, 3, 3);
    }

    #[test]
    fn area_sum_interior_matches_window() {
        let img = Image::filled(10, 10, 1.0);
        let s = area_sum(&img, 1);
        assert_eq!(s.get(5, 5), 9.0); // full 3x3 window
        assert_eq!(s.get(0, 0), 4.0); // clipped to 2x2
        assert_eq!(s.get(9, 0), 4.0);
    }

    #[test]
    fn area_sum_equals_naive_on_random_pattern() {
        let img = Image::from_fn(8, 6, |x, y| ((x * 7 + y * 13) % 5) as f32);
        let s = area_sum(&img, 2);
        // Naive check at a few pixels.
        for &(px, py) in &[(3usize, 3usize), (0, 5), (7, 0)] {
            let mut naive = 0.0f32;
            for y in py.saturating_sub(2)..(py + 3).min(6) {
                for x in px.saturating_sub(2)..(px + 3).min(8) {
                    naive += img.get(x, y);
                }
            }
            assert!((s.get(px, py) - naive).abs() < 1e-4);
        }
    }
}
