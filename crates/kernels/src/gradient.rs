//! Derivative filters — the "Gradient" kernel of feature tracking, SIFT and
//! stitch preprocessing.
//!
//! All gradient operators are separable 3-tap passes routed through the
//! row/column convolutions in [`crate::conv`], so they take the same
//! vectorized interior path + replicate-border split (and stay
//! bit-identical to the scalar reference) without any code of their own.

use crate::conv::{
    convolve_cols, convolve_cols_with, convolve_rows, convolve_rows_with, convolve_separable_with,
};
use sdvbs_exec::ExecPolicy;
use sdvbs_image::Image;

/// Horizontal derivative via the central-difference kernel `[-1/2, 0, 1/2]`
/// smoothed vertically with `[1/4, 1/2, 1/4]` (a 3×3 Scharr-lite operator;
/// the same separable structure the SD-VBS tracker uses).
pub fn gradient_x(img: &Image) -> Image {
    gradient_x_with(img, ExecPolicy::Serial)
}

/// [`gradient_x`] under an execution policy. Bit-identical to the serial
/// result for any policy.
pub fn gradient_x_with(img: &Image, policy: ExecPolicy) -> Image {
    convolve_separable_with(img, &[-0.5, 0.0, 0.5], &[0.25, 0.5, 0.25], policy)
}

/// Vertical derivative (transpose of [`gradient_x`]).
pub fn gradient_y(img: &Image) -> Image {
    gradient_y_with(img, ExecPolicy::Serial)
}

/// [`gradient_y`] under an execution policy. Bit-identical to the serial
/// result for any policy.
pub fn gradient_y_with(img: &Image, policy: ExecPolicy) -> Image {
    convolve_cols_with(
        &convolve_rows_with(img, &[0.25, 0.5, 0.25], policy),
        &[-0.5, 0.0, 0.5],
        policy,
    )
}

/// Plain central differences without smoothing (used where the caller has
/// already blurred, e.g. inside the Gaussian scale space of SIFT).
pub fn central_diff_x(img: &Image) -> Image {
    convolve_rows(img, &[-0.5, 0.0, 0.5])
}

/// Plain vertical central differences.
pub fn central_diff_y(img: &Image) -> Image {
    convolve_cols(img, &[-0.5, 0.0, 0.5])
}

/// Gradient magnitude `sqrt(gx² + gy²)` from precomputed derivative images.
///
/// # Panics
///
/// Panics if the two images differ in size.
pub fn magnitude(gx: &Image, gy: &Image) -> Image {
    assert_eq!(
        (gx.width(), gx.height()),
        (gy.width(), gy.height()),
        "gradient images must match in size"
    );
    Image::from_fn(gx.width(), gx.height(), |x, y| {
        let a = gx.get(x, y);
        let b = gy.get(x, y);
        (a * a + b * b).sqrt()
    })
}

/// Gradient orientation `atan2(gy, gx)` in radians (`-π..=π`).
///
/// # Panics
///
/// Panics if the two images differ in size.
pub fn orientation(gx: &Image, gy: &Image) -> Image {
    assert_eq!(
        (gx.width(), gx.height()),
        (gy.width(), gy.height()),
        "gradient images must match in size"
    );
    Image::from_fn(gx.width(), gx.height(), |x, y| {
        gy.get(x, y).atan2(gx.get(x, y))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horizontal_ramp_has_unit_x_gradient() {
        let img = Image::from_fn(10, 10, |x, _| x as f32);
        let gx = gradient_x(&img);
        let gy = gradient_y(&img);
        // Interior pixels: d/dx = 1, d/dy = 0.
        for y in 1..9 {
            for x in 1..9 {
                assert!((gx.get(x, y) - 1.0).abs() < 1e-5);
                assert!(gy.get(x, y).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn vertical_ramp_has_unit_y_gradient() {
        let img = Image::from_fn(10, 10, |_, y| 2.0 * y as f32);
        let gy = gradient_y(&img);
        for y in 1..9 {
            for x in 1..9 {
                assert!((gy.get(x, y) - 2.0).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn magnitude_of_diagonal_ramp() {
        let img = Image::from_fn(12, 12, |x, y| (x + y) as f32);
        let m = magnitude(&gradient_x(&img), &gradient_y(&img));
        let expected = (2.0f32).sqrt();
        for y in 2..10 {
            for x in 2..10 {
                assert!((m.get(x, y) - expected).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn orientation_of_axis_ramps() {
        let imgx = Image::from_fn(8, 8, |x, _| x as f32);
        let o = orientation(&gradient_x(&imgx), &gradient_y(&imgx));
        assert!(o.get(4, 4).abs() < 1e-4); // gradient points along +x

        let imgy = Image::from_fn(8, 8, |_, y| y as f32);
        let o = orientation(&gradient_x(&imgy), &gradient_y(&imgy));
        assert!((o.get(4, 4) - std::f32::consts::FRAC_PI_2).abs() < 1e-4);
    }

    #[test]
    fn central_diff_matches_gradient_on_linear_images() {
        let img = Image::from_fn(8, 8, |x, y| (3 * x + 2 * y) as f32);
        let cx = central_diff_x(&img);
        let gx = gradient_x(&img);
        for y in 1..7 {
            for x in 1..7 {
                assert!((cx.get(x, y) - gx.get(x, y)).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn constant_image_has_zero_gradient() {
        let img = Image::filled(6, 6, 9.0);
        assert!(gradient_x(&img).max_abs_below(1e-6));
        assert!(gradient_y(&img).max_abs_below(1e-6));
    }

    trait MaxAbs {
        fn max_abs_below(&self, tol: f32) -> bool;
    }
    impl MaxAbs for Image {
        fn max_abs_below(&self, tol: f32) -> bool {
            self.as_slice().iter().all(|v| v.abs() < tol)
        }
    }
}
