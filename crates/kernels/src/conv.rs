//! Convolution kernels.
//!
//! SD-VBS implements its 2-D filters as pairs of 1-D passes "for better
//! cache locality" (paper §II-B, disparity); we follow the same structure.
//! All borders use replicate padding, matching the C sources' `padarray`
//! convention.
//!
//! # Fast paths
//!
//! Every stencil loop here is split into an **interior path** — contiguous
//! slice arithmetic over whole rows, with no per-tap bounds checks or
//! clamping, in a shape LLVM autovectorizes — and a thin **replicate-border
//! path** that applies the clamped taps pixel by pixel. Both paths
//! accumulate taps per output pixel in the same order as the naive scalar
//! loop (see [`crate::reference`]), so results are **bit-identical** to the
//! scalar reference; the equivalence suites in
//! `tests/{simd,border}_equivalence.rs` pin this down. Interior work is
//! additionally blocked into [`BLOCK`]-column tiles so the output tile and
//! its source taps stay L1-resident across the kernel taps.

use sdvbs_exec::ExecPolicy;
use sdvbs_image::Image;

/// Column-tile width of the cache-blocked interior loops: `BLOCK` output
/// floats (4 KiB) plus the tap-shifted source windows fit comfortably in a
/// 32 KiB L1d even for the longest Gaussian kernels used by the suite.
const BLOCK: usize = 1024;

/// Adds the 1-D convolution of `src` with `k` into `out`, replicate border.
///
/// Per-pixel tap accumulation order is identical to the naive scalar loop
/// (ascending taps), so calling this on a zeroed `out` reproduces the
/// scalar reference bit for bit, and repeated calls (the dense 2-D kernel's
/// row accumulation) match the scalar `(ky, kx)`-ordered loop exactly.
fn accumulate_conv_row(src: &[f32], k: &[f32], out: &mut [f32]) {
    let w = src.len();
    debug_assert_eq!(out.len(), w);
    if w == 0 {
        return;
    }
    let half = k.len() / 2;
    let lo = half.min(w);
    let hi = w.saturating_sub(half).max(lo);
    // Replicate-border columns: clamped taps, accumulated one by one.
    for x in (0..lo).chain(hi..w) {
        for (i, &kv) in k.iter().enumerate() {
            let sx = (x + i).saturating_sub(half).min(w - 1);
            out[x] += kv * src[sx];
        }
    }
    // Interior columns: every tap is in range (`hi > lo` implies
    // `lo == half`), so tap `i` for output `x = lo + j` reads `src[i + j]`
    // — a pure shifted-slice multiply-add with no branches.
    let interior = hi - lo;
    let out_int = &mut out[lo..hi];
    let mut b0 = 0;
    while b0 < interior {
        let b1 = (b0 + BLOCK).min(interior);
        for (i, &kv) in k.iter().enumerate() {
            let src_tap = &src[i + b0..i + b1];
            for (o, &s) in out_int[b0..b1].iter_mut().zip(src_tap) {
                *o += kv * s;
            }
        }
        b0 = b1;
    }
}

/// Adds `kv * src` into `out` element-wise (the column-pass inner loop).
#[inline]
fn accumulate_scaled_row(out: &mut [f32], src: &[f32], kv: f32) {
    for (o, &s) in out.iter_mut().zip(src) {
        *o += kv * s;
    }
}

/// Convolves each row with the 1-D kernel `k` (replicate border).
///
/// # Panics
///
/// Panics if `k` is empty or has even length.
pub fn convolve_rows(img: &Image, k: &[f32]) -> Image {
    convolve_rows_with(img, k, ExecPolicy::Serial)
}

/// [`convolve_rows`] under an execution policy: output rows are distributed
/// over worker threads. Bit-identical to the serial result for any policy.
///
/// # Panics
///
/// Panics if `k` is empty or has even length.
pub fn convolve_rows_with(img: &Image, k: &[f32], policy: ExecPolicy) -> Image {
    assert!(
        !k.is_empty() && k.len() % 2 == 1,
        "kernel must have odd length"
    );
    Image::from_rows_with(img.width(), img.height(), policy, |y, out| {
        // `out` starts zeroed, so accumulating matches the scalar
        // `acc = 0.0; acc += …` loop bit for bit.
        accumulate_conv_row(img.row(y), k, out);
    })
}

/// Convolves each column with the 1-D kernel `k` (replicate border).
///
/// # Panics
///
/// Panics if `k` is empty or has even length.
pub fn convolve_cols(img: &Image, k: &[f32]) -> Image {
    convolve_cols_with(img, k, ExecPolicy::Serial)
}

/// [`convolve_cols`] under an execution policy (row-parallel over the
/// output). Bit-identical to the serial result for any policy.
///
/// # Panics
///
/// Panics if `k` is empty or has even length.
pub fn convolve_cols_with(img: &Image, k: &[f32], policy: ExecPolicy) -> Image {
    assert!(
        !k.is_empty() && k.len() % 2 == 1,
        "kernel must have odd length"
    );
    let half = k.len() / 2;
    let h = img.height();
    Image::from_rows_with(img.width(), h, policy, |y, out| {
        // The vertical pass clamps whole *rows*, never individual pixels,
        // so interior and border rows share one unit-stride loop: output
        // row `y` is a tap-ordered linear combination of `k.len()` source
        // rows, accumulated in `BLOCK`-column tiles that keep the output
        // tile L1-resident across taps.
        let w = out.len();
        let mut b0 = 0;
        while b0 < w {
            let b1 = (b0 + BLOCK).min(w);
            for (i, &kv) in k.iter().enumerate() {
                let sy = (y + i).saturating_sub(half).min(h - 1);
                accumulate_scaled_row(&mut out[b0..b1], &img.row(sy)[b0..b1], kv);
            }
            b0 = b1;
        }
    })
}

/// Separable convolution: rows with `kx`, then columns with `ky`.
pub fn convolve_separable(img: &Image, kx: &[f32], ky: &[f32]) -> Image {
    convolve_separable_with(img, kx, ky, ExecPolicy::Serial)
}

/// [`convolve_separable`] under an execution policy: both 1-D passes are
/// row-parallel. Bit-identical to the serial result for any policy.
pub fn convolve_separable_with(img: &Image, kx: &[f32], ky: &[f32], policy: ExecPolicy) -> Image {
    convolve_cols_with(&convolve_rows_with(img, kx, policy), ky, policy)
}

/// Dense 2-D convolution with an odd-sized `kw × kh` kernel in row-major
/// order (replicate border).
///
/// # Panics
///
/// Panics if the kernel dimensions are even, zero, or don't match `k`'s
/// length.
pub fn convolve_2d(img: &Image, k: &[f32], kw: usize, kh: usize) -> Image {
    convolve_2d_with(img, k, kw, kh, ExecPolicy::Serial)
}

/// [`convolve_2d`] under an execution policy (row-parallel over the
/// output). Bit-identical to the serial result for any policy.
///
/// # Panics
///
/// Panics if the kernel dimensions are even, zero, or don't match `k`'s
/// length.
pub fn convolve_2d_with(img: &Image, k: &[f32], kw: usize, kh: usize, policy: ExecPolicy) -> Image {
    assert!(
        kw % 2 == 1 && kh % 2 == 1 && kw > 0 && kh > 0,
        "kernel must be odd-sized"
    );
    assert_eq!(k.len(), kw * kh, "kernel buffer must match dimensions");
    let hh = kh / 2;
    let h = img.height();
    Image::from_rows_with(img.width(), h, policy, |y, out| {
        // Row-clamp vertically, then run each kernel row as a 1-D
        // interior/border pass — the accumulation visits taps in the same
        // `(ky, kx)` order as the scalar reference, so the dense result
        // stays bit-identical.
        for ky in 0..kh {
            let sy = (y + ky).saturating_sub(hh).min(h - 1);
            accumulate_conv_row(img.row(sy), &k[ky * kw..(ky + 1) * kw], out);
        }
    })
}

/// Builds a normalized 1-D Gaussian kernel for standard deviation `sigma`,
/// truncated at three sigmas (minimum length 3).
///
/// # Panics
///
/// Panics if `sigma` is not finite and positive.
pub fn gaussian_kernel(sigma: f32) -> Vec<f32> {
    assert!(sigma.is_finite() && sigma > 0.0, "sigma must be positive");
    let radius = (3.0 * sigma).ceil().max(1.0) as usize;
    let sigma = sigma as f64;
    // Weights and the normalizing mass are computed in f64: an f32 running
    // sum loses enough low-order bits on long (large-sigma) kernels that
    // the normalized taps drift measurably from unit mass, which compounds
    // across the repeated blurs of pyramid/scale-space construction.
    let weights: Vec<f64> = (0..=2 * radius)
        .map(|i| {
            let x = i as f64 - radius as f64;
            (-x * x / (2.0 * sigma * sigma)).exp()
        })
        .collect();
    let sum: f64 = weights.iter().sum();
    weights.into_iter().map(|w| (w / sum) as f32).collect()
}

/// Gaussian-blurs an image with separable passes — the ubiquitous
/// "Gaussian Filter" kernel of Figure 1.
///
/// # Panics
///
/// Panics if `sigma` is not finite and positive.
pub fn gaussian_blur(img: &Image, sigma: f32) -> Image {
    gaussian_blur_with(img, sigma, ExecPolicy::Serial)
}

/// [`gaussian_blur`] under an execution policy. Bit-identical to the serial
/// result for any policy.
///
/// # Panics
///
/// Panics if `sigma` is not finite and positive.
pub fn gaussian_blur_with(img: &Image, sigma: f32, policy: ExecPolicy) -> Image {
    let k = gaussian_kernel(sigma);
    convolve_separable_with(img, &k, &k, policy)
}

/// A `len`-tap box (moving average) kernel, normalized.
///
/// # Panics
///
/// Panics if `len` is zero or even.
pub fn box_kernel(len: usize) -> Vec<f32> {
    assert!(len > 0 && len % 2 == 1, "box kernel length must be odd");
    vec![1.0 / len as f32; len]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_kernel_is_lossless() {
        let img = Image::from_fn(8, 6, |x, y| (x * y) as f32);
        let out = convolve_rows(&img, &[0.0, 1.0, 0.0]);
        assert_eq!(out, img);
        let out = convolve_cols(&img, &[0.0, 1.0, 0.0]);
        assert_eq!(out, img);
    }

    #[test]
    fn row_convolution_shifts() {
        // Kernel [1, 0, 0] picks the pixel to the left.
        let img = Image::from_fn(4, 1, |x, _| x as f32);
        let out = convolve_rows(&img, &[1.0, 0.0, 0.0]);
        assert_eq!(out.as_slice(), &[0.0, 0.0, 1.0, 2.0]); // border replicates
    }

    #[test]
    fn separable_equals_dense_for_outer_product() {
        let img = Image::from_fn(9, 9, |x, y| ((x * 7 + y * 3) % 13) as f32);
        let kx = [0.25f32, 0.5, 0.25];
        let ky = [0.1f32, 0.8, 0.1];
        let sep = convolve_separable(&img, &kx, &ky);
        // Dense kernel = outer product ky ⊗ kx.
        let mut dense = [0.0f32; 9];
        for (j, kyv) in ky.iter().enumerate() {
            for (i, kxv) in kx.iter().enumerate() {
                dense[j * 3 + i] = kyv * kxv;
            }
        }
        let full = convolve_2d(&img, &dense, 3, 3);
        for y in 0..9 {
            for x in 0..9 {
                assert!((sep.get(x, y) - full.get(x, y)).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn gaussian_kernel_is_normalized_and_symmetric() {
        let k = gaussian_kernel(1.5);
        assert!(k.len() % 2 == 1);
        let sum: f32 = k.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        for i in 0..k.len() / 2 {
            assert!((k[i] - k[k.len() - 1 - i]).abs() < 1e-6);
        }
        // Peak at the center.
        let mid = k.len() / 2;
        assert!(k.iter().all(|&v| v <= k[mid]));
    }

    #[test]
    fn blur_preserves_constant_image() {
        let img = Image::filled(16, 16, 42.0);
        let out = gaussian_blur(&img, 2.0);
        assert!(out.as_slice().iter().all(|&v| (v - 42.0).abs() < 1e-3));
    }

    #[test]
    fn blur_reduces_variance() {
        let img = Image::from_fn(32, 32, |x, y| if (x + y) % 2 == 0 { 0.0 } else { 255.0 });
        let out = gaussian_blur(&img, 1.0);
        let var = |im: &Image| {
            let m = im.mean();
            im.as_slice()
                .iter()
                .map(|&v| (v - m) * (v - m))
                .sum::<f32>()
                / im.len() as f32
        };
        assert!(var(&out) < var(&img) / 10.0);
    }

    #[test]
    #[should_panic(expected = "odd length")]
    fn even_kernel_panics() {
        convolve_rows(&Image::new(4, 4), &[0.5, 0.5]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_sigma_panics() {
        gaussian_kernel(0.0);
    }

    #[test]
    fn box_kernel_sums_to_one() {
        let k = box_kernel(5);
        assert_eq!(k.len(), 5);
        assert!((k.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }
}
