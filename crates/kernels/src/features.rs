//! Corner responses, local maxima and feature selection.
//!
//! These are the "feature extraction" kernels shared by tracking (KLT
//! min-eigenvalue scores) and stitch (Harris + adaptive non-maximal
//! suppression). Selecting the strongest features is the suite's "Sort"
//! kernel in feature space.

use crate::gradient::{gradient_x, gradient_y};
use crate::integral::area_sum;
use sdvbs_image::Image;

/// A detected feature point with its detector response.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Feature {
    /// Column coordinate.
    pub x: f32,
    /// Row coordinate.
    pub y: f32,
    /// Detector response (higher is stronger).
    pub score: f32,
}

/// Structure-tensor images `(Ixx, Ixy, Iyy)` summed over a window of the
/// given radius.
pub fn structure_tensor(img: &Image, radius: usize) -> (Image, Image, Image) {
    let gx = gradient_x(img);
    let gy = gradient_y(img);
    let ixx = Image::from_fn(img.width(), img.height(), |x, y| {
        gx.get(x, y) * gx.get(x, y)
    });
    let ixy = Image::from_fn(img.width(), img.height(), |x, y| {
        gx.get(x, y) * gy.get(x, y)
    });
    let iyy = Image::from_fn(img.width(), img.height(), |x, y| {
        gy.get(x, y) * gy.get(x, y)
    });
    (
        area_sum(&ixx, radius),
        area_sum(&ixy, radius),
        area_sum(&iyy, radius),
    )
}

/// KLT "good features to track" response: the smaller eigenvalue of the
/// windowed structure tensor at each pixel.
pub fn min_eigenvalue_response(img: &Image, radius: usize) -> Image {
    let (sxx, sxy, syy) = structure_tensor(img, radius);
    Image::from_fn(img.width(), img.height(), |x, y| {
        let a = sxx.get(x, y);
        let b = sxy.get(x, y);
        let c = syy.get(x, y);
        // Smaller root of λ² − (a+c)λ + (ac − b²).
        let half_trace = 0.5 * (a + c);
        let det_term = (half_trace * half_trace - (a * c - b * b)).max(0.0).sqrt();
        half_trace - det_term
    })
}

/// Harris corner response `det(M) − k·trace(M)²` with the conventional
/// `k = 0.04`.
pub fn harris_response(img: &Image, radius: usize) -> Image {
    let (sxx, sxy, syy) = structure_tensor(img, radius);
    Image::from_fn(img.width(), img.height(), |x, y| {
        let a = sxx.get(x, y);
        let b = sxy.get(x, y);
        let c = syy.get(x, y);
        let det = a * c - b * b;
        let trace = a + c;
        det - 0.04 * trace * trace
    })
}

/// Finds strict local maxima of a response image above `threshold`,
/// ignoring a border of `margin` pixels, returned strongest-first.
pub fn local_maxima(response: &Image, threshold: f32, margin: usize) -> Vec<Feature> {
    let w = response.width();
    let h = response.height();
    let mut feats = Vec::new();
    if w <= 2 * margin + 2 || h <= 2 * margin + 2 {
        return feats;
    }
    for y in (margin + 1)..(h - margin - 1) {
        for x in (margin + 1)..(w - margin - 1) {
            let v = response.get(x, y);
            if v <= threshold {
                continue;
            }
            let mut is_max = true;
            'scan: for dy in -1isize..=1 {
                for dx in -1isize..=1 {
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    let n = response.get((x as isize + dx) as usize, (y as isize + dy) as usize);
                    if n >= v {
                        is_max = false;
                        break 'scan;
                    }
                }
            }
            if is_max {
                feats.push(Feature {
                    x: x as f32,
                    y: y as f32,
                    score: v,
                });
            }
        }
    }
    sort_by_score(&mut feats);
    feats
}

/// Sorts features strongest-first (the "Sort" kernel on feature
/// granularity). NaN scores sort last via IEEE total ordering, so a
/// poisoned score can never panic the sort.
pub fn sort_by_score(feats: &mut [Feature]) {
    feats.sort_by(|a, b| b.score.total_cmp(&a.score));
}

/// Greedy spatial suppression: keeps at most `max` features such that no
/// two are within `min_dist` pixels, scanning strongest-first. This is the
/// feature-selection step of the KLT "good features" pipeline.
pub fn spatial_suppression(feats: &[Feature], min_dist: f32, max: usize) -> Vec<Feature> {
    let mut kept: Vec<Feature> = Vec::new();
    let d2 = min_dist * min_dist;
    for f in feats {
        if kept.len() >= max {
            break;
        }
        let clear = kept
            .iter()
            .all(|k| (k.x - f.x).powi(2) + (k.y - f.y).powi(2) >= d2);
        if clear {
            kept.push(*f);
        }
    }
    kept
}

/// Adaptive non-maximal suppression (the stitch benchmark's "ANMS" kernel,
/// Brown et al.): for each feature compute the distance to the nearest
/// sufficiently-stronger feature, then keep the `max` features with the
/// largest suppression radii. Produces spatially well-distributed features.
pub fn anms(feats: &[Feature], max: usize, robustness: f32) -> Vec<Feature> {
    if feats.is_empty() {
        return Vec::new();
    }
    let mut radii: Vec<(f32, Feature)> = feats
        .iter()
        .map(|f| {
            let mut r2 = f32::INFINITY;
            for g in feats {
                if g.score > f.score / robustness.max(1e-6) && g.score > f.score {
                    let d2 = (g.x - f.x).powi(2) + (g.y - f.y).powi(2);
                    if d2 < r2 {
                        r2 = d2;
                    }
                }
            }
            (r2, *f)
        })
        .collect();
    radii.sort_by(|a, b| b.0.total_cmp(&a.0));
    radii.into_iter().take(max).map(|(_, f)| f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A white square on black background: corners at the square's corners.
    fn square_image() -> Image {
        Image::from_fn(40, 40, |x, y| {
            if (10..30).contains(&x) && (10..30).contains(&y) {
                200.0
            } else {
                20.0
            }
        })
    }

    #[test]
    fn min_eigen_fires_on_corners_not_edges() {
        let img = square_image();
        let r = min_eigenvalue_response(&img, 2);
        // Corner region response dwarfs edge-midpoint response.
        let corner = r.get(10, 10);
        let edge = r.get(20, 10);
        let flat = r.get(20, 20);
        assert!(
            corner > 10.0 * edge.max(1e-3),
            "corner {corner} vs edge {edge}"
        );
        assert!(
            corner > 100.0 * flat.max(1e-6),
            "corner {corner} vs flat {flat}"
        );
    }

    #[test]
    fn harris_negative_on_edges_positive_on_corners() {
        let img = square_image();
        let r = harris_response(&img, 2);
        assert!(r.get(10, 10) > 0.0);
        assert!(r.get(20, 10) < r.get(10, 10) / 10.0);
    }

    #[test]
    fn local_maxima_finds_the_four_corners() {
        let img = square_image();
        let r = min_eigenvalue_response(&img, 2);
        let feats = local_maxima(&r, 1.0, 2);
        assert!(feats.len() >= 4, "found {} features", feats.len());
        // Each true corner (9/10-ish, 29/30-ish boundaries) has a feature within 3 px.
        for &(cx, cy) in &[(10.0f32, 10.0f32), (29.0, 10.0), (10.0, 29.0), (29.0, 29.0)] {
            let hit = feats
                .iter()
                .any(|f| (f.x - cx).abs() <= 3.0 && (f.y - cy).abs() <= 3.0);
            assert!(hit, "no feature near corner ({cx},{cy})");
        }
    }

    #[test]
    fn maxima_are_sorted_strongest_first() {
        let img = square_image();
        let r = harris_response(&img, 2);
        let feats = local_maxima(&r, 0.0, 2);
        for w in feats.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn suppression_enforces_min_distance() {
        let feats = vec![
            Feature {
                x: 0.0,
                y: 0.0,
                score: 5.0,
            },
            Feature {
                x: 1.0,
                y: 0.0,
                score: 4.0,
            },
            Feature {
                x: 10.0,
                y: 0.0,
                score: 3.0,
            },
        ];
        let kept = spatial_suppression(&feats, 5.0, 10);
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].x, 0.0);
        assert_eq!(kept[1].x, 10.0);
    }

    #[test]
    fn suppression_honors_max() {
        let feats: Vec<Feature> = (0..20)
            .map(|i| Feature {
                x: 100.0 * i as f32,
                y: 0.0,
                score: 20.0 - i as f32,
            })
            .collect();
        assert_eq!(spatial_suppression(&feats, 1.0, 7).len(), 7);
    }

    #[test]
    fn anms_prefers_spatially_spread_features() {
        // A tight strong cluster plus one weaker isolated feature: ANMS with
        // max=2 must keep the isolated one.
        let feats = vec![
            Feature {
                x: 0.0,
                y: 0.0,
                score: 10.0,
            },
            Feature {
                x: 1.0,
                y: 0.0,
                score: 9.0,
            },
            Feature {
                x: 0.0,
                y: 1.0,
                score: 8.5,
            },
            Feature {
                x: 50.0,
                y: 50.0,
                score: 5.0,
            },
        ];
        let kept = anms(&feats, 2, 1.0);
        assert_eq!(kept.len(), 2);
        assert!(
            kept.iter().any(|f| f.x == 50.0),
            "isolated feature dropped: {kept:?}"
        );
        assert!(
            kept.iter().any(|f| f.score == 10.0),
            "global max dropped: {kept:?}"
        );
    }

    #[test]
    fn empty_inputs_are_fine() {
        assert!(anms(&[], 5, 1.0).is_empty());
        assert!(spatial_suppression(&[], 1.0, 5).is_empty());
        let tiny = Image::new(3, 3);
        assert!(local_maxima(&tiny, 0.0, 1).is_empty());
    }
}
