//! The shared computer-vision kernels of SD-VBS.
//!
//! Figure 1 of the paper decomposes the nine benchmarks into "over 28
//! non-trivial computationally intensive kernels", several of which are
//! shared between applications (integral image appears in disparity,
//! tracking and SIFT; convolution/Gaussian filtering in nearly everything).
//! This crate hosts those shared kernels; benchmark-specific kernels live
//! with their benchmark crate.
//!
//! * [`conv`] — 1-D/2-D convolution, Gaussian kernels and blurring.
//! * [`gradient`] — derivative filters and gradient magnitude.
//! * [`integral`] — integral images (plain and squared) and O(1) window
//!   sums ("Integral Image" / "Area Sum" kernels).
//! * [`features`] — Harris and KLT min-eigenvalue corner responses, local
//!   maxima and top-k selection ("Sort" kernel), ANMS.
//! * [`pyramid`] — Gaussian image pyramids.
//! * [`reference`] — retained naive scalar implementations, the
//!   bit-identity oracle for the vectorized fast paths above.
//!
//! # Examples
//!
//! ```
//! use sdvbs_image::Image;
//! use sdvbs_kernels::conv::gaussian_blur;
//!
//! let img = Image::from_fn(32, 32, |x, y| ((x ^ y) & 1) as f32 * 255.0);
//! let smooth = gaussian_blur(&img, 1.2);
//! assert!(smooth.max() < img.max()); // high-frequency checkerboard is attenuated
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conv;
pub mod features;
pub mod gradient;
pub mod integral;
pub mod pyramid;
pub mod reference;
