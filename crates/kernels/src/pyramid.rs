//! Gaussian image pyramids, used by the KLT tracker (coarse-to-fine motion)
//! and SIFT (octave construction).

use crate::conv::gaussian_blur;
use sdvbs_image::Image;

/// A Gaussian pyramid: level 0 is the input image; each subsequent level is
/// blurred and decimated by 2.
///
/// # Examples
///
/// ```
/// use sdvbs_image::Image;
/// use sdvbs_kernels::pyramid::Pyramid;
///
/// let img = Image::filled(64, 48, 1.0);
/// let pyr = Pyramid::new(&img, 3, 1.0);
/// assert_eq!(pyr.levels(), 3);
/// assert_eq!(pyr.level(2).width(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct Pyramid {
    levels: Vec<Image>,
}

impl Pyramid {
    /// Builds a pyramid with up to `max_levels` levels, pre-smoothing with
    /// `sigma` before each decimation. Construction stops early if a level
    /// would fall below 8 pixels on either side.
    ///
    /// # Panics
    ///
    /// Panics if `max_levels` is zero or `sigma` is not positive.
    pub fn new(img: &Image, max_levels: usize, sigma: f32) -> Self {
        assert!(max_levels > 0, "pyramid needs at least one level");
        assert!(sigma > 0.0, "sigma must be positive");
        let mut levels = vec![img.clone()];
        while levels.len() < max_levels {
            let top = levels.last().expect("pyramid has at least the base level");
            if top.width() < 16 || top.height() < 16 {
                break;
            }
            let next = gaussian_blur(top, sigma).downsample_2x();
            levels.push(next);
        }
        Pyramid { levels }
    }

    /// Number of levels actually built.
    pub fn levels(&self) -> usize {
        self.levels.len()
    }

    /// Level `i` (0 is full resolution).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.levels()`.
    pub fn level(&self, i: usize) -> &Image {
        &self.levels[i]
    }

    /// Iterates levels from coarse to fine — the traversal order of
    /// pyramidal Lucas–Kanade.
    pub fn coarse_to_fine(&self) -> impl Iterator<Item = (usize, &Image)> {
        self.levels.iter().enumerate().rev()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions_halve_per_level() {
        let img = Image::new(128, 96);
        let pyr = Pyramid::new(&img, 4, 1.0);
        assert_eq!(pyr.levels(), 4);
        assert_eq!(pyr.level(0).width(), 128);
        assert_eq!(pyr.level(1).width(), 64);
        assert_eq!(pyr.level(3).width(), 16);
        assert_eq!(pyr.level(3).height(), 12);
    }

    #[test]
    fn construction_stops_at_minimum_size() {
        let img = Image::new(32, 32);
        let pyr = Pyramid::new(&img, 10, 1.0);
        // 32 -> 16 -> (16 < 16? no, 16 >= 16 -> 8) stop before 8x8 gets
        // decimated further.
        assert!(pyr.levels() <= 3);
        assert!(pyr.level(pyr.levels() - 1).width() >= 8);
    }

    #[test]
    fn constant_image_survives_pyramid() {
        let img = Image::filled(64, 64, 7.0);
        let pyr = Pyramid::new(&img, 3, 1.5);
        for i in 0..pyr.levels() {
            let l = pyr.level(i);
            assert!(
                l.as_slice().iter().all(|&v| (v - 7.0).abs() < 1e-2),
                "level {i}"
            );
        }
    }

    #[test]
    fn coarse_to_fine_order() {
        let img = Image::new(64, 64);
        let pyr = Pyramid::new(&img, 3, 1.0);
        let order: Vec<usize> = pyr.coarse_to_fine().map(|(i, _)| i).collect();
        assert_eq!(order, vec![2, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn zero_levels_panics() {
        Pyramid::new(&Image::new(8, 8), 0, 1.0);
    }
}
