//! Property-based tests for the shared vision kernels.

use proptest::prelude::*;
use sdvbs_image::Image;
use sdvbs_kernels::conv::{convolve_rows, gaussian_blur, gaussian_kernel};
use sdvbs_kernels::gradient::{gradient_x, gradient_y};
use sdvbs_kernels::integral::{area_sum, IntegralImage};

proptest! {
    /// Convolution is linear: conv(a·f + b·g) = a·conv(f) + b·conv(g).
    #[test]
    fn convolution_is_linear(
        f_pix in proptest::collection::vec(-20.0f32..20.0, 8 * 6),
        g_pix in proptest::collection::vec(-20.0f32..20.0, 8 * 6),
        a in -2.0f32..2.0,
        b in -2.0f32..2.0,
    ) {
        let f = Image::from_vec(8, 6, f_pix).expect("sized");
        let g = Image::from_vec(8, 6, g_pix).expect("sized");
        let kernel = [0.25f32, 0.5, 0.25];
        let combo = Image::from_fn(8, 6, |x, y| a * f.get(x, y) + b * g.get(x, y));
        let lhs = convolve_rows(&combo, &kernel);
        let cf = convolve_rows(&f, &kernel);
        let cg = convolve_rows(&g, &kernel);
        for y in 0..6 {
            for x in 0..8 {
                let rhs = a * cf.get(x, y) + b * cg.get(x, y);
                prop_assert!((lhs.get(x, y) - rhs).abs() < 1e-3);
            }
        }
    }

    /// Gaussian blur preserves the total mass of non-negative images away
    /// from the border (the kernel is normalized).
    #[test]
    fn blur_preserves_interior_mean(
        pix in proptest::collection::vec(0.0f32..100.0, 20 * 20),
        sigma in 0.5f32..2.0,
    ) {
        let img = Image::from_vec(20, 20, pix).expect("sized");
        let out = gaussian_blur(&img, sigma);
        // Compare means over the interior (border replication distorts the
        // edge rows).
        let interior_mean = |im: &Image| {
            let mut acc = 0.0f64;
            let mut n = 0;
            for y in 6..14 {
                for x in 6..14 {
                    acc += im.get(x, y) as f64;
                    n += 1;
                }
            }
            acc / n as f64
        };
        let a = interior_mean(&img);
        let b = interior_mean(&out);
        prop_assert!((a - b).abs() < 0.25 * a.max(1.0), "{a} vs {b}");
    }

    /// The Gaussian kernel is normalized for any sigma — including wide
    /// kernels (sigma ≥ 8, ~50–100 taps), where the old all-`f32`
    /// normalization drifted past 1e-4. Weights are now accumulated and
    /// normalized in `f64`, so the exact (`f64`) sum of the rounded taps
    /// stays within a few ULPs of 1 at any width.
    #[test]
    fn gaussian_kernel_normalized(sigma in 0.2f32..16.0) {
        let k = gaussian_kernel(sigma);
        let sum: f64 = k.iter().map(|&v| v as f64).sum();
        prop_assert!((sum - 1.0).abs() < 1e-6, "f64 sum {} (sigma {})", sum, sigma);
        let sum32: f32 = k.iter().sum();
        prop_assert!((sum32 - 1.0).abs() < 1e-4);
        prop_assert!(k.len() % 2 == 1);
    }

    /// `area_sum` with radius r equals explicit window summation via the
    /// integral image.
    #[test]
    fn area_sum_matches_integral_windows(
        pix in proptest::collection::vec(0.0f32..50.0, 10 * 8),
        r in 1usize..4,
    ) {
        let img = Image::from_vec(10, 8, pix).expect("sized");
        let s = area_sum(&img, r);
        let ii = IntegralImage::new(&img);
        for y in 0..8usize {
            for x in 0..10usize {
                let x0 = x.saturating_sub(r);
                let y0 = y.saturating_sub(r);
                let x1 = (x + r + 1).min(10);
                let y1 = (y + r + 1).min(8);
                let expect = ii.sum(x0, y0, x1 - x0, y1 - y0) as f32;
                prop_assert!((s.get(x, y) - expect).abs() < 1e-2);
            }
        }
    }

    /// Gradients of a linear ramp are constant and match the coefficients.
    #[test]
    fn gradients_of_ramps_are_exact(
        gx_true in -3.0f32..3.0,
        gy_true in -3.0f32..3.0,
    ) {
        let img = Image::from_fn(12, 12, |x, y| gx_true * x as f32 + gy_true * y as f32);
        let gx = gradient_x(&img);
        let gy = gradient_y(&img);
        for y in 2..10 {
            for x in 2..10 {
                prop_assert!((gx.get(x, y) - gx_true).abs() < 1e-3);
                prop_assert!((gy.get(x, y) - gy_true).abs() < 1e-3);
            }
        }
    }

    /// Integral of the sum of two images is the sum of integrals.
    #[test]
    fn integral_image_additive(
        a_pix in proptest::collection::vec(0.0f32..20.0, 36),
        b_pix in proptest::collection::vec(0.0f32..20.0, 36),
    ) {
        let a = Image::from_vec(6, 6, a_pix).expect("sized");
        let b = Image::from_vec(6, 6, b_pix).expect("sized");
        let sum = Image::from_fn(6, 6, |x, y| a.get(x, y) + b.get(x, y));
        let ia = IntegralImage::new(&a);
        let ib = IntegralImage::new(&b);
        let is = IntegralImage::new(&sum);
        prop_assert!(
            (is.sum(1, 1, 4, 4) - ia.sum(1, 1, 4, 4) - ib.sum(1, 1, 4, 4)).abs() < 1e-3
        );
    }
}

/// Deterministic pin of the wide-sigma normalization bugfix: these exact
/// widths drifted past the 1e-4 tolerance with `f32` accumulation.
#[test]
fn wide_gaussian_kernels_are_normalized() {
    for sigma in [8.0f32, 10.0, 12.5, 16.0] {
        let k = gaussian_kernel(sigma);
        let sum: f64 = k.iter().map(|&v| v as f64).sum();
        assert!((sum - 1.0).abs() < 1e-6, "sigma {sigma}: sum {sum}");
    }
}
