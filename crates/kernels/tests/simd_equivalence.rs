//! Property-based bit-equivalence of the vectorized fast paths against the
//! retained naive scalar reference (`sdvbs_kernels::reference`).
//!
//! Where `border_equivalence.rs` sweeps a fixed exhaustive grid of shapes
//! and kernel lengths, this suite samples *random* image sizes, seeds and
//! kernel taps, and additionally runs every fast path under every
//! [`ExecPolicy`] variant — pinning the full promise: interior/border
//! split × cache blocking × row-parallel execution, all bit-identical
//! (`assert_eq!`, no tolerance) to the per-pixel clamped scalar loops.

use proptest::prelude::*;
use sdvbs_exec::ExecPolicy;
use sdvbs_image::Image;
use sdvbs_kernels::conv::{convolve_2d_with, convolve_cols_with, convolve_rows_with};
use sdvbs_kernels::integral::area_sum_with;
use sdvbs_kernels::reference;

const POLICIES: [ExecPolicy; 5] = [
    ExecPolicy::Serial,
    ExecPolicy::Threads(1),
    ExecPolicy::Threads(3),
    ExecPolicy::Threads(64),
    ExecPolicy::Auto,
];

/// Deterministic pseudo-random image (SplitMix-style per-pixel hash) with
/// signed values.
fn test_image(w: usize, h: usize, seed: u64) -> Image {
    Image::from_fn(w, h, |x, y| {
        let mut v = seed
            ^ (x as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ (y as u64).wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
        v ^= v >> 33;
        v = v.wrapping_mul(0xff51_afd7_ed55_8ccd);
        v ^= v >> 33;
        (v & 0x1ff) as f32 - 255.0
    })
}

fn test_kernel(len: usize, seed: u64) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let mut v = seed ^ (i as u64).wrapping_mul(0xd6e8_feb8_6659_fd93);
            v ^= v >> 32;
            v = v.wrapping_mul(0xd6e8_feb8_6659_fd93);
            ((v & 0xffff) as f32 / 32768.0) - 1.0
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn convolve_rows_matches_reference_under_every_policy(
        w in 1usize..80,
        h in 1usize..40,
        half in 0usize..5,
        seed in 0u64..10_000,
    ) {
        let img = test_image(w, h, seed);
        let k = test_kernel(2 * half + 1, seed ^ 0xabcd);
        let naive = reference::convolve_rows(&img, &k);
        for policy in POLICIES {
            let fast = convolve_rows_with(&img, &k, policy);
            prop_assert_eq!(fast.as_slice(), naive.as_slice(), "{:?}", policy);
        }
    }

    #[test]
    fn convolve_cols_matches_reference_under_every_policy(
        w in 1usize..80,
        h in 1usize..40,
        half in 0usize..5,
        seed in 0u64..10_000,
    ) {
        let img = test_image(w, h, seed);
        let k = test_kernel(2 * half + 1, seed ^ 0x1234);
        let naive = reference::convolve_cols(&img, &k);
        for policy in POLICIES {
            let fast = convolve_cols_with(&img, &k, policy);
            prop_assert_eq!(fast.as_slice(), naive.as_slice(), "{:?}", policy);
        }
    }

    #[test]
    fn convolve_2d_matches_reference_under_every_policy(
        w in 1usize..60,
        h in 1usize..30,
        half_w in 0usize..4,
        half_h in 0usize..4,
        seed in 0u64..10_000,
    ) {
        let img = test_image(w, h, seed);
        let (kw, kh) = (2 * half_w + 1, 2 * half_h + 1);
        let k = test_kernel(kw * kh, seed ^ 0x7777);
        let naive = reference::convolve_2d(&img, &k, kw, kh);
        for policy in POLICIES {
            let fast = convolve_2d_with(&img, &k, kw, kh, policy);
            prop_assert_eq!(fast.as_slice(), naive.as_slice(), "{:?}", policy);
        }
    }

    #[test]
    fn area_sum_matches_reference_under_every_policy(
        w in 1usize..80,
        h in 1usize..40,
        radius in 0usize..6,
        seed in 0u64..10_000,
    ) {
        let img = test_image(w, h, seed);
        let naive = reference::area_sum(&img, radius);
        for policy in POLICIES {
            let fast = area_sum_with(&img, radius, policy);
            prop_assert_eq!(fast.as_slice(), naive.as_slice(), "{:?}", policy);
        }
    }
}
