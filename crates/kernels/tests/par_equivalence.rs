//! Serial vs parallel equivalence for the policy-aware kernels.
//!
//! Every `_with` kernel promises **bit-identical** output under any
//! [`ExecPolicy`]; these properties pin that promise down for thread
//! counts 1, 2 and 4 at all three SD-VBS input sizes (SQCIF, QCIF, CIF).

use proptest::prelude::*;
use sdvbs_exec::ExecPolicy;
use sdvbs_image::Image;
use sdvbs_kernels::conv::{
    convolve_2d, convolve_2d_with, convolve_cols, convolve_cols_with, convolve_rows,
    convolve_rows_with, convolve_separable, convolve_separable_with, gaussian_blur,
    gaussian_blur_with,
};
use sdvbs_kernels::gradient::{gradient_x, gradient_x_with, gradient_y, gradient_y_with};

/// The paper's three input sizes: SQCIF, QCIF, CIF.
const SIZES: [(usize, usize); 3] = [(128, 96), (176, 144), (352, 288)];
const THREADS: [usize; 3] = [1, 2, 4];

/// Deterministic pseudo-random image (SplitMix-style per-pixel hash).
fn test_image(w: usize, h: usize, seed: u64) -> Image {
    Image::from_fn(w, h, |x, y| {
        let mut v = seed
            ^ (x as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ (y as u64).wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
        v ^= v >> 33;
        v = v.wrapping_mul(0xff51_afd7_ed55_8ccd);
        v ^= v >> 33;
        (v & 0xff) as f32
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn convolve_rows_is_policy_invariant(seed in 0u64..10_000, size in 0usize..3) {
        let (w, h) = SIZES[size];
        let img = test_image(w, h, seed);
        let k = [0.1f32, 0.2, 0.4, 0.2, 0.1];
        let serial = convolve_rows(&img, &k);
        for n in THREADS {
            let par = convolve_rows_with(&img, &k, ExecPolicy::Threads(n));
            prop_assert_eq!(&par, &serial, "threads = {}", n);
        }
    }

    #[test]
    fn convolve_cols_is_policy_invariant(seed in 0u64..10_000, size in 0usize..3) {
        let (w, h) = SIZES[size];
        let img = test_image(w, h, seed);
        let k = [0.25f32, 0.5, 0.25];
        let serial = convolve_cols(&img, &k);
        for n in THREADS {
            let par = convolve_cols_with(&img, &k, ExecPolicy::Threads(n));
            prop_assert_eq!(&par, &serial, "threads = {}", n);
        }
    }

    #[test]
    fn convolve_separable_is_policy_invariant(seed in 0u64..10_000, size in 0usize..3) {
        let (w, h) = SIZES[size];
        let img = test_image(w, h, seed);
        let kx = [0.1f32, 0.8, 0.1];
        let ky = [0.3f32, 0.4, 0.3];
        let serial = convolve_separable(&img, &kx, &ky);
        for n in THREADS {
            let par = convolve_separable_with(&img, &kx, &ky, ExecPolicy::Threads(n));
            prop_assert_eq!(&par, &serial, "threads = {}", n);
        }
    }

    #[test]
    fn convolve_2d_is_policy_invariant(seed in 0u64..10_000, size in 0usize..3) {
        let (w, h) = SIZES[size];
        let img = test_image(w, h, seed);
        // A non-separable 3x3 kernel, so the dense path is genuinely used.
        let k = [0.0f32, -1.0, 0.5, -1.0, 4.0, -1.0, 0.5, -1.0, 0.0];
        let serial = convolve_2d(&img, &k, 3, 3);
        for n in THREADS {
            let par = convolve_2d_with(&img, &k, 3, 3, ExecPolicy::Threads(n));
            prop_assert_eq!(&par, &serial, "threads = {}", n);
        }
    }

    #[test]
    fn gaussian_blur_is_policy_invariant(seed in 0u64..10_000, size in 0usize..3) {
        let (w, h) = SIZES[size];
        let img = test_image(w, h, seed);
        let serial = gaussian_blur(&img, 1.4);
        for n in THREADS {
            let par = gaussian_blur_with(&img, 1.4, ExecPolicy::Threads(n));
            prop_assert_eq!(&par, &serial, "threads = {}", n);
        }
    }

    #[test]
    fn gradients_are_policy_invariant(seed in 0u64..10_000, size in 0usize..3) {
        let (w, h) = SIZES[size];
        let img = test_image(w, h, seed);
        let sx = gradient_x(&img);
        let sy = gradient_y(&img);
        for n in THREADS {
            prop_assert_eq!(&gradient_x_with(&img, ExecPolicy::Threads(n)), &sx, "gx, threads = {}", n);
            prop_assert_eq!(&gradient_y_with(&img, ExecPolicy::Threads(n)), &sy, "gy, threads = {}", n);
        }
    }
}

#[test]
fn auto_policy_matches_serial_too() {
    let img = test_image(176, 144, 7);
    assert_eq!(
        gaussian_blur_with(&img, 2.0, ExecPolicy::Auto),
        gaussian_blur(&img, 2.0)
    );
    assert_eq!(gradient_x_with(&img, ExecPolicy::Auto), gradient_x(&img));
}
