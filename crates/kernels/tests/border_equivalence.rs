//! Exhaustive border-handling equivalence for the vectorized kernels.
//!
//! The fast paths split every stencil into an interior slice loop plus a
//! thin replicate-border path; the bug class that split invites is an
//! off-by-one at the seams. This suite pins the fast paths **bit-identical**
//! (`assert_eq!` on raw `f32`/`f64` buffers, no tolerance) against the
//! retained naive scalar implementations in `sdvbs_kernels::reference`,
//! exhaustively over:
//!
//! * every odd kernel length 1..=9 (and all 2-D width × height pairs),
//! * image sizes from 1×1 up through shapes wider/taller than any kernel,
//!   so all four edges, all four corners, *and* images with no interior at
//!   all are exercised.

use sdvbs_image::Image;
use sdvbs_kernels::conv::{convolve_2d, convolve_cols, convolve_rows};
use sdvbs_kernels::integral::{area_sum, IntegralImage};
use sdvbs_kernels::reference;

/// Image shapes: degenerate (1×1, single row/column), all-border sizes
/// smaller than the widest kernel, and sizes with a genuine interior.
const SHAPES: [(usize, usize); 14] = [
    (1, 1),
    (1, 7),
    (7, 1),
    (2, 2),
    (3, 3),
    (4, 5),
    (5, 4),
    (8, 8),
    (9, 2),
    (2, 9),
    (13, 11),
    (16, 3),
    (3, 16),
    (33, 21),
];

const KLENS: [usize; 5] = [1, 3, 5, 7, 9];

/// Deterministic pseudo-random image (SplitMix-style per-pixel hash),
/// signed values so sign-handling bugs can't hide.
fn test_image(w: usize, h: usize, seed: u64) -> Image {
    Image::from_fn(w, h, |x, y| {
        let mut v = seed
            ^ (x as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ (y as u64).wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
        v ^= v >> 33;
        v = v.wrapping_mul(0xff51_afd7_ed55_8ccd);
        v ^= v >> 33;
        (v & 0x1ff) as f32 - 255.0
    })
}

/// Deterministic kernel taps in `-1.0..1.0` (not normalized on purpose).
fn test_kernel(len: usize, seed: u64) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let mut v = seed ^ (i as u64).wrapping_mul(0xd6e8_feb8_6659_fd93);
            v ^= v >> 32;
            v = v.wrapping_mul(0xd6e8_feb8_6659_fd93);
            ((v & 0xffff) as f32 / 32768.0) - 1.0
        })
        .collect()
}

#[test]
fn convolve_rows_bit_identical_on_every_shape_and_kernel() {
    for &(w, h) in &SHAPES {
        let img = test_image(w, h, 11);
        for &klen in &KLENS {
            let k = test_kernel(klen, 5 + klen as u64);
            let fast = convolve_rows(&img, &k);
            let naive = reference::convolve_rows(&img, &k);
            assert_eq!(
                fast.as_slice(),
                naive.as_slice(),
                "rows {w}x{h} klen {klen}"
            );
        }
    }
}

#[test]
fn convolve_cols_bit_identical_on_every_shape_and_kernel() {
    for &(w, h) in &SHAPES {
        let img = test_image(w, h, 23);
        for &klen in &KLENS {
            let k = test_kernel(klen, 9 + klen as u64);
            let fast = convolve_cols(&img, &k);
            let naive = reference::convolve_cols(&img, &k);
            assert_eq!(
                fast.as_slice(),
                naive.as_slice(),
                "cols {w}x{h} klen {klen}"
            );
        }
    }
}

#[test]
fn convolve_2d_bit_identical_on_every_shape_and_kernel() {
    for &(w, h) in &SHAPES {
        let img = test_image(w, h, 37);
        for &kw in &KLENS {
            for &kh in &KLENS {
                let k = test_kernel(kw * kh, (kw * 16 + kh) as u64);
                let fast = convolve_2d(&img, &k, kw, kh);
                let naive = reference::convolve_2d(&img, &k, kw, kh);
                assert_eq!(
                    fast.as_slice(),
                    naive.as_slice(),
                    "2d {w}x{h} kernel {kw}x{kh}"
                );
            }
        }
    }
}

#[test]
fn area_sum_bit_identical_on_every_shape_and_radius() {
    for &(w, h) in &SHAPES {
        let img = test_image(w, h, 53);
        for radius in 0..=4usize {
            let fast = area_sum(&img, radius);
            let naive = reference::area_sum(&img, radius);
            assert_eq!(
                fast.as_slice(),
                naive.as_slice(),
                "area_sum {w}x{h} r {radius}"
            );
        }
    }
}

#[test]
fn integral_table_bit_identical_on_every_shape() {
    for &(w, h) in &SHAPES {
        let img = test_image(w, h, 71);
        let ii = IntegralImage::new(&img);
        let naive = reference::integral_table(&img);
        let stride = w + 1;
        for y in 0..=h {
            assert_eq!(
                ii.table_row(y),
                &naive[y * stride..(y + 1) * stride],
                "table {w}x{h} row {y}"
            );
        }
    }
}

#[test]
fn clipped_window_sums_bit_identical_to_per_pixel_sum() {
    for &(w, h) in &SHAPES {
        let img = test_image(w, h, 89);
        let ii = IntegralImage::new(&img);
        for radius in 0..=4usize {
            let mut row = vec![0.0f32; w];
            for y in 0..h {
                ii.clipped_window_sums_into(radius, y, &mut row);
                for (x, &got) in row.iter().enumerate() {
                    let x0 = x.saturating_sub(radius);
                    let y0 = y.saturating_sub(radius);
                    let x1 = (x + radius + 1).min(w);
                    let y1 = (y + radius + 1).min(h);
                    let expect = ii.sum(x0, y0, x1 - x0, y1 - y0) as f32;
                    assert_eq!(got, expect, "{w}x{h} r {radius} pixel {x},{y}");
                }
            }
        }
    }
}
