//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of the criterion 0.5 API its single bench file uses:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`] /
//! [`Bencher::iter_custom`], [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Statistics are
//! deliberately simple — a fixed warm-up plus `sample_size` timed samples,
//! reporting the mean — which is enough for the relative comparisons the
//! suite bench makes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from anything displayable (mirrors criterion).
    pub fn from_parameter(p: impl Display) -> Self {
        BenchmarkId(p.to_string())
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// Times the closure handed to a benchmark.
pub struct Bencher<'a> {
    samples: u64,
    total: &'a mut Duration,
    iters_done: &'a mut u64,
}

impl Bencher<'_> {
    /// Times `f` over the configured number of iterations.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(f());
        }
        *self.total += start.elapsed();
        *self.iters_done += self.samples;
    }

    /// Hands `f` an iteration count and trusts its measured duration.
    pub fn iter_custom(&mut self, mut f: impl FnMut(u64) -> Duration) {
        *self.total += f(self.samples);
        *self.iters_done += self.samples;
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Measurement window (accepted for API compatibility; unused).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, id: impl Display, mut f: impl FnMut(&mut Bencher<'_>)) {
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        let mut b = Bencher {
            samples: self.sample_size,
            total: &mut total,
            iters_done: &mut iters,
        };
        f(&mut b);
        report(&self.name, &id, total, iters);
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: impl FnMut(&mut Bencher<'_>, &I),
    ) {
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        let mut b = Bencher {
            samples: self.sample_size,
            total: &mut total,
            iters_done: &mut iters,
        };
        f(&mut b, input);
        report(&self.name, &id, total, iters);
    }

    /// Ends the group (printing is per-benchmark; nothing to flush).
    pub fn finish(self) {}
}

fn report(group: &str, id: &impl Display, total: Duration, iters: u64) {
    let mean = if iters == 0 {
        Duration::ZERO
    } else {
        total / iters as u32
    };
    println!(
        "{group}/{id}: {:.3} ms/iter ({iters} iters)",
        mean.as_secs_f64() * 1e3
    );
}

/// Mirror of `criterion::Criterion` (configuration container).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Applies CLI configuration (accepted for API compatibility; the
    /// shim has no CLI).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _parent: self,
        }
    }
}

/// Mirror of `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($fun:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($fun(&mut c);)+
        }
    };
}

/// Mirror of `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(4);
        let mut calls = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| calls += 1);
        });
        group.bench_with_input(BenchmarkId::from_parameter("param"), &3u32, |b, &x| {
            b.iter_custom(|iters| {
                calls += iters * u64::from(x);
                Duration::from_micros(iters)
            });
        });
        group.finish();
        assert_eq!(calls, 4 + 4 * 3);
    }
}
