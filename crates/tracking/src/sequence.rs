//! Multi-frame tracking: feature lifetimes across an image sequence.
//!
//! The SD-VBS tracking benchmark is defined over image *sequences*
//! ("extract motion from a sequence of images"); this module adds the
//! bookkeeping a real tracker needs on top of the two-frame KLT core —
//! persistent feature identities, dropping of lost features, and
//! re-detection to maintain the feature population.

use crate::config::TrackingConfig;
use crate::extract::extract_features;
use crate::track::track_features;
use sdvbs_image::Image;
use sdvbs_kernels::features::Feature;
use sdvbs_profile::Profiler;

/// A live track: a feature with a persistent identity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Track {
    /// Stable identifier, unique within one [`Tracker`].
    pub id: u64,
    /// Current column position.
    pub x: f32,
    /// Current row position.
    pub y: f32,
    /// Frames this feature has survived (0 = just detected).
    pub age: usize,
}

/// A stateful multi-frame KLT tracker.
///
/// Feed frames one at a time with [`Tracker::advance`]; the tracker
/// maintains feature identities, drops features that leave the frame or
/// whose Newton iteration fails to converge, and re-detects to keep the
/// population near `config.num_features`.
///
/// # Examples
///
/// ```
/// use sdvbs_profile::Profiler;
/// use sdvbs_synth::frame_sequence;
/// use sdvbs_tracking::{Tracker, TrackingConfig};
///
/// let frames = frame_sequence(96, 72, 3, 4, 1.0, 0.5);
/// let mut tracker = Tracker::new(TrackingConfig::default()).unwrap();
/// let mut prof = Profiler::new();
/// for frame in &frames {
///     tracker.advance(frame, &mut prof);
/// }
/// assert!(!tracker.tracks().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct Tracker {
    config: TrackingConfig,
    tracks: Vec<Track>,
    prev: Option<Image>,
    next_id: u64,
}

impl Tracker {
    /// Creates a tracker with the given configuration.
    ///
    /// # Errors
    ///
    /// Returns the configuration's validation error if it is unusable.
    pub fn new(config: TrackingConfig) -> Result<Self, crate::config::InvalidConfig> {
        config.validate()?;
        Ok(Tracker {
            config,
            tracks: Vec::new(),
            prev: None,
            next_id: 0,
        })
    }

    /// The live tracks after the most recent frame.
    pub fn tracks(&self) -> &[Track] {
        &self.tracks
    }

    /// Total features ever created (ids are dense in `0..created()`).
    pub fn created(&self) -> u64 {
        self.next_id
    }

    /// Rescales the tracker's state to a new frame resolution, so a
    /// stream that degrades to a smaller input size (or recovers back)
    /// can keep its feature identities across the switch. Track
    /// coordinates are scaled into the new resolution and the previous
    /// frame is resampled to match, so the next [`Tracker::advance`]
    /// tracks across the switch instead of panicking on mismatched
    /// dimensions. A no-op before the first frame.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn rescale(&mut self, new_w: usize, new_h: usize) {
        assert!(new_w > 0 && new_h > 0, "rescale needs positive dimensions");
        let Some(prev) = self.prev.take() else {
            return;
        };
        if (prev.width(), prev.height()) == (new_w, new_h) {
            self.prev = Some(prev);
            return;
        }
        let sx = new_w as f32 / prev.width() as f32;
        let sy = new_h as f32 / prev.height() as f32;
        for t in &mut self.tracks {
            t.x *= sx;
            t.y *= sy;
        }
        self.prev = Some(prev.resize_bilinear(new_w, new_h));
    }

    /// Ingests the next frame: tracks existing features into it, drops
    /// lost ones, and re-detects to refill the population. Returns the
    /// number of features dropped this frame.
    pub fn advance(&mut self, frame: &Image, prof: &mut Profiler) -> usize {
        let margin = (self.config.window_radius + 2) as f32;
        let mut dropped = 0usize;
        if let Some(prev) = self.prev.take() {
            assert_eq!(
                (prev.width(), prev.height()),
                (frame.width(), frame.height()),
                "all frames in a sequence must share dimensions"
            );
            let features: Vec<Feature> = self
                .tracks
                .iter()
                .map(|t| Feature {
                    x: t.x,
                    y: t.y,
                    score: 0.0,
                })
                .collect();
            let results = track_features(&prev, frame, &features, &self.config, prof);
            let mut kept = Vec::with_capacity(self.tracks.len());
            for (track, result) in self.tracks.iter().zip(&results) {
                let inside = result.to_x >= margin
                    && result.to_y >= margin
                    && result.to_x < frame.width() as f32 - margin
                    && result.to_y < frame.height() as f32 - margin;
                if result.converged && inside {
                    kept.push(Track {
                        id: track.id,
                        x: result.to_x,
                        y: result.to_y,
                        age: track.age + 1,
                    });
                } else {
                    dropped += 1;
                }
            }
            self.tracks = kept;
        }
        // Top-up: detect fresh features away from the live ones.
        if self.tracks.len() < self.config.num_features {
            let candidates = extract_features(frame, &self.config, prof);
            let min_d2 = self.config.min_distance * self.config.min_distance;
            for c in candidates {
                if self.tracks.len() >= self.config.num_features {
                    break;
                }
                let clear = self
                    .tracks
                    .iter()
                    .all(|t| (t.x - c.x).powi(2) + (t.y - c.y).powi(2) >= min_d2);
                if clear {
                    self.tracks.push(Track {
                        id: self.next_id,
                        x: c.x,
                        y: c.y,
                        age: 0,
                    });
                    self.next_id += 1;
                }
            }
        }
        self.prev = Some(frame.clone());
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdvbs_synth::frame_sequence;

    #[test]
    fn tracks_persist_and_age_across_frames() {
        let frames = frame_sequence(96, 72, 7, 5, 0.8, 0.4);
        let mut tracker = Tracker::new(TrackingConfig::default()).unwrap();
        let mut prof = Profiler::new();
        tracker.advance(&frames[0], &mut prof);
        let initial_ids: Vec<u64> = tracker.tracks().iter().map(|t| t.id).collect();
        assert!(
            initial_ids.len() >= 20,
            "{} initial tracks",
            initial_ids.len()
        );
        for frame in &frames[1..] {
            tracker.advance(frame, &mut prof);
        }
        // Most original features survive this gentle motion with full age.
        let survivors = tracker
            .tracks()
            .iter()
            .filter(|t| initial_ids.contains(&t.id) && t.age == 4)
            .count();
        assert!(
            survivors * 10 >= initial_ids.len() * 6,
            "{survivors}/{} survivors",
            initial_ids.len()
        );
    }

    #[test]
    fn recovered_motion_matches_velocity_per_frame() {
        let (vx, vy) = (1.2f32, -0.6f32);
        let frames = frame_sequence(96, 72, 9, 4, vx, vy);
        let mut tracker = Tracker::new(TrackingConfig::default()).unwrap();
        let mut prof = Profiler::new();
        tracker.advance(&frames[0], &mut prof);
        let before: Vec<Track> = tracker.tracks().to_vec();
        tracker.advance(&frames[1], &mut prof);
        let mut dxs = Vec::new();
        for t in tracker.tracks() {
            if let Some(b) = before.iter().find(|b| b.id == t.id) {
                dxs.push(((t.x - b.x), (t.y - b.y)));
            }
        }
        assert!(dxs.len() >= 15);
        dxs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let (mdx, mdy) = dxs[dxs.len() / 2];
        assert!((mdx - vx).abs() < 0.3, "dx {mdx}");
        assert!((mdy - vy).abs() < 0.3, "dy {mdy}");
    }

    #[test]
    fn features_leaving_the_frame_are_dropped_and_replaced() {
        // Fast motion pushes content off one edge; the tracker must drop
        // exiting features and re-detect entering ones.
        let frames = frame_sequence(96, 72, 11, 6, 6.0, 0.0);
        let mut tracker = Tracker::new(TrackingConfig::default()).unwrap();
        let mut prof = Profiler::new();
        tracker.advance(&frames[0], &mut prof);
        let mut total_dropped = 0;
        for frame in &frames[1..] {
            total_dropped += tracker.advance(frame, &mut prof);
        }
        assert!(total_dropped > 0, "no features were ever dropped");
        // Population stays healthy thanks to re-detection.
        assert!(
            tracker.tracks().len() >= 20,
            "{} live tracks",
            tracker.tracks().len()
        );
        // New ids were issued beyond the initial batch.
        assert!(tracker.created() > tracker.tracks().len() as u64);
    }

    #[test]
    fn ids_are_unique_and_stable() {
        let frames = frame_sequence(80, 64, 13, 3, 1.0, 1.0);
        let mut tracker = Tracker::new(TrackingConfig::default()).unwrap();
        let mut prof = Profiler::new();
        for frame in &frames {
            tracker.advance(frame, &mut prof);
            let mut ids: Vec<u64> = tracker.tracks().iter().map(|t| t.id).collect();
            let n = ids.len();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), n, "duplicate track ids");
        }
    }

    #[test]
    fn rescale_carries_tracks_across_a_resolution_switch() {
        // Simulate a degrade switch: full-resolution frames, then the
        // same scene at half resolution. rescale() keeps identities.
        let full = frame_sequence(128, 96, 21, 6, 1.0, 0.5);
        let mut tracker = Tracker::new(TrackingConfig::default()).unwrap();
        let mut prof = Profiler::new();
        tracker.advance(&full[0], &mut prof);
        tracker.advance(&full[1], &mut prof);
        let before: Vec<u64> = tracker.tracks().iter().map(|t| t.id).collect();
        assert!(before.len() >= 20, "{} tracks before switch", before.len());
        tracker.rescale(64, 48);
        for frame in &full[2..] {
            tracker.advance(&frame.resize_bilinear(64, 48), &mut prof);
        }
        // A solid share of pre-switch identities survives the switch and
        // the half-resolution frames that follow.
        let survivors = tracker
            .tracks()
            .iter()
            .filter(|t| before.contains(&t.id))
            .count();
        assert!(
            survivors * 10 >= before.len() * 4,
            "{survivors}/{} survivors across the switch",
            before.len()
        );
        // Coordinates are in the new resolution.
        for t in tracker.tracks() {
            assert!(t.x < 64.0 && t.y < 48.0, "track off-frame: {t:?}");
        }
    }

    #[test]
    fn rescale_before_any_frame_is_a_no_op() {
        let mut tracker = Tracker::new(TrackingConfig::default()).unwrap();
        tracker.rescale(64, 48);
        let mut prof = Profiler::new();
        tracker.advance(&Image::filled(96, 72, 1.0), &mut prof);
        assert!(tracker.prev.is_some());
    }

    #[test]
    #[should_panic(expected = "share dimensions")]
    fn mismatched_frame_sizes_panic() {
        let mut tracker = Tracker::new(TrackingConfig::default()).unwrap();
        let mut prof = Profiler::new();
        tracker.advance(&Image::filled(96, 72, 1.0), &mut prof);
        tracker.advance(&Image::filled(80, 72, 1.0), &mut prof);
    }
}
