//! SD-VBS benchmark 2: **Feature Tracking** — the Kanade–Lucas–Tomasi
//! (KLT) tracker.
//!
//! Tracking extracts motion information from an image sequence in three
//! phases, exactly as the paper describes (§II-B):
//!
//! 1. **Image processing** — noise filtering (`GaussianFilter`), gradient
//!    images (`Gradient`), and integral-image/windowed sums
//!    (`IntegralImage`, `AreaSum`): pixel-granularity, data-intensive, the
//!    ~55% preprocessing share of Figure 3.
//! 2. **Feature extraction** — the Shi–Tomasi "good features to track"
//!    criterion: the smaller eigenvalue of the windowed structure tensor,
//!    local-maxima selection and spatial suppression.
//! 3. **Feature tracking** — pyramidal Lucas–Kanade: per feature, per
//!    pyramid level, iterate the 2×2 normal equations (`MatrixInversion`)
//!    to estimate the displacement.
//!
//! # Examples
//!
//! ```
//! use sdvbs_profile::Profiler;
//! use sdvbs_synth::frame_pair;
//! use sdvbs_tracking::{track_pair, TrackingConfig};
//!
//! let (a, b) = frame_pair(96, 72, 42, 2.0, 1.0);
//! let cfg = TrackingConfig::default();
//! let mut prof = Profiler::new();
//! let tracks = track_pair(&a, &b, &cfg, &mut prof);
//! assert!(!tracks.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod error;
mod extract;
mod sequence;
mod track;

pub use config::{InvalidConfig, TrackingConfig};
pub use error::TrackingError;
pub use extract::{extract_features, try_extract_features};
pub use sequence::{Track, Tracker};
pub use track::{track_features, track_pair, try_track_features, try_track_pair, TrackedFeature};

pub use sdvbs_kernels::features::Feature;
