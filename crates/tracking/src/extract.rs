//! Feature extraction: Shi–Tomasi "good features to track".

use crate::config::TrackingConfig;
use crate::error::TrackingError;
use sdvbs_image::Image;
use sdvbs_kernels::conv::gaussian_blur;
use sdvbs_kernels::features::{local_maxima, spatial_suppression, Feature};
use sdvbs_kernels::gradient::{gradient_x, gradient_y};
use sdvbs_kernels::integral::IntegralImage;
use sdvbs_profile::Profiler;

/// Extracts up to `cfg.num_features` trackable features from `img`.
///
/// The pipeline is the SD-VBS decomposition: Gaussian smoothing →
/// gradients → integral images of the gradient products → windowed sums
/// (area sum) → min-eigenvalue score → local maxima + spatial suppression.
///
/// Kernel attribution: `GaussianFilter`, `Gradient`, `IntegralImage`,
/// `AreaSum`.
///
/// # Panics
///
/// Panics if `cfg` is invalid or the image is smaller than the window.
/// This is the thin panicking wrapper over [`try_extract_features`] kept
/// for call sites with pre-validated inputs.
pub fn extract_features(img: &Image, cfg: &TrackingConfig, prof: &mut Profiler) -> Vec<Feature> {
    match try_extract_features(img, cfg, prof) {
        Ok(feats) => feats,
        Err(e) => panic!("extract_features: {e}"),
    }
}

/// Extracts features, rejecting degenerate inputs with a typed error.
///
/// # Errors
///
/// * [`TrackingError::InvalidConfig`] for an out-of-range configuration;
/// * [`TrackingError::Empty`] / [`TrackingError::ImageTooSmall`] for
///   images the window cannot fit in;
/// * [`TrackingError::NonFinitePixels`] for NaN/Inf pixels.
pub fn try_extract_features(
    img: &Image,
    cfg: &TrackingConfig,
    prof: &mut Profiler,
) -> Result<Vec<Feature>, TrackingError> {
    cfg.validate()
        .map_err(|e| TrackingError::InvalidConfig(e.to_string()))?;
    if img.is_empty() {
        return Err(TrackingError::Empty);
    }
    let r = cfg.window_radius;
    let min = 4 * r + 5;
    let side = img.width().min(img.height());
    if side < min {
        return Err(TrackingError::ImageTooSmall { min, side });
    }
    if !img.all_finite() {
        return Err(TrackingError::NonFinitePixels);
    }
    Ok(extract_pipeline(img, cfg, prof))
}

/// The validated Shi–Tomasi pipeline.
fn extract_pipeline(img: &Image, cfg: &TrackingConfig, prof: &mut Profiler) -> Vec<Feature> {
    let r = cfg.window_radius;
    let smooth = prof.kernel("GaussianFilter", |_| gaussian_blur(img, cfg.sigma));
    let (gx, gy) = prof.kernel("Gradient", |_| (gradient_x(&smooth), gradient_y(&smooth)));
    let w = img.width();
    let h = img.height();
    let (ii_xx, ii_xy, ii_yy) = prof.kernel("IntegralImage", |_| {
        let ixx = Image::from_fn(w, h, |x, y| gx.get(x, y) * gx.get(x, y));
        let ixy = Image::from_fn(w, h, |x, y| gx.get(x, y) * gy.get(x, y));
        let iyy = Image::from_fn(w, h, |x, y| gy.get(x, y) * gy.get(x, y));
        (
            IntegralImage::new(&ixx),
            IntegralImage::new(&ixy),
            IntegralImage::new(&iyy),
        )
    });
    let response = prof.kernel("AreaSum", |_| {
        Image::from_fn(w, h, |x, y| {
            let x0 = x.saturating_sub(r);
            let y0 = y.saturating_sub(r);
            let x1 = (x + r + 1).min(w);
            let y1 = (y + r + 1).min(h);
            let (ww, wh) = (x1 - x0, y1 - y0);
            let a = ii_xx.sum(x0, y0, ww, wh) as f32;
            let b = ii_xy.sum(x0, y0, ww, wh) as f32;
            let c = ii_yy.sum(x0, y0, ww, wh) as f32;
            let half_trace = 0.5 * (a + c);
            let disc = (half_trace * half_trace - (a * c - b * b)).max(0.0).sqrt();
            half_trace - disc
        })
    });
    let threshold = response.max() * cfg.quality_level;
    let candidates = local_maxima(&response, threshold, r);
    spatial_suppression(&candidates, cfg.min_distance, cfg.num_features)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdvbs_synth::textured_image;

    #[test]
    fn finds_features_on_texture() {
        let img = textured_image(96, 72, 3);
        let cfg = TrackingConfig::default();
        let mut prof = Profiler::new();
        let feats = extract_features(&img, &cfg, &mut prof);
        assert!(feats.len() >= 20, "only {} features", feats.len());
        assert!(feats.len() <= cfg.num_features);
    }

    #[test]
    fn features_respect_min_distance() {
        let img = textured_image(96, 72, 4);
        let cfg = TrackingConfig {
            min_distance: 10.0,
            ..TrackingConfig::default()
        };
        let mut prof = Profiler::new();
        let feats = extract_features(&img, &cfg, &mut prof);
        for i in 0..feats.len() {
            for j in 0..i {
                let d2 = (feats[i].x - feats[j].x).powi(2) + (feats[i].y - feats[j].y).powi(2);
                assert!(d2 >= 100.0 - 1e-3, "features {i},{j} too close");
            }
        }
    }

    #[test]
    fn flat_image_yields_no_features() {
        let img = Image::filled(64, 64, 100.0);
        let cfg = TrackingConfig::default();
        let mut prof = Profiler::new();
        let feats = extract_features(&img, &cfg, &mut prof);
        assert!(
            feats.is_empty(),
            "found {} features on flat image",
            feats.len()
        );
    }

    #[test]
    fn corner_of_square_is_a_feature() {
        let img = Image::from_fn(64, 64, |x, y| {
            if (20..44).contains(&x) && (20..44).contains(&y) {
                220.0
            } else {
                30.0
            }
        });
        let cfg = TrackingConfig {
            quality_level: 0.2,
            ..TrackingConfig::default()
        };
        let mut prof = Profiler::new();
        let feats = extract_features(&img, &cfg, &mut prof);
        assert!(!feats.is_empty());
        for &(cx, cy) in &[(20.0f32, 20.0f32), (43.0, 43.0)] {
            assert!(
                feats
                    .iter()
                    .any(|f| (f.x - cx).abs() < 4.0 && (f.y - cy).abs() < 4.0),
                "no feature near ({cx},{cy}): {feats:?}"
            );
        }
    }

    #[test]
    fn kernel_attribution_is_complete() {
        let img = textured_image(64, 48, 5);
        let mut prof = Profiler::new();
        prof.run(|p| extract_features(&img, &TrackingConfig::default(), p));
        let report = prof.report();
        for k in ["GaussianFilter", "Gradient", "IntegralImage", "AreaSum"] {
            assert!(report.occupancy(k).is_some(), "kernel {k} missing");
        }
    }
}
