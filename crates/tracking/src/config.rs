//! Tracker configuration.

use std::error::Error;
use std::fmt;

/// Error returned for invalid [`TrackingConfig`] parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidConfig(pub(crate) String);

impl fmt::Display for InvalidConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid tracking configuration: {}", self.0)
    }
}

impl Error for InvalidConfig {}

/// Configuration of the KLT pipeline (feature extraction + pyramidal
/// Lucas–Kanade).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackingConfig {
    /// Maximum number of features to extract.
    pub num_features: usize,
    /// Half-size of the tracking/aggregation window (window is
    /// `2r+1 × 2r+1`).
    pub window_radius: usize,
    /// Pyramid levels for coarse-to-fine tracking.
    pub pyramid_levels: usize,
    /// Newton iterations per pyramid level.
    pub max_iterations: usize,
    /// Smoothing sigma applied before gradients (the "noise filtering"
    /// stage).
    pub sigma: f32,
    /// Minimum min-eigenvalue response for a feature, as a fraction of the
    /// strongest response in the frame.
    pub quality_level: f32,
    /// Minimum distance in pixels between selected features.
    pub min_distance: f32,
    /// Convergence threshold on the per-iteration update norm.
    pub epsilon: f32,
}

impl Default for TrackingConfig {
    /// KLT defaults comparable to the SD-VBS configuration.
    fn default() -> Self {
        TrackingConfig {
            num_features: 100,
            window_radius: 4,
            pyramid_levels: 3,
            max_iterations: 10,
            sigma: 1.0,
            quality_level: 0.05,
            min_distance: 6.0,
            epsilon: 0.01,
        }
    }
}

impl TrackingConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidConfig`] if any count is zero, `sigma <= 0`,
    /// `quality_level` is outside `(0, 1]`, or `epsilon <= 0`.
    pub fn validate(&self) -> Result<(), InvalidConfig> {
        if self.num_features == 0 {
            return Err(InvalidConfig("num_features must be positive".into()));
        }
        if self.window_radius == 0 {
            return Err(InvalidConfig("window_radius must be positive".into()));
        }
        if self.pyramid_levels == 0 {
            return Err(InvalidConfig("pyramid_levels must be positive".into()));
        }
        if self.max_iterations == 0 {
            return Err(InvalidConfig("max_iterations must be positive".into()));
        }
        let positive = |v: f32| v.partial_cmp(&0.0) == Some(std::cmp::Ordering::Greater);
        if !positive(self.sigma) {
            return Err(InvalidConfig(format!(
                "sigma must be positive, got {}",
                self.sigma
            )));
        }
        if !(positive(self.quality_level) && self.quality_level <= 1.0) {
            return Err(InvalidConfig(format!(
                "quality_level must be in (0, 1], got {}",
                self.quality_level
            )));
        }
        if !positive(self.epsilon) {
            return Err(InvalidConfig(format!(
                "epsilon must be positive, got {}",
                self.epsilon
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        TrackingConfig::default().validate().unwrap();
    }

    #[test]
    fn invalid_fields_are_caught() {
        let base = TrackingConfig::default();
        for cfg in [
            TrackingConfig {
                num_features: 0,
                ..base
            },
            TrackingConfig {
                window_radius: 0,
                ..base
            },
            TrackingConfig {
                pyramid_levels: 0,
                ..base
            },
            TrackingConfig {
                max_iterations: 0,
                ..base
            },
            TrackingConfig { sigma: 0.0, ..base },
            TrackingConfig {
                quality_level: 0.0,
                ..base
            },
            TrackingConfig {
                quality_level: 1.5,
                ..base
            },
            TrackingConfig {
                epsilon: -1.0,
                ..base
            },
        ] {
            assert!(cfg.validate().is_err(), "{cfg:?} should be invalid");
        }
    }

    #[test]
    fn error_display_names_field() {
        let cfg = TrackingConfig {
            sigma: -2.0,
            ..TrackingConfig::default()
        };
        let e = cfg.validate().unwrap_err();
        assert!(e.to_string().contains("sigma"));
    }
}
