//! Typed errors for the fallible tracking entries.

use std::error::Error;
use std::fmt;

/// Errors from [`crate::try_extract_features`] / [`crate::try_track_pair`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TrackingError {
    /// The two frames differ in size.
    DimensionMismatch {
        /// First frame dimensions.
        a: (usize, usize),
        /// Second frame dimensions.
        b: (usize, usize),
    },
    /// A frame has zero pixels.
    Empty,
    /// A frame is too small for the configured tracking window.
    ImageTooSmall {
        /// Minimum side the configuration requires.
        min: usize,
        /// The smaller offending side.
        side: usize,
    },
    /// A pixel in either frame is NaN or infinite.
    NonFinitePixels,
    /// The tracking configuration is out of range.
    InvalidConfig(String),
}

impl fmt::Display for TrackingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrackingError::DimensionMismatch { a, b } => write!(
                f,
                "frames differ in size: {}x{} vs {}x{}",
                a.0, a.1, b.0, b.1
            ),
            TrackingError::Empty => write!(f, "frame has zero pixels"),
            TrackingError::ImageTooSmall { min, side } => {
                write!(f, "frame side {side} below the {min}-pixel minimum")
            }
            TrackingError::NonFinitePixels => write!(f, "frames contain non-finite pixels"),
            TrackingError::InvalidConfig(msg) => {
                write!(f, "invalid tracking configuration: {msg}")
            }
        }
    }
}

impl Error for TrackingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        assert!(TrackingError::Empty.to_string().contains("zero pixels"));
        assert!(TrackingError::NonFinitePixels
            .to_string()
            .contains("non-finite"));
    }
}
