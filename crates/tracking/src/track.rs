//! Pyramidal Lucas–Kanade feature tracking.

use crate::config::TrackingConfig;
use crate::error::TrackingError;
use sdvbs_image::Image;
use sdvbs_kernels::features::Feature;
use sdvbs_kernels::gradient::{central_diff_x, central_diff_y};
use sdvbs_kernels::pyramid::Pyramid;
use sdvbs_profile::Profiler;

/// The result of tracking one feature from the first frame into the
/// second.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackedFeature {
    /// Feature position in the first frame.
    pub from: Feature,
    /// Estimated position in the second frame.
    pub to_x: f32,
    /// Estimated row in the second frame.
    pub to_y: f32,
    /// Whether the Newton iteration converged at the finest level.
    pub converged: bool,
}

impl TrackedFeature {
    /// Displacement `(dx, dy)` from the first frame to the second.
    pub fn motion(&self) -> (f32, f32) {
        (self.to_x - self.from.x, self.to_y - self.from.y)
    }
}

/// Tracks `features` from frame `a` into frame `b` with pyramidal
/// Lucas–Kanade.
///
/// Kernel attribution: `GaussianFilter` (pyramid construction), `Gradient`
/// (per-level derivative images), `MatrixInversion` (the per-feature 2×2
/// normal-equation solves).
///
/// # Panics
///
/// Panics if the frames differ in size or `cfg` is invalid. This is the
/// thin panicking wrapper over [`try_track_features`] kept for call sites
/// with pre-validated inputs.
pub fn track_features(
    a: &Image,
    b: &Image,
    features: &[Feature],
    cfg: &TrackingConfig,
    prof: &mut Profiler,
) -> Vec<TrackedFeature> {
    match try_track_features(a, b, features, cfg, prof) {
        Ok(tracks) => tracks,
        Err(e) => panic!("track_features: {e}"),
    }
}

/// Tracks `features` from `a` into `b`, rejecting degenerate inputs with a
/// typed error instead of panicking.
///
/// An empty `features` slice is *not* an error: tracking zero features is
/// a valid (empty) result, and the caller decides whether that is a
/// quality failure.
///
/// # Errors
///
/// * [`TrackingError::InvalidConfig`] for an out-of-range configuration;
/// * [`TrackingError::DimensionMismatch`] if the frames differ in size;
/// * [`TrackingError::Empty`] for zero-pixel frames;
/// * [`TrackingError::NonFinitePixels`] for NaN/Inf pixels.
pub fn try_track_features(
    a: &Image,
    b: &Image,
    features: &[Feature],
    cfg: &TrackingConfig,
    prof: &mut Profiler,
) -> Result<Vec<TrackedFeature>, TrackingError> {
    cfg.validate()
        .map_err(|e| TrackingError::InvalidConfig(e.to_string()))?;
    if (a.width(), a.height()) != (b.width(), b.height()) {
        return Err(TrackingError::DimensionMismatch {
            a: (a.width(), a.height()),
            b: (b.width(), b.height()),
        });
    }
    if a.is_empty() {
        return Err(TrackingError::Empty);
    }
    if !a.all_finite() || !b.all_finite() {
        return Err(TrackingError::NonFinitePixels);
    }
    Ok(track_pipeline(a, b, features, cfg, prof))
}

/// The validated pyramidal Lucas–Kanade hot path.
fn track_pipeline(
    a: &Image,
    b: &Image,
    features: &[Feature],
    cfg: &TrackingConfig,
    prof: &mut Profiler,
) -> Vec<TrackedFeature> {
    // Pyramid construction is Gaussian filtering + decimation.
    let (pyr_a, pyr_b) = prof.kernel("GaussianFilter", |_| {
        (
            Pyramid::new(a, cfg.pyramid_levels, cfg.sigma),
            Pyramid::new(b, cfg.pyramid_levels, cfg.sigma),
        )
    });
    let levels = pyr_a.levels().min(pyr_b.levels());
    // Gradients of the *first* frame per level (classic KLT linearizes
    // around frame a).
    let grads: Vec<(Image, Image)> = prof.kernel("Gradient", |_| {
        (0..levels)
            .map(|l| {
                (
                    central_diff_x(pyr_a.level(l)),
                    central_diff_y(pyr_a.level(l)),
                )
            })
            .collect()
    });
    let r = cfg.window_radius as isize;
    features
        .iter()
        .map(|f| {
            // Start at the coarsest level with zero displacement.
            let mut dx = 0.0f32;
            let mut dy = 0.0f32;
            let mut converged = false;
            let _ = converged;
            for level in (0..levels).rev() {
                let scale = 1.0 / (1 << level) as f32;
                let img_a = pyr_a.level(level);
                let img_b = pyr_b.level(level);
                let (gx, gy) = &grads[level];
                let fx = f.x * scale;
                let fy = f.y * scale;
                // The per-feature Newton iterations — normal-equation
                // assembly plus the closed-form 2x2 solve — are the
                // paper's "Matrix Inversion" kernel (it operates at
                // feature granularity, one small system per feature per
                // level).
                let (ndx, ndy, nconv) = prof.kernel("MatrixInversion", |_| {
                    let mut dx = dx;
                    let mut dy = dy;
                    let mut converged = false;
                    for _ in 0..cfg.max_iterations {
                        // Accumulate the 2x2 structure tensor and mismatch
                        // vector over the window.
                        let mut gxx = 0.0f32;
                        let mut gxy = 0.0f32;
                        let mut gyy = 0.0f32;
                        let mut ex = 0.0f32;
                        let mut ey = 0.0f32;
                        for wy in -r..=r {
                            for wx in -r..=r {
                                let ax = fx + wx as f32;
                                let ay = fy + wy as f32;
                                let ia = img_a.sample_bilinear(ax, ay);
                                let ib = img_b.sample_bilinear(ax + dx, ay + dy);
                                let gxv = gx.sample_bilinear(ax, ay);
                                let gyv = gy.sample_bilinear(ax, ay);
                                let diff = ia - ib;
                                gxx += gxv * gxv;
                                gxy += gxv * gyv;
                                gyy += gyv * gyv;
                                ex += diff * gxv;
                                ey += diff * gyv;
                            }
                        }
                        let det = gxx * gyy - gxy * gxy;
                        if det.abs() < 1e-6 {
                            break;
                        }
                        let inv_det = 1.0 / det;
                        let ux = inv_det * (gyy * ex - gxy * ey);
                        let uy = inv_det * (gxx * ey - gxy * ex);
                        dx += ux;
                        dy += uy;
                        if (ux * ux + uy * uy).sqrt() < cfg.epsilon {
                            converged = true;
                            break;
                        }
                    }
                    (dx, dy, converged)
                });
                dx = ndx;
                dy = ndy;
                converged = nconv;
                if level > 0 {
                    dx *= 2.0;
                    dy *= 2.0;
                }
            }
            TrackedFeature {
                from: *f,
                to_x: f.x + dx,
                to_y: f.y + dy,
                converged,
            }
        })
        .collect()
}

/// Convenience wrapper: extracts features in `a` and tracks them into `b`
/// (the full two-frame SD-VBS tracking pipeline).
///
/// # Panics
///
/// Same conditions as [`crate::extract_features`] and [`track_features`]; thin
/// panicking wrapper over [`try_track_pair`].
pub fn track_pair(
    a: &Image,
    b: &Image,
    cfg: &TrackingConfig,
    prof: &mut Profiler,
) -> Vec<TrackedFeature> {
    match try_track_pair(a, b, cfg, prof) {
        Ok(tracks) => tracks,
        Err(e) => panic!("track_pair: {e}"),
    }
}

/// The fallible two-frame pipeline: extract in `a`, track into `b`.
///
/// # Errors
///
/// Same conditions as [`try_extract_features`] and [`try_track_features`].
pub fn try_track_pair(
    a: &Image,
    b: &Image,
    cfg: &TrackingConfig,
    prof: &mut Profiler,
) -> Result<Vec<TrackedFeature>, TrackingError> {
    let feats = crate::extract::try_extract_features(a, cfg, prof)?;
    try_track_features(a, b, &feats, cfg, prof)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdvbs_synth::frame_pair;

    fn median(mut v: Vec<f32>) -> f32 {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    }

    #[test]
    fn recovers_integer_translation() {
        let (a, b) = frame_pair(96, 72, 11, 3.0, 2.0);
        let cfg = TrackingConfig::default();
        let mut prof = Profiler::new();
        let tracks = track_pair(&a, &b, &cfg, &mut prof);
        assert!(tracks.len() >= 10, "too few tracks: {}", tracks.len());
        let dx = median(tracks.iter().map(|t| t.motion().0).collect());
        let dy = median(tracks.iter().map(|t| t.motion().1).collect());
        assert!((dx - 3.0).abs() < 0.3, "dx {dx}");
        assert!((dy - 2.0).abs() < 0.3, "dy {dy}");
    }

    #[test]
    fn recovers_subpixel_translation() {
        let (a, b) = frame_pair(96, 72, 13, 1.5, -0.75);
        let cfg = TrackingConfig::default();
        let mut prof = Profiler::new();
        let tracks = track_pair(&a, &b, &cfg, &mut prof);
        let dx = median(tracks.iter().map(|t| t.motion().0).collect());
        let dy = median(tracks.iter().map(|t| t.motion().1).collect());
        assert!((dx - 1.5).abs() < 0.3, "dx {dx}");
        assert!((dy + 0.75).abs() < 0.3, "dy {dy}");
    }

    #[test]
    fn identical_frames_give_zero_motion() {
        let (a, _) = frame_pair(80, 60, 17, 0.0, 0.0);
        let cfg = TrackingConfig::default();
        let mut prof = Profiler::new();
        let tracks = track_pair(&a, &a, &cfg, &mut prof);
        for t in &tracks {
            let (dx, dy) = t.motion();
            assert!(
                dx.abs() < 0.05 && dy.abs() < 0.05,
                "nonzero motion {dx},{dy}"
            );
        }
    }

    #[test]
    fn larger_motion_needs_pyramid() {
        // 8-pixel motion exceeds the 4-pixel window: only the pyramid makes
        // this trackable.
        let (a, b) = frame_pair(128, 96, 19, 8.0, 0.0);
        let cfg = TrackingConfig {
            pyramid_levels: 4,
            ..TrackingConfig::default()
        };
        let mut prof = Profiler::new();
        let tracks = track_pair(&a, &b, &cfg, &mut prof);
        let dx = median(tracks.iter().map(|t| t.motion().0).collect());
        assert!((dx - 8.0).abs() < 0.8, "dx {dx}");
    }

    #[test]
    fn most_tracks_converge() {
        let (a, b) = frame_pair(96, 72, 23, 1.0, 1.0);
        let cfg = TrackingConfig::default();
        let mut prof = Profiler::new();
        let tracks = track_pair(&a, &b, &cfg, &mut prof);
        let conv = tracks.iter().filter(|t| t.converged).count();
        assert!(conv * 10 >= tracks.len() * 7, "{conv}/{}", tracks.len());
    }

    #[test]
    fn kernel_attribution_includes_matrix_inversion() {
        let (a, b) = frame_pair(64, 48, 29, 1.0, 0.0);
        let mut prof = Profiler::new();
        prof.run(|p| track_pair(&a, &b, &TrackingConfig::default(), p));
        let report = prof.report();
        assert!(report.occupancy("MatrixInversion").is_some());
        assert!(report.occupancy("GaussianFilter").is_some());
    }

    #[test]
    fn motion_accessor() {
        let t = TrackedFeature {
            from: Feature {
                x: 10.0,
                y: 20.0,
                score: 1.0,
            },
            to_x: 12.5,
            to_y: 19.0,
            converged: true,
        };
        assert_eq!(t.motion(), (2.5, -1.0));
    }
}
