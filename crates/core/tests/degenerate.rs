//! Degenerate-input properties for the fallible benchmark path.
//!
//! The robustness contract: no input a harness can construct — 0×0
//! frames, 1×1 frames, arbitrary tiny sizes, NaN-poisoned pixels — may
//! panic inside [`Benchmark::try_run_with`]. Degenerate sizes are clamped
//! up to each pipeline's minimum and must succeed; poisoned inputs must
//! surface as a typed [`SdvbsError`], never an abort. Panics are trapped
//! with `catch_unwind` so a violation fails the property with the
//! benchmark named instead of killing the test binary.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use sdvbs_core::substrate::profile::Profiler;
use sdvbs_core::{
    all_benchmarks, clear_poison, set_poison, Benchmark, ExecPolicy, InputSize, PoisonSpec,
    RunOutcome, SdvbsError,
};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Runs one benchmark through the fallible path, trapping panics.
fn try_cell(
    bench: &(dyn Benchmark + Send + Sync),
    size: InputSize,
    seed: u64,
) -> Result<Result<RunOutcome, SdvbsError>, String> {
    catch_unwind(AssertUnwindSafe(|| {
        let mut prof = Profiler::new();
        bench.try_run_with(size, seed, ExecPolicy::Serial, &mut prof)
    }))
    .map_err(|_| format!("{} panicked", bench.info().name))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Arbitrary tiny sizes — including the fully degenerate 0×0 and 1×1 —
    /// succeed through every benchmark: each pipeline clamps its synthetic
    /// input up to its own minimum instead of panicking on an impossible
    /// geometry.
    #[test]
    fn tiny_and_zero_sizes_never_panic(
        width in 0usize..4,
        height in 0usize..4,
        seed in 0u64..1_000,
    ) {
        clear_poison();
        let size = InputSize::Custom { width, height };
        for bench in all_benchmarks() {
            let result = try_cell(bench.as_ref(), size, seed);
            let outcome = match result {
                Ok(outcome) => outcome,
                Err(msg) => return Err(TestCaseError::fail(msg)),
            };
            prop_assert!(
                outcome.is_ok(),
                "{} must clamp {}x{} up, got {:?}",
                bench.info().name,
                width,
                height,
                outcome.err()
            );
        }
    }

    /// NaN-poisoned inputs surface as a typed error from every benchmark:
    /// the poison flows through the kernels' finiteness validation instead
    /// of propagating NaN into results or panicking.
    #[test]
    fn nan_poisoned_inputs_yield_typed_errors(
        stride in 1usize..64,
        seed in 0u64..1_000,
    ) {
        for bench in all_benchmarks() {
            set_poison(PoisonSpec { stride, seed });
            let result = try_cell(
                bench.as_ref(),
                InputSize::Custom { width: 32, height: 24 },
                seed,
            );
            clear_poison();
            let outcome = match result {
                Ok(outcome) => outcome,
                Err(msg) => return Err(TestCaseError::fail(msg)),
            };
            prop_assert!(
                outcome.is_err(),
                "{} must reject NaN input with a typed error, got {:?}",
                bench.info().name,
                outcome.ok()
            );
        }
    }

    /// A single-color (zero-contrast) scene is a valid input everywhere:
    /// featureless, but never a panic and never a NaN quality score.
    #[test]
    fn featureless_scenes_produce_finite_outcomes(seed in 0u64..1_000) {
        clear_poison();
        for bench in all_benchmarks() {
            let result = try_cell(
                bench.as_ref(),
                InputSize::Custom { width: 1, height: 1 },
                seed,
            );
            let outcome = match result {
                Ok(outcome) => outcome,
                Err(msg) => return Err(TestCaseError::fail(msg)),
            };
            let outcome = match outcome {
                Ok(o) => o,
                Err(e) => return Err(TestCaseError::fail(format!(
                    "{}: {e}", bench.info().name
                ))),
            };
            if let Some(q) = outcome.quality {
                prop_assert!(
                    q.is_finite(),
                    "{} quality must be finite, got {q}",
                    bench.info().name
                );
            }
        }
    }
}
