//! Input-set dumping: write the synthetic inputs of every benchmark to
//! disk as netpbm files, mirroring the original suite's distributed input
//! corpus ("a spectrum of input sets" the user can inspect).

use crate::input::InputSize;
use sdvbs_image::{write_pgm, Image, ImageError};
use std::path::Path;

/// Writes the image inputs every benchmark would generate for
/// `(size, seed)` into `dir` as PGM files. Returns the file names
/// written (relative to `dir`).
///
/// Non-image inputs (the robot world, SVM vectors) are summarized in a
/// `manifest.txt` instead.
///
/// # Errors
///
/// Returns the underlying [`ImageError`] on I/O failure.
pub fn dump_inputs(
    size: InputSize,
    seed: u64,
    dir: impl AsRef<Path>,
) -> Result<Vec<String>, ImageError> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir).map_err(ImageError::from)?;
    let (w, h) = size.dims();
    let mut written = Vec::new();
    let mut save = |name: &str, img: &Image| -> Result<(), ImageError> {
        write_pgm(img, dir.join(name))?;
        written.push(name.to_string());
        Ok(())
    };
    // Disparity: stereo pair + ground truth.
    let stereo = sdvbs_synth::stereo_pair(w.max(48), h.max(36), seed);
    save("disparity_left.pgm", &stereo.left)?;
    save("disparity_right.pgm", &stereo.right)?;
    save("disparity_truth.pgm", &stereo.truth.normalized_to_255())?;
    // Tracking: frame pair.
    let (a, b) = sdvbs_synth::frame_pair(w.max(64), h.max(48), seed, 1.8, 1.2);
    save("tracking_frame0.pgm", &a)?;
    save("tracking_frame1.pgm", &b)?;
    // Segmentation scene + label map.
    let scene = sdvbs_synth::segmentable_scene(w.max(24), h.max(24), seed, 4);
    save("segmentation_scene.pgm", &scene.image)?;
    let labels = Image::from_fn(scene.image.width(), scene.image.height(), |x, y| {
        scene.labels[y * scene.image.width() + x] as f32 * (255.0 / 3.0)
    });
    save("segmentation_labels.pgm", &labels)?;
    // SIFT texture.
    save(
        "sift_scene.pgm",
        &sdvbs_synth::textured_image(w.max(32), h.max(32), seed),
    )?;
    // Face scene.
    let faces = sdvbs_synth::face_scene(w.max(64), h.max(64), seed, 3);
    save("facedetect_scene.pgm", &faces.image)?;
    // Stitch pair.
    let pair = sdvbs_synth::overlapping_pair(
        w.max(64),
        h.max(48),
        seed,
        0.03,
        w.max(64) as f32 * 0.1,
        4.0,
    );
    save("stitch_view_a.pgm", &pair.a)?;
    save("stitch_view_b.pgm", &pair.b)?;
    // Texture swatches.
    save(
        "texture_stochastic.pgm",
        &sdvbs_synth::texture_swatch(64, 64, seed, sdvbs_synth::TextureKind::Stochastic),
    )?;
    save(
        "texture_structural.pgm",
        &sdvbs_synth::texture_swatch(64, 64, seed, sdvbs_synth::TextureKind::Structural),
    )?;
    // Manifest covering the non-image inputs.
    let world = sdvbs_localization::World::generate(&sdvbs_localization::WorldConfig {
        seed: seed ^ 0x77_6f72_6c64,
        ..sdvbs_localization::WorldConfig::default()
    });
    let manifest = format!(
        "SD-VBS synthetic input set\nsize: {size}\nseed: {seed}\n\n\
         localization: 20x20 m world, {} landmarks, 40-step trajectory\n\
         svm: gaussian clusters, {}x64 working set\n\
         face ground truth: {:?}\n",
        world.landmarks().len(),
        ((60.0 * size.relative_pixels()).round() as usize).clamp(80, 500),
        faces.faces,
    );
    std::fs::write(dir.join("manifest.txt"), manifest).map_err(ImageError::from)?;
    written.push("manifest.txt".to_string());
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dump_writes_all_inputs_and_is_readable() {
        let dir = std::env::temp_dir().join(format!("sdvbs_dump_{}", std::process::id()));
        let written = dump_inputs(
            InputSize::Custom {
                width: 64,
                height: 48,
            },
            3,
            &dir,
        )
        .unwrap();
        assert!(written.len() >= 12, "only {} files written", written.len());
        // Every PGM reads back.
        for name in &written {
            if name.ends_with(".pgm") {
                let img = sdvbs_image::read_pgm(dir.join(name)).unwrap();
                assert!(!img.is_empty(), "{name} is empty");
            }
        }
        assert!(written.contains(&"manifest.txt".to_string()));
        std::fs::remove_dir_all(&dir).ok();
    }
}
