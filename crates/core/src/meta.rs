//! Benchmark metadata: the classification of Tables I and II.

use std::fmt;

/// The paper's four vision concentration areas (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConcentrationArea {
    /// "Motion, Tracking and Stereo Vision".
    MotionTrackingStereo,
    /// "Image Analysis".
    ImageAnalysis,
    /// "Image Understanding".
    ImageUnderstanding,
    /// "Image Processing and Formation".
    ImageProcessingFormation,
}

impl fmt::Display for ConcentrationArea {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ConcentrationArea::MotionTrackingStereo => "Motion, Tracking and Stereo Vision",
            ConcentrationArea::ImageAnalysis => "Image Analysis",
            ConcentrationArea::ImageUnderstanding => "Image Understanding",
            ConcentrationArea::ImageProcessingFormation => "Image Processing and Formation",
        };
        write!(f, "{s}")
    }
}

/// The paper's workload characterization (Table II): "data intensive"
/// codes perform repetitive low-intensity arithmetic across fine-grained
/// pixel data; "computationally intensive" codes perform complex math on
/// less structured data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Characteristic {
    /// Repetitive pixel-granularity arithmetic; scales with input size.
    DataIntensive,
    /// Complex, less predictable computation; governed by features /
    /// segments / iterations rather than pixels.
    ComputeIntensive,
    /// Both regimes in different phases (the stitch benchmark).
    DataAndComputeIntensive,
}

impl fmt::Display for Characteristic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Characteristic::DataIntensive => "Data intensive",
            Characteristic::ComputeIntensive => "Computationally intensive",
            Characteristic::DataAndComputeIntensive => "Data and computationally intensive",
        };
        write!(f, "{s}")
    }
}

/// Static description of one benchmark: the row it occupies in Tables I
/// and II plus its kernel decomposition (Figure 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkInfo {
    /// Benchmark name as the paper spells it.
    pub name: &'static str,
    /// One-line description (Table II).
    pub description: &'static str,
    /// Concentration area (Table I).
    pub area: ConcentrationArea,
    /// Data/compute characterization (Table II).
    pub characteristic: Characteristic,
    /// Application domain (Table II).
    pub domain: &'static str,
    /// Major kernels, using the scope names the implementation reports to
    /// the profiler (Figure 1 / Figure 3 series).
    pub kernels: &'static [&'static str],
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_strings_match_paper_vocabulary() {
        assert_eq!(
            ConcentrationArea::MotionTrackingStereo.to_string(),
            "Motion, Tracking and Stereo Vision"
        );
        assert_eq!(Characteristic::DataIntensive.to_string(), "Data intensive");
    }

    #[test]
    fn info_is_constructible() {
        let info = BenchmarkInfo {
            name: "Test",
            description: "test benchmark",
            area: ConcentrationArea::ImageAnalysis,
            characteristic: Characteristic::ComputeIntensive,
            domain: "testing",
            kernels: &["A", "B"],
        };
        assert_eq!(info.kernels.len(), 2);
    }
}
