//! The uniform benchmark runner.

use crate::error::SdvbsResult;
use crate::input::InputSize;
use crate::meta::{BenchmarkInfo, Characteristic, ConcentrationArea};
use crate::poison::{poison_image, poison_slice};
use sdvbs_exec::ExecPolicy;
use sdvbs_profile::Profiler;
use std::sync::OnceLock;

/// Result of one benchmark run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// A benchmark-specific quality score in `0.0..=1.0` when the
    /// synthetic input provides ground truth (`None` where no scalar
    /// metric applies).
    pub quality: Option<f64>,
    /// Human-readable summary of what was computed.
    pub detail: String,
}

/// A runnable SD-VBS benchmark.
///
/// Implementations generate their own deterministic synthetic input for
/// the requested size and seed, run the full pipeline with kernel scopes
/// reported to `prof`, and summarize the outcome.
pub trait Benchmark {
    /// Static metadata (Tables I/II rows and the kernel list).
    fn info(&self) -> &BenchmarkInfo;

    /// Runs the benchmark at `size` with the input-generation seed `seed`.
    ///
    /// Implementations call [`Profiler::run`] around the *pipeline only*:
    /// synthetic input generation is excluded from the measured region,
    /// just as SD-VBS reads its input files before timing. Callers read
    /// the measured time from `prof.total()` — do not wrap this call in
    /// another `prof.run`.
    fn run(&self, size: InputSize, seed: u64, prof: &mut Profiler) -> RunOutcome;

    /// Runs the benchmark with its data-parallel kernels under `policy`.
    ///
    /// Benchmarks that plumb an [`ExecPolicy`] through their configuration
    /// (disparity's shift search, segmentation's affinity build, face
    /// detection's cascade scan) override this; the default ignores the
    /// policy and runs serially, which is every other benchmark's only
    /// mode. All policies produce bit-identical outcomes, so `policy` only
    /// affects timing. Callers that record the policy should resolve
    /// [`ExecPolicy::Auto`] once per run (see [`ExecPolicy::resolve`]) so
    /// records stay consistent.
    fn run_with(
        &self,
        size: InputSize,
        seed: u64,
        policy: ExecPolicy,
        prof: &mut Profiler,
    ) -> RunOutcome {
        let _ = policy;
        self.run(size, seed, prof)
    }

    /// Runs the benchmark fallibly: degenerate or corrupted inputs (for
    /// example NaN pixels armed via [`crate::set_poison`]) surface as a
    /// typed [`crate::SdvbsError`] instead of a panic, so a harness can
    /// record a failed cell as an outcome rather than aborting the
    /// process. The suite's nine implementations all override this; the
    /// default delegates to the infallible [`Benchmark::run_with`] for
    /// third-party implementations that predate the fallible path.
    fn try_run_with(
        &self,
        size: InputSize,
        seed: u64,
        policy: ExecPolicy,
        prof: &mut Profiler,
    ) -> SdvbsResult<RunOutcome> {
        Ok(self.run_with(size, seed, policy, prof))
    }

    /// One-time preparation excluded from timed runs (e.g. face detection
    /// trains its cascade model once — SD-VBS ships that model
    /// pre-trained, so its cost is not part of the benchmark).
    fn warmup(&self) {}
}

/// All nine benchmarks, in the paper's Table I order.
pub fn all_benchmarks() -> Vec<Box<dyn Benchmark + Send + Sync>> {
    vec![
        Box::new(DisparityBench),
        Box::new(TrackingBench),
        Box::new(SegmentationBench),
        Box::new(SiftBench),
        Box::new(LocalizationBench),
        Box::new(SvmBench),
        Box::new(FaceDetectBench),
        Box::new(StitchBench),
        Box::new(TextureBench),
    ]
}

// ---------------------------------------------------------------- disparity

struct DisparityBench;

static DISPARITY_INFO: BenchmarkInfo = BenchmarkInfo {
    name: "Disparity Map",
    description: "Compute depth information using dense stereo",
    area: ConcentrationArea::MotionTrackingStereo,
    characteristic: Characteristic::DataIntensive,
    domain: "Robot vision for Adaptive Cruise Control, Stereo Vision",
    kernels: &["SSD", "IntegralImage", "Correlation", "Sort"],
};

impl Benchmark for DisparityBench {
    fn info(&self) -> &BenchmarkInfo {
        &DISPARITY_INFO
    }

    fn run(&self, size: InputSize, seed: u64, prof: &mut Profiler) -> RunOutcome {
        self.run_with(size, seed, ExecPolicy::Serial, prof)
    }

    fn run_with(
        &self,
        size: InputSize,
        seed: u64,
        policy: ExecPolicy,
        prof: &mut Profiler,
    ) -> RunOutcome {
        outcome_or_failure(self.try_run_with(size, seed, policy, prof))
    }

    fn try_run_with(
        &self,
        size: InputSize,
        seed: u64,
        policy: ExecPolicy,
        prof: &mut Profiler,
    ) -> SdvbsResult<RunOutcome> {
        use sdvbs_disparity::{disparity_accuracy, try_compute_disparity, DisparityConfig};
        let (w, h) = size.dims();
        let mut scene = sdvbs_synth::stereo_pair(w.max(48), h.max(36), seed);
        poison_image(&mut scene.left);
        let cfg = DisparityConfig::new(scene.max_disparity, 9)
            .expect("valid config")
            .with_exec(policy);
        // Input generation is untimed (SD-VBS reads its inputs before the
        // measured region); only the pipeline runs under the profiler.
        let disp = prof.run(|p| try_compute_disparity(&scene.left, &scene.right, &cfg, p))?;
        let acc = disparity_accuracy(&disp, &scene.truth, 1.0);
        Ok(RunOutcome {
            quality: Some(acc),
            detail: format!("dense disparity {}x{}, accuracy {:.3}", w, h, acc),
        })
    }
}

/// Maps a fallible run into the infallible [`RunOutcome`] contract: a
/// typed error becomes a zero-quality outcome whose detail names the
/// failure.
fn outcome_or_failure(result: SdvbsResult<RunOutcome>) -> RunOutcome {
    result.unwrap_or_else(|e| RunOutcome {
        quality: Some(0.0),
        detail: format!("failed: {e}"),
    })
}

// ----------------------------------------------------------------- tracking

struct TrackingBench;

static TRACKING_INFO: BenchmarkInfo = BenchmarkInfo {
    name: "Feature Tracking",
    description: "Extract motion from a sequence of images",
    area: ConcentrationArea::MotionTrackingStereo,
    characteristic: Characteristic::DataIntensive,
    domain: "Robot vision for Tracking",
    kernels: &[
        "GaussianFilter",
        "Gradient",
        "IntegralImage",
        "AreaSum",
        "MatrixInversion",
    ],
};

impl Benchmark for TrackingBench {
    fn info(&self) -> &BenchmarkInfo {
        &TRACKING_INFO
    }

    fn run(&self, size: InputSize, seed: u64, prof: &mut Profiler) -> RunOutcome {
        outcome_or_failure(self.try_run_with(size, seed, ExecPolicy::Serial, prof))
    }

    fn try_run_with(
        &self,
        size: InputSize,
        seed: u64,
        _policy: ExecPolicy,
        prof: &mut Profiler,
    ) -> SdvbsResult<RunOutcome> {
        use sdvbs_tracking::{try_track_pair, TrackingConfig};
        let (w, h) = size.dims();
        let (dx, dy) = (1.8f32, 1.2f32);
        let (mut a, b) = sdvbs_synth::frame_pair(w.max(64), h.max(48), seed, dx, dy);
        poison_image(&mut a);
        let cfg = TrackingConfig::default();
        let tracks = prof.run(|p| try_track_pair(&a, &b, &cfg, p))?;
        let good = tracks
            .iter()
            .filter(|t| {
                let (mx, my) = t.motion();
                (mx - dx).abs() < 0.5 && (my - dy).abs() < 0.5
            })
            .count();
        let quality = if tracks.is_empty() {
            0.0
        } else {
            good as f64 / tracks.len() as f64
        };
        Ok(RunOutcome {
            quality: Some(quality),
            detail: format!(
                "{} features tracked, {:.0}% within 0.5 px",
                tracks.len(),
                quality * 100.0
            ),
        })
    }
}

// ------------------------------------------------------------- segmentation

struct SegmentationBench;

static SEGMENTATION_INFO: BenchmarkInfo = BenchmarkInfo {
    name: "Image Segmentation",
    description: "Dividing an image into conceptual regions",
    area: ConcentrationArea::ImageAnalysis,
    characteristic: Characteristic::ComputeIntensive,
    domain: "Medical imaging, computational photography",
    kernels: &[
        "Filterbanks",
        "Adjacencymatrix",
        "Eigensolve",
        "QRfactorizations",
    ],
};

impl Benchmark for SegmentationBench {
    fn info(&self) -> &BenchmarkInfo {
        &SEGMENTATION_INFO
    }

    fn run(&self, size: InputSize, seed: u64, prof: &mut Profiler) -> RunOutcome {
        self.run_with(size, seed, ExecPolicy::Serial, prof)
    }

    fn run_with(
        &self,
        size: InputSize,
        seed: u64,
        policy: ExecPolicy,
        prof: &mut Profiler,
    ) -> RunOutcome {
        outcome_or_failure(self.try_run_with(size, seed, policy, prof))
    }

    fn try_run_with(
        &self,
        size: InputSize,
        seed: u64,
        policy: ExecPolicy,
        prof: &mut Profiler,
    ) -> SdvbsResult<RunOutcome> {
        use sdvbs_segmentation::{rand_index, segment, SegmentationConfig};
        let (w, h) = size.dims();
        let regions = 4;
        let mut scene = sdvbs_synth::segmentable_scene(w.max(24), h.max(24), seed, regions);
        poison_image(&mut scene.image);
        let cfg = SegmentationConfig {
            segments: regions,
            exec: policy,
            ..SegmentationConfig::default()
        };
        let seg = prof.run(|p| segment(&scene.image, &cfg, p))?;
        let ri = rand_index(seg.labels(), &scene.labels);
        Ok(RunOutcome {
            quality: Some(ri),
            detail: format!("{regions} segments, rand index {ri:.3}"),
        })
    }
}

// --------------------------------------------------------------------- sift

struct SiftBench;

static SIFT_INFO: BenchmarkInfo = BenchmarkInfo {
    name: "SIFT",
    description: "Extract invariant features from distorted images",
    area: ConcentrationArea::ImageAnalysis,
    characteristic: Characteristic::ComputeIntensive,
    domain: "Object recognition",
    kernels: &["IntegralImage", "Interpolation", "SIFT"],
};

impl Benchmark for SiftBench {
    fn info(&self) -> &BenchmarkInfo {
        &SIFT_INFO
    }

    fn run(&self, size: InputSize, seed: u64, prof: &mut Profiler) -> RunOutcome {
        outcome_or_failure(self.try_run_with(size, seed, ExecPolicy::Serial, prof))
    }

    fn try_run_with(
        &self,
        size: InputSize,
        seed: u64,
        _policy: ExecPolicy,
        prof: &mut Profiler,
    ) -> SdvbsResult<RunOutcome> {
        use sdvbs_sift::{try_detect_and_describe, SiftConfig};
        let (w, h) = size.dims();
        let mut img = sdvbs_synth::textured_image(w.max(32), h.max(32), seed);
        poison_image(&mut img);
        let feats = prof.run(|p| try_detect_and_describe(&img, &SiftConfig::default(), p))?;
        Ok(RunOutcome {
            quality: None,
            detail: format!("{} keypoints with 128-d descriptors", feats.len()),
        })
    }
}

// ------------------------------------------------------------- localization

struct LocalizationBench;

static LOCALIZATION_INFO: BenchmarkInfo = BenchmarkInfo {
    name: "Robot Localization",
    description: "Detect location based on environment",
    area: ConcentrationArea::ImageUnderstanding,
    characteristic: Characteristic::ComputeIntensive,
    domain: "Robotics",
    kernels: &["ParticleFilter", "Sampling"],
};

impl Benchmark for LocalizationBench {
    fn info(&self) -> &BenchmarkInfo {
        &LOCALIZATION_INFO
    }

    fn run(&self, size: InputSize, seed: u64, prof: &mut Profiler) -> RunOutcome {
        outcome_or_failure(self.try_run_with(size, seed, ExecPolicy::Serial, prof))
    }

    fn try_run_with(
        &self,
        size: InputSize,
        seed: u64,
        _policy: ExecPolicy,
        prof: &mut Profiler,
    ) -> SdvbsResult<RunOutcome> {
        use sdvbs_localization::{MclConfig, MonteCarloLocalizer, World, WorldConfig};
        // The paper observes that localization runtime is governed by the
        // data (particles, trajectory), not the input-size class; the
        // workload is therefore constant across sizes, with only the seed
        // (the "distinct inputs") varying.
        let _ = size;
        let world = World::generate(&WorldConfig {
            seed: seed ^ 0x77_6f72_6c64,
            ..WorldConfig::default()
        });
        let mut traj = world.simulate(40, seed);
        // Fault injection corrupts the range readings (the localization
        // benchmark's "pixels").
        let mut ranges: Vec<f64> = traj
            .steps
            .iter()
            .flat_map(|s| s.measurements.iter().map(|m| m.range))
            .collect();
        poison_slice(&mut ranges);
        let mut it = ranges.into_iter();
        for step in &mut traj.steps {
            for m in &mut step.measurements {
                m.range = it.next().expect("one poisoned range per measurement");
            }
        }
        let mut mcl = MonteCarloLocalizer::new(
            &world,
            &MclConfig {
                seed,
                ..MclConfig::default()
            },
        );
        prof.run(|p| mcl.try_run_trajectory(&traj, &world, p))?;
        let est = mcl.estimate();
        let truth = traj.steps.last().expect("non-empty trajectory").true_pose;
        let err = est.distance(&truth);
        Ok(RunOutcome {
            quality: Some((1.0 - err / 2.0).clamp(0.0, 1.0)),
            detail: format!("500 particles, 40 steps, position error {err:.2} m"),
        })
    }
}

// ---------------------------------------------------------------------- svm

struct SvmBench;

static SVM_INFO: BenchmarkInfo = BenchmarkInfo {
    name: "SVM",
    description: "Supervised learning method for classification",
    area: ConcentrationArea::ImageUnderstanding,
    characteristic: Characteristic::ComputeIntensive,
    domain: "Machine learning",
    kernels: &["MatrixOps", "Learning", "ConjugateMatrix"],
};

impl Benchmark for SvmBench {
    fn info(&self) -> &BenchmarkInfo {
        &SVM_INFO
    }

    fn run(&self, size: InputSize, seed: u64, prof: &mut Profiler) -> RunOutcome {
        outcome_or_failure(self.try_run_with(size, seed, ExecPolicy::Serial, prof))
    }

    fn try_run_with(
        &self,
        size: InputSize,
        seed: u64,
        _policy: ExecPolicy,
        prof: &mut Profiler,
    ) -> SdvbsResult<RunOutcome> {
        use sdvbs_svm::{gaussian_clusters, train_interior_point, SvmConfig};
        // The paper's working set is 500x64; the size classes scale the
        // sample count (125/250/500) at fixed 64 dimensions.
        let n = ((60.0 * size.relative_pixels()).round() as usize).clamp(80, 500);
        let mut data = gaussian_clusters(n, 64, 6.0, seed);
        poison_slice(data.train_x.as_mut_slice());
        let cfg = SvmConfig {
            tolerance: 1e-4,
            max_iterations: 60,
            ..SvmConfig::default()
        };
        let model = prof.run(|p| train_interior_point(&data.train_x, &data.train_y, &cfg, p))?;
        // The paper's second phase: classification over the held-out
        // set (polynomial/kernel evaluations = matrix operations).
        let acc =
            prof.run(|p| p.kernel("MatrixOps", |_| model.accuracy(&data.test_x, &data.test_y)));
        Ok(RunOutcome {
            quality: Some(acc),
            detail: format!(
                "{n}x64 interior-point training, {} SVs, test accuracy {acc:.3}",
                model.support_vectors()
            ),
        })
    }
}

// ------------------------------------------------------------- facedetect

struct FaceDetectBench;

static FACEDETECT_INFO: BenchmarkInfo = BenchmarkInfo {
    name: "Face Detection",
    description: "Identify Faces in an Image",
    area: ConcentrationArea::ImageUnderstanding,
    characteristic: Characteristic::ComputeIntensive,
    domain: "Video Surveillance, Image Database Management",
    kernels: &["IntegralImage", "ExtractFaces", "StabilizeWindows"],
};

/// The cascade is a model, not per-run work (SD-VBS ships its model
/// pre-trained); train it once and share across runs.
fn shared_cascade() -> &'static sdvbs_facedetect::Cascade {
    static CASCADE: OnceLock<sdvbs_facedetect::Cascade> = OnceLock::new();
    CASCADE.get_or_init(|| {
        let mut prof = Profiler::new();
        sdvbs_facedetect::Cascade::train(&sdvbs_facedetect::CascadeConfig::default(), &mut prof)
            .expect("default cascade training succeeds")
    })
}

impl Benchmark for FaceDetectBench {
    fn info(&self) -> &BenchmarkInfo {
        &FACEDETECT_INFO
    }

    fn warmup(&self) {
        let _ = shared_cascade();
    }

    fn run(&self, size: InputSize, seed: u64, prof: &mut Profiler) -> RunOutcome {
        self.run_with(size, seed, ExecPolicy::Serial, prof)
    }

    fn run_with(
        &self,
        size: InputSize,
        seed: u64,
        policy: ExecPolicy,
        prof: &mut Profiler,
    ) -> RunOutcome {
        outcome_or_failure(self.try_run_with(size, seed, policy, prof))
    }

    fn try_run_with(
        &self,
        size: InputSize,
        seed: u64,
        policy: ExecPolicy,
        prof: &mut Profiler,
    ) -> SdvbsResult<RunOutcome> {
        use sdvbs_facedetect::{try_detect_faces, Detection, DetectorConfig};
        let (w, h) = size.dims();
        let (w, h) = (w.max(64), h.max(64));
        let n_faces = 2 + (size.pixels() / InputSize::Sqcif.pixels()).min(4);
        let mut scene = sdvbs_synth::face_scene(w, h, seed, n_faces);
        poison_image(&mut scene.image);
        let cascade = shared_cascade();
        let cfg = DetectorConfig {
            exec: policy,
            ..DetectorConfig::default()
        };
        let found = prof.run(|p| try_detect_faces(&scene.image, cascade, &cfg, p))?;
        let hits = scene
            .faces
            .iter()
            .filter(|t| {
                let tb = Detection {
                    x: t.x,
                    y: t.y,
                    size: t.size,
                    support: 1,
                };
                found.iter().any(|d| d.iou(&tb) > 0.3)
            })
            .count();
        let quality = if scene.faces.is_empty() {
            1.0
        } else {
            hits as f64 / scene.faces.len() as f64
        };
        Ok(RunOutcome {
            quality: Some(quality),
            detail: format!(
                "{hits}/{} faces found, {} detections",
                scene.faces.len(),
                found.len()
            ),
        })
    }
}

// ------------------------------------------------------------------- stitch

struct StitchBench;

static STITCH_INFO: BenchmarkInfo = BenchmarkInfo {
    name: "Image Stitch",
    description: "Stitch overlapping images using feature based alignment and matching",
    area: ConcentrationArea::ImageProcessingFormation,
    characteristic: Characteristic::DataAndComputeIntensive,
    domain: "Computational photography",
    kernels: &[
        "Convolution",
        "ANMS",
        "FeatureMatch",
        "LSSolver",
        "SVD",
        "Blend",
    ],
};

impl Benchmark for StitchBench {
    fn info(&self) -> &BenchmarkInfo {
        &STITCH_INFO
    }

    fn run(&self, size: InputSize, seed: u64, prof: &mut Profiler) -> RunOutcome {
        outcome_or_failure(self.try_run_with(size, seed, ExecPolicy::Serial, prof))
    }

    fn try_run_with(
        &self,
        size: InputSize,
        seed: u64,
        _policy: ExecPolicy,
        prof: &mut Profiler,
    ) -> SdvbsResult<RunOutcome> {
        use sdvbs_stitch::{stitch, Affine, StitchConfig};
        let (w, h) = size.dims();
        let mut pair =
            sdvbs_synth::overlapping_pair(w.max(64), h.max(48), seed, 0.03, w as f32 * 0.1, 4.0);
        poison_image(&mut pair.a);
        let result = prof.run(|p| stitch(&pair.a, &pair.b, &StitchConfig::default(), p))?;
        let truth = Affine::from_coeffs(pair.b_to_a);
        let diff = result.b_to_a.max_coeff_diff(&truth);
        Ok(RunOutcome {
            quality: Some((1.0 - diff).clamp(0.0, 1.0)),
            detail: format!(
                "{} matches, {} inliers, transform error {diff:.3}",
                result.matches, result.inliers
            ),
        })
    }
}

// ------------------------------------------------------------------ texture

struct TextureBench;

static TEXTURE_INFO: BenchmarkInfo = BenchmarkInfo {
    name: "Texture Synthesis",
    description:
        "Construct a large digital image from a smaller portion by utilizing features of its structural content",
    area: ConcentrationArea::ImageProcessingFormation,
    characteristic: Characteristic::ComputeIntensive,
    domain: "Computational photography and movie making",
    kernels: &["Analysis", "PCA", "Sampling", "Kurtosis"],
};

impl Benchmark for TextureBench {
    fn info(&self) -> &BenchmarkInfo {
        &TEXTURE_INFO
    }

    fn run(&self, size: InputSize, seed: u64, prof: &mut Profiler) -> RunOutcome {
        outcome_or_failure(self.try_run_with(size, seed, ExecPolicy::Serial, prof))
    }

    fn try_run_with(
        &self,
        size: InputSize,
        seed: u64,
        _policy: ExecPolicy,
        prof: &mut Profiler,
    ) -> SdvbsResult<RunOutcome> {
        use sdvbs_texture::{synthesize, TextureConfig};
        // Fixed iteration structure: the swatch is capped so runtime stays
        // flat across size classes (the paper: "execution time for all the
        // image types is almost similar due to the fixed number of
        // iterations").
        let (w, h) = size.dims();
        let sw = (w / 2).clamp(24, 64);
        let sh = (h / 2).clamp(24, 64);
        let kind = if seed.is_multiple_of(2) {
            sdvbs_synth::TextureKind::Stochastic
        } else {
            sdvbs_synth::TextureKind::Structural
        };
        let mut swatch = sdvbs_synth::texture_swatch(sw, sh, seed, kind);
        poison_image(&mut swatch);
        let cfg = TextureConfig {
            seed,
            ..TextureConfig::default()
        };
        let out = prof.run(|p| synthesize(&swatch, 40, 40, &cfg, p))?;
        // Statistical validation is part of the measured pipeline:
        // the paper lists "texture analysis, kurtosis and texture
        // synthesis" among the hot spots, and Portilla-Simoncelli
        // quality is defined by moment matching.
        let distance = prof.run(|p| {
            p.kernel("Kurtosis", |_| {
                use sdvbs_texture::TextureStatistics;
                let s_in = TextureStatistics::compute(&swatch, 3);
                let s_out = TextureStatistics::compute(&out, 3);
                s_in.distance(&s_out)
            })
        });
        let quality = (1.0 - distance).clamp(0.0, 1.0);
        Ok(RunOutcome {
            quality: Some(quality),
            detail: format!(
                "40x40 synthesized from {sw}x{sh} swatch ({kind:?}), stats distance {distance:.3}"
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_nine_benchmarks_in_table_order() {
        let suite = all_benchmarks();
        let names: Vec<&str> = suite.iter().map(|b| b.info().name).collect();
        assert_eq!(
            names,
            vec![
                "Disparity Map",
                "Feature Tracking",
                "Image Segmentation",
                "SIFT",
                "Robot Localization",
                "SVM",
                "Face Detection",
                "Image Stitch",
                "Texture Synthesis",
            ]
        );
    }

    #[test]
    fn every_benchmark_declares_kernels_and_domain() {
        for b in all_benchmarks() {
            let info = b.info();
            assert!(!info.kernels.is_empty(), "{} has no kernels", info.name);
            assert!(!info.domain.is_empty());
            assert!(!info.description.is_empty());
        }
    }

    #[test]
    fn concentration_areas_cover_all_four() {
        use std::collections::HashSet;
        let areas: HashSet<String> = all_benchmarks()
            .iter()
            .map(|b| b.info().area.to_string())
            .collect();
        assert_eq!(areas.len(), 4);
    }

    #[test]
    fn small_runs_produce_reasonable_quality() {
        let size = InputSize::Custom {
            width: 72,
            height: 56,
        };
        for b in all_benchmarks() {
            let info_name = b.info().name;
            if info_name == "Face Detection" {
                continue; // cascade training is exercised in its own crate
            }
            let mut prof = Profiler::new();
            let outcome = b.run(size, 3, &mut prof);
            if let Some(q) = outcome.quality {
                assert!(q > 0.3, "{info_name} quality {q}: {}", outcome.detail);
            }
            // Every declared kernel actually reported time.
            let rep = prof.report();
            for k in b.info().kernels {
                assert!(
                    rep.occupancy(k).is_some(),
                    "{info_name}: declared kernel {k} never ran"
                );
            }
        }
    }

    #[test]
    fn run_with_parallel_policy_matches_serial_outcome() {
        let size = InputSize::Custom {
            width: 64,
            height: 48,
        };
        let suite = all_benchmarks();
        // Disparity and Image Segmentation plumb the policy through; their
        // parallel kernels promise bit-identical outputs, so the outcome
        // (quality and detail) must not change with the policy.
        for name in ["Disparity Map", "Image Segmentation"] {
            let bench = suite
                .iter()
                .find(|b| b.info().name == name)
                .expect("registered");
            let mut ps = Profiler::new();
            let mut pt = Profiler::new();
            let serial = bench.run_with(size, 5, ExecPolicy::Serial, &mut ps);
            let threaded = bench.run_with(size, 5, ExecPolicy::Threads(3), &mut pt);
            assert_eq!(serial, threaded, "{name} outcome changed under Threads(3)");
        }
        // A benchmark without policy support falls back to its serial run.
        let sift = suite
            .iter()
            .find(|b| b.info().name == "SIFT")
            .expect("registered");
        let mut pa = Profiler::new();
        let mut pb = Profiler::new();
        let a = sift.run_with(size, 5, ExecPolicy::Threads(3), &mut pa);
        let b = sift.run(size, 5, &mut pb);
        assert_eq!(a, b);
    }

    #[test]
    fn runs_are_deterministic() {
        let size = InputSize::Custom {
            width: 64,
            height: 48,
        };
        let suite = all_benchmarks();
        let disparity = &suite[0];
        let mut p1 = Profiler::new();
        let mut p2 = Profiler::new();
        let a = disparity.run(size, 9, &mut p1);
        let b = disparity.run(size, 9, &mut p2);
        assert_eq!(a, b);
    }
}
