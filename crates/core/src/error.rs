//! The suite-wide error taxonomy.
//!
//! Every benchmark crate keeps its own narrow error type (`MatrixError`,
//! `SvmError`, `StitchError`, …) so the substrate crates stay
//! dependency-light; [`SdvbsError`] is the *workspace* view of all of
//! them, produced by the fallible [`crate::Benchmark::try_run_with`] path
//! and consumed by the runner, which records a failed cell as a typed
//! outcome instead of letting the process abort.

use std::error::Error;
use std::fmt;

/// Convenience alias for suite-level results.
pub type SdvbsResult<T> = std::result::Result<T, SdvbsError>;

/// The suite-wide error taxonomy: every way a benchmark cell can fail
/// without the process panicking.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SdvbsError {
    /// Operand or image dimensions are incompatible.
    DimensionMismatch {
        /// Dimensions expected by the operation (width/rows × height/cols).
        expected: (usize, usize),
        /// Dimensions actually supplied.
        found: (usize, usize),
    },
    /// An input is empty (zero-sized image, empty feature set, no
    /// measurements) where the pipeline needs data.
    EmptyInput {
        /// What was empty.
        what: &'static str,
    },
    /// An input is too small for the pipeline's structural minimum (e.g.
    /// an image smaller than the aggregation window).
    InputTooSmall {
        /// What was too small.
        what: &'static str,
        /// The minimum the pipeline requires.
        min: usize,
        /// What was found.
        found: usize,
    },
    /// Input data contains NaN or infinity where finite values are
    /// required.
    NonFiniteData {
        /// Where the non-finite value was found.
        what: &'static str,
    },
    /// A direct solve hit a singular (or numerically singular) matrix.
    SingularSystem,
    /// An iterative solver (Jacobi sweep, Lanczos, SMO, interior-point)
    /// exhausted its iteration budget without converging.
    NonConvergent {
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// A configuration value is out of its documented range.
    InvalidConfig(String),
    /// A benchmark-specific failure that maps to none of the shared
    /// variants (the message is the crate error's display form).
    Pipeline(String),
}

impl fmt::Display for SdvbsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SdvbsError::DimensionMismatch { expected, found } => write!(
                f,
                "dimension mismatch: expected {}x{}, found {}x{}",
                expected.0, expected.1, found.0, found.1
            ),
            SdvbsError::EmptyInput { what } => write!(f, "empty input: {what}"),
            SdvbsError::InputTooSmall { what, min, found } => {
                write!(f, "{what} too small: need at least {min}, found {found}")
            }
            SdvbsError::NonFiniteData { what } => {
                write!(f, "non-finite data (NaN or infinity) in {what}")
            }
            SdvbsError::SingularSystem => {
                write!(f, "matrix is singular to working precision")
            }
            SdvbsError::NonConvergent { iterations } => {
                write!(f, "solver did not converge within {iterations} iterations")
            }
            SdvbsError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SdvbsError::Pipeline(msg) => write!(f, "pipeline failure: {msg}"),
        }
    }
}

impl Error for SdvbsError {}

impl From<sdvbs_matrix::MatrixError> for SdvbsError {
    fn from(e: sdvbs_matrix::MatrixError) -> Self {
        use sdvbs_matrix::MatrixError;
        match e {
            MatrixError::DimensionMismatch { expected, found } => {
                SdvbsError::DimensionMismatch { expected, found }
            }
            MatrixError::Singular => SdvbsError::SingularSystem,
            MatrixError::NoConvergence { iterations } => SdvbsError::NonConvergent { iterations },
            MatrixError::Empty => SdvbsError::EmptyInput { what: "matrix" },
            other => SdvbsError::Pipeline(other.to_string()),
        }
    }
}

impl From<sdvbs_image::ImageError> for SdvbsError {
    fn from(e: sdvbs_image::ImageError) -> Self {
        SdvbsError::Pipeline(e.to_string())
    }
}

impl From<sdvbs_profile::ProfileError> for SdvbsError {
    fn from(e: sdvbs_profile::ProfileError) -> Self {
        SdvbsError::Pipeline(e.to_string())
    }
}

impl From<sdvbs_disparity::DisparityError> for SdvbsError {
    fn from(e: sdvbs_disparity::DisparityError) -> Self {
        use sdvbs_disparity::DisparityError;
        match e {
            DisparityError::DimensionMismatch { left, right } => SdvbsError::DimensionMismatch {
                expected: left,
                found: right,
            },
            DisparityError::ImageTooSmall { window, side } => SdvbsError::InputTooSmall {
                what: "stereo image",
                min: window,
                found: side,
            },
            DisparityError::NonFinitePixels => SdvbsError::NonFiniteData {
                what: "stereo image pixels",
            },
            DisparityError::Empty => SdvbsError::EmptyInput {
                what: "stereo image",
            },
            other => SdvbsError::Pipeline(other.to_string()),
        }
    }
}

impl From<sdvbs_tracking::TrackingError> for SdvbsError {
    fn from(e: sdvbs_tracking::TrackingError) -> Self {
        use sdvbs_tracking::TrackingError;
        match e {
            TrackingError::DimensionMismatch { a, b } => SdvbsError::DimensionMismatch {
                expected: a,
                found: b,
            },
            TrackingError::Empty => SdvbsError::EmptyInput { what: "frame" },
            TrackingError::NonFinitePixels => SdvbsError::NonFiniteData {
                what: "frame pixels",
            },
            TrackingError::InvalidConfig(msg) => SdvbsError::InvalidConfig(msg),
            other => SdvbsError::Pipeline(other.to_string()),
        }
    }
}

impl From<sdvbs_sift::SiftError> for SdvbsError {
    fn from(e: sdvbs_sift::SiftError) -> Self {
        use sdvbs_sift::SiftError;
        match e {
            SiftError::ImageTooSmall { min, side } => SdvbsError::InputTooSmall {
                what: "sift input image",
                min,
                found: side,
            },
            SiftError::NonFinitePixels => SdvbsError::NonFiniteData {
                what: "sift input pixels",
            },
            SiftError::InvalidConfig(msg) => SdvbsError::InvalidConfig(msg),
            other => SdvbsError::Pipeline(other.to_string()),
        }
    }
}

impl From<sdvbs_segmentation::SegmentationError> for SdvbsError {
    fn from(e: sdvbs_segmentation::SegmentationError) -> Self {
        use sdvbs_segmentation::SegmentationError;
        match e {
            SegmentationError::InvalidConfig(msg) => SdvbsError::InvalidConfig(msg),
            SegmentationError::Eigensolve(m) => m.into(),
            SegmentationError::EmptyImage => SdvbsError::EmptyInput {
                what: "segmentation image",
            },
            SegmentationError::NonFinitePixels => SdvbsError::NonFiniteData {
                what: "segmentation image pixels",
            },
            other => SdvbsError::Pipeline(other.to_string()),
        }
    }
}

impl From<sdvbs_svm::SvmError> for SdvbsError {
    fn from(e: sdvbs_svm::SvmError) -> Self {
        use sdvbs_svm::SvmError;
        match e {
            SvmError::InvalidInput(msg) => {
                SdvbsError::Pipeline(format!("invalid svm input: {msg}"))
            }
            SvmError::NoConvergence { iterations } => SdvbsError::NonConvergent { iterations },
            other => SdvbsError::Pipeline(other.to_string()),
        }
    }
}

impl From<sdvbs_stitch::StitchError> for SdvbsError {
    fn from(e: sdvbs_stitch::StitchError) -> Self {
        use sdvbs_stitch::StitchError;
        match e {
            StitchError::DimensionTooSmall { min, side } => SdvbsError::InputTooSmall {
                what: "stitch input image",
                min,
                found: side,
            },
            StitchError::NonFinitePixels => SdvbsError::NonFiniteData {
                what: "stitch input pixels",
            },
            other => SdvbsError::Pipeline(other.to_string()),
        }
    }
}

impl From<sdvbs_texture::TextureError> for SdvbsError {
    fn from(e: sdvbs_texture::TextureError) -> Self {
        use sdvbs_texture::TextureError;
        match e {
            TextureError::InvalidConfig(msg) => SdvbsError::InvalidConfig(msg),
            TextureError::EmptySwatch => SdvbsError::EmptyInput {
                what: "texture swatch",
            },
            TextureError::NonFinitePixels => SdvbsError::NonFiniteData {
                what: "texture swatch pixels",
            },
            other => SdvbsError::Pipeline(other.to_string()),
        }
    }
}

impl From<sdvbs_facedetect::CascadeError> for SdvbsError {
    fn from(e: sdvbs_facedetect::CascadeError) -> Self {
        SdvbsError::Pipeline(e.to_string())
    }
}

impl From<sdvbs_facedetect::DetectError> for SdvbsError {
    fn from(e: sdvbs_facedetect::DetectError) -> Self {
        use sdvbs_facedetect::DetectError;
        match e {
            DetectError::ImageTooSmall { window, side } => SdvbsError::InputTooSmall {
                what: "detection image",
                min: window,
                found: side,
            },
            DetectError::NonFinitePixels => SdvbsError::NonFiniteData {
                what: "detection image pixels",
            },
            other => SdvbsError::Pipeline(other.to_string()),
        }
    }
}

impl From<sdvbs_localization::MclError> for SdvbsError {
    fn from(e: sdvbs_localization::MclError) -> Self {
        use sdvbs_localization::MclError;
        match e {
            MclError::NonFiniteMeasurement => SdvbsError::NonFiniteData {
                what: "range measurements",
            },
            MclError::EmptyTrajectory => SdvbsError::EmptyInput { what: "trajectory" },
            other => SdvbsError::Pipeline(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_every_variant() {
        let cases: Vec<(SdvbsError, &str)> = vec![
            (
                SdvbsError::DimensionMismatch {
                    expected: (2, 2),
                    found: (3, 2),
                },
                "dimension mismatch",
            ),
            (SdvbsError::EmptyInput { what: "matrix" }, "empty input"),
            (
                SdvbsError::InputTooSmall {
                    what: "image",
                    min: 9,
                    found: 4,
                },
                "too small",
            ),
            (SdvbsError::NonFiniteData { what: "pixels" }, "non-finite"),
            (SdvbsError::SingularSystem, "singular"),
            (SdvbsError::NonConvergent { iterations: 5 }, "converge"),
            (SdvbsError::InvalidConfig("x".into()), "configuration"),
            (SdvbsError::Pipeline("y".into()), "pipeline"),
        ];
        for (err, needle) in cases {
            assert!(
                err.to_string().contains(needle),
                "{err} should mention {needle:?}"
            );
        }
    }

    #[test]
    fn matrix_errors_map_to_shared_variants() {
        use sdvbs_matrix::MatrixError;
        assert_eq!(
            SdvbsError::from(MatrixError::Singular),
            SdvbsError::SingularSystem
        );
        assert_eq!(
            SdvbsError::from(MatrixError::NoConvergence { iterations: 7 }),
            SdvbsError::NonConvergent { iterations: 7 }
        );
        assert_eq!(
            SdvbsError::from(MatrixError::Empty),
            SdvbsError::EmptyInput { what: "matrix" }
        );
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<SdvbsError>();
    }
}
