//! The SD-VBS suite core: benchmark metadata, input-size configurations,
//! and a uniform runner over all nine applications.
//!
//! This is the crate a downstream user adopts. It re-exports each
//! benchmark's native API and wraps them behind the [`Benchmark`] trait so
//! harnesses (the table/figure regenerators in `sdvbs-bench`, Criterion
//! benches, CI smoke tests) can iterate the whole suite uniformly:
//!
//! ```
//! use sdvbs_core::{all_benchmarks, InputSize};
//! use sdvbs_profile::Profiler;
//!
//! let suite = all_benchmarks();
//! assert_eq!(suite.len(), 9);
//! let disparity = &suite[0];
//! let mut prof = Profiler::new();
//! let outcome = disparity.run(InputSize::Custom { width: 64, height: 48 }, 1, &mut prof);
//! assert!(outcome.quality.unwrap_or(0.0) > 0.5);
//! assert!(prof.total().as_nanos() > 0); // pipeline time, input gen excluded
//! ```
//!
//! The three named input sizes follow the paper exactly: SQCIF (128×96),
//! QCIF (176×144) and CIF (352×288), each roughly 2× the pixels of the
//! previous — the x-axis of Figures 2 and 3.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dump;
mod error;
mod input;
mod meta;
mod poison;
mod suite;

pub use dump::dump_inputs;
pub use error::{SdvbsError, SdvbsResult};
pub use input::InputSize;
pub use meta::{BenchmarkInfo, Characteristic, ConcentrationArea};
pub use poison::{clear_poison, poison_image, poison_slice, set_poison, PoisonSpec};
pub use sdvbs_exec::ExecPolicy;
pub use suite::{all_benchmarks, Benchmark, RunOutcome};

/// Re-exports of the per-benchmark crates for direct access.
pub mod benchmarks {
    pub use sdvbs_disparity as disparity;
    pub use sdvbs_facedetect as facedetect;
    pub use sdvbs_localization as localization;
    pub use sdvbs_segmentation as segmentation;
    pub use sdvbs_sift as sift;
    pub use sdvbs_stitch as stitch;
    pub use sdvbs_svm as svm;
    pub use sdvbs_texture as texture;
    pub use sdvbs_tracking as tracking;
}

/// Re-exports of the substrate crates.
pub mod substrate {
    pub use sdvbs_dataflow as dataflow;
    pub use sdvbs_exec as exec;
    pub use sdvbs_image as image;
    pub use sdvbs_kernels as kernels;
    pub use sdvbs_matrix as matrix;
    pub use sdvbs_profile as profile;
    pub use sdvbs_synth as synth;
}
