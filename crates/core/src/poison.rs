//! Thread-local input poisoning for fault injection.
//!
//! Benchmarks generate their own synthetic inputs, so an external fault
//! injector (the runner's `--inject nan:<rate>` mode) cannot corrupt the
//! data it never sees. The hook here closes that gap: the runner sets a
//! [`PoisonSpec`] on the worker thread before calling
//! [`crate::Benchmark::try_run_with`], and each benchmark passes its
//! freshly generated input through [`poison_image`] / [`poison_slice`],
//! which overwrite a deterministic subset of values with NaN when a spec
//! is armed (and are no-ops otherwise). The poisoned input then flows into
//! the kernel's normal finiteness validation, exercising the exact typed
//! error path a corrupted capture would take in production.

use sdvbs_image::Image;
use std::cell::Cell;

/// A deterministic NaN-poisoning request for the current thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoisonSpec {
    /// Poison roughly one value in `stride` (1 = every value).
    pub stride: usize,
    /// Mixing seed so different cells poison different positions.
    pub seed: u64,
}

thread_local! {
    static POISON: Cell<Option<PoisonSpec>> = const { Cell::new(None) };
}

/// Arms NaN poisoning for the current thread until [`clear_poison`].
pub fn set_poison(spec: PoisonSpec) {
    POISON.with(|p| p.set(Some(spec)));
}

/// Disarms NaN poisoning for the current thread.
pub fn clear_poison() {
    POISON.with(|p| p.set(None));
}

/// The armed spec, if any.
fn current() -> Option<PoisonSpec> {
    POISON.with(|p| p.get())
}

/// splitmix64: cheap, deterministic position mixing.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Overwrites a deterministic subset of `img` pixels with NaN if poisoning
/// is armed on this thread; otherwise leaves it untouched. Always poisons
/// at least one pixel of a non-empty image when armed.
pub fn poison_image(img: &mut Image) {
    let Some(spec) = current() else { return };
    let stride = spec.stride.max(1) as u64;
    let n = img.len();
    if n == 0 {
        return;
    }
    let data = img.as_mut_slice();
    let mut hit = false;
    for (i, v) in data.iter_mut().enumerate() {
        if mix(spec.seed ^ i as u64).is_multiple_of(stride) {
            *v = f32::NAN;
            hit = true;
        }
    }
    if !hit {
        data[(mix(spec.seed) % n as u64) as usize] = f32::NAN;
    }
}

/// Overwrites a deterministic subset of `data` with NaN if poisoning is
/// armed on this thread. Always poisons at least one value of a non-empty
/// slice when armed.
pub fn poison_slice(data: &mut [f64]) {
    let Some(spec) = current() else { return };
    let stride = spec.stride.max(1) as u64;
    if data.is_empty() {
        return;
    }
    let n = data.len();
    let mut hit = false;
    for (i, v) in data.iter_mut().enumerate() {
        if mix(spec.seed ^ i as u64).is_multiple_of(stride) {
            *v = f64::NAN;
            hit = true;
        }
    }
    if !hit {
        data[(mix(spec.seed) % n as u64) as usize] = f64::NAN;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_is_a_no_op() {
        clear_poison();
        let mut img = Image::filled(8, 8, 1.0);
        poison_image(&mut img);
        assert!(img.all_finite());
    }

    #[test]
    fn armed_poisons_at_least_one_pixel() {
        set_poison(PoisonSpec {
            stride: 1_000_000,
            seed: 3,
        });
        let mut img = Image::filled(8, 8, 1.0);
        poison_image(&mut img);
        clear_poison();
        assert!(!img.all_finite());
    }

    #[test]
    fn poisoning_is_deterministic() {
        let run = || {
            set_poison(PoisonSpec { stride: 7, seed: 9 });
            let mut v = vec![1.0f64; 64];
            poison_slice(&mut v);
            clear_poison();
            v.iter().map(|x| x.is_nan()).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
