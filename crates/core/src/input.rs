//! The paper's input-size spectrum.

use std::fmt;

/// An input-size class. The paper provides every benchmark "with inputs of
/// three different sizes, which enable architects to control simulation
/// time, as well as to understand how the application scales".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InputSize {
    /// 128×96 — the paper's smallest class ("1×" in Figure 3).
    Sqcif,
    /// 176×144 — roughly 2× the pixels of SQCIF ("2×").
    Qcif,
    /// 352×288 — roughly 2× the pixels of QCIF ("4×").
    Cif,
    /// Any other frame size (for quick tests and custom sweeps).
    Custom {
        /// Frame width in pixels.
        width: usize,
        /// Frame height in pixels.
        height: usize,
    },
}

impl InputSize {
    /// The three named sizes in ascending order — the sweep used by every
    /// figure regenerator.
    pub const NAMED: [InputSize; 3] = [InputSize::Sqcif, InputSize::Qcif, InputSize::Cif];

    /// Frame dimensions `(width, height)`.
    pub fn dims(&self) -> (usize, usize) {
        match *self {
            InputSize::Sqcif => (128, 96),
            InputSize::Qcif => (176, 144),
            InputSize::Cif => (352, 288),
            InputSize::Custom { width, height } => (width, height),
        }
    }

    /// Total pixels.
    pub fn pixels(&self) -> usize {
        let (w, h) = self.dims();
        w * h
    }

    /// Pixel count relative to SQCIF (the paper's "relative input size"
    /// axis: SQCIF = 1, QCIF ≈ 2, CIF ≈ 8... strictly CIF is ~8.25× SQCIF
    /// pixels; the paper labels it "4" by linear dimension convention).
    pub fn relative_pixels(&self) -> f64 {
        self.pixels() as f64 / InputSize::Sqcif.pixels() as f64
    }

    /// The paper's axis label for the named sizes ("1", "2", "4"), or the
    /// dimensions for custom sizes.
    pub fn label(&self) -> String {
        match self {
            InputSize::Sqcif => "1".to_string(),
            InputSize::Qcif => "2".to_string(),
            InputSize::Cif => "4".to_string(),
            InputSize::Custom { width, height } => format!("{width}x{height}"),
        }
    }
}

impl fmt::Display for InputSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (w, h) = self.dims();
        match self {
            InputSize::Sqcif => write!(f, "SQCIF ({w}x{h})"),
            InputSize::Qcif => write!(f, "QCIF ({w}x{h})"),
            InputSize::Cif => write!(f, "CIF ({w}x{h})"),
            InputSize::Custom { .. } => write!(f, "custom ({w}x{h})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_sizes_match_the_paper() {
        assert_eq!(InputSize::Sqcif.dims(), (128, 96));
        assert_eq!(InputSize::Qcif.dims(), (176, 144));
        assert_eq!(InputSize::Cif.dims(), (352, 288));
    }

    #[test]
    fn each_size_is_roughly_double_the_previous() {
        let ratio_q = InputSize::Qcif.pixels() as f64 / InputSize::Sqcif.pixels() as f64;
        let ratio_c = InputSize::Cif.pixels() as f64 / InputSize::Qcif.pixels() as f64;
        assert!((1.8..=2.2).contains(&ratio_q), "QCIF/SQCIF = {ratio_q}");
        assert!((3.5..=4.5).contains(&ratio_c), "CIF/QCIF = {ratio_c}");
    }

    #[test]
    fn labels_and_display() {
        assert_eq!(InputSize::Sqcif.label(), "1");
        assert_eq!(InputSize::Cif.label(), "4");
        assert_eq!(
            InputSize::Custom {
                width: 10,
                height: 5
            }
            .label(),
            "10x5"
        );
        assert!(InputSize::Qcif.to_string().contains("176x144"));
    }

    #[test]
    fn relative_pixels_baseline_is_one() {
        assert_eq!(InputSize::Sqcif.relative_pixels(), 1.0);
        assert!(InputSize::Cif.relative_pixels() > 8.0);
    }
}
