//! Deterministic synthetic inputs for the SD-VBS benchmarks.
//!
//! The paper distributes each benchmark with "three different sizes ...
//! and several distinct inputs for each of the sizes" (SQCIF 128×96,
//! QCIF 176×144, CIF 352×288 frames, face corpora, robot logs, texture
//! swatches). That corpus is not part of the paper itself, so this crate
//! generates synthetic equivalents: seeded, reproducible scenes with the
//! same pixel counts *and* known ground truth — which lets the Rust
//! reproduction assert output correctness, something the original C code
//! could only do by diffing golden files.
//!
//! All generators take an explicit `seed`; the same seed always produces
//! the same bytes on every platform.
//!
//! # Examples
//!
//! ```
//! use sdvbs_synth::{textured_image, stereo_pair};
//!
//! let img = textured_image(128, 96, 7);
//! assert_eq!(img.width(), 128);
//! let stereo = stereo_pair(128, 96, 7);
//! assert_eq!(stereo.left.width(), stereo.right.width());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod faces;
mod noise;
mod scenes;

pub use faces::{face_scene, render_face_patch, render_non_face_patch, FaceBox, FaceScene};
pub use noise::{textured_image, value_noise};
pub use scenes::{
    frame_pair, frame_sequence, motion_frame, moving_stereo_pair, overlapping_pair,
    segmentable_scene, stereo_pair, texture_swatch, CameraMotion, OverlapPair, SegmentScene,
    StereoPair, TextureKind,
};
