//! Scene generators with ground truth: stereo pairs, motion sequences,
//! segmentable images, overlapping views and texture swatches.

use crate::noise::{textured_image, value_noise};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sdvbs_image::Image;

/// A synthetic stereo pair with dense ground-truth disparity.
#[derive(Debug, Clone)]
pub struct StereoPair {
    /// Left camera image.
    pub left: Image,
    /// Right camera image (objects shifted left by their disparity).
    pub right: Image,
    /// Ground-truth disparity for each *left* pixel. Values are exact away
    /// from occlusion boundaries.
    pub truth: Image,
    /// Upper bound on the disparities present (search range hint).
    pub max_disparity: usize,
}

/// Generates a stereo pair: a textured background plane at small disparity
/// plus two textured foreground rectangles at larger disparities.
///
/// Convention: a scene point visible at `(x, y)` in the left image appears
/// at `(x − d, y)` in the right image, `d ≥ 0`.
///
/// # Panics
///
/// Panics if the image is smaller than 48×36 (the foreground layout needs
/// room).
pub fn stereo_pair(w: usize, h: usize, seed: u64) -> StereoPair {
    assert!(w >= 48 && h >= 36, "stereo scene requires at least 48x36");
    let d_bg = 2usize;
    let d_near = 10usize;
    let d_mid = 6usize;
    let max_disparity = 16;
    // Textures are generated wider than the view so right-image lookups at
    // x + d stay inside.
    let tw = w + max_disparity + 1;
    let background = textured_image(tw, h, seed);
    let tex_near = textured_image(tw, h, seed ^ 0x9e3779b97f4a7c15);
    let tex_mid = textured_image(tw, h, seed ^ 0x5851f42d4c957f2d);
    // Two foreground rectangles in the left image, scaled with the frame.
    let near_rect = (w / 6, h / 5, w / 4, h / 3); // (x0, y0, width, height)
    let mid_rect = (w / 2, h / 2, w / 3, h / 3);
    let in_rect = |r: (usize, usize, usize, usize), x: usize, y: usize| {
        x >= r.0 && x < r.0 + r.2 && y >= r.1 && y < r.1 + r.3
    };
    let left = Image::from_fn(w, h, |x, y| {
        if in_rect(near_rect, x, y) {
            tex_near.get(x, y)
        } else if in_rect(mid_rect, x, y) {
            tex_mid.get(x, y)
        } else {
            background.get(x, y)
        }
    });
    // The right image samples each layer at x + d_layer: layers closer to
    // the camera shift more.
    let right = Image::from_fn(w, h, |x, y| {
        if in_rect(near_rect, x + d_near, y) {
            tex_near.get(x + d_near, y)
        } else if in_rect(mid_rect, x + d_mid, y) {
            tex_mid.get(x + d_mid, y)
        } else {
            background.get(x + d_bg, y)
        }
    });
    let truth = Image::from_fn(w, h, |x, y| {
        if in_rect(near_rect, x, y) {
            d_near as f32
        } else if in_rect(mid_rect, x, y) {
            d_mid as f32
        } else {
            d_bg as f32
        }
    });
    StereoPair {
        left,
        right,
        truth,
        max_disparity,
    }
}

/// Generates a frame pair under a known global translation: content at
/// `(x, y)` in the first frame appears at `(x + dx, y + dy)` in the second
/// (sub-pixel motion is supported via bilinear sampling).
pub fn frame_pair(w: usize, h: usize, seed: u64, dx: f32, dy: f32) -> (Image, Image) {
    let margin = (dx.abs().max(dy.abs()).ceil() as usize) + 4;
    let big = textured_image(w + 2 * margin, h + 2 * margin, seed);
    let a = Image::from_fn(w, h, |x, y| big.get(x + margin, y + margin));
    let b = Image::from_fn(w, h, |x, y| {
        big.sample_bilinear(x as f32 + margin as f32 - dx, y as f32 + margin as f32 - dy)
    });
    (a, b)
}

/// Generates `n` frames translating with constant velocity `(vx, vy)`
/// pixels per frame (frame `i` content is frame 0 content moved by
/// `(i·vx, i·vy)`).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn frame_sequence(w: usize, h: usize, seed: u64, n: usize, vx: f32, vy: f32) -> Vec<Image> {
    assert!(n > 0, "sequence needs at least one frame");
    let span = (n as f32 - 1.0).max(1.0);
    let margin = ((vx.abs().max(vy.abs()) * span).ceil() as usize) + 4;
    let big = textured_image(w + 2 * margin, h + 2 * margin, seed);
    (0..n)
        .map(|i| {
            let ox = margin as f32 - vx * i as f32;
            let oy = margin as f32 - vy * i as f32;
            Image::from_fn(w, h, |x, y| {
                big.sample_bilinear(x as f32 + ox, y as f32 + oy)
            })
        })
        .collect()
}

/// Seeded frame-to-frame camera motion: a constant velocity in pixels
/// per frame. Streaming scenarios pan or translate a camera over a
/// deterministic world; the motion is part of the scene's identity, so
/// the same `(seed, motion, frame)` triple always produces the same
/// pixels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CameraMotion {
    /// Horizontal velocity in pixels per frame (positive pans right).
    pub vx: f32,
    /// Vertical velocity in pixels per frame (positive pans down).
    pub vy: f32,
}

impl CameraMotion {
    /// A pure horizontal pan.
    pub fn pan(vx: f32) -> CameraMotion {
        CameraMotion { vx, vy: 0.0 }
    }

    /// A general translation.
    pub fn translate(vx: f32, vy: f32) -> CameraMotion {
        CameraMotion { vx, vy }
    }
}

/// Bilinear sample with toroidal (wrap-around) coordinates, so a camera
/// can pan indefinitely over a finite world texture.
fn wrap_sample(img: &Image, x: f64, y: f64) -> f32 {
    let w = img.width();
    let h = img.height();
    let xm = x.rem_euclid(w as f64);
    let ym = y.rem_euclid(h as f64);
    let x0 = xm.floor() as usize % w;
    let y0 = ym.floor() as usize % h;
    let tx = (xm - xm.floor()) as f32;
    let ty = (ym - ym.floor()) as f32;
    let x1 = (x0 + 1) % w;
    let y1 = (y0 + 1) % h;
    let top = img.get(x0, y0) * (1.0 - tx) + img.get(x1, y0) * tx;
    let bot = img.get(x0, y1) * (1.0 - tx) + img.get(x1, y1) * tx;
    top * (1.0 - ty) + bot * ty
}

/// The camera offset of frame `frame` under `motion`, computed in `f64`
/// so large frame indices keep sub-pixel precision, reduced modulo the
/// world size so the sequence is periodic rather than unbounded.
fn camera_offset(motion: CameraMotion, frame: u64, ww: usize, wh: usize) -> (f64, f64) {
    let ox = (motion.vx as f64 * frame as f64).rem_euclid(ww as f64);
    let oy = (motion.vy as f64 * frame as f64).rem_euclid(wh as f64);
    (ox, oy)
}

/// Generates frame `frame` of an endless camera pan over a seeded
/// textured world. Unlike [`frame_sequence`], each frame is a pure
/// function of `(w, h, seed, motion, frame)` — frame `i` can be
/// generated without generating (or even knowing about) any other frame,
/// and regenerating it later is bit-identical. The world is sampled
/// toroidally, so consecutive frames stay photometrically consistent for
/// arbitrarily long sequences: frame `i+1` content at `(x, y)` equals
/// frame `i` content at `(x + vx, y + vy)`.
pub fn motion_frame(w: usize, h: usize, seed: u64, motion: CameraMotion, frame: u64) -> Image {
    // The world is twice the view in each axis so the repeat period is
    // well clear of any feature-matching window.
    let ww = 2 * w.max(1);
    let wh = 2 * h.max(1);
    let world = textured_image(ww, wh, seed);
    let (ox, oy) = camera_offset(motion, frame, ww, wh);
    Image::from_fn(w, h, |x, y| {
        wrap_sample(&world, x as f64 + ox, y as f64 + oy)
    })
}

/// Generates frame `frame` of a stereo camera pair translating over a
/// layered world: the textured background plane plus two foreground
/// rectangles of [`stereo_pair`], except the camera moves by `motion`
/// each frame and the world wraps toroidally. Like [`motion_frame`],
/// frame `i` is a pure function of its arguments — bit-identical on
/// regeneration, no sequence length to declare up front.
///
/// The disparity convention matches [`stereo_pair`]: a scene point at
/// `(x, y)` in the left image appears at `(x − d, y)` in the right.
///
/// # Panics
///
/// Panics if the image is smaller than 48×36 (the foreground layout
/// needs room).
pub fn moving_stereo_pair(
    w: usize,
    h: usize,
    seed: u64,
    motion: CameraMotion,
    frame: u64,
) -> StereoPair {
    assert!(w >= 48 && h >= 36, "stereo scene requires at least 48x36");
    let d_bg = 2usize;
    let d_near = 10usize;
    let d_mid = 6usize;
    let max_disparity = 16;
    let ww = 2 * w;
    let wh = 2 * h;
    let background = textured_image(ww, wh, seed);
    let tex_near = textured_image(ww, wh, seed ^ 0x9e3779b97f4a7c15);
    let tex_mid = textured_image(ww, wh, seed ^ 0x5851f42d4c957f2d);
    // Foreground rectangles live at fixed *world* coordinates; the camera
    // pans past them (and wraps around to meet them again).
    let near_rect = (w / 6, h / 5, w / 4, h / 3); // (x0, y0, width, height)
    let mid_rect = (w / 2, h / 2, w / 3, h / 3);
    let in_rect = |r: (usize, usize, usize, usize), wx: f64, wy: f64| {
        let dx = (wx - r.0 as f64).rem_euclid(ww as f64);
        let dy = (wy - r.1 as f64).rem_euclid(wh as f64);
        dx < r.2 as f64 && dy < r.3 as f64
    };
    let (ox, oy) = camera_offset(motion, frame, ww, wh);
    let left = Image::from_fn(w, h, |x, y| {
        let wx = x as f64 + ox;
        let wy = y as f64 + oy;
        if in_rect(near_rect, wx, wy) {
            wrap_sample(&tex_near, wx, wy)
        } else if in_rect(mid_rect, wx, wy) {
            wrap_sample(&tex_mid, wx, wy)
        } else {
            wrap_sample(&background, wx, wy)
        }
    });
    // The right camera samples each layer at world x + d_layer: layers
    // closer to the camera shift more.
    let right = Image::from_fn(w, h, |x, y| {
        let wx = x as f64 + ox;
        let wy = y as f64 + oy;
        if in_rect(near_rect, wx + d_near as f64, wy) {
            wrap_sample(&tex_near, wx + d_near as f64, wy)
        } else if in_rect(mid_rect, wx + d_mid as f64, wy) {
            wrap_sample(&tex_mid, wx + d_mid as f64, wy)
        } else {
            wrap_sample(&background, wx + d_bg as f64, wy)
        }
    });
    let truth = Image::from_fn(w, h, |x, y| {
        let wx = x as f64 + ox;
        let wy = y as f64 + oy;
        if in_rect(near_rect, wx, wy) {
            d_near as f32
        } else if in_rect(mid_rect, wx, wy) {
            d_mid as f32
        } else {
            d_bg as f32
        }
    });
    StereoPair {
        left,
        right,
        truth,
        max_disparity,
    }
}

/// A synthetic segmentation scene with ground-truth region labels.
#[derive(Debug, Clone)]
pub struct SegmentScene {
    /// The grayscale image (piecewise near-constant regions plus noise).
    pub image: Image,
    /// Ground-truth label per pixel, row-major, in `0..regions`.
    pub labels: Vec<usize>,
    /// Number of regions.
    pub regions: usize,
}

/// Generates a Voronoi-cell scene: `regions` seed sites, each cell painted
/// a distinct gray level with mild texture, so normalized cuts has a
/// correct answer to find.
///
/// # Panics
///
/// Panics if `regions` is zero or exceeds 64.
pub fn segmentable_scene(w: usize, h: usize, seed: u64, regions: usize) -> SegmentScene {
    assert!(regions > 0 && regions <= 64, "regions must be in 1..=64");
    let mut rng = StdRng::seed_from_u64(seed);
    let sites: Vec<(f32, f32)> = (0..regions)
        .map(|_| (rng.gen_range(0.0..w as f32), rng.gen_range(0.0..h as f32)))
        .collect();
    // Well-separated gray levels, shuffled deterministically.
    let mut levels: Vec<f32> = (0..regions)
        .map(|i| 30.0 + 200.0 * i as f32 / (regions.max(2) - 1) as f32)
        .collect();
    for i in (1..levels.len()).rev() {
        let j = rng.gen_range(0..=i);
        levels.swap(i, j);
    }
    let noise = value_noise(w, h, seed ^ 0xabcdef, 4, 2);
    let mut labels = vec![0usize; w * h];
    let image = Image::from_fn(w, h, |x, y| {
        let mut best = 0usize;
        let mut best_d = f32::INFINITY;
        for (i, &(sx, sy)) in sites.iter().enumerate() {
            let d = (sx - x as f32).powi(2) + (sy - y as f32).powi(2);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        labels[y * w + x] = best;
        levels[best] + 6.0 * (noise.get(x, y) - 0.5)
    });
    SegmentScene {
        image,
        labels,
        regions,
    }
}

/// Two overlapping views related by a known affine transform.
#[derive(Debug, Clone)]
pub struct OverlapPair {
    /// Reference view.
    pub a: Image,
    /// Transformed view.
    pub b: Image,
    /// Ground-truth mapping from `b` coordinates to `a` coordinates:
    /// `x_a = m[0]·x_b + m[1]·y_b + m[2]`, `y_a = m[3]·x_b + m[4]·y_b + m[5]`.
    pub b_to_a: [f64; 6],
}

/// Generates a pair of overlapping views of one textured scene, related by
/// rotation `angle_rad` (about the image center of `b`) plus translation
/// `(tx, ty)` — the input for the stitch benchmark with known alignment.
pub fn overlapping_pair(
    w: usize,
    h: usize,
    seed: u64,
    angle_rad: f32,
    tx: f32,
    ty: f32,
) -> OverlapPair {
    let reach = (w + h) as f32 + tx.abs() + ty.abs();
    let margin = (reach * 0.3).ceil() as usize + 8;
    let big = textured_image(w + 2 * margin, h + 2 * margin, seed);
    let a = Image::from_fn(w, h, |x, y| big.get(x + margin, y + margin));
    let (s, c) = (angle_rad.sin(), angle_rad.cos());
    let cx = w as f32 / 2.0;
    let cy = h as f32 / 2.0;
    // Mapping from b pixel coordinates to a (and hence big-texture)
    // coordinates: rotate about b's center, then translate.
    let map = move |xb: f32, yb: f32| -> (f32, f32) {
        let dx = xb - cx;
        let dy = yb - cy;
        (c * dx - s * dy + cx + tx, s * dx + c * dy + cy + ty)
    };
    let b = Image::from_fn(w, h, |x, y| {
        let (xa, ya) = map(x as f32, y as f32);
        big.sample_bilinear(xa + margin as f32, ya + margin as f32)
    });
    let b_to_a = [
        c as f64,
        -s as f64,
        (-c * cx + s * cy + cx + tx) as f64,
        s as f64,
        c as f64,
        (-s * cx - c * cy + cy + ty) as f64,
    ];
    OverlapPair { a, b, b_to_a }
}

/// The two texture families the paper profiles texture synthesis on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TextureKind {
    /// Irregular, noise-like texture ("stochastic" in the paper).
    Stochastic,
    /// Repeating structural pattern ("structural": bricks with jitter).
    Structural,
}

/// Generates a texture swatch of the requested family in `0.0..=255.0`.
pub fn texture_swatch(w: usize, h: usize, seed: u64, kind: TextureKind) -> Image {
    match kind {
        TextureKind::Stochastic => textured_image(w, h, seed),
        TextureKind::Structural => {
            let jitter = value_noise(w, h, seed, 4, 2);
            Image::from_fn(w, h, |x, y| {
                let brick_h = 8;
                let brick_w = 16;
                let row = y / brick_h;
                let xo = if row % 2 == 0 { 0 } else { brick_w / 2 };
                let in_mortar = y % brick_h == 0 || (x + xo) % brick_w == 0;
                let base = if in_mortar { 60.0 } else { 180.0 };
                base + 30.0 * (jitter.get(x, y) - 0.5)
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stereo_pair_satisfies_disparity_relation() {
        let s = stereo_pair(96, 72, 3);
        // Away from occlusion boundaries: right(x - d, y) == left(x, y).
        let mut checked = 0;
        let mut exact = 0;
        for y in (0..72).step_by(5) {
            for x in (20..90).step_by(7) {
                let d = s.truth.get(x, y) as usize;
                if x >= d {
                    checked += 1;
                    if (s.right.get(x - d, y) - s.left.get(x, y)).abs() < 1e-4 {
                        exact += 1;
                    }
                }
            }
        }
        assert!(checked > 50);
        // Occlusion boundaries may break the relation for a few samples.
        assert!(exact as f64 > 0.9 * checked as f64, "{exact}/{checked}");
    }

    #[test]
    fn stereo_truth_has_three_levels() {
        let s = stereo_pair(96, 72, 1);
        let mut levels: Vec<i32> = s.truth.as_slice().iter().map(|&v| v as i32).collect();
        levels.sort_unstable();
        levels.dedup();
        assert_eq!(levels, vec![2, 6, 10]);
        assert!(s.max_disparity >= 10);
    }

    #[test]
    fn frame_pair_moves_content_by_requested_offset() {
        let (a, b) = frame_pair(64, 48, 5, 3.0, -2.0);
        // a(x, y) should equal b(x + 3, y - 2).
        let mut err = 0.0f32;
        let mut n = 0;
        for y in 8..40 {
            for x in 8..56 {
                err += (a.get(x, y) - b.get(x + 3, y - 2)).abs();
                n += 1;
            }
        }
        assert!(err / (n as f32) < 0.5, "mean error {}", err / n as f32);
    }

    #[test]
    fn frame_sequence_is_consistent_with_frame_pair_motion() {
        let frames = frame_sequence(64, 48, 5, 4, 1.5, 0.5);
        assert_eq!(frames.len(), 4);
        // Frame 2 content equals frame 0 content moved by (3.0, 1.0).
        let f0 = &frames[0];
        let f2 = &frames[2];
        let mut err = 0.0f32;
        let mut n = 0;
        for y in 6..42 {
            for x in 6..58 {
                err += (f0.get(x, y) - f2.sample_bilinear(x as f32 + 3.0, y as f32 + 1.0)).abs();
                n += 1;
            }
        }
        assert!(err / (n as f32) < 1.0);
    }

    #[test]
    fn segmentable_scene_labels_match_image_levels() {
        let s = segmentable_scene(60, 40, 9, 4);
        assert_eq!(s.labels.len(), 60 * 40);
        assert_eq!(s.regions, 4);
        // All four labels present.
        let mut seen = [false; 4];
        for &l in &s.labels {
            seen[l] = true;
        }
        assert!(seen.iter().all(|&b| b));
        // Within a label, intensities are tight; across labels, means differ.
        let mut sums = [0.0f64; 4];
        let mut counts = [0usize; 4];
        for y in 0..40 {
            for x in 0..60 {
                let l = s.labels[y * 60 + x];
                sums[l] += s.image.get(x, y) as f64;
                counts[l] += 1;
            }
        }
        let means: Vec<f64> = (0..4).map(|i| sums[i] / counts[i] as f64).collect();
        for i in 0..4 {
            for j in 0..i {
                assert!(
                    (means[i] - means[j]).abs() > 20.0,
                    "regions {i},{j} too close"
                );
            }
        }
    }

    #[test]
    fn overlapping_pair_ground_truth_maps_b_onto_a() {
        let p = overlapping_pair(80, 60, 11, 0.05, 8.0, -3.0);
        let m = p.b_to_a;
        let mut err = 0.0f32;
        let mut n = 0;
        for yb in (5..55).step_by(5) {
            for xb in (5..75).step_by(5) {
                let xa = m[0] * xb as f64 + m[1] * yb as f64 + m[2];
                let ya = m[3] * xb as f64 + m[4] * yb as f64 + m[5];
                if xa >= 1.0 && ya >= 1.0 && xa < 79.0 && ya < 59.0 {
                    err += (p.b.get(xb, yb) - p.a.sample_bilinear(xa as f32, ya as f32)).abs();
                    n += 1;
                }
            }
        }
        assert!(n > 20, "overlap too small");
        assert!(
            err / (n as f32) < 2.0,
            "mean mapping error {}",
            err / n as f32
        );
    }

    #[test]
    fn texture_swatches_differ_by_kind() {
        let st = texture_swatch(64, 64, 2, TextureKind::Stochastic);
        let su = texture_swatch(64, 64, 2, TextureKind::Structural);
        assert_ne!(st, su);
        // The structural texture has strong bimodality (bricks vs mortar).
        let dark = su.as_slice().iter().filter(|&&v| v < 100.0).count();
        let light = su.as_slice().iter().filter(|&&v| v > 140.0).count();
        assert!(dark > 200 && light > 2000);
    }

    #[test]
    fn motion_frames_are_bit_identical_per_seed() {
        // Same seed ⇒ bit-identical frame sequence, and frame i is
        // generable in isolation (no dependence on sequence length or on
        // having generated earlier frames).
        let m = CameraMotion::translate(1.5, -0.75);
        let seq_a: Vec<Image> = (0..6).map(|i| motion_frame(64, 48, 11, m, i)).collect();
        let seq_b: Vec<Image> = (0..6).map(|i| motion_frame(64, 48, 11, m, i)).collect();
        assert_eq!(seq_a, seq_b);
        // Out-of-order single-frame regeneration matches the in-order run.
        assert_eq!(motion_frame(64, 48, 11, m, 4), seq_a[4]);
        // A different seed is a different world.
        assert_ne!(motion_frame(64, 48, 12, m, 0), seq_a[0]);
    }

    #[test]
    fn motion_frames_shift_content_by_the_per_frame_velocity() {
        // Integer velocity: frame i+1 at (x, y) equals frame i at
        // (x + vx, y + vy) exactly (no resampling error).
        let m = CameraMotion::translate(3.0, 2.0);
        let f0 = motion_frame(64, 48, 5, m, 0);
        let f1 = motion_frame(64, 48, 5, m, 1);
        let mut err = 0.0f32;
        for y in 0..46 {
            for x in 0..61 {
                err += (f1.get(x, y) - f0.get(x + 3, y + 2)).abs();
            }
        }
        assert!(err < 1e-3, "total shift error {err}");
    }

    #[test]
    fn moving_stereo_pair_is_deterministic_and_keeps_the_disparity_relation() {
        let m = CameraMotion::pan(0.9);
        assert_eq!(
            moving_stereo_pair(96, 72, 3, m, 7).left,
            moving_stereo_pair(96, 72, 3, m, 7).left
        );
        // Frame 0 with zero motion reduces to a plain layered scene whose
        // truth has the three canonical levels.
        for frame in [0u64, 9, 40] {
            let s = moving_stereo_pair(96, 72, 3, m, frame);
            let mut checked = 0;
            let mut exact = 0;
            for y in (0..72).step_by(5) {
                for x in (20..90).step_by(7) {
                    let d = s.truth.get(x, y) as usize;
                    if x >= d {
                        checked += 1;
                        if (s.right.get(x - d, y) - s.left.get(x, y)).abs() < 1e-3 {
                            exact += 1;
                        }
                    }
                }
            }
            assert!(checked > 50);
            assert!(
                exact as f64 > 0.85 * checked as f64,
                "frame {frame}: {exact}/{checked}"
            );
        }
    }

    #[test]
    fn moving_stereo_truth_pans_with_the_camera() {
        // The near rectangle occupies different view pixels as the camera
        // pans: the truth maps of well-separated frames must differ.
        let m = CameraMotion::pan(2.0);
        let a = moving_stereo_pair(96, 72, 3, m, 0);
        let b = moving_stereo_pair(96, 72, 3, m, 10);
        assert_ne!(a.truth, b.truth);
        // But both contain all three depth layers somewhere.
        for s in [&a, &b] {
            let mut levels: Vec<i32> = s.truth.as_slice().iter().map(|&v| v as i32).collect();
            levels.sort_unstable();
            levels.dedup();
            assert_eq!(levels, vec![2, 6, 10]);
        }
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(stereo_pair(64, 48, 7).left, stereo_pair(64, 48, 7).left);
        assert_eq!(
            segmentable_scene(40, 30, 7, 3).image,
            segmentable_scene(40, 30, 7, 3).image
        );
        assert_eq!(
            overlapping_pair(40, 30, 7, 0.1, 2.0, 1.0).b,
            overlapping_pair(40, 30, 7, 0.1, 2.0, 1.0).b
        );
    }
}
