//! Synthetic face rendering for the Viola–Jones benchmark.
//!
//! The original SD-VBS face detector ships a cascade trained offline on a
//! face corpus that is not part of the paper. We instead *render* faces
//! with the structure the Haar features key on — a darker eye band over
//! brighter cheeks, a dark mouth bar — plus texture and lighting jitter, so
//! the AdaBoost trainer in `sdvbs-facedetect` can learn a working cascade
//! from scratch.

use crate::noise::{textured_image, value_noise};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sdvbs_image::Image;

/// An axis-aligned face bounding box in a scene.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaceBox {
    /// Left edge (pixels).
    pub x: usize,
    /// Top edge (pixels).
    pub y: usize,
    /// Side length (faces are square).
    pub size: usize,
}

impl FaceBox {
    /// Intersection-over-union overlap with another box.
    pub fn iou(&self, other: &FaceBox) -> f64 {
        let x0 = self.x.max(other.x);
        let y0 = self.y.max(other.y);
        let x1 = (self.x + self.size).min(other.x + other.size);
        let y1 = (self.y + self.size).min(other.y + other.size);
        if x1 <= x0 || y1 <= y0 {
            return 0.0;
        }
        let inter = ((x1 - x0) * (y1 - y0)) as f64;
        let uni = (self.size * self.size + other.size * other.size) as f64 - inter;
        inter / uni
    }
}

/// A rendered scene with ground-truth face locations.
#[derive(Debug, Clone)]
pub struct FaceScene {
    /// The grayscale scene.
    pub image: Image,
    /// Ground-truth boxes of every rendered face.
    pub faces: Vec<FaceBox>,
}

fn draw_ellipse(img: &mut Image, cx: f32, cy: f32, rx: f32, ry: f32, level: f32, soft: f32) {
    let x0 = ((cx - rx - soft).floor().max(0.0)) as usize;
    let x1 = ((cx + rx + soft).ceil() as usize).min(img.width());
    let y0 = ((cy - ry - soft).floor().max(0.0)) as usize;
    let y1 = ((cy + ry + soft).ceil() as usize).min(img.height());
    for y in y0..y1 {
        for x in x0..x1 {
            let dx = (x as f32 - cx) / rx;
            let dy = (y as f32 - cy) / ry;
            let r = (dx * dx + dy * dy).sqrt();
            if r < 1.0 {
                img.set(x, y, level);
            } else if r < 1.0 + soft / rx.min(ry) {
                let t = (r - 1.0) / (soft / rx.min(ry));
                let old = img.get(x, y);
                img.set(x, y, level * (1.0 - t) + old * t);
            }
        }
    }
}

/// Renders one `size × size` face patch with randomized lighting, feature
/// placement jitter and texture noise.
///
/// # Panics
///
/// Panics if `size < 12` (the facial layout needs resolution).
pub fn render_face_patch(size: usize, rng: &mut StdRng) -> Image {
    assert!(size >= 12, "face patch must be at least 12x12");
    let s = size as f32;
    let skin: f32 = rng.gen_range(150.0..210.0);
    let dark: f32 = skin - rng.gen_range(60.0..100.0);
    let bg: f32 = rng.gen_range(40.0..240.0);
    let jitter = |rng: &mut StdRng, a: f32| rng.gen_range(-a..a);
    let mut img = Image::filled(size, size, bg);
    // Head ellipse.
    let cx = s * 0.5 + jitter(rng, s * 0.02);
    let cy = s * 0.52 + jitter(rng, s * 0.02);
    draw_ellipse(&mut img, cx, cy, s * 0.42, s * 0.48, skin, 1.5);
    // Eye band (slightly darker strip across the upper face).
    let band_y = s * 0.38 + jitter(rng, s * 0.02);
    draw_ellipse(&mut img, cx, band_y, s * 0.36, s * 0.10, skin - 25.0, 1.0);
    // Eyes.
    let eye_dx = s * 0.17 + jitter(rng, s * 0.015);
    let eye_r = s * 0.07;
    draw_ellipse(&mut img, cx - eye_dx, band_y, eye_r, eye_r * 0.7, dark, 0.8);
    draw_ellipse(&mut img, cx + eye_dx, band_y, eye_r, eye_r * 0.7, dark, 0.8);
    // Nose shadow.
    draw_ellipse(&mut img, cx, s * 0.58, s * 0.05, s * 0.12, skin - 18.0, 1.0);
    // Mouth.
    let mouth_y = s * 0.74 + jitter(rng, s * 0.02);
    draw_ellipse(&mut img, cx, mouth_y, s * 0.16, s * 0.045, dark + 15.0, 0.8);
    // Texture noise.
    let noise = value_noise(size, size, rng.gen(), 3, 2);
    for y in 0..size {
        for x in 0..size {
            let v = img.get(x, y) + 10.0 * (noise.get(x, y) - 0.5);
            img.set(x, y, v.clamp(0.0, 255.0));
        }
    }
    img
}

/// Renders a `size × size` non-face patch: textured clutter with matched
/// brightness statistics (hard negatives for the AdaBoost trainer).
pub fn render_non_face_patch(size: usize, rng: &mut StdRng) -> Image {
    let kind: u32 = rng.gen_range(0..3);
    match kind {
        // Pure texture.
        0 => {
            let base = textured_image(size, size, rng.gen());
            let lo: f32 = rng.gen_range(0.0..80.0);
            let hi: f32 = rng.gen_range(160.0..255.0);
            base.map(|v| lo + (hi - lo) * v / 255.0)
        }
        // Oriented gradient (edge-like clutter).
        1 => {
            let angle: f32 = rng.gen_range(0.0..std::f32::consts::PI);
            let (sn, cs) = angle.sin_cos();
            let offset: f32 = rng.gen_range(50.0..150.0);
            let slope: f32 = rng.gen_range(1.0..4.0);
            Image::from_fn(size, size, |x, y| {
                (offset + slope * (cs * x as f32 + sn * y as f32)).clamp(0.0, 255.0)
            })
        }
        // A blank-ish wall with one dark blob (face-like brightness but
        // wrong structure).
        _ => {
            let base: f32 = rng.gen_range(120.0..220.0);
            let bx: f32 = rng.gen_range(0.2..0.8) * size as f32;
            let by: f32 = rng.gen_range(0.2..0.8) * size as f32;
            let mut img = Image::filled(size, size, base);
            draw_ellipse(
                &mut img,
                bx,
                by,
                size as f32 * 0.2,
                size as f32 * 0.2,
                base - 70.0,
                1.0,
            );
            img
        }
    }
}

/// Renders a scene containing `n_faces` faces at random non-overlapping
/// positions and scales over textured clutter.
///
/// # Panics
///
/// Panics if the scene is too small to fit the requested faces
/// (`w, h >= 64` required).
pub fn face_scene(w: usize, h: usize, seed: u64, n_faces: usize) -> FaceScene {
    assert!(w >= 64 && h >= 64, "face scene requires at least 64x64");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut image = textured_image(w, h, seed ^ 0xfaceface).map(|v| 60.0 + v * 0.5);
    let mut faces: Vec<FaceBox> = Vec::new();
    let min_size = 24usize;
    let max_size = (w.min(h) / 3).max(min_size + 1);
    let mut attempts = 0;
    while faces.len() < n_faces && attempts < 500 {
        attempts += 1;
        let size = rng.gen_range(min_size..max_size);
        if size + 2 >= w || size + 2 >= h {
            continue;
        }
        let x = rng.gen_range(1..w - size - 1);
        let y = rng.gen_range(1..h - size - 1);
        let candidate = FaceBox { x, y, size };
        if faces.iter().any(|f| f.iou(&candidate) > 0.0) {
            continue;
        }
        let patch = render_face_patch(size, &mut rng);
        for py in 0..size {
            for px in 0..size {
                image.set(x + px, y + py, patch.get(px, py));
            }
        }
        faces.push(candidate);
    }
    FaceScene { image, faces }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(77)
    }

    #[test]
    fn face_patch_has_dark_eye_band_over_bright_cheeks() {
        let mut r = rng();
        for _ in 0..10 {
            let f = render_face_patch(24, &mut r);
            let s = 24.0f32;
            let eye_row = (s * 0.38) as usize;
            let cheek_row = (s * 0.55) as usize;
            let band_mean: f32 = (6..18).map(|x| f.get(x, eye_row)).sum::<f32>() / 12.0;
            let cheek_mean: f32 = (6..18).map(|x| f.get(x, cheek_row)).sum::<f32>() / 12.0;
            assert!(
                cheek_mean > band_mean + 5.0,
                "eye band not darker: band {band_mean} cheek {cheek_mean}"
            );
        }
    }

    #[test]
    fn face_patches_vary_with_rng() {
        let mut r = rng();
        let a = render_face_patch(24, &mut r);
        let b = render_face_patch(24, &mut r);
        assert_ne!(a, b);
    }

    #[test]
    fn non_face_patches_cover_all_kinds() {
        let mut r = rng();
        let patches: Vec<Image> = (0..12).map(|_| render_non_face_patch(24, &mut r)).collect();
        // They should differ from one another.
        assert!(patches.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn scene_places_requested_faces_without_overlap() {
        let s = face_scene(160, 120, 5, 3);
        assert_eq!(s.faces.len(), 3);
        for i in 0..3 {
            for j in 0..i {
                assert_eq!(s.faces[i].iou(&s.faces[j]), 0.0);
            }
        }
        assert_eq!(s.image.width(), 160);
    }

    #[test]
    fn iou_basics() {
        let a = FaceBox {
            x: 0,
            y: 0,
            size: 10,
        };
        let b = FaceBox {
            x: 0,
            y: 0,
            size: 10,
        };
        assert!((a.iou(&b) - 1.0).abs() < 1e-12);
        let c = FaceBox {
            x: 20,
            y: 20,
            size: 10,
        };
        assert_eq!(a.iou(&c), 0.0);
        let d = FaceBox {
            x: 5,
            y: 0,
            size: 10,
        };
        assert!((a.iou(&d) - 50.0 / 150.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least 12x12")]
    fn tiny_face_patch_panics() {
        render_face_patch(8, &mut rng());
    }
}
