//! Multi-octave value noise: the textural backbone of every synthetic
//! scene.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sdvbs_image::Image;

/// Generates one octave of value noise: a coarse grid of random values,
/// bilinearly interpolated up to `w × h`.
fn noise_octave(w: usize, h: usize, cell: usize, rng: &mut StdRng) -> Image {
    let gw = w / cell + 2;
    let gh = h / cell + 2;
    let grid: Vec<f32> = (0..gw * gh).map(|_| rng.gen_range(0.0..1.0)).collect();
    Image::from_fn(w, h, |x, y| {
        let fx = x as f32 / cell as f32;
        let fy = y as f32 / cell as f32;
        let x0 = fx as usize;
        let y0 = fy as usize;
        let tx = fx - x0 as f32;
        let ty = fy - y0 as f32;
        // Smoothstep for C1 continuity, so gradients are non-degenerate.
        let sx = tx * tx * (3.0 - 2.0 * tx);
        let sy = ty * ty * (3.0 - 2.0 * ty);
        let g = |i: usize, j: usize| grid[j * gw + i];
        let top = g(x0, y0) + sx * (g(x0 + 1, y0) - g(x0, y0));
        let bot = g(x0, y0 + 1) + sx * (g(x0 + 1, y0 + 1) - g(x0, y0 + 1));
        top + sy * (bot - top)
    })
}

/// Multi-octave value noise in `0.0..=1.0`, deterministic in `seed`.
///
/// `base_cell` controls the coarsest feature size; each additional octave
/// halves the cell and the amplitude.
///
/// # Panics
///
/// Panics if `octaves` is zero or `base_cell` is smaller than 2.
pub fn value_noise(w: usize, h: usize, seed: u64, base_cell: usize, octaves: usize) -> Image {
    assert!(octaves > 0, "need at least one octave");
    assert!(base_cell >= 2, "base cell must be at least 2 pixels");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Image::new(w, h);
    let mut amplitude = 1.0f32;
    let mut cell = base_cell;
    let mut total = 0.0f32;
    for _ in 0..octaves {
        let oct = noise_octave(w, h, cell.max(2), &mut rng);
        for (o, v) in out.as_mut_slice().iter_mut().zip(oct.as_slice()) {
            *o += amplitude * v;
        }
        total += amplitude;
        amplitude *= 0.5;
        cell = (cell / 2).max(2);
    }
    out.map(|v| v / total)
}

/// A richly textured grayscale image in `0.0..=255.0` — the generic input
/// for kernels that only need "an image" (dense texture ensures corners and
/// gradients everywhere, which the feature-based benchmarks require).
pub fn textured_image(w: usize, h: usize, seed: u64) -> Image {
    let noise = value_noise(w, h, seed, (w / 8).max(4), 4);
    noise.map(|v| v * 255.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let a = textured_image(64, 48, 42);
        let b = textured_image(64, 48, 42);
        assert_eq!(a, b);
        let c = textured_image(64, 48, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn values_in_range() {
        let img = value_noise(50, 40, 1, 8, 3);
        assert!(img.min() >= 0.0);
        assert!(img.max() <= 1.0);
    }

    #[test]
    fn texture_has_contrast() {
        let img = textured_image(128, 96, 5);
        assert!(img.max() - img.min() > 60.0, "texture too flat: {img:?}");
    }

    #[test]
    fn texture_is_not_banded_rows() {
        // Neighboring rows must differ (2-D structure, not 1-D stripes).
        let img = textured_image(64, 64, 9);
        let mut row_diffs = 0.0f32;
        for y in 0..63 {
            for x in 0..64 {
                row_diffs += (img.get(x, y + 1) - img.get(x, y)).abs();
            }
        }
        assert!(row_diffs > 100.0);
    }

    #[test]
    #[should_panic(expected = "octave")]
    fn zero_octaves_panics() {
        value_noise(8, 8, 0, 4, 0);
    }
}
