//! Property-based tests for the synthetic input generators — the ground
//! truth each generator promises must hold for arbitrary seeds and sizes.

use proptest::prelude::*;
use sdvbs_synth::{frame_pair, overlapping_pair, segmentable_scene, stereo_pair, textured_image};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The stereo relation right(x - d, y) = left(x, y) holds at sampled
    /// interior points for any seed and size.
    #[test]
    fn stereo_relation_holds(
        seed in 0u64..1000,
        w in 48usize..120,
        h in 36usize..100,
    ) {
        let s = stereo_pair(w, h, seed);
        let mut exact = 0;
        let mut checked = 0;
        for y in (0..h).step_by(7) {
            for x in (16..w).step_by(9) {
                let d = s.truth.get(x, y) as usize;
                if x >= d {
                    checked += 1;
                    if (s.right.get(x - d, y) - s.left.get(x, y)).abs() < 1e-4 {
                        exact += 1;
                    }
                }
            }
        }
        prop_assert!(checked > 10);
        // Occlusion boundaries may break a few samples.
        prop_assert!(exact * 10 >= checked * 8, "{exact}/{checked}");
    }

    /// Frame pairs move content by exactly the requested offset.
    #[test]
    fn frame_pair_offset_holds(
        seed in 0u64..1000,
        dx in -4.0f32..4.0,
        dy in -4.0f32..4.0,
    ) {
        let (a, b) = frame_pair(64, 48, seed, dx, dy);
        let mut err = 0.0f32;
        let mut n = 0;
        for y in (8..40).step_by(5) {
            for x in (8..56).step_by(5) {
                err += (a.get(x, y)
                    - b.sample_bilinear(x as f32 + dx, y as f32 + dy))
                .abs();
                n += 1;
            }
        }
        // Fractional offsets double-interpolate (frame b is itself
        // bilinear-resampled), costing a few gray levels of blur; a wrong
        // offset would show errors an order of magnitude larger.
        prop_assert!(err / (n as f32) < 4.0, "mean offset error {}", err / n as f32);
    }

    /// Segmentable scenes use every label and separate region means.
    #[test]
    fn segment_scene_labels_cover_and_separate(
        seed in 0u64..1000,
        regions in 2usize..6,
    ) {
        let s = segmentable_scene(48, 40, seed, regions);
        let mut counts = vec![0usize; regions];
        for &l in &s.labels {
            counts[l] += 1;
        }
        prop_assert!(counts.iter().all(|&c| c > 0), "label missing: {counts:?}");
    }

    /// Overlapping pairs' ground-truth transform really maps b onto a.
    #[test]
    fn overlap_ground_truth_maps(
        seed in 0u64..1000,
        angle in -0.06f32..0.06,
        tx in -10.0f32..10.0,
    ) {
        let p = overlapping_pair(80, 60, seed, angle, tx, 2.0);
        let m = p.b_to_a;
        let mut err = 0.0f32;
        let mut n = 0;
        for yb in (8..52).step_by(6) {
            for xb in (8..72).step_by(6) {
                let xa = m[0] * xb as f64 + m[1] * yb as f64 + m[2];
                let ya = m[3] * xb as f64 + m[4] * yb as f64 + m[5];
                if xa >= 1.0 && ya >= 1.0 && xa < 79.0 && ya < 59.0 {
                    err += (p.b.get(xb, yb) - p.a.sample_bilinear(xa as f32, ya as f32)).abs();
                    n += 1;
                }
            }
        }
        prop_assert!(n > 10, "no overlap sampled");
        prop_assert!(err / (n as f32) < 3.0, "mean map error {}", err / n as f32);
    }

    /// Texture values stay in the PGM range for any seed.
    #[test]
    fn texture_range(seed in 0u64..2000) {
        let t = textured_image(48, 36, seed);
        prop_assert!(t.min() >= 0.0 && t.max() <= 255.0);
        prop_assert!(t.max() - t.min() > 20.0, "degenerate contrast");
    }
}
