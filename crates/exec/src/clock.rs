//! The time abstraction the deterministic-simulation layer swaps out.
//!
//! Everything in the serving stack that sleeps, schedules, or measures a
//! timeout does it through a [`Clock`]: production code uses
//! [`SystemClock`] (monotonic [`Instant`] time, real [`thread::sleep`]),
//! while tests and the `sdvbs-sim` discrete-event harness use a
//! [`VirtualClock`] whose time only moves when something *asks* it to —
//! a sleep completes instantly on the wall clock but advances virtual
//! time by exactly the requested amount, so a thousand simulated seconds
//! of backoff, heartbeat, and watchdog behavior replay in microseconds
//! and are bit-identical across runs.
//!
//! Clocks report [`Duration`] since an arbitrary per-clock epoch rather
//! than an `Instant`, because virtual time has no `Instant` to anchor to.
//! Code that previously kept an `Instant` for elapsed-time math keeps a
//! `Duration` from [`Clock::now`] instead and subtracts.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

/// A source of monotonic time plus the ability to wait on it.
///
/// Implementations must be monotonic: `now()` never decreases. `sleep`
/// returns once at least `d` of *this clock's* time has passed — for the
/// virtual clock that means immediately, after advancing time by `d`.
pub trait Clock: Send + Sync {
    /// Monotonic time since this clock's epoch.
    fn now(&self) -> Duration;
    /// Blocks (in this clock's time) for at least `d`.
    fn sleep(&self, d: Duration);
}

/// The production clock: monotonic time from a process-wide [`Instant`]
/// epoch, and a real [`thread::sleep`].
#[derive(Debug, Default, Clone, Copy)]
pub struct SystemClock;

/// The shared epoch every [`SystemClock`] measures from, captured on
/// first use so `now()` values are comparable across clock instances.
fn system_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

impl Clock for SystemClock {
    fn now(&self) -> Duration {
        system_epoch().elapsed()
    }

    fn sleep(&self, d: Duration) {
        thread::sleep(d);
    }
}

/// A clock whose time is data: it starts at zero and moves only via
/// [`VirtualClock::advance`] or a [`Clock::sleep`] (which advances by the
/// requested amount and returns immediately). Deterministic by
/// construction — two runs that perform the same sequence of advances
/// observe identical timestamps.
///
/// Time is stored in integer microseconds, matching the trace layer's
/// resolution, so equality comparisons across runs are exact.
#[derive(Debug, Default)]
pub struct VirtualClock {
    micros: AtomicU64,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Moves time forward by `d` (saturating at the u64 microsecond
    /// horizon, ~584 thousand years).
    pub fn advance(&self, d: Duration) {
        self.micros.fetch_add(
            d.as_micros().min(u128::from(u64::MAX)) as u64,
            Ordering::SeqCst,
        );
    }

    /// Jumps time to `at` if that is later than now (monotonicity is
    /// preserved: an earlier target is a no-op).
    pub fn advance_to(&self, at: Duration) {
        let target = at.as_micros().min(u128::from(u64::MAX)) as u64;
        self.micros.fetch_max(target, Ordering::SeqCst);
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Duration {
        Duration::from_micros(self.micros.load(Ordering::SeqCst))
    }

    fn sleep(&self, d: Duration) {
        self.advance(d);
    }
}

/// A cloneable, `Debug`-able handle to a shared [`Clock`], so configs
/// that derive `Clone`/`Debug` can carry one. Defaults to the system
/// clock.
#[derive(Clone)]
pub struct ClockHandle(Arc<dyn Clock>);

impl ClockHandle {
    /// The production clock.
    pub fn system() -> Self {
        ClockHandle(Arc::new(SystemClock))
    }

    /// A fresh virtual clock, returned alongside the handle so a test or
    /// simulator can advance it directly.
    pub fn simulated() -> (Self, Arc<VirtualClock>) {
        let clock = Arc::new(VirtualClock::new());
        (ClockHandle(Arc::clone(&clock) as Arc<dyn Clock>), clock)
    }

    /// Wraps any clock implementation.
    pub fn from_arc(clock: Arc<dyn Clock>) -> Self {
        ClockHandle(clock)
    }

    /// Monotonic time since the underlying clock's epoch.
    pub fn now(&self) -> Duration {
        self.0.now()
    }

    /// Blocks (in clock time) for at least `d`.
    pub fn sleep(&self, d: Duration) {
        self.0.sleep(d);
    }

    /// Clock time elapsed since an earlier [`ClockHandle::now`] sample.
    pub fn since(&self, earlier: Duration) -> Duration {
        self.0.now().saturating_sub(earlier)
    }
}

impl Default for ClockHandle {
    fn default() -> Self {
        ClockHandle::system()
    }
}

impl fmt::Debug for ClockHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ClockHandle(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic_and_shared_epoch() {
        let a = SystemClock;
        let b = SystemClock;
        let t1 = a.now();
        let t2 = b.now();
        assert!(t2 >= t1, "clock instances share one epoch");
    }

    #[test]
    fn virtual_clock_moves_only_on_demand() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now(), Duration::ZERO);
        clock.advance(Duration::from_millis(250));
        assert_eq!(clock.now(), Duration::from_millis(250));
        // Sleep is instantaneous on the wall clock but advances time.
        let wall = Instant::now();
        clock.sleep(Duration::from_secs(3600));
        assert!(wall.elapsed() < Duration::from_secs(5));
        assert_eq!(
            clock.now(),
            Duration::from_secs(3600) + Duration::from_millis(250)
        );
        // advance_to never rewinds.
        clock.advance_to(Duration::from_secs(1));
        assert_eq!(
            clock.now(),
            Duration::from_secs(3600) + Duration::from_millis(250)
        );
        clock.advance_to(Duration::from_secs(7200));
        assert_eq!(clock.now(), Duration::from_secs(7200));
    }

    #[test]
    fn handle_defaults_to_system_and_exposes_since() {
        let handle = ClockHandle::default();
        let t1 = handle.now();
        let t2 = handle.now();
        assert!(handle.since(t1) >= Duration::ZERO);
        assert!(t2 >= t1);

        let (handle, clock) = ClockHandle::simulated();
        let start = handle.now();
        clock.advance(Duration::from_millis(40));
        assert_eq!(handle.since(start), Duration::from_millis(40));
        handle.sleep(Duration::from_millis(10));
        assert_eq!(handle.now(), Duration::from_millis(50));
    }
}
