//! Execution policies for SD-VBS's data-parallel kernels.
//!
//! The paper's Table IV measures 10²–10⁵ of intrinsic parallelism in the
//! suite's kernels; this crate is the layer that lets the reproduction
//! cash some of it in on a multicore host. An [`ExecPolicy`] selects how
//! many worker threads a kernel may use, and the chunking helpers split an
//! index space into contiguous per-worker ranges executed under
//! [`std::thread::scope`] — no dependencies, no unsafe, no thread pool to
//! manage.
//!
//! Every parallel kernel in the workspace is written so that
//! `ExecPolicy::Serial` and `ExecPolicy::Threads(n)` produce **bit-identical
//! results**: work is partitioned over disjoint output ranges (or merged
//! with an order-preserving reduction), never racing on shared accumulators.
//! Property tests in each kernel crate assert this equivalence.
//!
//! ```
//! use sdvbs_exec::{map_chunks, ExecPolicy};
//!
//! // Sum of squares over four worker chunks, merged in chunk order.
//! let partials = map_chunks(ExecPolicy::Threads(4), 1000, |range| {
//!     range.map(|i| i as u64 * i as u64).sum::<u64>()
//! });
//! let serial: u64 = (0..1000u64).map(|i| i * i).sum();
//! assert_eq!(partials.iter().sum::<u64>(), serial);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;

pub use clock::{Clock, ClockHandle, SystemClock, VirtualClock};

use std::num::NonZeroUsize;
use std::ops::Range;
use std::thread;

/// How a data-parallel kernel should execute.
///
/// The default is [`ExecPolicy::Serial`], so existing callers and all
/// deterministic-by-seed experiments are unaffected unless they opt in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecPolicy {
    /// Single-threaded, in the calling thread (the reference semantics).
    #[default]
    Serial,
    /// Exactly this many worker threads (clamped to at least 1 and to the
    /// number of work items).
    Threads(usize),
    /// One worker per available hardware thread
    /// ([`std::thread::available_parallelism`]).
    Auto,
}

impl ExecPolicy {
    /// Number of workers this policy yields for `items` units of work.
    ///
    /// Always at least 1; never more than `items` (an idle worker is pure
    /// overhead).
    pub fn threads_for(self, items: usize) -> usize {
        let requested = match self {
            ExecPolicy::Serial => 1,
            ExecPolicy::Threads(n) => n.max(1),
            ExecPolicy::Auto => thread::available_parallelism().map_or(1, NonZeroUsize::get),
        };
        requested.min(items.max(1))
    }

    /// Whether this policy resolves to more than one worker for `items`.
    pub fn is_parallel(self, items: usize) -> bool {
        self.threads_for(items) > 1
    }

    /// Resolves [`ExecPolicy::Auto`] to a concrete [`ExecPolicy::Threads`]
    /// given the host's thread count; `Serial` and `Threads` pass through.
    ///
    /// `Auto` queries [`std::thread::available_parallelism`] at every call
    /// site, so a long sweep could observe different values (the OS may
    /// change a process's CPU affinity mid-run). Resolving once per
    /// pool/run and threading the concrete policy through keeps every
    /// record of that run consistent.
    pub fn resolve_with(self, auto_threads: usize) -> ExecPolicy {
        match self {
            ExecPolicy::Auto => ExecPolicy::Threads(auto_threads.max(1)),
            other => other,
        }
    }

    /// Resolves [`ExecPolicy::Auto`] by querying
    /// [`std::thread::available_parallelism`] once, now.
    pub fn resolve(self) -> ExecPolicy {
        self.resolve_with(thread::available_parallelism().map_or(1, NonZeroUsize::get))
    }

    /// The concrete worker count of a resolved policy (`Serial` = 1).
    ///
    /// Unlike [`ExecPolicy::threads_for`] this does not clamp to a work-item
    /// count; it reports what the policy *would* use given ample work, which
    /// is what a run record should store. `Auto` is resolved on the spot.
    pub fn worker_count(self) -> usize {
        match self.resolve() {
            ExecPolicy::Serial => 1,
            ExecPolicy::Threads(n) => n.max(1),
            ExecPolicy::Auto => unreachable!("resolve() never returns Auto"),
        }
    }
}

/// Splits `0..items` into `workers` contiguous ranges whose lengths differ
/// by at most one, in ascending order. Empty ranges are omitted.
pub fn split_ranges(items: usize, workers: usize) -> Vec<Range<usize>> {
    let workers = workers.clamp(1, items.max(1));
    let base = items / workers;
    let extra = items % workers;
    let mut out = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let len = base + usize::from(w < extra);
        if len == 0 {
            continue;
        }
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Runs `f` once per contiguous chunk of `0..items`, in parallel per
/// `policy`. The first chunk runs on the calling thread.
///
/// A panic in any chunk propagates to the caller once all workers have
/// joined (the [`std::thread::scope`] contract).
pub fn for_each_chunk(policy: ExecPolicy, items: usize, f: impl Fn(Range<usize>) + Sync) {
    if items == 0 {
        return;
    }
    let workers = policy.threads_for(items);
    if workers <= 1 {
        f(0..items);
        return;
    }
    let ranges = split_ranges(items, workers);
    thread::scope(|s| {
        let f = &f;
        for r in ranges.iter().skip(1).cloned() {
            s.spawn(move || f(r));
        }
        f(ranges[0].clone());
    });
}

/// Maps each contiguous chunk of `0..items` through `f` and returns the
/// results **in chunk order** (ascending index ranges), so callers can
/// perform order-sensitive reductions and match serial semantics exactly.
pub fn map_chunks<T: Send>(
    policy: ExecPolicy,
    items: usize,
    f: impl Fn(Range<usize>) -> T + Sync,
) -> Vec<T> {
    if items == 0 {
        return Vec::new();
    }
    let workers = policy.threads_for(items);
    if workers <= 1 {
        return vec![f(0..items)];
    }
    let ranges = split_ranges(items, workers);
    thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = ranges
            .iter()
            .skip(1)
            .cloned()
            .map(|r| s.spawn(move || f(r)))
            .collect();
        let mut out = Vec::with_capacity(ranges.len());
        out.push(f(ranges[0].clone()));
        for h in handles {
            out.push(h.join().expect("worker panics propagate via scope"));
        }
        out
    })
}

/// Fills `out` in place, handing each worker a disjoint run of
/// `chunk`-aligned elements: `f(start, slice)` receives the element index
/// of `slice[0]`. `out.len()` must be a multiple of `chunk`.
///
/// This is the row-parallel image-fill primitive: with `chunk` = image
/// width, each worker owns whole rows, and writes never alias.
///
/// # Panics
///
/// Panics if `chunk` is zero or does not divide `out.len()`.
pub fn fill_chunks<T: Send>(
    policy: ExecPolicy,
    out: &mut [T],
    chunk: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    assert!(chunk > 0, "chunk length must be positive");
    assert_eq!(
        out.len() % chunk,
        0,
        "buffer length must be a multiple of the chunk length"
    );
    let rows = out.len() / chunk;
    if rows == 0 {
        return;
    }
    let workers = policy.threads_for(rows);
    if workers <= 1 {
        f(0, out);
        return;
    }
    let ranges = split_ranges(rows, workers);
    thread::scope(|s| {
        let f = &f;
        let mut rest = out;
        for r in &ranges {
            let (head, tail) = rest.split_at_mut((r.end - r.start) * chunk);
            rest = tail;
            let start = r.start * chunk;
            s.spawn(move || f(start, head));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_policy_is_one_worker() {
        assert_eq!(ExecPolicy::Serial.threads_for(1000), 1);
        assert!(!ExecPolicy::Serial.is_parallel(1000));
    }

    #[test]
    fn threads_policy_clamps_to_items_and_one() {
        assert_eq!(ExecPolicy::Threads(4).threads_for(1000), 4);
        assert_eq!(ExecPolicy::Threads(4).threads_for(3), 3);
        assert_eq!(ExecPolicy::Threads(0).threads_for(10), 1);
        assert_eq!(ExecPolicy::Threads(4).threads_for(0), 1);
    }

    #[test]
    fn auto_policy_is_at_least_one() {
        assert!(ExecPolicy::Auto.threads_for(64) >= 1);
    }

    #[test]
    fn resolve_pins_auto_and_passes_others_through() {
        assert_eq!(ExecPolicy::Auto.resolve_with(6), ExecPolicy::Threads(6));
        assert_eq!(ExecPolicy::Auto.resolve_with(0), ExecPolicy::Threads(1));
        assert_eq!(ExecPolicy::Serial.resolve_with(6), ExecPolicy::Serial);
        assert_eq!(
            ExecPolicy::Threads(3).resolve_with(6),
            ExecPolicy::Threads(3)
        );
        // resolve() agrees with the host query and never yields Auto.
        assert_ne!(ExecPolicy::Auto.resolve(), ExecPolicy::Auto);
    }

    #[test]
    fn worker_count_reports_unclamped_width() {
        assert_eq!(ExecPolicy::Serial.worker_count(), 1);
        assert_eq!(ExecPolicy::Threads(8).worker_count(), 8);
        assert_eq!(ExecPolicy::Threads(0).worker_count(), 1);
        assert!(ExecPolicy::Auto.worker_count() >= 1);
    }

    #[test]
    fn split_ranges_cover_exactly_once() {
        for items in [0usize, 1, 2, 7, 64, 1000] {
            for workers in [1usize, 2, 3, 4, 7, 16] {
                let ranges = split_ranges(items, workers);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "gap before {r:?}");
                    assert!(r.end > r.start, "empty range emitted");
                    next = r.end;
                }
                assert_eq!(next, items, "{items} items over {workers} workers");
                if items > 0 {
                    let lens: Vec<usize> = ranges.iter().map(|r| r.end - r.start).collect();
                    let min = lens.iter().min().unwrap();
                    let max = lens.iter().max().unwrap();
                    assert!(max - min <= 1, "unbalanced split {lens:?}");
                }
            }
        }
    }

    #[test]
    fn map_chunks_preserves_chunk_order() {
        for threads in 1..=4 {
            let parts = map_chunks(ExecPolicy::Threads(threads), 100, |r| (r.start, r.end));
            let mut next = 0;
            for (s, e) in parts {
                assert_eq!(s, next);
                next = e;
            }
            assert_eq!(next, 100);
        }
    }

    #[test]
    fn for_each_chunk_visits_every_index_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
        for_each_chunk(ExecPolicy::Threads(4), hits.len(), |r| {
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn fill_chunks_matches_serial_fill() {
        let width = 13;
        let rows = 37;
        let f = |i: usize| (i * 7 % 101) as f32;
        let mut serial = vec![0.0f32; width * rows];
        fill_chunks(ExecPolicy::Serial, &mut serial, width, |start, s| {
            for (off, v) in s.iter_mut().enumerate() {
                *v = f(start + off);
            }
        });
        for threads in [2usize, 3, 4, 8] {
            let mut par = vec![0.0f32; width * rows];
            fill_chunks(ExecPolicy::Threads(threads), &mut par, width, |start, s| {
                for (off, v) in s.iter_mut().enumerate() {
                    *v = f(start + off);
                }
            });
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn map_chunks_empty_items_is_empty() {
        let parts = map_chunks(ExecPolicy::Auto, 0, |_| 1u32);
        assert!(parts.is_empty());
    }

    #[test]
    #[should_panic(expected = "multiple of the chunk")]
    fn fill_chunks_rejects_ragged_buffers() {
        let mut buf = vec![0u8; 10];
        fill_chunks(ExecPolicy::Serial, &mut buf, 3, |_, _| {});
    }
}
