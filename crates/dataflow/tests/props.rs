//! Property-based tests for the dataflow tracer.

use proptest::prelude::*;
use sdvbs_dataflow::{kernels, trace, Tv};

proptest! {
    /// Traced arithmetic computes exactly what plain f64 arithmetic does.
    #[test]
    fn traced_values_match_plain_arithmetic(
        ops in proptest::collection::vec((0u8..4, -8.0f64..8.0), 1..30),
    ) {
        let mut plain = 1.5f64;
        let stats = trace(|| {
            let mut tv = Tv::lit(1.5);
            for &(op, v) in &ops {
                match op {
                    0 => { tv = tv + v; plain += v; }
                    1 => { tv = tv - v; plain -= v; }
                    2 => { tv = tv * v; plain *= v; }
                    _ => { let d = if v.abs() < 0.5 { 2.0 } else { v }; tv = tv / d; plain /= d; }
                }
            }
            prop_assert!(
                (tv.value() - plain).abs() < 1e-9 * plain.abs().max(1.0)
                    || (tv.value().is_nan() && plain.is_nan()),
                "{} vs {plain}", tv.value()
            );
            Ok(())
        });
        // One op per step, all chained.
        prop_assert_eq!(stats.work, ops.len() as u64);
        prop_assert_eq!(stats.span, ops.len() as u64);
    }

    /// `tree_sum` computes the same value as a sequential sum but with
    /// logarithmic span.
    #[test]
    fn tree_sum_value_and_span(
        vals in proptest::collection::vec(-100.0f64..100.0, 1..64),
    ) {
        let expected: f64 = vals.iter().sum();
        let stats = trace(|| {
            let tvs: Vec<Tv> = vals.iter().map(|&v| Tv::lit(v)).collect();
            let t = kernels::tree_sum(&tvs);
            prop_assert!((t.value() - expected).abs() < 1e-6, "{} vs {expected}", t.value());
            Ok(())
        });
        let n = vals.len() as u64;
        prop_assert_eq!(stats.work, n - 1);
        // ceil(log2(n)) bound on the reduction-tree depth.
        let log_bound = 64 - (n.max(1)).leading_zeros() as u64;
        prop_assert!(stats.span <= log_bound + 1, "span {} for n {n}", stats.span);
    }

    /// Independent kernel instances scale work linearly but keep the span
    /// fixed — the property Table IV's matrix-inversion row relies on.
    #[test]
    fn independent_instances_scale_work_not_span(count in 1usize..8) {
        let one = kernels::matrix_inversion(3, 1);
        let many = kernels::matrix_inversion(3, count);
        prop_assert_eq!(many.span, one.span);
        prop_assert_eq!(many.work, one.work * count as u64);
    }

    /// The compare-exchange network sorts correctly for any power-of-two
    /// input size (validated inside the kernel's debug assertion; here we
    /// just confirm the stats are structural constants).
    #[test]
    fn bitonic_sort_span_is_structural(pow in 2u32..9) {
        let n = 1usize << pow;
        let stats = kernels::sort(n);
        // Stage count: pow * (pow + 1) / 2; each stage does n/2 ops.
        let stages = (pow * (pow + 1) / 2) as u64;
        prop_assert_eq!(stats.span, stages);
        prop_assert_eq!(stats.work, stages * (n as u64) / 2);
    }
}
