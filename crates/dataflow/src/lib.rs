//! Dynamic dataflow critical-path analysis — the substrate behind the
//! paper's Table IV ("parallelism across benchmarks and kernels").
//!
//! The paper estimates each kernel's *intrinsic* parallelism with a dynamic
//! critical-path analysis in the style of Lam & Wilson: imagine an ideal
//! dataflow machine with infinite functional units and free communication,
//! and ask how long the computation takes when every operation fires the
//! moment its operands are ready. Then
//!
//! ```text
//! parallelism ≈ work / span
//! ```
//!
//! where *work* is the number of operations retired and *span* is the
//! length of the longest data-dependence chain.
//!
//! This crate implements exactly that measurement with a traced scalar type,
//! [`Tv`]: every arithmetic operation on `Tv` values increments a work
//! counter and stamps its result with `max(operand timestamps) + 1`. The
//! largest timestamp produced during a [`trace`] session is the span.
//! Control flow and index arithmetic are *untraced* — mirroring the paper's
//! oracle, which assumes perfect branch resolution — so the measured
//! parallelism is the optimistic dataflow limit, not what a real machine
//! achieves.
//!
//! [`kernels`] hosts miniature implementations of every kernel row of
//! Table IV, written directly on `Tv`, so the table can be regenerated.
//!
//! # Examples
//!
//! ```
//! use sdvbs_dataflow::{trace, Tv};
//!
//! // Summing a slice with a tree reduction has span O(log n):
//! let stats = trace(|| {
//!     let mut vals: Vec<Tv> = (0..8).map(|i| Tv::lit(i as f64)).collect();
//!     while vals.len() > 1 {
//!         vals = vals.chunks(2).map(|c| if c.len() == 2 { c[0] + c[1] } else { c[0] }).collect();
//!     }
//!     assert_eq!(vals[0].value(), 28.0);
//! });
//! assert_eq!(stats.work, 7);
//! assert_eq!(stats.span, 3); // log2(8)
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kernels;
mod traced;

pub use traced::{trace, TraceStats, Tv};
