//! Miniature traced implementations of every kernel row in the paper's
//! Table IV.
//!
//! Each function builds a deterministic synthetic input, runs the kernel's
//! algorithmic structure on [`Tv`] values inside a [`trace`] session, and
//! returns the measured [`TraceStats`]. The *sizes* are scaled-down
//! versions of what the full benchmarks use (tracing multiplies memory per
//! scalar), but the dependence structure — which is what determines
//! work/span parallelism — is the same as the production kernels in the
//! benchmark crates.
//!
//! Reductions are expressed with [`tree_sum`], reflecting the ideal
//! dataflow machine's freedom to reassociate associative reductions; this
//! matches the oracle assumption behind the paper's numbers.

use crate::traced::{trace, TraceStats, Tv};

/// Sums a slice of traced values with a balanced reduction tree
/// (span `⌈log₂ n⌉` instead of a length-`n` chain).
pub fn tree_sum(vals: &[Tv]) -> Tv {
    match vals.len() {
        0 => Tv::lit(0.0),
        1 => vals[0],
        n => {
            let (a, b) = vals.split_at(n / 2);
            tree_sum(a) + tree_sum(b)
        }
    }
}

/// Deterministic pseudo-random pattern in `0.0..1.0` (no RNG dependency;
/// reproducible across runs and platforms).
fn pattern(i: usize) -> f64 {
    let x = (i as u64).wrapping_mul(2654435761).wrapping_add(12345);
    (x % 10007) as f64 / 10007.0
}

fn image(w: usize, h: usize) -> Vec<Tv> {
    (0..w * h).map(|i| Tv::lit(pattern(i))).collect()
}

/// Disparity's "Correlation" kernel: windowed sum-of-absolute-differences
/// between an image and its shifted pair, one window per pixel.
pub fn correlation(w: usize, h: usize, win: usize) -> TraceStats {
    trace(|| {
        let a = image(w, h);
        let b: Vec<Tv> = (0..w * h).map(|i| Tv::lit(pattern(i + 3))).collect();
        let half = win / 2;
        let mut out = Vec::with_capacity(w * h);
        for y in half..h - half {
            for x in half..w - half {
                let mut terms = Vec::with_capacity(win * win);
                for dy in 0..win {
                    for dx in 0..win {
                        let idx = (y + dy - half) * w + (x + dx - half);
                        terms.push((a[idx] - b[idx]).abs());
                    }
                }
                out.push(tree_sum(&terms));
            }
        }
        std::hint::black_box(out.len());
    })
}

/// The "Integral Image" kernel: row prefix sums then column prefix sums.
/// Prefix sums are genuine dependence chains, so the span grows with
/// `w + h` — this is why the paper observes integral image occupancy
/// *shrinking* as images grow (its parallelism scales with size).
pub fn integral_image(w: usize, h: usize) -> TraceStats {
    trace(|| {
        let mut img = image(w, h);
        for y in 0..h {
            for x in 1..w {
                img[y * w + x] = img[y * w + x] + img[y * w + x - 1];
            }
        }
        for x in 0..w {
            for y in 1..h {
                img[y * w + x] = img[y * w + x] + img[(y - 1) * w + x];
            }
        }
        std::hint::black_box(img.len());
    })
}

/// The "Sort" kernel as a bitonic sorting network of traced
/// compare-exchange nodes.
///
/// # Panics
///
/// Panics if `n` is not a power of two (bitonic networks require it).
pub fn sort(n: usize) -> TraceStats {
    assert!(
        n.is_power_of_two(),
        "bitonic sort requires a power-of-two size"
    );
    trace(|| {
        let mut v: Vec<Tv> = (0..n).map(|i| Tv::lit(pattern(i))).collect();
        // Standard iterative bitonic sort.
        let mut k = 2;
        while k <= n {
            let mut j = k / 2;
            while j > 0 {
                for i in 0..n {
                    let l = i ^ j;
                    if l > i {
                        let ascending = (i & k) == 0;
                        let (lo, hi) = v[i].ordered(v[l]);
                        if ascending {
                            v[i] = lo;
                            v[l] = hi;
                        } else {
                            v[i] = hi;
                            v[l] = lo;
                        }
                    }
                }
                j /= 2;
            }
            k *= 2;
        }
        debug_assert!(v.windows(2).all(|p| p[0].value() <= p[1].value()));
        std::hint::black_box(v.len());
    })
}

/// Disparity's "SSD" kernel: per-pixel squared differences reduced to one
/// score.
pub fn ssd(w: usize, h: usize) -> TraceStats {
    trace(|| {
        let a = image(w, h);
        let b: Vec<Tv> = (0..w * h).map(|i| Tv::lit(pattern(i + 7))).collect();
        let diffs: Vec<Tv> = a
            .iter()
            .zip(&b)
            .map(|(x, y)| {
                let d = *x - *y;
                d * d
            })
            .collect();
        std::hint::black_box(tree_sum(&diffs).value());
    })
}

/// Tracking's "Gradient" kernel: central differences in x and y.
pub fn gradient(w: usize, h: usize) -> TraceStats {
    trace(|| {
        let img = image(w, h);
        let mut gx = Vec::with_capacity(w * h);
        let mut gy = Vec::with_capacity(w * h);
        for y in 1..h - 1 {
            for x in 1..w - 1 {
                gx.push((img[y * w + x + 1] - img[y * w + x - 1]) * 0.5);
                gy.push((img[(y + 1) * w + x] - img[(y - 1) * w + x]) * 0.5);
            }
        }
        std::hint::black_box(gx.len() + gy.len());
    })
}

/// Tracking's "Gaussian Filter" kernel: separable 1-D convolutions.
pub fn gaussian_filter(w: usize, h: usize, taps: usize) -> TraceStats {
    trace(|| {
        let img = image(w, h);
        let kernel: Vec<f64> = (0..taps)
            .map(|i| {
                let x = i as f64 - (taps as f64 - 1.0) / 2.0;
                (-x * x / 2.0).exp()
            })
            .collect();
        let half = taps / 2;
        // Horizontal pass.
        let mut tmp = vec![Tv::lit(0.0); w * h];
        for y in 0..h {
            for x in half..w - half {
                let terms: Vec<Tv> = (0..taps)
                    .map(|k| img[y * w + x + k - half] * kernel[k])
                    .collect();
                tmp[y * w + x] = tree_sum(&terms);
            }
        }
        // Vertical pass.
        let mut out = vec![Tv::lit(0.0); w * h];
        for y in half..h - half {
            for x in 0..w {
                let terms: Vec<Tv> = (0..taps)
                    .map(|k| tmp[(y + k - half) * w + x] * kernel[k])
                    .collect();
                out[y * w + x] = tree_sum(&terms);
            }
        }
        std::hint::black_box(out.len());
    })
}

/// Tracking's "Area Sum" kernel: windowed sums over the image, one
/// independent reduction per output pixel.
pub fn area_sum(w: usize, h: usize, win: usize) -> TraceStats {
    trace(|| {
        let img = image(w, h);
        let mut out = Vec::new();
        for y in 0..h - win {
            for x in 0..w - win {
                let terms: Vec<Tv> = (0..win * win)
                    .map(|k| img[(y + k / win) * w + x + k % win])
                    .collect();
                out.push(tree_sum(&terms));
            }
        }
        std::hint::black_box(out.len());
    })
}

/// Tracking's "Matrix Inversion" kernel: `count` independent `n × n`
/// Gauss-Jordan inversions (the tracker inverts one small normal-equation
/// matrix per feature, so the instances are mutually independent).
pub fn matrix_inversion(n: usize, count: usize) -> TraceStats {
    trace(|| {
        for c in 0..count {
            // Diagonally dominant => invertible without pivoting.
            let mut a: Vec<Tv> = (0..n * n)
                .map(|i| {
                    let base = pattern(i + c * n * n);
                    if i / n == i % n {
                        Tv::lit(base + n as f64)
                    } else {
                        Tv::lit(base)
                    }
                })
                .collect();
            let mut inv: Vec<Tv> = (0..n * n)
                .map(|i| Tv::lit(if i / n == i % n { 1.0 } else { 0.0 }))
                .collect();
            for col in 0..n {
                let pivot = a[col * n + col];
                for j in 0..n {
                    a[col * n + j] /= pivot;
                    inv[col * n + j] /= pivot;
                }
                for row in 0..n {
                    if row != col {
                        let factor = a[row * n + col];
                        for j in 0..n {
                            a[row * n + j] = a[row * n + j] - factor * a[col * n + j];
                            inv[row * n + j] = inv[row * n + j] - factor * inv[col * n + j];
                        }
                    }
                }
            }
            std::hint::black_box(inv[0].value());
        }
    })
}

/// SIFT's headline kernel: difference-of-Gaussian pyramid, extrema
/// detection (free comparisons), and orientation-histogram binning per
/// keypoint.
pub fn sift(w: usize, h: usize) -> TraceStats {
    trace(|| {
        let img = image(w, h);
        // Three blur levels -> two DoG levels.
        let mut levels: Vec<Vec<Tv>> = Vec::new();
        let mut cur = img;
        for _ in 0..3 {
            let mut next = cur.clone();
            for y in 1..h - 1 {
                for x in 1..w - 1 {
                    let terms = [
                        cur[y * w + x] * 4.0,
                        cur[y * w + x - 1],
                        cur[y * w + x + 1],
                        cur[(y - 1) * w + x],
                        cur[(y + 1) * w + x],
                    ];
                    next[y * w + x] = tree_sum(&terms) * 0.125;
                }
            }
            levels.push(next.clone());
            cur = next;
        }
        let dogs: Vec<Vec<Tv>> = levels
            .windows(2)
            .map(|pair| pair[1].iter().zip(&pair[0]).map(|(a, b)| *a - *b).collect())
            .collect();
        // Extremum test is comparisons only (free); descriptors do MACs.
        let mut count = 0usize;
        for y in 1..h - 1 {
            for x in 1..w - 1 {
                let c = dogs[0][y * w + x];
                let neighbors = [
                    dogs[0][y * w + x - 1],
                    dogs[0][y * w + x + 1],
                    dogs[0][(y - 1) * w + x],
                    dogs[0][(y + 1) * w + x],
                    dogs[1][y * w + x],
                ];
                if neighbors.iter().all(|n| c > *n) {
                    count += 1;
                    // Orientation histogram over a small patch.
                    let mut bins = [Tv::lit(0.0); 8];
                    for dy in 0..3 {
                        for dx in 0..3 {
                            let idx = (y + dy - 1) * w + x + dx - 1;
                            let gx = dogs[0][idx] * 2.0;
                            let gy = dogs[0][idx] * 3.0;
                            let mag = (gx * gx + gy * gy).sqrt();
                            bins[(dx + dy) % 8] += mag;
                        }
                    }
                    std::hint::black_box(bins[0].value());
                }
            }
        }
        std::hint::black_box(count);
    })
}

/// SIFT's "Interpolation" kernel: bilinear upsampling, one independent
/// 4-tap blend per output pixel.
pub fn interpolation(w: usize, h: usize, factor: usize) -> TraceStats {
    trace(|| {
        let img = image(w, h);
        let ow = w * factor;
        let oh = h * factor;
        let mut out = Vec::with_capacity(ow * oh);
        for y in 0..oh {
            for x in 0..ow {
                let sx = x as f64 / factor as f64;
                let sy = y as f64 / factor as f64;
                let x0 = (sx as usize).min(w - 2);
                let y0 = (sy as usize).min(h - 2);
                let fx = sx - x0 as f64;
                let fy = sy - y0 as f64;
                let p00 = img[y0 * w + x0];
                let p10 = img[y0 * w + x0 + 1];
                let p01 = img[(y0 + 1) * w + x0];
                let p11 = img[(y0 + 1) * w + x0 + 1];
                let top = p00 + (p10 - p00) * fx;
                let bot = p01 + (p11 - p01) * fx;
                out.push(top + (bot - top) * fy);
            }
        }
        std::hint::black_box(out.len());
    })
}

/// Stitch's "LS Solver" kernel: normal equations `AᵀA x = Aᵀb` assembled
/// with tree reductions, then Gaussian elimination.
pub fn ls_solver(m: usize, n: usize) -> TraceStats {
    trace(|| {
        let a: Vec<Tv> = (0..m * n)
            .map(|i| Tv::lit(pattern(i) + if i / n == i % n { 2.0 } else { 0.0 }))
            .collect();
        let b: Vec<Tv> = (0..m).map(|i| Tv::lit(pattern(i + 11))).collect();
        // Assemble AtA and Atb.
        let mut ata = vec![Tv::lit(0.0); n * n];
        for p in 0..n {
            for q in 0..n {
                let terms: Vec<Tv> = (0..m).map(|i| a[i * n + p] * a[i * n + q]).collect();
                ata[p * n + q] = tree_sum(&terms);
            }
        }
        let mut atb = vec![Tv::lit(0.0); n];
        for p in 0..n {
            let terms: Vec<Tv> = (0..m).map(|i| a[i * n + p] * b[i]).collect();
            atb[p] = tree_sum(&terms);
        }
        // Gaussian elimination without pivoting (diagonally boosted input).
        for col in 0..n {
            for row in col + 1..n {
                let factor = ata[row * n + col] / ata[col * n + col];
                for j in col..n {
                    ata[row * n + j] = ata[row * n + j] - factor * ata[col * n + j];
                }
                atb[row] = atb[row] - factor * atb[col];
            }
        }
        let mut x = vec![Tv::lit(0.0); n];
        for row in (0..n).rev() {
            let mut acc = atb[row];
            for j in row + 1..n {
                acc -= ata[row * n + j] * x[j];
            }
            x[row] = acc / ata[row * n + row];
        }
        std::hint::black_box(x[0].value());
    })
}

/// Stitch's "SVD" kernel: one-sided Jacobi sweeps orthogonalizing column
/// pairs.
pub fn svd(m: usize, n: usize, sweeps: usize) -> TraceStats {
    trace(|| {
        let mut a: Vec<Tv> = (0..m * n).map(|i| Tv::lit(pattern(i) + 0.1)).collect();
        for _ in 0..sweeps {
            for p in 0..n {
                for q in p + 1..n {
                    let dots_pp: Vec<Tv> = (0..m).map(|i| a[i * n + p] * a[i * n + p]).collect();
                    let dots_qq: Vec<Tv> = (0..m).map(|i| a[i * n + q] * a[i * n + q]).collect();
                    let dots_pq: Vec<Tv> = (0..m).map(|i| a[i * n + p] * a[i * n + q]).collect();
                    let app = tree_sum(&dots_pp);
                    let aqq = tree_sum(&dots_qq);
                    let apq = tree_sum(&dots_pq);
                    let tau = (aqq - app) / (apq * 2.0 + 1e-30);
                    let t = 1.0 / (tau.abs() + (tau * tau + 1.0).sqrt());
                    let c = 1.0 / (t * t + 1.0).sqrt();
                    let s = t * c;
                    for i in 0..m {
                        let ap = a[i * n + p];
                        let aq = a[i * n + q];
                        a[i * n + p] = ap * c - aq * s;
                        a[i * n + q] = ap * s + aq * c;
                    }
                }
            }
        }
        std::hint::black_box(a[0].value());
    })
}

/// Stitch's "Convolution" kernel: dense 2-D convolution with a small
/// kernel.
pub fn convolution(w: usize, h: usize, k: usize) -> TraceStats {
    trace(|| {
        let img = image(w, h);
        let kern: Vec<f64> = (0..k * k).map(|i| pattern(i + 5) - 0.5).collect();
        let half = k / 2;
        let mut out = Vec::new();
        for y in half..h - half {
            for x in half..w - half {
                let terms: Vec<Tv> = (0..k * k)
                    .map(|i| img[(y + i / k - half) * w + x + i % k - half] * kern[i])
                    .collect();
                out.push(tree_sum(&terms));
            }
        }
        std::hint::black_box(out.len());
    })
}

/// SVM's "Matrix Ops" kernel: dense matrix multiply with tree-reduced dot
/// products.
pub fn matrix_ops(n: usize) -> TraceStats {
    trace(|| {
        let a: Vec<Tv> = (0..n * n).map(|i| Tv::lit(pattern(i))).collect();
        let b: Vec<Tv> = (0..n * n).map(|i| Tv::lit(pattern(i + 17))).collect();
        let mut c = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                let terms: Vec<Tv> = (0..n).map(|k| a[i * n + k] * b[k * n + j]).collect();
                c.push(tree_sum(&terms));
            }
        }
        std::hint::black_box(c.len());
    })
}

/// SVM's "Learning" kernel: batch gradient descent epochs on a linear
/// classifier — samples parallel within an epoch, epochs sequential.
pub fn learning(samples: usize, dims: usize, epochs: usize) -> TraceStats {
    trace(|| {
        let xs: Vec<Tv> = (0..samples * dims).map(|i| Tv::lit(pattern(i))).collect();
        let ys: Vec<f64> = (0..samples)
            .map(|i| if pattern(i + 23) > 0.5 { 1.0 } else { -1.0 })
            .collect();
        let mut w: Vec<Tv> = vec![Tv::lit(0.0); dims];
        for _ in 0..epochs {
            let mut grad = vec![Vec::with_capacity(samples); dims];
            for s in 0..samples {
                let terms: Vec<Tv> = (0..dims).map(|d| w[d] * xs[s * dims + d]).collect();
                let margin = tree_sum(&terms) * ys[s];
                // Hinge-style update contribution (selection is free).
                if margin.value() < 1.0 {
                    for (d, g) in grad.iter_mut().enumerate() {
                        g.push(xs[s * dims + d] * ys[s]);
                    }
                }
            }
            for d in 0..dims {
                if !grad[d].is_empty() {
                    let g = tree_sum(&grad[d]);
                    w[d] += g * 0.01;
                }
            }
        }
        std::hint::black_box(w[0].value());
    })
}

/// SVM's "Conjugate Matrix" kernel: conjugate-gradient iterations on an SPD
/// system — matvecs parallel, iterations strictly sequential.
pub fn conjugate_matrix(n: usize, iters: usize) -> TraceStats {
    trace(|| {
        // SPD matrix: diagonally dominant symmetric pattern.
        let a: Vec<Tv> = (0..n * n)
            .map(|i| {
                let (r, c) = (i / n, i % n);
                let v = pattern(r.min(c) * n + r.max(c));
                Tv::lit(if r == c { v + n as f64 } else { v })
            })
            .collect();
        let b: Vec<Tv> = (0..n).map(|i| Tv::lit(pattern(i + 31))).collect();
        let mut x = vec![Tv::lit(0.0); n];
        let mut r = b.clone();
        let mut p = r.clone();
        let rr_terms: Vec<Tv> = r.iter().map(|v| *v * *v).collect();
        let mut rs_old = tree_sum(&rr_terms);
        for _ in 0..iters {
            let ap: Vec<Tv> = (0..n)
                .map(|i| {
                    let terms: Vec<Tv> = (0..n).map(|j| a[i * n + j] * p[j]).collect();
                    tree_sum(&terms)
                })
                .collect();
            let pap_terms: Vec<Tv> = p.iter().zip(&ap).map(|(u, v)| *u * *v).collect();
            let alpha = rs_old / tree_sum(&pap_terms);
            for i in 0..n {
                x[i] += alpha * p[i];
                r[i] -= alpha * ap[i];
            }
            let rr_terms: Vec<Tv> = r.iter().map(|v| *v * *v).collect();
            let rs_new = tree_sum(&rr_terms);
            let beta = rs_new / rs_old;
            for i in 0..n {
                p[i] = r[i] + beta * p[i];
            }
            rs_old = rs_new;
        }
        std::hint::black_box(x[0].value());
    })
}

/// Localization's "Particle Filter" kernel: per-particle motion update
/// (trig chain) and sensor likelihood (range + bearing per landmark) —
/// particles mutually independent within a step, steps sequential.
///
/// Extension row: localization appears in the paper's Figure 3 but not in
/// its Table IV; this mini-kernel completes the coverage.
pub fn particle_filter(particles: usize, landmarks: usize, steps: usize) -> TraceStats {
    trace(|| {
        let mut xs: Vec<Tv> = (0..particles).map(|i| Tv::lit(pattern(i) * 20.0)).collect();
        let mut ys: Vec<Tv> = (0..particles)
            .map(|i| Tv::lit(pattern(i + 1) * 20.0))
            .collect();
        let mut thetas: Vec<Tv> = (0..particles)
            .map(|i| Tv::lit(pattern(i + 2) * std::f64::consts::TAU))
            .collect();
        let lms: Vec<(f64, f64)> = (0..landmarks)
            .map(|i| (pattern(i + 7) * 20.0, pattern(i + 11) * 20.0))
            .collect();
        for s in 0..steps {
            let trans = 0.5 + pattern(s) * 0.3;
            let rot = pattern(s + 3) * 0.2 - 0.1;
            let mut weights = Vec::with_capacity(particles);
            for p in 0..particles {
                // Motion model: sequential trig chain per particle.
                thetas[p] = thetas[p] + rot;
                xs[p] += thetas[p].cos() * trans;
                ys[p] += thetas[p].sin() * trans;
                // Sensor model: independent per landmark, combined by a
                // product (log-sum) reduction.
                let terms: Vec<Tv> = lms
                    .iter()
                    .map(|&(lx, ly)| {
                        let dx = xs[p] - lx;
                        let dy = ys[p] - ly;
                        let range = (dx * dx + dy * dy).sqrt();
                        let err = range - 5.0;
                        -(err * err) * 0.5
                    })
                    .collect();
                weights.push(tree_sum(&terms).exp());
            }
            // Normalization couples all particles (the resampling barrier).
            let wsum = tree_sum(&weights);
            for wp in weights.iter_mut() {
                *wp /= wsum;
            }
            std::hint::black_box(weights[0].value());
        }
    })
}

/// Segmentation's "Adjacency matrix" kernel: per-pixel-pair affinity
/// weights (feature distance + spatial distance through an exp), every
/// pair independent.
///
/// Extension row: segmentation's kernels appear in Figure 3 but not in
/// Table IV.
pub fn adjacency_matrix(w: usize, h: usize, radius: usize) -> TraceStats {
    trace(|| {
        let img = image(w, h);
        let mut out = Vec::new();
        let r = radius as isize;
        for y in 0..h as isize {
            for x in 0..w as isize {
                for dy in 0..=r {
                    for dx in -r..=r {
                        if dy == 0 && dx <= 0 {
                            continue;
                        }
                        let nx = x + dx;
                        let ny = y + dy;
                        if nx < 0 || ny < 0 || nx >= w as isize || ny >= h as isize {
                            continue;
                        }
                        let a = img[(y as usize) * w + x as usize];
                        let b = img[(ny as usize) * w + nx as usize];
                        let d = a - b;
                        let spatial = (dx * dx + dy * dy) as f64 * 0.1;
                        out.push((-(d * d) - spatial).exp());
                    }
                }
            }
        }
        std::hint::black_box(out.len());
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_sum_matches_sequential_sum() {
        let stats = trace(|| {
            let vals: Vec<Tv> = (0..17).map(|i| Tv::lit(i as f64)).collect();
            let t = tree_sum(&vals);
            assert!((t.value() - 136.0).abs() < 1e-12);
        });
        assert_eq!(stats.work, 16);
        assert!(stats.span <= 5); // ceil(log2 17)
    }

    #[test]
    fn data_parallel_kernels_show_high_parallelism() {
        for (name, stats) in [
            ("ssd", ssd(32, 24)),
            ("gradient", gradient(32, 24)),
            ("interpolation", interpolation(16, 12, 2)),
            ("area_sum", area_sum(24, 24, 4)),
        ] {
            assert!(
                stats.parallelism() > 50.0,
                "{name} parallelism too low: {}",
                stats.parallelism()
            );
        }
    }

    #[test]
    fn integral_image_is_limited_by_prefix_chains() {
        let s = integral_image(64, 48);
        // Span must be at least the longest prefix chain w + h - 2.
        assert!(s.span >= 64 + 48 - 2);
        assert!(s.parallelism() < s.work as f64);
        assert!(s.parallelism() > 10.0);
    }

    #[test]
    fn bitonic_sort_parallelism_scales_with_n() {
        let small = sort(64);
        let big = sort(512);
        assert!(big.parallelism() > small.parallelism());
        // Span is the number of network stages: log2(n)*(log2(n)+1)/2.
        assert_eq!(small.span, 21);
        assert_eq!(big.span, 45);
    }

    #[test]
    fn sort_requires_power_of_two() {
        let r = std::panic::catch_unwind(|| sort(100));
        assert!(r.is_err());
    }

    #[test]
    fn matrix_inversion_instances_are_independent() {
        let one = matrix_inversion(4, 1);
        let many = matrix_inversion(4, 16);
        // Same span (independent instances), ~16x the work.
        assert_eq!(one.span, many.span);
        assert!(many.work > 15 * one.work && many.work <= 17 * one.work);
    }

    #[test]
    fn particle_filter_parallelism_scales_with_particles() {
        let few = particle_filter(16, 4, 3);
        let many = particle_filter(128, 4, 3);
        // Particles are independent within a step: ~8x the work at nearly
        // the same span means parallelism scales with the particle count.
        assert!(many.parallelism() > 4.0 * few.parallelism());
    }

    #[test]
    fn adjacency_matrix_is_embarrassingly_parallel() {
        let s = adjacency_matrix(24, 20, 2);
        // Every pair's weight is an independent short chain.
        assert!(s.span < 12, "span {}", s.span);
        assert!(s.parallelism() > 100.0);
    }

    #[test]
    fn sequential_solvers_have_bounded_parallelism() {
        let cg = conjugate_matrix(32, 8);
        // CG iterations serialize: parallelism far below total work.
        assert!(cg.parallelism() < cg.work as f64 / 50.0);
        assert!(cg.parallelism() > 1.0);
    }

    #[test]
    fn all_kernels_produce_nonzero_traces() {
        let runs = [
            correlation(16, 12, 3),
            integral_image(16, 12),
            ssd(16, 12),
            gradient(16, 12),
            gaussian_filter(16, 12, 5),
            area_sum(16, 12, 3),
            matrix_inversion(3, 2),
            sift(16, 12),
            interpolation(8, 6, 2),
            ls_solver(16, 4),
            svd(8, 4, 1),
            convolution(12, 12, 3),
            matrix_ops(8),
            learning(16, 4, 2),
            conjugate_matrix(8, 3),
            particle_filter(16, 4, 2),
            adjacency_matrix(12, 10, 2),
        ];
        for (i, s) in runs.iter().enumerate() {
            assert!(s.work > 0, "kernel {i} traced no work");
            assert!(s.span > 0, "kernel {i} traced no span");
            assert!(s.span <= s.work, "kernel {i} span exceeds work");
        }
    }
}
