//! The traced scalar type and trace sessions.

use std::cell::Cell;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

thread_local! {
    static WORK: Cell<u64> = const { Cell::new(0) };
    static SPAN: Cell<u64> = const { Cell::new(0) };
}

/// Statistics from a [`trace`] session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// Operations retired on [`Tv`] values.
    pub work: u64,
    /// Length of the longest data-dependence chain.
    pub span: u64,
}

impl TraceStats {
    /// Work divided by span — the dataflow-limit parallelism the paper's
    /// Table IV reports. Returns `work` as-is when the span is zero (a
    /// trace with no operations).
    pub fn parallelism(&self) -> f64 {
        if self.span == 0 {
            self.work as f64
        } else {
            self.work as f64 / self.span as f64
        }
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "work {} ops, span {} ops, parallelism {:.0}x",
            self.work,
            self.span,
            self.parallelism()
        )
    }
}

/// Runs `f` in a fresh trace session and returns the work/span statistics
/// of every [`Tv`] operation it performed.
///
/// Sessions are thread-local; nesting a `trace` inside another would reset
/// the outer session's counters, so don't.
pub fn trace<T>(f: impl FnOnce() -> T) -> TraceStats {
    WORK.with(|w| w.set(0));
    SPAN.with(|s| s.set(0));
    let _out = f();
    TraceStats {
        work: WORK.with(Cell::get),
        span: SPAN.with(Cell::get),
    }
}

/// A traced scalar: an `f64` carrying a dataflow timestamp.
///
/// Arithmetic on `Tv` behaves exactly like `f64` arithmetic on the value
/// component, while the timestamp component records the depth of the
/// data-dependence chain that produced the value. Comparisons work on the
/// value only and are free — the idealized machine resolves control flow
/// for free, as in the paper's critical-path oracle.
#[derive(Debug, Clone, Copy)]
pub struct Tv {
    v: f64,
    ts: u64,
}

impl Tv {
    /// A literal input value (timestamp zero: available at time 0).
    pub fn lit(v: f64) -> Self {
        Tv { v, ts: 0 }
    }

    /// The numeric value.
    pub fn value(&self) -> f64 {
        self.v
    }

    /// The dataflow timestamp (depth of the producing dependence chain).
    pub fn timestamp(&self) -> u64 {
        self.ts
    }

    fn op1(self, v: f64) -> Tv {
        let ts = self.ts + 1;
        bump(ts);
        Tv { v, ts }
    }

    fn op2(self, rhs: Tv, v: f64) -> Tv {
        let ts = self.ts.max(rhs.ts) + 1;
        bump(ts);
        Tv { v, ts }
    }

    /// Square root (counts as one operation).
    pub fn sqrt(self) -> Tv {
        self.op1(self.v.sqrt())
    }

    /// Absolute value (counts as one operation).
    pub fn abs(self) -> Tv {
        self.op1(self.v.abs())
    }

    /// Natural exponential (counts as one operation).
    pub fn exp(self) -> Tv {
        self.op1(self.v.exp())
    }

    /// Natural logarithm (counts as one operation).
    pub fn ln(self) -> Tv {
        self.op1(self.v.ln())
    }

    /// Sine (counts as one operation).
    pub fn sin(self) -> Tv {
        self.op1(self.v.sin())
    }

    /// Cosine (counts as one operation).
    pub fn cos(self) -> Tv {
        self.op1(self.v.cos())
    }

    /// Larger of two traced values (free selection after a free compare; the
    /// chosen value keeps its own history).
    pub fn max(self, rhs: Tv) -> Tv {
        if self.v >= rhs.v {
            self
        } else {
            rhs
        }
    }

    /// Smaller of two traced values.
    pub fn min(self, rhs: Tv) -> Tv {
        if self.v <= rhs.v {
            self
        } else {
            rhs
        }
    }

    /// Compare-exchange: returns `(min, max)` as the outputs of a single
    /// dataflow comparator node.
    ///
    /// Unlike the free [`Tv::min`]/[`Tv::max`] selections, both outputs
    /// depend on both inputs (this is how a sorting network's comparator
    /// behaves), so the pair is stamped `max(ts) + 1` and one operation is
    /// charged.
    pub fn ordered(self, rhs: Tv) -> (Tv, Tv) {
        let ts = self.ts.max(rhs.ts) + 1;
        bump(ts);
        let (lo, hi) = if self.v <= rhs.v {
            (self.v, rhs.v)
        } else {
            (rhs.v, self.v)
        };
        (Tv { v: lo, ts }, Tv { v: hi, ts })
    }
}

fn bump(ts: u64) {
    WORK.with(|w| w.set(w.get() + 1));
    SPAN.with(|s| {
        if ts > s.get() {
            s.set(ts);
        }
    });
}

impl From<f64> for Tv {
    fn from(v: f64) -> Self {
        Tv::lit(v)
    }
}

impl PartialEq for Tv {
    fn eq(&self, other: &Self) -> bool {
        self.v == other.v
    }
}

impl PartialOrd for Tv {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.v.partial_cmp(&other.v)
    }
}

macro_rules! binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for Tv {
            type Output = Tv;
            fn $method(self, rhs: Tv) -> Tv {
                self.op2(rhs, self.v $op rhs.v)
            }
        }
        impl $trait<f64> for Tv {
            type Output = Tv;
            fn $method(self, rhs: f64) -> Tv {
                self.op1(self.v $op rhs)
            }
        }
        impl $trait<Tv> for f64 {
            type Output = Tv;
            fn $method(self, rhs: Tv) -> Tv {
                rhs.op1(self $op rhs.v)
            }
        }
    };
}

binop!(Add, add, +);
binop!(Sub, sub, -);
binop!(Mul, mul, *);
binop!(Div, div, /);

impl Neg for Tv {
    type Output = Tv;
    fn neg(self) -> Tv {
        self.op1(-self.v)
    }
}

impl AddAssign for Tv {
    fn add_assign(&mut self, rhs: Tv) {
        *self = *self + rhs;
    }
}

impl SubAssign for Tv {
    fn sub_assign(&mut self, rhs: Tv) {
        *self = *self - rhs;
    }
}

impl MulAssign for Tv {
    fn mul_assign(&mut self, rhs: Tv) {
        *self = *self * rhs;
    }
}

impl DivAssign for Tv {
    fn div_assign(&mut self, rhs: Tv) {
        *self = *self / rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_chain_has_span_equal_to_work() {
        let stats = trace(|| {
            let mut acc = Tv::lit(0.0);
            for i in 0..100 {
                acc += Tv::lit(i as f64);
            }
            assert_eq!(acc.value(), 4950.0);
        });
        assert_eq!(stats.work, 100);
        assert_eq!(stats.span, 100);
        assert!((stats.parallelism() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn independent_ops_have_span_one() {
        let stats = trace(|| {
            let products: Vec<Tv> = (0..50).map(|i| Tv::lit(i as f64) * Tv::lit(2.0)).collect();
            assert_eq!(products[10].value(), 20.0);
        });
        assert_eq!(stats.work, 50);
        assert_eq!(stats.span, 1);
        assert!((stats.parallelism() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn mixed_f64_operands_trace_correctly() {
        let stats = trace(|| {
            let a = Tv::lit(3.0);
            let b = 2.0 * a + 1.0; // two ops, chained
            assert_eq!(b.value(), 7.0);
            assert_eq!(b.timestamp(), 2);
        });
        assert_eq!(stats.work, 2);
        assert_eq!(stats.span, 2);
    }

    #[test]
    fn unary_functions_count_one_op() {
        let stats = trace(|| {
            let x = Tv::lit(4.0).sqrt();
            assert_eq!(x.value(), 2.0);
            let y = (-x).abs();
            assert_eq!(y.value(), 2.0);
        });
        assert_eq!(stats.work, 3); // sqrt, neg, abs
        assert_eq!(stats.span, 3);
    }

    #[test]
    fn comparisons_and_selection_are_free() {
        let stats = trace(|| {
            let a = Tv::lit(1.0) + Tv::lit(2.0);
            let b = Tv::lit(5.0);
            let m = a.max(b);
            assert_eq!(m.value(), 5.0);
            assert_eq!(m.timestamp(), 0); // b was a literal
            assert!(a < b);
        });
        assert_eq!(stats.work, 1); // only the add
    }

    #[test]
    fn sessions_reset_counters() {
        let s1 = trace(|| {
            let _ = Tv::lit(1.0) + Tv::lit(1.0);
        });
        let s2 = trace(|| {});
        assert_eq!(s1.work, 1);
        assert_eq!(s2.work, 0);
        assert_eq!(s2.span, 0);
        assert_eq!(s2.parallelism(), 0.0);
    }

    #[test]
    fn assign_ops_behave_like_binops() {
        let stats = trace(|| {
            let mut a = Tv::lit(10.0);
            a += Tv::lit(5.0);
            a -= Tv::lit(1.0);
            a *= Tv::lit(2.0);
            a /= Tv::lit(4.0);
            assert_eq!(a.value(), 7.0);
        });
        assert_eq!(stats.work, 4);
        assert_eq!(stats.span, 4);
    }

    #[test]
    fn display_shows_parallelism() {
        let s = TraceStats { work: 100, span: 4 };
        assert!(s.to_string().contains("25x"));
    }
}
