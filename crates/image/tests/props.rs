//! Property-based tests for the image substrate.

use proptest::prelude::*;
use sdvbs_image::{read_pgm, write_pgm, Image};

proptest! {
    /// PGM write/read is a lossless roundtrip for integral pixel values in
    /// 0..=255.
    #[test]
    fn pgm_roundtrip_is_lossless(
        pixels in proptest::collection::vec(0u8..=255, 35),
    ) {
        let img = Image::from_vec(7, 5, pixels.iter().map(|&b| b as f32).collect())
            .expect("sized");
        let mut path = std::env::temp_dir();
        path.push(format!("sdvbs_prop_{}_{:x}.pgm", std::process::id(), {
            // Cheap content hash to avoid collisions across proptest cases.
            pixels.iter().fold(0u64, |h, &b| h.wrapping_mul(31).wrapping_add(b as u64))
        }));
        write_pgm(&img, &path).expect("write");
        let back = read_pgm(&path).expect("read");
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(back, img);
    }

    /// Cropping then reading pixels equals reading offset pixels directly.
    #[test]
    fn crop_is_a_view(
        pixels in proptest::collection::vec(-100.0f32..100.0, 48),
        x0 in 0usize..4, y0 in 0usize..3,
    ) {
        let img = Image::from_vec(8, 6, pixels).expect("sized");
        let w = 8 - x0;
        let h = 6 - y0;
        let c = img.crop(x0, y0, w, h);
        for y in 0..h {
            for x in 0..w {
                prop_assert_eq!(c.get(x, y), img.get(x0 + x, y0 + y));
            }
        }
    }

    /// 2x downsampling preserves the mean exactly (block averaging) for
    /// even dimensions.
    #[test]
    fn downsample_preserves_mean(
        pixels in proptest::collection::vec(0.0f32..255.0, 8 * 6),
    ) {
        let img = Image::from_vec(8, 6, pixels).expect("sized");
        let d = img.downsample_2x();
        prop_assert!((d.mean() - img.mean()).abs() < 1e-2);
    }

    /// Normalization maps onto [0, 255] with the extremes attained.
    #[test]
    fn normalization_attains_bounds(
        pixels in proptest::collection::vec(-1000.0f32..1000.0, 12),
    ) {
        let img = Image::from_vec(4, 3, pixels).expect("sized");
        let n = img.normalized_to_255();
        if img.max() > img.min() {
            prop_assert!((n.min()).abs() < 1e-3);
            prop_assert!((n.max() - 255.0).abs() < 1e-3);
        } else {
            prop_assert!(n.as_slice().iter().all(|&v| v == 0.0));
        }
    }

    /// `map` composes: map(f) then map(g) equals map(g ∘ f).
    #[test]
    fn map_composes(
        pixels in proptest::collection::vec(-10.0f32..10.0, 20),
        a in -3.0f32..3.0,
        b in -3.0f32..3.0,
    ) {
        let img = Image::from_vec(5, 4, pixels).expect("sized");
        let two_step = img.map(|v| v * a).map(|v| v + b);
        let one_step = img.map(|v| v * a + b);
        prop_assert_eq!(two_step, one_step);
    }

    /// Clamped access equals plain access inside bounds.
    #[test]
    fn clamped_access_agrees_inside(
        pixels in proptest::collection::vec(-5.0f32..5.0, 24),
        x in 0usize..6, y in 0usize..4,
    ) {
        let img = Image::from_vec(6, 4, pixels).expect("sized");
        prop_assert_eq!(img.get_clamped(x as isize, y as isize), img.get(x, y));
    }
}
