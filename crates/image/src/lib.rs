//! Image containers and pixel-level utilities for the SD-VBS suite.
//!
//! SD-VBS ships its own image representation and I/O in `common/c` so that
//! the benchmarks stay self-contained and easy to analyze; this crate plays
//! the same role for the Rust reproduction. It deliberately avoids the
//! crates.io `image` ecosystem: benchmarks must own their substrate.
//!
//! * [`Image`] — grayscale `f32` image in row-major storage, the pixel
//!   currency of every benchmark.
//! * [`RgbImage`] — a small color container for visualization output.
//! * PGM/PPM reading and writing ([`read_pgm`], [`write_pgm`],
//!   [`write_ppm`]), so results can be inspected with any netpbm viewer.
//! * Bilinear sampling and resizing ([`Image::sample_bilinear`],
//!   [`Image::resize_bilinear`]), the paper's "Interpolation" kernel
//!   building block.
//!
//! # Examples
//!
//! ```
//! use sdvbs_image::Image;
//!
//! let img = Image::from_fn(4, 4, |x, y| (x + y) as f32);
//! assert_eq!(img.get(3, 3), 6.0);
//! let up = img.resize_bilinear(8, 8);
//! assert_eq!(up.width(), 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod gray;
mod io;
mod rgb;

pub use error::{ImageError, Result};
pub use gray::Image;
pub use io::{read_pgm, read_ppm, write_pgm, write_ppm};
pub use rgb::RgbImage;
