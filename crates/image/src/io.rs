//! Netpbm (PGM/PPM) reading and writing.
//!
//! The SD-VBS C harness reads its inputs from raw image files and dumps
//! per-benchmark outputs for validation; we keep the same spirit with the
//! simplest portable formats. Binary (`P5`/`P6`) files are written; both
//! ASCII (`P2`) and binary (`P5`) PGM are read.

use crate::error::{ImageError, Result};
use crate::gray::Image;
use crate::rgb::RgbImage;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Writes a grayscale image as binary PGM (`P5`), clamping pixel values to
/// `0..=255`.
///
/// # Errors
///
/// Returns [`ImageError::Io`] on filesystem failure and
/// [`ImageError::InvalidDimensions`] for an empty image.
pub fn write_pgm(img: &Image, path: impl AsRef<Path>) -> Result<()> {
    if img.is_empty() {
        return Err(ImageError::InvalidDimensions {
            width: img.width(),
            height: img.height(),
        });
    }
    let mut f = std::fs::File::create(path)?;
    write!(f, "P5\n{} {}\n255\n", img.width(), img.height())?;
    let bytes: Vec<u8> = img
        .as_slice()
        .iter()
        .map(|&v| v.round().clamp(0.0, 255.0) as u8)
        .collect();
    f.write_all(&bytes)?;
    Ok(())
}

/// Writes an RGB image as binary PPM (`P6`).
///
/// # Errors
///
/// Returns [`ImageError::Io`] on filesystem failure and
/// [`ImageError::InvalidDimensions`] for an empty image.
pub fn write_ppm(img: &RgbImage, path: impl AsRef<Path>) -> Result<()> {
    if img.width() == 0 || img.height() == 0 {
        return Err(ImageError::InvalidDimensions {
            width: img.width(),
            height: img.height(),
        });
    }
    let mut f = std::fs::File::create(path)?;
    write!(f, "P6\n{} {}\n255\n", img.width(), img.height())?;
    f.write_all(img.as_slice())?;
    Ok(())
}

/// Reads a binary PPM (`P6`) file into an RGB image.
///
/// # Errors
///
/// Returns [`ImageError::Io`] on filesystem failure and
/// [`ImageError::MalformedNetpbm`] for syntax errors, truncated data, or
/// an unsupported magic number.
pub fn read_ppm(path: impl AsRef<Path>) -> Result<RgbImage> {
    let f = std::fs::File::open(path)?;
    let mut reader = BufReader::new(f);
    let magic = read_token(&mut reader)?;
    if magic != "P6" {
        return Err(ImageError::MalformedNetpbm(format!(
            "unsupported magic {magic:?}"
        )));
    }
    let (w, h, maxval) = read_header(&mut reader)?;
    if maxval > 255 {
        return Err(ImageError::MalformedNetpbm(
            "16-bit ppm not supported".into(),
        ));
    }
    let mut bytes = vec![0u8; w * h * 3];
    reader
        .read_exact(&mut bytes)
        .map_err(|e| ImageError::MalformedNetpbm(format!("truncated pixel data: {e}")))?;
    RgbImage::from_vec(w, h, bytes)
}

/// Reads a PGM file (ASCII `P2` or binary `P5`) into a grayscale image.
///
/// # Errors
///
/// Returns [`ImageError::Io`] on filesystem failure and
/// [`ImageError::MalformedNetpbm`] for syntax errors, truncated data, or an
/// unsupported magic number.
pub fn read_pgm(path: impl AsRef<Path>) -> Result<Image> {
    let f = std::fs::File::open(path)?;
    let mut reader = BufReader::new(f);
    let magic = read_token(&mut reader)?;
    match magic.as_str() {
        "P2" => read_ascii_pgm(&mut reader),
        "P5" => read_binary_pgm(&mut reader),
        other => Err(ImageError::MalformedNetpbm(format!(
            "unsupported magic {other:?}"
        ))),
    }
}

/// Reads one whitespace-delimited token, skipping `#` comment lines.
fn read_token(reader: &mut impl BufRead) -> Result<String> {
    let mut token = String::new();
    let mut in_comment = false;
    loop {
        let mut byte = [0u8; 1];
        match reader.read_exact(&mut byte) {
            Ok(()) => {}
            Err(e) => {
                if token.is_empty() {
                    return Err(ImageError::MalformedNetpbm(format!("unexpected end: {e}")));
                }
                return Ok(token);
            }
        }
        let c = byte[0] as char;
        if in_comment {
            if c == '\n' {
                in_comment = false;
            }
            continue;
        }
        if c == '#' {
            in_comment = true;
            continue;
        }
        if c.is_whitespace() {
            if token.is_empty() {
                continue;
            }
            return Ok(token);
        }
        token.push(c);
    }
}

fn read_header(reader: &mut impl BufRead) -> Result<(usize, usize, u32)> {
    let w: usize = parse_token(reader, "width")?;
    let h: usize = parse_token(reader, "height")?;
    let maxval: u32 = parse_token(reader, "maxval")?;
    if w == 0 || h == 0 {
        return Err(ImageError::InvalidDimensions {
            width: w,
            height: h,
        });
    }
    if maxval == 0 || maxval > 65535 {
        return Err(ImageError::MalformedNetpbm(format!("bad maxval {maxval}")));
    }
    Ok((w, h, maxval))
}

fn parse_token<T: std::str::FromStr>(reader: &mut impl BufRead, what: &str) -> Result<T> {
    let tok = read_token(reader)?;
    tok.parse()
        .map_err(|_| ImageError::MalformedNetpbm(format!("invalid {what} token {tok:?}")))
}

fn read_ascii_pgm(reader: &mut impl BufRead) -> Result<Image> {
    let (w, h, _maxval) = read_header(reader)?;
    let mut data = Vec::with_capacity(w * h);
    for _ in 0..w * h {
        let v: u32 = parse_token(reader, "pixel")?;
        data.push(v as f32);
    }
    Image::from_vec(w, h, data)
}

fn read_binary_pgm(reader: &mut impl BufRead) -> Result<Image> {
    let (w, h, maxval) = read_header(reader)?;
    if maxval > 255 {
        return Err(ImageError::MalformedNetpbm(
            "16-bit binary pgm not supported".into(),
        ));
    }
    let mut bytes = vec![0u8; w * h];
    reader
        .read_exact(&mut bytes)
        .map_err(|e| ImageError::MalformedNetpbm(format!("truncated pixel data: {e}")))?;
    let data = bytes.into_iter().map(|b| b as f32).collect();
    Image::from_vec(w, h, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sdvbs_image_io_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn pgm_roundtrip() {
        let img = Image::from_fn(7, 5, |x, y| ((x * 13 + y * 29) % 256) as f32);
        let path = tmp("roundtrip.pgm");
        write_pgm(&img, &path).unwrap();
        let back = read_pgm(&path).unwrap();
        assert_eq!(back.width(), 7);
        assert_eq!(back.height(), 5);
        for y in 0..5 {
            for x in 0..7 {
                assert_eq!(back.get(x, y), img.get(x, y));
            }
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn values_are_clamped_on_write() {
        let img = Image::from_fn(2, 1, |x, _| if x == 0 { -10.0 } else { 300.0 });
        let path = tmp("clamp.pgm");
        write_pgm(&img, &path).unwrap();
        let back = read_pgm(&path).unwrap();
        assert_eq!(back.get(0, 0), 0.0);
        assert_eq!(back.get(1, 0), 255.0);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn reads_ascii_pgm_with_comments() {
        let path = tmp("ascii.pgm");
        let mut f = std::fs::File::create(&path).unwrap();
        write!(f, "P2\n# a comment\n2 2\n255\n0 64\n128 255\n").unwrap();
        drop(f);
        let img = read_pgm(&path).unwrap();
        assert_eq!(img.get(1, 0), 64.0);
        assert_eq!(img.get(0, 1), 128.0);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_bad_magic() {
        let path = tmp("bad.pgm");
        std::fs::write(&path, b"P9\n1 1\n255\n\0").unwrap();
        assert!(matches!(
            read_pgm(&path),
            Err(ImageError::MalformedNetpbm(_))
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_truncated_binary() {
        let path = tmp("trunc.pgm");
        std::fs::write(&path, b"P5\n4 4\n255\nxx").unwrap();
        assert!(matches!(
            read_pgm(&path),
            Err(ImageError::MalformedNetpbm(_))
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn ppm_write_has_expected_size() {
        let mut img = RgbImage::new(3, 2);
        img.set(1, 1, [10, 20, 30]);
        let path = tmp("out.ppm");
        write_ppm(&img, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.starts_with(b"P6\n3 2\n255\n"));
        assert_eq!(bytes.len(), "P6\n3 2\n255\n".len() + 18);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn ppm_roundtrip() {
        let mut img = RgbImage::new(4, 3);
        img.set(1, 2, [9, 18, 27]);
        img.set(3, 0, [255, 0, 128]);
        let path = tmp("rt.ppm");
        write_ppm(&img, &path).unwrap();
        let back = read_ppm(&path).unwrap();
        assert_eq!(back, img);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn read_ppm_rejects_pgm_magic() {
        let path = tmp("wrongmagic.ppm");
        std::fs::write(&path, b"P5\n1 1\n255\n\0").unwrap();
        assert!(matches!(
            read_ppm(&path),
            Err(ImageError::MalformedNetpbm(_))
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn empty_image_write_is_rejected() {
        let img = Image::new(0, 0);
        assert!(write_pgm(&img, tmp("empty.pgm")).is_err());
    }
}
