//! Grayscale `f32` image container.

use crate::error::{ImageError, Result};
use std::fmt;

/// A grayscale image of `f32` pixels in row-major order.
///
/// Coordinates are `(x, y)` with `x` the column (`0..width`) and `y` the row
/// (`0..height`), matching the convention of the SD-VBS C sources. Pixel
/// values are unconstrained `f32`; benchmarks typically work in `0.0..=255.0`
/// (PGM range) or `0.0..=1.0` after normalization.
///
/// # Examples
///
/// ```
/// use sdvbs_image::Image;
///
/// let mut img = Image::new(3, 2);
/// img.set(2, 1, 7.0);
/// assert_eq!(img.get(2, 1), 7.0);
/// assert_eq!(img.as_slice().len(), 6);
/// ```
#[derive(Clone, PartialEq)]
pub struct Image {
    width: usize,
    height: usize,
    data: Vec<f32>,
}

impl Image {
    /// Creates a `width × height` image of zeros.
    ///
    /// # Panics
    ///
    /// Panics if `width * height` overflows `usize`.
    pub fn new(width: usize, height: usize) -> Self {
        let len = width
            .checked_mul(height)
            .expect("image dimensions overflow");
        Image {
            width,
            height,
            data: vec![0.0; len],
        }
    }

    /// Creates a `width × height` image of zeros, rejecting dimensions
    /// whose pixel count overflows `usize` instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::InvalidDimensions`] on overflow.
    pub fn try_new(width: usize, height: usize) -> Result<Self> {
        let len = width
            .checked_mul(height)
            .ok_or(ImageError::InvalidDimensions { width, height })?;
        Ok(Image {
            width,
            height,
            data: vec![0.0; len],
        })
    }

    /// Whether every pixel is finite (no NaN, no infinities).
    ///
    /// The fallible `try_*` pipeline entries use this to reject poisoned
    /// inputs up front, where a NaN would otherwise propagate silently
    /// through convolutions and argmins.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Number of non-finite (NaN or infinite) pixels.
    pub fn non_finite_count(&self) -> usize {
        self.data.iter().filter(|v| !v.is_finite()).count()
    }

    /// Creates an image filled with `value`.
    pub fn filled(width: usize, height: usize, value: f32) -> Self {
        let mut img = Image::new(width, height);
        img.data.fill(value);
        img
    }

    /// Builds an image by evaluating `f(x, y)` at every pixel.
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut img = Image::new(width, height);
        for y in 0..height {
            for x in 0..width {
                img.data[y * width + x] = f(x, y);
            }
        }
        img
    }

    /// Builds an image by evaluating `f(x, y)` at every pixel, with rows
    /// distributed over worker threads per `policy`.
    ///
    /// For a pure `f` this is bit-identical to [`Image::from_fn`] under
    /// every policy: each worker owns a disjoint band of whole rows and
    /// evaluates pixels in the same row-major order the serial loop does.
    /// This is the row-parallel substrate behind the `_with` kernel
    /// variants in `sdvbs-kernels`.
    pub fn from_fn_with(
        width: usize,
        height: usize,
        policy: sdvbs_exec::ExecPolicy,
        f: impl Fn(usize, usize) -> f32 + Sync,
    ) -> Self {
        if width == 0 || !policy.is_parallel(height) {
            return Image::from_fn(width, height, f);
        }
        let len = width
            .checked_mul(height)
            .expect("image dimensions overflow");
        let mut data = vec![0.0f32; len];
        sdvbs_exec::fill_chunks(policy, &mut data, width, |start, band| {
            let y0 = start / width;
            for (dy, row) in band.chunks_mut(width).enumerate() {
                let y = y0 + dy;
                for (x, v) in row.iter_mut().enumerate() {
                    *v = f(x, y);
                }
            }
        });
        Image {
            width,
            height,
            data,
        }
    }

    /// Builds an image by filling whole rows: `f(y, row)` receives each
    /// output row as a contiguous slice, with rows distributed over worker
    /// threads per `policy`.
    ///
    /// This is the substrate of the vectorized kernel fast paths in
    /// `sdvbs-kernels`: handing `f` a whole row lets it run contiguous
    /// slice arithmetic (which LLVM autovectorizes) instead of a per-pixel
    /// closure with per-call bounds checks. For a pure `f` the result is
    /// bit-identical under every policy — each worker owns a disjoint band
    /// of whole rows.
    pub fn from_rows_with(
        width: usize,
        height: usize,
        policy: sdvbs_exec::ExecPolicy,
        f: impl Fn(usize, &mut [f32]) + Sync,
    ) -> Self {
        let len = width
            .checked_mul(height)
            .expect("image dimensions overflow");
        let mut data = vec![0.0f32; len];
        if width > 0 && height > 0 {
            sdvbs_exec::fill_chunks(policy, &mut data, width, |start, band| {
                let y0 = start / width;
                for (dy, row) in band.chunks_mut(width).enumerate() {
                    f(y0 + dy, row);
                }
            });
        }
        Image {
            width,
            height,
            data,
        }
    }

    /// Wraps an existing row-major pixel buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::BufferSizeMismatch`] if
    /// `data.len() != width * height`.
    pub fn from_vec(width: usize, height: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != width * height {
            return Err(ImageError::BufferSizeMismatch {
                expected: width * height,
                found: data.len(),
            });
        }
        Ok(Image {
            width,
            height,
            data,
        })
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total pixel count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the image has zero pixels.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> f32 {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds"
        );
        self.data[y * self.width + x]
    }

    /// Sets the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, value: f32) {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds"
        );
        self.data[y * self.width + x] = value;
    }

    /// Pixel at `(x, y)`, with coordinates clamped to the image border
    /// (replicate padding — the boundary convention of the SD-VBS filters).
    #[inline]
    pub fn get_clamped(&self, x: isize, y: isize) -> f32 {
        let cx = x.clamp(0, self.width as isize - 1) as usize;
        let cy = y.clamp(0, self.height as isize - 1) as usize;
        self.data[cy * self.width + cx]
    }

    /// Immutable view of the row-major pixel buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the row-major pixel buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the image and returns its pixel buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrows row `y` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `y >= self.height()`.
    pub fn row(&self, y: usize) -> &[f32] {
        assert!(y < self.height, "row {y} out of bounds");
        &self.data[y * self.width..(y + 1) * self.width]
    }

    /// Borrows row `y` as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `y >= self.height()`.
    pub fn row_mut(&mut self, y: usize) -> &mut [f32] {
        assert!(y < self.height, "row {y} out of bounds");
        &mut self.data[y * self.width..(y + 1) * self.width]
    }

    /// Applies `f` to every pixel, producing a new image.
    pub fn map(&self, mut f: impl FnMut(f32) -> f32) -> Image {
        let data = self.data.iter().map(|&v| f(v)).collect();
        Image {
            width: self.width,
            height: self.height,
            data,
        }
    }

    /// Minimum pixel value (`0.0` for an empty image).
    pub fn min(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().copied().fold(f32::INFINITY, f32::min)
        }
    }

    /// Maximum pixel value (`0.0` for an empty image).
    pub fn max(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
        }
    }

    /// Mean pixel value (`0.0` for an empty image).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            (self.data.iter().map(|&v| v as f64).sum::<f64>() / self.data.len() as f64) as f32
        }
    }

    /// Linearly rescales pixel values to `0.0..=255.0`. A constant image
    /// maps to all zeros.
    pub fn normalized_to_255(&self) -> Image {
        let lo = self.min();
        let hi = self.max();
        if hi <= lo {
            return Image::new(self.width, self.height);
        }
        let scale = 255.0 / (hi - lo);
        self.map(|v| (v - lo) * scale)
    }

    /// Extracts the `w × h` sub-image with top-left corner `(x0, y0)`.
    ///
    /// # Panics
    ///
    /// Panics if the window exceeds the image bounds.
    pub fn crop(&self, x0: usize, y0: usize, w: usize, h: usize) -> Image {
        assert!(
            x0 + w <= self.width && y0 + h <= self.height,
            "crop window out of bounds"
        );
        Image::from_fn(w, h, |x, y| self.get(x0 + x, y0 + y))
    }

    /// Samples the image at a fractional position with bilinear
    /// interpolation, clamping to the border.
    pub fn sample_bilinear(&self, x: f32, y: f32) -> f32 {
        let x0 = x.floor();
        let y0 = y.floor();
        let fx = x - x0;
        let fy = y - y0;
        let ix = x0 as isize;
        let iy = y0 as isize;
        let p00 = self.get_clamped(ix, iy);
        let p10 = self.get_clamped(ix + 1, iy);
        let p01 = self.get_clamped(ix, iy + 1);
        let p11 = self.get_clamped(ix + 1, iy + 1);
        let top = p00 + fx * (p10 - p00);
        let bot = p01 + fx * (p11 - p01);
        top + fy * (bot - top)
    }

    /// Resizes to `new_w × new_h` with bilinear interpolation (the paper's
    /// "Interpolation" kernel; SIFT uses it to build its anti-aliased
    /// upsampled base image).
    ///
    /// # Panics
    ///
    /// Panics if either target dimension is zero while the source is
    /// non-empty.
    pub fn resize_bilinear(&self, new_w: usize, new_h: usize) -> Image {
        if self.is_empty() {
            return Image::new(0, 0);
        }
        assert!(new_w > 0 && new_h > 0, "target dimensions must be positive");
        let sx = self.width as f32 / new_w as f32;
        let sy = self.height as f32 / new_h as f32;
        Image::from_fn(new_w, new_h, |x, y| {
            // Sample at pixel centers to keep the image phase-aligned.
            let src_x = (x as f32 + 0.5) * sx - 0.5;
            let src_y = (y as f32 + 0.5) * sy - 0.5;
            self.sample_bilinear(src_x, src_y)
        })
    }

    /// Halves both dimensions by averaging 2×2 blocks (simple decimation
    /// used by pyramid construction; odd trailing rows/columns are dropped).
    pub fn downsample_2x(&self) -> Image {
        let w = self.width / 2;
        let h = self.height / 2;
        Image::from_fn(w, h, |x, y| {
            let a = self.get(2 * x, 2 * y);
            let b = self.get(2 * x + 1, 2 * y);
            let c = self.get(2 * x, 2 * y + 1);
            let d = self.get(2 * x + 1, 2 * y + 1);
            (a + b + c + d) * 0.25
        })
    }

    /// Rotates the image 90° clockwise (lossless; width and height swap).
    pub fn rotate90_cw(&self) -> Image {
        Image::from_fn(self.height, self.width, |x, y| {
            self.get(y, self.height - 1 - x)
        })
    }

    /// Mirrors the image left-right.
    pub fn flip_horizontal(&self) -> Image {
        Image::from_fn(self.width, self.height, |x, y| {
            self.get(self.width - 1 - x, y)
        })
    }

    /// Mirrors the image top-bottom.
    pub fn flip_vertical(&self) -> Image {
        Image::from_fn(self.width, self.height, |x, y| {
            self.get(x, self.height - 1 - y)
        })
    }

    /// Sum of squared pixel-wise differences against `other`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn sum_squared_diff(&self, other: &Image) -> f64 {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "images must have identical dimensions"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| {
                let d = (*a - *b) as f64;
                d * d
            })
            .sum()
    }
}

impl fmt::Debug for Image {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Image {}x{} (min {:.3}, max {:.3}, mean {:.3})",
            self.width,
            self.height,
            self.min(),
            self.max(),
            self.mean()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_zeroed() {
        let img = Image::new(4, 3);
        assert_eq!(img.width(), 4);
        assert_eq!(img.height(), 3);
        assert!(img.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn get_set_roundtrip() {
        let mut img = Image::new(5, 5);
        img.set(3, 2, 9.5);
        assert_eq!(img.get(3, 2), 9.5);
        assert_eq!(img.get(2, 3), 0.0);
    }

    #[test]
    fn from_vec_validates() {
        assert!(Image::from_vec(2, 2, vec![0.0; 4]).is_ok());
        assert!(Image::from_vec(2, 2, vec![0.0; 5]).is_err());
    }

    #[test]
    fn clamped_access_replicates_border() {
        let img = Image::from_fn(3, 3, |x, y| (y * 3 + x) as f32);
        assert_eq!(img.get_clamped(-5, -5), 0.0);
        assert_eq!(img.get_clamped(10, 10), 8.0);
        assert_eq!(img.get_clamped(-1, 1), 3.0);
    }

    #[test]
    fn stats_are_correct() {
        let img = Image::from_fn(2, 2, |x, y| (y * 2 + x) as f32);
        assert_eq!(img.min(), 0.0);
        assert_eq!(img.max(), 3.0);
        assert_eq!(img.mean(), 1.5);
    }

    #[test]
    fn normalization_spans_full_range() {
        let img = Image::from_fn(2, 2, |x, _| 10.0 + x as f32);
        let n = img.normalized_to_255();
        assert_eq!(n.min(), 0.0);
        assert_eq!(n.max(), 255.0);
        // Constant image normalizes to zeros, not NaN.
        let c = Image::filled(2, 2, 5.0);
        assert!(c.normalized_to_255().as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn crop_extracts_window() {
        let img = Image::from_fn(4, 4, |x, y| (y * 4 + x) as f32);
        let c = img.crop(1, 2, 2, 2);
        assert_eq!(c.get(0, 0), 9.0);
        assert_eq!(c.get(1, 1), 14.0);
    }

    #[test]
    fn bilinear_interpolates_midpoints() {
        let img = Image::from_fn(2, 2, |x, y| (x + 2 * y) as f32); // 0 1 / 2 3
        assert_eq!(img.sample_bilinear(0.5, 0.0), 0.5);
        assert_eq!(img.sample_bilinear(0.0, 0.5), 1.0);
        assert_eq!(img.sample_bilinear(0.5, 0.5), 1.5);
        // Exact grid points are exact.
        assert_eq!(img.sample_bilinear(1.0, 1.0), 3.0);
    }

    #[test]
    fn resize_preserves_constant_images() {
        let img = Image::filled(5, 7, 3.25);
        let r = img.resize_bilinear(13, 3);
        assert!(r.as_slice().iter().all(|&v| (v - 3.25).abs() < 1e-6));
    }

    #[test]
    fn resize_identity_is_lossless() {
        let img = Image::from_fn(6, 5, |x, y| (x * y) as f32);
        let r = img.resize_bilinear(6, 5);
        for y in 0..5 {
            for x in 0..6 {
                assert!((r.get(x, y) - img.get(x, y)).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn downsample_averages_blocks() {
        let img = Image::from_fn(4, 2, |x, _| x as f32);
        let d = img.downsample_2x();
        assert_eq!(d.width(), 2);
        assert_eq!(d.height(), 1);
        assert_eq!(d.get(0, 0), 0.5);
        assert_eq!(d.get(1, 0), 2.5);
    }

    #[test]
    fn ssd_of_identical_images_is_zero() {
        let img = Image::from_fn(3, 3, |x, y| (x * y) as f32);
        assert_eq!(img.sum_squared_diff(&img), 0.0);
        let other = img.map(|v| v + 1.0);
        assert!((img.sum_squared_diff(&other) - 9.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_get_panics() {
        Image::new(2, 2).get(2, 0);
    }

    #[test]
    fn rotate90_four_times_is_identity() {
        let img = Image::from_fn(5, 3, |x, y| (y * 5 + x) as f32);
        let r = img.rotate90_cw();
        assert_eq!(r.width(), 3);
        assert_eq!(r.height(), 5);
        // Top-left of the original ends up at top-right.
        assert_eq!(r.get(2, 0), img.get(0, 0));
        let full = img.rotate90_cw().rotate90_cw().rotate90_cw().rotate90_cw();
        assert_eq!(full, img);
    }

    #[test]
    fn flips_are_involutions() {
        let img = Image::from_fn(4, 3, |x, y| (x * 7 + y) as f32);
        assert_eq!(img.flip_horizontal().flip_horizontal(), img);
        assert_eq!(img.flip_vertical().flip_vertical(), img);
        assert_eq!(img.flip_horizontal().get(0, 0), img.get(3, 0));
        assert_eq!(img.flip_vertical().get(0, 0), img.get(0, 2));
    }

    #[test]
    fn debug_mentions_dimensions() {
        let img = Image::new(3, 4);
        assert!(format!("{img:?}").contains("3x4"));
    }

    #[test]
    fn from_rows_with_matches_from_fn_for_every_policy() {
        use sdvbs_exec::ExecPolicy;
        let f = |x: usize, y: usize| (x as f32 * 0.91 - y as f32 * 0.27).cos();
        let serial = Image::from_fn(41, 23, f);
        for policy in [
            ExecPolicy::Serial,
            ExecPolicy::Threads(1),
            ExecPolicy::Threads(3),
            ExecPolicy::Threads(64),
            ExecPolicy::Auto,
        ] {
            let rows = Image::from_rows_with(41, 23, policy, |y, row| {
                for (x, v) in row.iter_mut().enumerate() {
                    *v = f(x, y);
                }
            });
            assert_eq!(rows, serial, "{policy:?}");
        }
        // Degenerate shapes don't hang or panic.
        assert_eq!(
            Image::from_rows_with(0, 5, ExecPolicy::Threads(4), |_, _| {}),
            Image::new(0, 5)
        );
        assert_eq!(
            Image::from_rows_with(7, 0, ExecPolicy::Threads(4), |_, _| {}),
            Image::new(7, 0)
        );
    }

    #[test]
    fn from_fn_with_matches_from_fn_for_every_policy() {
        use sdvbs_exec::ExecPolicy;
        let f = |x: usize, y: usize| (x as f32 * 0.37 + y as f32 * 1.13).sin();
        let serial = Image::from_fn(53, 29, f);
        for policy in [
            ExecPolicy::Serial,
            ExecPolicy::Threads(1),
            ExecPolicy::Threads(2),
            ExecPolicy::Threads(4),
            ExecPolicy::Threads(64),
            ExecPolicy::Auto,
        ] {
            let par = Image::from_fn_with(53, 29, policy, f);
            assert_eq!(par, serial, "{policy:?}");
        }
        // Degenerate shapes don't hang or panic.
        assert_eq!(
            Image::from_fn_with(0, 5, ExecPolicy::Threads(4), f),
            Image::new(0, 5)
        );
        assert_eq!(
            Image::from_fn_with(7, 0, ExecPolicy::Threads(4), f),
            Image::new(7, 0)
        );
    }
}
