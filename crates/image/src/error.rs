//! Error type for image construction and I/O.

use std::error::Error;
use std::fmt;
use std::io;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, ImageError>;

/// Errors produced by image constructors and netpbm I/O.
#[derive(Debug)]
#[non_exhaustive]
pub enum ImageError {
    /// The pixel buffer length does not match `width * height`.
    BufferSizeMismatch {
        /// `width * height` expected.
        expected: usize,
        /// Buffer length supplied.
        found: usize,
    },
    /// Requested dimensions are invalid (zero area where a non-empty image
    /// is required, or overflowing).
    InvalidDimensions {
        /// Requested width.
        width: usize,
        /// Requested height.
        height: usize,
    },
    /// The file is not a recognizable PGM/PPM stream.
    MalformedNetpbm(String),
    /// Underlying I/O failure.
    Io(io::Error),
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::BufferSizeMismatch { expected, found } => {
                write!(
                    f,
                    "pixel buffer length {found} does not match expected {expected}"
                )
            }
            ImageError::InvalidDimensions { width, height } => {
                write!(f, "invalid image dimensions {width}x{height}")
            }
            ImageError::MalformedNetpbm(msg) => write!(f, "malformed netpbm stream: {msg}"),
            ImageError::Io(e) => write!(f, "image i/o failed: {e}"),
        }
    }
}

impl Error for ImageError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ImageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ImageError {
    fn from(e: io::Error) -> Self {
        ImageError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ImageError::BufferSizeMismatch {
            expected: 4,
            found: 3,
        };
        assert_eq!(
            e.to_string(),
            "pixel buffer length 3 does not match expected 4"
        );
        let e = ImageError::InvalidDimensions {
            width: 0,
            height: 5,
        };
        assert_eq!(e.to_string(), "invalid image dimensions 0x5");
    }

    #[test]
    fn io_error_is_source() {
        let inner = io::Error::new(io::ErrorKind::NotFound, "gone");
        let e = ImageError::from(inner);
        assert!(e.source().is_some());
    }
}
