//! Minimal RGB image container for visualization output.

use crate::error::{ImageError, Result};
use crate::gray::Image;
use std::fmt;

/// An 8-bit RGB image used to visualize benchmark outputs (disparity maps,
/// detected features, stitched panoramas).
///
/// Benchmarks compute on grayscale [`Image`]s; `RgbImage` exists only so
/// examples can emit colorful, inspectable PPM files.
///
/// # Examples
///
/// ```
/// use sdvbs_image::RgbImage;
///
/// let mut img = RgbImage::new(2, 2);
/// img.set(0, 0, [255, 0, 0]);
/// assert_eq!(img.get(0, 0), [255, 0, 0]);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct RgbImage {
    width: usize,
    height: usize,
    data: Vec<u8>,
}

impl RgbImage {
    /// Creates a black `width × height` image.
    pub fn new(width: usize, height: usize) -> Self {
        let len = width
            .checked_mul(height)
            .and_then(|p| p.checked_mul(3))
            .expect("image dimensions overflow");
        RgbImage {
            width,
            height,
            data: vec![0; len],
        }
    }

    /// Wraps an interleaved RGB buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::BufferSizeMismatch`] if
    /// `data.len() != width * height * 3`.
    pub fn from_vec(width: usize, height: usize, data: Vec<u8>) -> Result<Self> {
        if data.len() != width * height * 3 {
            return Err(ImageError::BufferSizeMismatch {
                expected: width * height * 3,
                found: data.len(),
            });
        }
        Ok(RgbImage {
            width,
            height,
            data,
        })
    }

    /// Converts a grayscale image (normalized to 0..=255) into RGB.
    pub fn from_gray(img: &Image) -> Self {
        let norm = img.normalized_to_255();
        let mut rgb = RgbImage::new(img.width(), img.height());
        for y in 0..img.height() {
            for x in 0..img.width() {
                let v = norm.get(x, y).round().clamp(0.0, 255.0) as u8;
                rgb.set(x, y, [v, v, v]);
            }
        }
        rgb
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// RGB triple at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    pub fn get(&self, x: usize, y: usize) -> [u8; 3] {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds"
        );
        let i = (y * self.width + x) * 3;
        [self.data[i], self.data[i + 1], self.data[i + 2]]
    }

    /// Sets the RGB triple at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    pub fn set(&mut self, x: usize, y: usize, rgb: [u8; 3]) {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds"
        );
        let i = (y * self.width + x) * 3;
        self.data[i] = rgb[0];
        self.data[i + 1] = rgb[1];
        self.data[i + 2] = rgb[2];
    }

    /// Draws a small `size × size` filled square centered at `(cx, cy)`,
    /// clipped to the image (used by examples to mark features).
    pub fn draw_marker(&mut self, cx: isize, cy: isize, size: isize, rgb: [u8; 3]) {
        let half = size / 2;
        for dy in -half..=half {
            for dx in -half..=half {
                let x = cx + dx;
                let y = cy + dy;
                if x >= 0 && y >= 0 && (x as usize) < self.width && (y as usize) < self.height {
                    self.set(x as usize, y as usize, rgb);
                }
            }
        }
    }

    /// Immutable view of the interleaved RGB buffer.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for RgbImage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RgbImage {}x{}", self.width, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut img = RgbImage::new(3, 2);
        img.set(2, 1, [1, 2, 3]);
        assert_eq!(img.get(2, 1), [1, 2, 3]);
        assert_eq!(img.get(0, 0), [0, 0, 0]);
    }

    #[test]
    fn from_gray_spans_range() {
        let g = Image::from_fn(2, 1, |x, _| x as f32);
        let rgb = RgbImage::from_gray(&g);
        assert_eq!(rgb.get(0, 0), [0, 0, 0]);
        assert_eq!(rgb.get(1, 0), [255, 255, 255]);
    }

    #[test]
    fn marker_is_clipped() {
        let mut img = RgbImage::new(4, 4);
        img.draw_marker(0, 0, 3, [9, 9, 9]);
        assert_eq!(img.get(0, 0), [9, 9, 9]);
        assert_eq!(img.get(1, 1), [9, 9, 9]);
        assert_eq!(img.get(2, 2), [0, 0, 0]);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(RgbImage::from_vec(2, 2, vec![0; 12]).is_ok());
        assert!(RgbImage::from_vec(2, 2, vec![0; 11]).is_err());
    }
}
