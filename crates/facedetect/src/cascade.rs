//! The attentional cascade: stage-wise training with hard-negative
//! mining, multi-scale sliding-window detection, and window
//! stabilization (non-maximum suppression).

use crate::boost::{train_adaboost, StrongClassifier};
use crate::haar::{generate_features, HaarFeature, NormalizedWindow};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sdvbs_image::Image;
use sdvbs_kernels::integral::IntegralImage;
use sdvbs_profile::Profiler;
use sdvbs_synth::{render_face_patch, render_non_face_patch};
use std::error::Error;
use std::fmt;

/// Cascade training configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CascadeConfig {
    /// Canonical window side (pixels).
    pub window: usize,
    /// AdaBoost rounds per stage (stage count = vector length).
    pub stage_rounds: Vec<usize>,
    /// Training positives (rendered faces).
    pub positives: usize,
    /// Training negatives per stage (clutter patches, hard-mined).
    pub negatives: usize,
    /// Per-stage detection rate target on held-in positives.
    pub stage_detection_rate: f64,
    /// Position/size stride of the Haar feature pool.
    pub feature_step: usize,
    /// RNG seed for sample rendering.
    pub seed: u64,
}

impl Default for CascadeConfig {
    fn default() -> Self {
        CascadeConfig {
            window: 24,
            stage_rounds: vec![4, 8, 15],
            positives: 250,
            negatives: 250,
            stage_detection_rate: 0.99,
            feature_step: 3,
            seed: 99,
        }
    }
}

/// Errors from cascade training.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CascadeError {
    /// The configuration is unusable (empty stages, tiny window, ...).
    InvalidConfig(String),
    /// Negative mining could not find enough hard negatives (the cascade
    /// already rejects everything the generator produces).
    NegativesExhausted {
        /// Stage that ran dry.
        stage: usize,
    },
}

impl fmt::Display for CascadeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CascadeError::InvalidConfig(m) => write!(f, "invalid cascade config: {m}"),
            CascadeError::NegativesExhausted { stage } => {
                write!(f, "negative mining exhausted at stage {stage}")
            }
        }
    }
}

impl Error for CascadeError {}

/// A trained attentional cascade.
#[derive(Debug, Clone)]
pub struct Cascade {
    stages: Vec<StrongClassifier>,
    window: usize,
}

impl Cascade {
    /// Canonical window side.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Internal view of the stages (model serialization).
    pub(crate) fn stage_slice(&self) -> &[StrongClassifier] {
        &self.stages
    }

    /// Reassembles a cascade from deserialized parts (model loading).
    pub(crate) fn from_parts(stages: Vec<StrongClassifier>, window: usize) -> Cascade {
        Cascade { stages, window }
    }

    /// Number of stages.
    pub fn stages(&self) -> usize {
        self.stages.len()
    }

    /// Evaluates the cascade on a normalized window; `true` means every
    /// stage accepted (a face).
    ///
    /// Stump `i` of a stage always references stage feature `i`, so the
    /// committee score is accumulated stump-by-stump with no per-window
    /// feature-value buffer — the same additions in the same order as
    /// [`StrongClassifier::classify`] on a collected value vector, minus
    /// the allocation the old scan paid for every window.
    pub fn accepts(&self, ii: &IntegralImage, win: &NormalizedWindow) -> bool {
        self.stages.iter().all(|stage| {
            let score: f64 = stage
                .stumps
                .iter()
                .map(|st| st.alpha * st.vote(stage.features[st.feature].eval(ii, win)))
                .sum();
            score >= stage.threshold
        })
    }

    /// Classifies a standalone `window × window` patch.
    ///
    /// # Panics
    ///
    /// Panics if the patch is not exactly the canonical window size.
    pub fn accepts_patch(&self, patch: &Image) -> bool {
        assert_eq!(
            (patch.width(), patch.height()),
            (self.window, self.window),
            "patch must match the canonical window"
        );
        let ii = IntegralImage::new(patch);
        let ii2 = IntegralImage::squared(patch);
        let win = NormalizedWindow::new(&ii, &ii2, 0, 0, self.window, self.window);
        self.accepts(&ii, &win)
    }

    /// Trains a cascade on synthetically rendered faces and hard-mined
    /// clutter (the `Adaboost` kernel).
    ///
    /// # Errors
    ///
    /// * [`CascadeError::InvalidConfig`] for unusable parameters.
    /// * [`CascadeError::NegativesExhausted`] if hard-negative mining runs
    ///   dry before the last stage.
    pub fn train(cfg: &CascadeConfig, prof: &mut Profiler) -> Result<Cascade, CascadeError> {
        if cfg.window < 16 {
            return Err(CascadeError::InvalidConfig(
                "window must be at least 16".into(),
            ));
        }
        if cfg.stage_rounds.is_empty() || cfg.stage_rounds.contains(&0) {
            return Err(CascadeError::InvalidConfig(
                "stages must be non-empty".into(),
            ));
        }
        if cfg.positives < 10 || cfg.negatives < 10 {
            return Err(CascadeError::InvalidConfig(
                "need at least 10 samples per class".into(),
            ));
        }
        if !(0.5..=1.0).contains(&cfg.stage_detection_rate) {
            return Err(CascadeError::InvalidConfig(
                "stage_detection_rate must be in 0.5..=1".into(),
            ));
        }
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let features = generate_features(cfg.window, cfg.feature_step);
        // Render the positive set once. Faces are rendered slightly larger
        // and cropped with random offset/scale jitter so the detector
        // tolerates the misalignment of a strided sliding-window scan.
        let positives: Vec<Image> = (0..cfg.positives)
            .map(|_| {
                let slack = 4usize;
                let big = render_face_patch(cfg.window + slack, &mut rng);
                let ox = rng.gen_range(0..=slack);
                let oy = rng.gen_range(0..=slack);
                big.crop(ox, oy, cfg.window, cfg.window)
            })
            .collect();
        let mut negatives: Vec<Image> = (0..cfg.negatives)
            .map(|_| render_non_face_patch(cfg.window, &mut rng))
            .collect();
        let mut stages: Vec<StrongClassifier> = Vec::new();
        for (stage_idx, &rounds) in cfg.stage_rounds.iter().enumerate() {
            // Feature-value matrix for this stage's sample set.
            let samples: Vec<&Image> = positives.iter().chain(negatives.iter()).collect();
            let labels: Vec<bool> = (0..samples.len()).map(|i| i < positives.len()).collect();
            let values: Vec<Vec<f64>> = prof.kernel("IntegralImage", |_| {
                // Per-sample integral images, then per-feature rows.
                let wins: Vec<(IntegralImage, NormalizedWindow)> = samples
                    .iter()
                    .map(|img| {
                        let ii = IntegralImage::new(img);
                        let ii2 = IntegralImage::squared(img);
                        let win = NormalizedWindow::new(&ii, &ii2, 0, 0, cfg.window, cfg.window);
                        (ii, win)
                    })
                    .collect();
                features
                    .iter()
                    .map(|f| wins.iter().map(|(ii, win)| f.eval(ii, win)).collect())
                    .collect()
            });
            let mut stage = prof.kernel("Adaboost", |_| {
                train_adaboost(&features, &values, &labels, rounds)
            });
            // Lower the stage threshold until the detection-rate target is
            // met on the positives.
            let pos_scores: Vec<f64> = (0..positives.len())
                .map(|s| {
                    let vals: Vec<f64> = stage
                        .stumps
                        .iter()
                        .map(|st| values[feature_index(&features, &stage.features[st.feature])][s])
                        .collect();
                    stage.score(&vals)
                })
                .collect();
            let mut sorted = pos_scores.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite scores"));
            let drop = ((1.0 - cfg.stage_detection_rate) * sorted.len() as f64) as usize;
            stage.threshold = sorted[drop.min(sorted.len() - 1)] - 1e-9;
            stages.push(stage);
            // Hard-negative mining for the next stage: keep negatives that
            // still pass, replace the rest with fresh clutter that fools
            // the cascade so far.
            if stage_idx + 1 < cfg.stage_rounds.len() {
                let cascade_so_far = Cascade {
                    stages: stages.clone(),
                    window: cfg.window,
                };
                negatives.retain(|n| cascade_so_far.accepts_patch(n));
                let mut attempts = 0usize;
                while negatives.len() < cfg.negatives && attempts < 40_000 {
                    attempts += 1;
                    let cand = render_non_face_patch(cfg.window, &mut rng);
                    if cascade_so_far.accepts_patch(&cand) {
                        negatives.push(cand);
                    }
                }
                if negatives.is_empty() {
                    return Err(CascadeError::NegativesExhausted { stage: stage_idx });
                }
                if negatives.len() < 10 {
                    // The cascade already rejects essentially all clutter
                    // the generator can produce — further stages would
                    // train on noise. Stop early with the stages built.
                    break;
                }
            }
        }
        Ok(Cascade {
            stages,
            window: cfg.window,
        })
    }
}

fn feature_index(pool: &[HaarFeature], f: &HaarFeature) -> usize {
    pool.iter()
        .position(|p| p == f)
        .expect("stump features come from the pool")
}

/// A detected face window with its last-stage score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Left edge.
    pub x: usize,
    /// Top edge.
    pub y: usize,
    /// Window side length.
    pub size: usize,
    /// Number of raw windows merged into this detection (confidence
    /// proxy).
    pub support: usize,
}

impl Detection {
    /// Intersection-over-union with another detection.
    pub fn iou(&self, other: &Detection) -> f64 {
        let x0 = self.x.max(other.x);
        let y0 = self.y.max(other.y);
        let x1 = (self.x + self.size).min(other.x + other.size);
        let y1 = (self.y + self.size).min(other.y + other.size);
        if x1 <= x0 || y1 <= y0 {
            return 0.0;
        }
        let inter = ((x1 - x0) * (y1 - y0)) as f64;
        let uni = (self.size * self.size + other.size * other.size) as f64 - inter;
        inter / uni
    }
}

/// Sliding-window detector configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// Scale multiplier between window sizes.
    pub scale_factor: f64,
    /// Stride as a fraction of the current window size.
    pub stride_frac: f64,
    /// Minimum merged-window support to report a detection.
    pub min_support: usize,
    /// IoU above which raw windows are merged.
    pub merge_iou: f64,
    /// Execution policy for the cascade scan ("ExtractFaces"). Any policy
    /// yields bit-identical detections.
    pub exec: sdvbs_exec::ExecPolicy,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            scale_factor: 1.12,
            stride_frac: 0.05,
            min_support: 6,
            merge_iou: 0.3,
            exec: sdvbs_exec::ExecPolicy::Serial,
        }
    }
}

/// Errors from the fallible detector entry [`try_detect_faces`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DetectError {
    /// The image cannot host a single detector window.
    ImageTooSmall {
        /// The cascade's base window side.
        window: usize,
        /// The smaller offending image side.
        side: usize,
    },
    /// The image contains NaN or infinite pixels.
    NonFinitePixels,
}

impl fmt::Display for DetectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetectError::ImageTooSmall { window, side } => {
                write!(f, "image side {side} below the {window}-pixel window")
            }
            DetectError::NonFinitePixels => write!(f, "image contains non-finite pixels"),
        }
    }
}

impl Error for DetectError {}

/// Runs the multi-scale sliding-window detector.
///
/// Kernel attribution: `IntegralImage` (plain + squared tables),
/// `ExtractFaces` (the cascade scan), `StabilizeWindows` (merging /
/// non-maximum suppression) — the paper's three face-detection
/// components.
///
/// # Panics
///
/// Panics on degenerate inputs; this is the thin panicking wrapper over
/// [`try_detect_faces`] kept for call sites with pre-validated inputs.
pub fn detect_faces(
    img: &Image,
    cascade: &Cascade,
    cfg: &DetectorConfig,
    prof: &mut Profiler,
) -> Vec<Detection> {
    match try_detect_faces(img, cascade, cfg, prof) {
        Ok(dets) => dets,
        Err(e) => panic!("detect_faces: {e}"),
    }
}

/// Runs the detector, rejecting degenerate inputs with a typed error.
///
/// # Errors
///
/// * [`DetectError::ImageTooSmall`] if the image cannot host one window;
/// * [`DetectError::NonFinitePixels`] for NaN/Inf pixels.
pub fn try_detect_faces(
    img: &Image,
    cascade: &Cascade,
    cfg: &DetectorConfig,
    prof: &mut Profiler,
) -> Result<Vec<Detection>, DetectError> {
    let side = img.width().min(img.height());
    if side < cascade.window() {
        return Err(DetectError::ImageTooSmall {
            window: cascade.window(),
            side,
        });
    }
    if !img.all_finite() {
        return Err(DetectError::NonFinitePixels);
    }
    Ok(detect_pipeline(img, cascade, cfg, prof))
}

/// The validated multi-scale scan.
fn detect_pipeline(
    img: &Image,
    cascade: &Cascade,
    cfg: &DetectorConfig,
    prof: &mut Profiler,
) -> Vec<Detection> {
    let (ii, ii2) = prof.kernel("IntegralImage", |_| {
        (IntegralImage::new(img), IntegralImage::squared(img))
    });
    // Enumerate the scan rows of every scale in serial scan order
    // (size-major, then y); each row is an independent unit of work.
    let mut rows: Vec<(usize, usize, usize)> = Vec::new(); // (size, stride, y)
    let mut size = cascade.window();
    let max_size = img.width().min(img.height());
    while size <= max_size {
        let stride = ((size as f64 * cfg.stride_frac).round() as usize).max(1);
        let mut y = 0;
        while y + size <= img.height() {
            rows.push((size, stride, y));
            y += stride;
        }
        size = ((size as f64) * cfg.scale_factor).round() as usize;
    }
    let scan = |rows: &[(usize, usize, usize)]| {
        let mut out = Vec::new();
        for &(size, stride, y) in rows {
            // All windows of this scan row share the same two table-row
            // bands of each integral image; borrowing them once turns the
            // per-window normalization sums into four fixed-offset slice
            // reads in the exact `d − b − c + a` order of
            // `IntegralImage::sum` (bit-identical, no per-window asserts).
            let top = ii.table_row(y);
            let bot = ii.table_row(y + size);
            let top2 = ii2.table_row(y);
            let bot2 = ii2.table_row(y + size);
            let mut x = 0;
            while x + size <= img.width() {
                let x1 = x + size;
                let sum = bot[x1] - top[x1] - bot[x] + top[x];
                let sum2 = bot2[x1] - top2[x1] - bot2[x] + top2[x];
                let win =
                    NormalizedWindow::from_window_sums(sum, sum2, x, y, size, cascade.window());
                if cascade.accepts(&ii, &win) {
                    out.push(Detection {
                        x,
                        y,
                        size,
                        support: 1,
                    });
                }
                x += stride;
            }
        }
        out
    };
    let raw: Vec<Detection> = if !cfg.exec.is_parallel(rows.len()) {
        prof.kernel("ExtractFaces", |_| scan(&rows))
    } else {
        // Each worker scans a contiguous run of rows with a private
        // Profiler; concatenating results in chunk order reproduces the
        // serial scan order (and therefore identical merged detections).
        let coordinator: &Profiler = prof;
        let parts = sdvbs_exec::map_chunks(cfg.exec, rows.len(), |r| {
            // Inherits the coordinator's tracing mode on a private track.
            let mut local = coordinator.worker();
            let dets = local.kernel("ExtractFaces", |_| scan(&rows[r]));
            (local, dets)
        });
        let mut raw = Vec::new();
        for (local, dets) in parts {
            // Worker scopes are structurally closed (the closure returned),
            // so the only absorb error — open scopes — is unreachable.
            prof.absorb(local)
                .expect("worker profiler has no open scopes");
            raw.extend(dets);
        }
        raw
    };
    prof.kernel("StabilizeWindows", |_| {
        merge_detections(&raw, cfg.merge_iou, cfg.min_support)
    })
}

/// Greedy connected-component merging of overlapping raw windows; groups
/// with fewer than `min_support` members are discarded.
fn merge_detections(raw: &[Detection], merge_iou: f64, min_support: usize) -> Vec<Detection> {
    let mut groups: Vec<Vec<Detection>> = Vec::new();
    for d in raw {
        let mut placed = false;
        for g in &mut groups {
            if g.iter().any(|m| m.iou(d) >= merge_iou) {
                g.push(*d);
                placed = true;
                break;
            }
        }
        if !placed {
            groups.push(vec![*d]);
        }
    }
    groups
        .into_iter()
        .filter(|g| g.len() >= min_support)
        .map(|g| {
            let n = g.len();
            Detection {
                x: g.iter().map(|d| d.x).sum::<usize>() / n,
                y: g.iter().map(|d| d.y).sum::<usize>() / n,
                size: g.iter().map(|d| d.size).sum::<usize>() / n,
                support: n,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdvbs_synth::{face_scene, FaceBox};
    use std::sync::OnceLock;

    /// Training is the expensive part; share one cascade across tests.
    fn cascade() -> &'static Cascade {
        static CASCADE: OnceLock<Cascade> = OnceLock::new();
        CASCADE.get_or_init(|| {
            let mut prof = Profiler::new();
            Cascade::train(&CascadeConfig::default(), &mut prof).expect("training succeeds")
        })
    }

    #[test]
    fn cascade_separates_faces_from_clutter() {
        let c = cascade();
        let mut rng = StdRng::seed_from_u64(12345);
        let mut face_hits = 0;
        let mut clutter_hits = 0;
        let n = 150;
        for _ in 0..n {
            if c.accepts_patch(&render_face_patch(24, &mut rng)) {
                face_hits += 1;
            }
            if c.accepts_patch(&render_non_face_patch(24, &mut rng)) {
                clutter_hits += 1;
            }
        }
        assert!(face_hits * 10 >= n * 9, "detection rate {face_hits}/{n}");
        assert!(
            clutter_hits * 10 <= n * 3,
            "false positive rate {clutter_hits}/{n}"
        );
    }

    #[test]
    fn finds_planted_faces_in_scene() {
        let c = cascade();
        let scene = face_scene(200, 150, 31, 3);
        let mut prof = Profiler::new();
        let found = detect_faces(&scene.image, c, &DetectorConfig::default(), &mut prof);
        let mut hits = 0;
        for truth in &scene.faces {
            let tb = Detection {
                x: truth.x,
                y: truth.y,
                size: truth.size,
                support: 1,
            };
            if found.iter().any(|d| d.iou(&tb) > 0.35) {
                hits += 1;
            }
        }
        assert!(hits >= 2, "found {hits}/3 planted faces ({found:?})");
        // Not drowning in false positives.
        assert!(
            found.len() <= 3 + 4,
            "{} detections for 3 faces",
            found.len()
        );
    }

    #[test]
    fn empty_texture_scene_has_few_detections() {
        let c = cascade();
        let img = sdvbs_synth::textured_image(160, 120, 77);
        let mut prof = Profiler::new();
        let found = detect_faces(&img, c, &DetectorConfig::default(), &mut prof);
        assert!(
            found.len() <= 2,
            "{} false detections on texture",
            found.len()
        );
    }

    #[test]
    fn merge_requires_support() {
        let d = Detection {
            x: 10,
            y: 10,
            size: 24,
            support: 1,
        };
        let merged = merge_detections(&[d], 0.3, 2);
        assert!(merged.is_empty());
        let merged = merge_detections(&[d, d, d], 0.3, 2);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].support, 3);
    }

    #[test]
    fn merge_keeps_distant_groups_separate() {
        let a = Detection {
            x: 0,
            y: 0,
            size: 24,
            support: 1,
        };
        let b = Detection {
            x: 100,
            y: 100,
            size: 24,
            support: 1,
        };
        let merged = merge_detections(&[a, a, b, b], 0.3, 2);
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut prof = Profiler::new();
        for cfg in [
            CascadeConfig {
                window: 8,
                ..CascadeConfig::default()
            },
            CascadeConfig {
                stage_rounds: vec![],
                ..CascadeConfig::default()
            },
            CascadeConfig {
                stage_rounds: vec![0],
                ..CascadeConfig::default()
            },
            CascadeConfig {
                positives: 2,
                ..CascadeConfig::default()
            },
            CascadeConfig {
                stage_detection_rate: 0.2,
                ..CascadeConfig::default()
            },
        ] {
            assert!(Cascade::train(&cfg, &mut prof).is_err());
        }
    }

    #[test]
    fn kernel_attribution() {
        let c = cascade();
        let scene = face_scene(120, 100, 5, 1);
        let mut prof = Profiler::new();
        prof.run(|p| detect_faces(&scene.image, c, &DetectorConfig::default(), p));
        let rep = prof.report();
        for k in ["IntegralImage", "ExtractFaces", "StabilizeWindows"] {
            assert!(rep.occupancy(k).is_some(), "kernel {k} missing");
        }
        // The scan dominates.
        assert!(rep.occupancy("ExtractFaces").unwrap() > 50.0);
    }

    #[test]
    fn iou_uses_box_geometry() {
        let a = Detection {
            x: 0,
            y: 0,
            size: 10,
            support: 1,
        };
        let b = Detection {
            x: 5,
            y: 0,
            size: 10,
            support: 1,
        };
        assert!((a.iou(&b) - 50.0 / 150.0).abs() < 1e-12);
        let _ = FaceBox {
            x: 0,
            y: 0,
            size: 4,
        }; // synth API smoke-link
    }
}
