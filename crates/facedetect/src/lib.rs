//! SD-VBS benchmark 7: **Face Detection** — the Viola–Jones detector.
//!
//! The detector locates human faces in images via three components the
//! paper names "extract faces" (pixel-granularity preprocessing and
//! feature extraction), "extract face sequence" and "stabilize face
//! windows". Its defining kernels are the **integral image** (constant-
//! time rectangle sums), **Haar-like rectangle features**, and
//! **AdaBoost** (cited explicitly as one of the suite's most complex
//! kernels), organized into an attentional cascade scanned over a
//! multi-scale sliding window.
//!
//! The original SD-VBS code ships a cascade trained offline on a face
//! corpus that isn't distributed with the paper; this reproduction instead
//! *trains its own cascade from scratch* with AdaBoost over decision
//! stumps, on synthetically rendered faces and hard-negative clutter from
//! [`sdvbs_synth`] — exercising the full training and detection pipeline
//! end to end (see DESIGN.md §5 for the substitution rationale).
//!
//! # Examples
//!
//! ```no_run
//! use sdvbs_facedetect::{Cascade, CascadeConfig, detect_faces, DetectorConfig};
//! use sdvbs_profile::Profiler;
//! use sdvbs_synth::face_scene;
//!
//! let mut prof = Profiler::new();
//! let cascade = Cascade::train(&CascadeConfig::default(), &mut prof).unwrap();
//! let scene = face_scene(160, 120, 7, 2);
//! let found = detect_faces(&scene.image, &cascade, &DetectorConfig::default(), &mut prof);
//! assert!(!found.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod boost;
mod cascade;
mod haar;
mod model_io;

pub use boost::{train_adaboost, StrongClassifier, Stump};
pub use cascade::{
    detect_faces, try_detect_faces, Cascade, CascadeConfig, CascadeError, DetectError, Detection,
    DetectorConfig,
};
pub use haar::{generate_features, HaarFeature, HaarKind, NormalizedWindow};
pub use model_io::ModelIoError;
