//! Cascade model serialization.
//!
//! SD-VBS ships its Viola–Jones model pre-trained; this module provides
//! the equivalent workflow for the Rust reproduction — train once, save
//! the cascade, and load it in later runs without paying training time.
//! The format is a small, versioned, line-oriented text file (stable
//! across platforms, diffable, no serialization dependency).

use crate::boost::{StrongClassifier, Stump};
use crate::cascade::Cascade;
use crate::haar::{HaarFeature, HaarKind};
use std::error::Error;
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::path::Path;

/// Errors from cascade model I/O.
#[derive(Debug)]
#[non_exhaustive]
pub enum ModelIoError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The file is not a valid cascade model (message pinpoints the
    /// offending line).
    Malformed(String),
}

impl fmt::Display for ModelIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelIoError::Io(e) => write!(f, "cascade model i/o failed: {e}"),
            ModelIoError::Malformed(m) => write!(f, "malformed cascade model: {m}"),
        }
    }
}

impl Error for ModelIoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ModelIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ModelIoError {
    fn from(e: std::io::Error) -> Self {
        ModelIoError::Io(e)
    }
}

const MAGIC: &str = "SDVBS-CASCADE 1";

fn kind_name(kind: HaarKind) -> &'static str {
    match kind {
        HaarKind::TwoVertical => "two_v",
        HaarKind::TwoHorizontal => "two_h",
        HaarKind::ThreeHorizontal => "three_h",
        HaarKind::ThreeVertical => "three_v",
        HaarKind::Four => "four",
    }
}

fn kind_from(name: &str) -> Option<HaarKind> {
    Some(match name {
        "two_v" => HaarKind::TwoVertical,
        "two_h" => HaarKind::TwoHorizontal,
        "three_h" => HaarKind::ThreeHorizontal,
        "three_v" => HaarKind::ThreeVertical,
        "four" => HaarKind::Four,
        _ => return None,
    })
}

impl Cascade {
    /// Writes the cascade to a text model file.
    ///
    /// # Errors
    ///
    /// Returns [`ModelIoError::Io`] on filesystem failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ModelIoError> {
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "{MAGIC}")?;
        writeln!(f, "window {}", self.window())?;
        writeln!(f, "stages {}", self.stages())?;
        for stage in self.stage_slice() {
            writeln!(f, "stage {} {:.17e}", stage.stumps.len(), stage.threshold)?;
            for stump in &stage.stumps {
                let feat = stage.features[stump.feature];
                writeln!(
                    f,
                    "stump {} {} {} {} {} {:.17e} {} {:.17e}",
                    kind_name(feat.kind),
                    feat.x,
                    feat.y,
                    feat.w,
                    feat.h,
                    stump.threshold,
                    stump.polarity as i8,
                    stump.alpha
                )?;
            }
        }
        Ok(())
    }

    /// Reads a cascade from a text model file written by [`Cascade::save`].
    ///
    /// # Errors
    ///
    /// * [`ModelIoError::Io`] on filesystem failure.
    /// * [`ModelIoError::Malformed`] for syntax errors, wrong magic, or
    ///   inconsistent counts.
    pub fn load(path: impl AsRef<Path>) -> Result<Cascade, ModelIoError> {
        let f = std::fs::File::open(path)?;
        let mut lines = BufReader::new(f).lines();
        let mut next = |what: &str| -> Result<String, ModelIoError> {
            lines
                .next()
                .transpose()?
                .ok_or_else(|| ModelIoError::Malformed(format!("missing {what}")))
        };
        if next("magic")? != MAGIC {
            return Err(ModelIoError::Malformed("bad magic line".into()));
        }
        let window: usize = parse_kv(&next("window line")?, "window")?;
        let n_stages: usize = parse_kv(&next("stages line")?, "stages")?;
        if window < 12 || n_stages == 0 || n_stages > 1000 {
            return Err(ModelIoError::Malformed(format!(
                "implausible header: window {window}, stages {n_stages}"
            )));
        }
        let mut stages = Vec::with_capacity(n_stages);
        for s in 0..n_stages {
            let line = next("stage line")?;
            let mut parts = line.split_whitespace();
            if parts.next() != Some("stage") {
                return Err(ModelIoError::Malformed(format!(
                    "stage {s}: expected 'stage'"
                )));
            }
            let n_stumps: usize = parse_tok(parts.next(), "stump count")?;
            let threshold: f64 = parse_tok(parts.next(), "stage threshold")?;
            let mut stumps = Vec::with_capacity(n_stumps);
            let mut features = Vec::with_capacity(n_stumps);
            for k in 0..n_stumps {
                let line = next("stump line")?;
                let mut p = line.split_whitespace();
                if p.next() != Some("stump") {
                    return Err(ModelIoError::Malformed(format!(
                        "stage {s} stump {k}: expected 'stump'"
                    )));
                }
                let kind = kind_from(p.next().unwrap_or("")).ok_or_else(|| {
                    ModelIoError::Malformed(format!("stage {s} stump {k}: bad kind"))
                })?;
                let x: usize = parse_tok(p.next(), "x")?;
                let y: usize = parse_tok(p.next(), "y")?;
                let w: usize = parse_tok(p.next(), "w")?;
                let h: usize = parse_tok(p.next(), "h")?;
                if x + w > window || y + h > window || w < 2 || h < 2 {
                    return Err(ModelIoError::Malformed(format!(
                        "stage {s} stump {k}: feature outside the window"
                    )));
                }
                let threshold: f64 = parse_tok(p.next(), "stump threshold")?;
                let polarity: i8 = parse_tok(p.next(), "polarity")?;
                if polarity != 1 && polarity != -1 {
                    return Err(ModelIoError::Malformed(format!(
                        "stage {s} stump {k}: polarity must be +-1"
                    )));
                }
                let alpha: f64 = parse_tok(p.next(), "alpha")?;
                features.push(HaarFeature { kind, x, y, w, h });
                stumps.push(Stump {
                    feature: k,
                    threshold,
                    polarity: polarity as f64,
                    alpha,
                });
            }
            stages.push(StrongClassifier {
                stumps,
                threshold,
                features,
            });
        }
        Ok(Cascade::from_parts(stages, window))
    }
}

fn parse_kv<T: std::str::FromStr>(line: &str, key: &str) -> Result<T, ModelIoError> {
    let mut parts = line.split_whitespace();
    if parts.next() != Some(key) {
        return Err(ModelIoError::Malformed(format!(
            "expected '{key}' line, got {line:?}"
        )));
    }
    parse_tok(parts.next(), key)
}

fn parse_tok<T: std::str::FromStr>(tok: Option<&str>, what: &str) -> Result<T, ModelIoError> {
    tok.ok_or_else(|| ModelIoError::Malformed(format!("missing {what}")))?
        .parse()
        .map_err(|_| ModelIoError::Malformed(format!("invalid {what}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cascade::CascadeConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sdvbs_profile::Profiler;
    use sdvbs_synth::{render_face_patch, render_non_face_patch};

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sdvbs_cascade_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn save_load_roundtrip_preserves_decisions() {
        let mut prof = Profiler::new();
        let cfg = CascadeConfig {
            positives: 80,
            negatives: 80,
            stage_rounds: vec![3, 5],
            ..CascadeConfig::default()
        };
        let cascade = Cascade::train(&cfg, &mut prof).unwrap();
        let path = tmp("roundtrip.txt");
        cascade.save(&path).unwrap();
        let loaded = Cascade::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.window(), cascade.window());
        assert_eq!(loaded.stages(), cascade.stages());
        // Identical decisions on fresh patches.
        let mut rng = StdRng::seed_from_u64(4242);
        for _ in 0..60 {
            let face = render_face_patch(24, &mut rng);
            let clutter = render_non_face_patch(24, &mut rng);
            assert_eq!(cascade.accepts_patch(&face), loaded.accepts_patch(&face));
            assert_eq!(
                cascade.accepts_patch(&clutter),
                loaded.accepts_patch(&clutter)
            );
        }
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        let path = tmp("badmagic.txt");
        std::fs::write(&path, "NOT-A-CASCADE\n").unwrap();
        assert!(matches!(
            Cascade::load(&path),
            Err(ModelIoError::Malformed(_))
        ));
        std::fs::write(&path, format!("{MAGIC}\nwindow 24\nstages 2\n")).unwrap();
        assert!(matches!(
            Cascade::load(&path),
            Err(ModelIoError::Malformed(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_out_of_window_features() {
        let path = tmp("badfeat.txt");
        std::fs::write(
            &path,
            format!(
                "{MAGIC}\nwindow 24\nstages 1\nstage 1 0.0\nstump two_v 20 20 10 10 0.0 1 1.0\n"
            ),
        )
        .unwrap();
        assert!(matches!(
            Cascade::load(&path),
            Err(ModelIoError::Malformed(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            Cascade::load("/nonexistent/sdvbs/cascade.txt"),
            Err(ModelIoError::Io(_))
        ));
    }
}
