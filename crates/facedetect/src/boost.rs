//! AdaBoost over decision stumps — the paper calls AdaBoost out as one of
//! the suite's most complex kernels.

use crate::haar::HaarFeature;

/// A weak classifier: thresholded single Haar feature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stump {
    /// Index into the feature pool.
    pub feature: usize,
    /// Decision threshold on the feature value.
    pub threshold: f64,
    /// `+1.0` if values above the threshold vote "face", `-1.0` if below.
    pub polarity: f64,
    /// AdaBoost weight `α = ½ ln((1 − ε) / ε)`.
    pub alpha: f64,
}

impl Stump {
    /// Weak vote on a precomputed feature value: `+1` face, `-1` non-face.
    pub fn vote(&self, value: f64) -> f64 {
        if self.polarity * (value - self.threshold) >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }
}

/// A boosted strong classifier: a weighted stump committee with an
/// adjustable decision threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct StrongClassifier {
    /// The boosted weak classifiers.
    pub stumps: Vec<Stump>,
    /// Decision threshold on the weighted score (0 is the natural
    /// AdaBoost threshold; cascades lower it to push detection rates up).
    pub threshold: f64,
    /// The features referenced by the stumps (so evaluation needs no
    /// external pool).
    pub features: Vec<HaarFeature>,
}

impl StrongClassifier {
    /// Weighted committee score from precomputed feature values
    /// `values[s]` for stump `s`.
    pub fn score(&self, values: &[f64]) -> f64 {
        self.stumps
            .iter()
            .zip(values)
            .map(|(stump, &v)| stump.alpha * stump.vote(v))
            .sum()
    }

    /// Classifies from precomputed per-stump feature values.
    pub fn classify(&self, values: &[f64]) -> bool {
        self.score(values) >= self.threshold
    }
}

/// Trains `rounds` of AdaBoost over decision stumps.
///
/// `values[f][s]` is feature `f` evaluated on sample `s`; `labels[s]` is
/// `true` for positives. Returns the boosted committee (with the natural
/// zero threshold) whose stumps reference `features` by index.
///
/// # Panics
///
/// Panics if inputs are empty, ragged, or single-class.
pub fn train_adaboost(
    features: &[HaarFeature],
    values: &[Vec<f64>],
    labels: &[bool],
    rounds: usize,
) -> StrongClassifier {
    let nf = features.len();
    let ns = labels.len();
    assert!(nf > 0 && ns > 0 && rounds > 0, "empty adaboost input");
    assert_eq!(values.len(), nf, "one value row per feature");
    assert!(
        values.iter().all(|row| row.len() == ns),
        "value rows must match sample count"
    );
    assert!(
        labels.iter().any(|&l| l) && labels.iter().any(|&l| !l),
        "both classes required"
    );
    // Initial weights: balanced across classes (Viola-Jones init).
    let n_pos = labels.iter().filter(|&&l| l).count();
    let n_neg = ns - n_pos;
    let mut weights: Vec<f64> = labels
        .iter()
        .map(|&l| {
            if l {
                0.5 / n_pos as f64
            } else {
                0.5 / n_neg as f64
            }
        })
        .collect();
    // Pre-sorted sample orders per feature (stump search is a linear scan
    // over each sorted order).
    let orders: Vec<Vec<usize>> = values
        .iter()
        .map(|row| {
            let mut idx: Vec<usize> = (0..ns).collect();
            idx.sort_by(|&a, &b| row[a].partial_cmp(&row[b]).expect("finite feature values"));
            idx
        })
        .collect();
    let mut stumps = Vec::with_capacity(rounds);
    let mut chosen_features = Vec::with_capacity(rounds);
    for _round in 0..rounds {
        // Normalize weights.
        let wsum: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= wsum;
        }
        let total_pos: f64 = weights
            .iter()
            .zip(labels)
            .filter(|(_, &l)| l)
            .map(|(w, _)| w)
            .sum();
        let total_neg = 1.0 - total_pos;
        // Best stump across all features: sweep each sorted order once.
        let mut best = (f64::INFINITY, 0usize, 0.0f64, 1.0f64); // (err, feat, thresh, polarity)
        for f in 0..nf {
            let row = &values[f];
            let order = &orders[f];
            let mut pos_below = 0.0f64;
            let mut neg_below = 0.0f64;
            for (rank, &s) in order.iter().enumerate() {
                // Threshold candidate between this sample and the next.
                let w = weights[s];
                if labels[s] {
                    pos_below += w;
                } else {
                    neg_below += w;
                }
                // Error when classifying "face if value > t":
                //   mistakes = positives below + negatives above.
                let err_above = pos_below + (total_neg - neg_below);
                // Error when classifying "face if value < t".
                let err_below = neg_below + (total_pos - pos_below);
                let (err, polarity) = if err_above <= err_below {
                    (err_above, 1.0)
                } else {
                    (err_below, -1.0)
                };
                if err < best.0 {
                    let here = row[s];
                    let next = if rank + 1 < ns {
                        row[order[rank + 1]]
                    } else {
                        here + 1.0
                    };
                    best = (err, f, 0.5 * (here + next), polarity);
                }
            }
        }
        let (err, f, threshold, polarity) = best;
        let eps = err.clamp(1e-10, 1.0 - 1e-10);
        let alpha = 0.5 * ((1.0 - eps) / eps).ln();
        stumps.push(Stump {
            feature: chosen_features.len(),
            threshold,
            polarity,
            alpha,
        });
        chosen_features.push(features[f]);
        // Reweight: multiply mistakes up, correct down.
        for s in 0..ns {
            let vote = if polarity * (values[f][s] - threshold) >= 0.0 {
                1.0
            } else {
                -1.0
            };
            let y = if labels[s] { 1.0 } else { -1.0 };
            weights[s] *= (-alpha * y * vote).exp();
        }
        if eps <= 1e-9 {
            break; // perfect stump; boosting is done
        }
    }
    StrongClassifier {
        stumps,
        threshold: 0.0,
        features: chosen_features,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::haar::HaarKind;

    fn dummy_features(n: usize) -> Vec<HaarFeature> {
        (0..n)
            .map(|i| HaarFeature {
                kind: HaarKind::TwoVertical,
                x: i % 4,
                y: 0,
                w: 4,
                h: 4,
            })
            .collect()
    }

    #[test]
    fn single_separating_feature_is_found() {
        // Feature 1 separates perfectly; features 0 and 2 are noise.
        let labels: Vec<bool> = (0..20).map(|i| i < 10).collect();
        let values = vec![
            (0..20).map(|i| ((i * 7) % 13) as f64).collect::<Vec<_>>(),
            (0..20).map(|i| if i < 10 { 5.0 } else { -5.0 }).collect(),
            (0..20).map(|i| ((i * 3) % 11) as f64).collect(),
        ];
        let sc = train_adaboost(&dummy_features(3), &values, &labels, 3);
        assert!(!sc.stumps.is_empty());
        // All samples classified correctly using the chosen stumps.
        for s in 0..20 {
            let vals: Vec<f64> = sc
                .stumps
                .iter()
                .enumerate()
                .map(|(k, _)| {
                    // stump k references chosen feature k; recover the raw
                    // row by matching the separating feature's value
                    // pattern (feature 1 was at index 1).
                    let _ = k;
                    values[1][s]
                })
                .collect();
            // With the separating feature dominant, classification matches
            // labels.
            assert_eq!(sc.classify(&vals), labels[s], "sample {s}");
        }
    }

    #[test]
    fn boosting_reduces_training_error_on_xor_like_data() {
        // No single stump separates XOR; a committee does better.
        let labels: Vec<bool> = (0..40).map(|i| (i % 2 == 0) ^ (i < 20)).collect();
        let f0: Vec<f64> = (0..40)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let f1: Vec<f64> = (0..40).map(|i| if i < 20 { 1.0 } else { -1.0 }).collect();
        // A "product" feature that solves XOR exists in the pool.
        let f2: Vec<f64> = f0.iter().zip(&f1).map(|(a, b)| a * b).collect();
        let values = vec![f0.clone(), f1.clone(), f2.clone()];
        let sc = train_adaboost(&dummy_features(3), &values, &labels, 5);
        // Evaluate: stump k's feature values must be fetched per stump.
        let full = [&f0, &f1, &f2];
        let mut correct = 0;
        for s in 0..40 {
            // Identify each chosen stump's source row by matching feature
            // structs is impossible with dummies; instead evaluate all three
            // rows and use the right one via the saved order.
            let vals: Vec<f64> = sc
                .stumps
                .iter()
                .map(|st| {
                    // chosen_features preserve x = original index % 4
                    let orig = sc.features[st.feature].x;
                    full[orig][s]
                })
                .collect();
            if sc.classify(&vals) == labels[s] {
                correct += 1;
            }
        }
        assert!(correct >= 38, "XOR accuracy {correct}/40");
    }

    #[test]
    fn alphas_are_positive_for_informative_stumps() {
        let labels: Vec<bool> = (0..10).map(|i| i < 5).collect();
        let values = vec![(0..10).map(|i| if i < 5 { 1.0 } else { 0.0 }).collect()];
        let sc = train_adaboost(&dummy_features(1), &values, &labels, 1);
        assert!(sc.stumps[0].alpha > 1.0);
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn single_class_panics() {
        let values = vec![vec![1.0, 2.0]];
        train_adaboost(&dummy_features(1), &values, &[true, true], 1);
    }
}
