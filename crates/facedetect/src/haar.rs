//! Haar-like rectangle features evaluated on integral images.

use sdvbs_image::Image;
use sdvbs_kernels::integral::IntegralImage;

/// The five classic Viola–Jones feature shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HaarKind {
    /// Two horizontal bands (top minus bottom) — fires on the eye band.
    TwoVertical,
    /// Two vertical bands (left minus right).
    TwoHorizontal,
    /// Three vertical bands (outer minus center).
    ThreeHorizontal,
    /// Three horizontal bands (outer minus center).
    ThreeVertical,
    /// Checkerboard quad (diagonal minus anti-diagonal).
    Four,
}

/// A Haar feature: a shape anchored at `(x, y)` with size `w × h`, in
/// coordinates of the canonical detection window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HaarFeature {
    /// Shape of the feature.
    pub kind: HaarKind,
    /// Left offset inside the window.
    pub x: usize,
    /// Top offset inside the window.
    pub y: usize,
    /// Feature width (divisible by 2 or 3 as the shape demands).
    pub w: usize,
    /// Feature height (divisible by 2 or 3 as the shape demands).
    pub h: usize,
}

/// A detection window prepared for feature evaluation: position, scale and
/// variance normalization precomputed from the integral images.
#[derive(Debug, Clone, Copy)]
pub struct NormalizedWindow {
    /// Window left edge in image pixels.
    pub x0: usize,
    /// Window top edge in image pixels.
    pub y0: usize,
    /// Scale factor relative to the canonical window.
    pub scale: f64,
    /// `1 / (stddev · area)` normalization factor.
    pub inv_norm: f64,
}

impl NormalizedWindow {
    /// Prepares a window of `size × size` image pixels at `(x0, y0)` for a
    /// canonical window of `base` pixels, computing the lighting
    /// normalization from the plain and squared integral images.
    ///
    /// # Panics
    ///
    /// Panics if the window exceeds the integral image bounds.
    pub fn new(
        ii: &IntegralImage,
        ii2: &IntegralImage,
        x0: usize,
        y0: usize,
        size: usize,
        base: usize,
    ) -> Self {
        Self::from_window_sums(
            ii.sum(x0, y0, size, size),
            ii2.sum(x0, y0, size, size),
            x0,
            y0,
            size,
            base,
        )
    }

    /// Prepares a window from precomputed plain and squared window sums.
    ///
    /// This is the allocation- and assert-free entry the sliding-window
    /// scan uses: the scan reads `sum`/`sum2` for a whole row of windows
    /// straight off the integral-table rows (same `d − b − c + a` order as
    /// [`IntegralImage::sum`]), so the resulting windows are bit-identical
    /// to [`NormalizedWindow::new`].
    pub fn from_window_sums(
        sum: f64,
        sum2: f64,
        x0: usize,
        y0: usize,
        size: usize,
        base: usize,
    ) -> Self {
        let area = (size * size) as f64;
        let mean = sum / area;
        let var = (sum2 / area - mean * mean).max(1.0);
        let inv_norm = 1.0 / (var.sqrt() * area);
        NormalizedWindow {
            x0,
            y0,
            scale: size as f64 / base as f64,
            inv_norm,
        }
    }
}

impl HaarFeature {
    /// Evaluates the feature on a normalized window: the scaled
    /// black-minus-white rectangle contrast divided by the window's
    /// standard deviation (Viola–Jones lighting correction).
    pub fn eval(&self, ii: &IntegralImage, win: &NormalizedWindow) -> f64 {
        let s = win.scale;
        let sx = |v: usize| (v as f64 * s).round() as usize;
        let x = win.x0 + sx(self.x);
        let y = win.y0 + sx(self.y);
        let w = sx(self.w).max(2);
        let h = sx(self.h).max(2);
        // Clamp to the integral-image bounds (rounding can push the scaled
        // rectangle one pixel over).
        let w = w.min(ii.width().saturating_sub(x));
        let h = h.min(ii.height().saturating_sub(y));
        if w < 2 || h < 2 {
            return 0.0;
        }
        let raw = match self.kind {
            HaarKind::TwoVertical => {
                let hh = h / 2;
                ii.sum(x, y, w, hh) - ii.sum(x, y + hh, w, hh)
            }
            HaarKind::TwoHorizontal => {
                let hw = w / 2;
                ii.sum(x, y, hw, h) - ii.sum(x + hw, y, hw, h)
            }
            HaarKind::ThreeHorizontal => {
                // Zero-mean weighting: 2*center - outer pair.
                let tw = w / 3;
                2.0 * ii.sum(x + tw, y, tw, h) - ii.sum(x, y, tw, h) - ii.sum(x + 2 * tw, y, tw, h)
            }
            HaarKind::ThreeVertical => {
                let th = h / 3;
                2.0 * ii.sum(x, y + th, w, th) - ii.sum(x, y, w, th) - ii.sum(x, y + 2 * th, w, th)
            }
            HaarKind::Four => {
                let hw = w / 2;
                let hh = h / 2;
                ii.sum(x, y, hw, hh) + ii.sum(x + hw, y + hh, hw, hh)
                    - ii.sum(x + hw, y, hw, hh)
                    - ii.sum(x, y + hh, hw, hh)
            }
        };
        raw * win.inv_norm
    }

    /// Evaluates the feature on a full `base × base` patch (training
    /// convenience).
    pub fn eval_patch(&self, patch: &Image, base: usize) -> f64 {
        let ii = IntegralImage::new(patch);
        let ii2 = IntegralImage::squared(patch);
        let win = NormalizedWindow::new(&ii, &ii2, 0, 0, base, base);
        self.eval(&ii, &win)
    }
}

/// Generates a subsampled pool of Haar features for a `window × window`
/// canonical window. `step` strides both positions and sizes (larger steps
/// mean fewer features; 2–4 gives a pool in the low thousands, plenty for
/// a compact cascade).
///
/// # Panics
///
/// Panics if `window < 12` or `step == 0`.
pub fn generate_features(window: usize, step: usize) -> Vec<HaarFeature> {
    assert!(window >= 12, "window must be at least 12");
    assert!(step > 0, "step must be positive");
    let mut out = Vec::new();
    let kinds = [
        (HaarKind::TwoVertical, 1, 2),
        (HaarKind::TwoHorizontal, 2, 1),
        (HaarKind::ThreeHorizontal, 3, 1),
        (HaarKind::ThreeVertical, 1, 3),
        (HaarKind::Four, 2, 2),
    ];
    for (kind, wq, hq) in kinds {
        let mut w = 2 * wq.max(2);
        // Round the minimum width up to a multiple of the quantum.
        w += (wq - w % wq) % wq;
        while w <= window {
            let mut h = 2 * hq.max(2);
            h += (hq - h % hq) % hq;
            while h <= window {
                let mut y = 0;
                while y + h <= window {
                    let mut x = 0;
                    while x + w <= window {
                        out.push(HaarFeature { kind, x, y, w, h });
                        x += step;
                    }
                    y += step;
                }
                h += step * hq;
            }
            w += step * wq;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_vertical_fires_on_horizontal_edge() {
        // Top half bright, bottom half dark.
        let patch = Image::from_fn(24, 24, |_, y| if y < 12 { 200.0 } else { 50.0 });
        let f = HaarFeature {
            kind: HaarKind::TwoVertical,
            x: 4,
            y: 4,
            w: 16,
            h: 16,
        };
        let v = f.eval_patch(&patch, 24);
        assert!(v > 0.3, "edge response {v}");
        // The flipped image flips the sign.
        let flipped = Image::from_fn(24, 24, |_, y| if y < 12 { 50.0 } else { 200.0 });
        let vf = f.eval_patch(&flipped, 24);
        assert!(vf < -0.3, "flipped response {vf}");
    }

    #[test]
    fn response_is_lighting_invariant() {
        let patch = Image::from_fn(24, 24, |_, y| if y < 12 { 200.0 } else { 50.0 });
        // Same contrast pattern at half the amplitude and brighter base:
        // variance normalization must give a similar response.
        let dim = Image::from_fn(24, 24, |_, y| if y < 12 { 175.0 } else { 100.0 });
        let f = HaarFeature {
            kind: HaarKind::TwoVertical,
            x: 0,
            y: 0,
            w: 24,
            h: 24,
        };
        let v1 = f.eval_patch(&patch, 24);
        let v2 = f.eval_patch(&dim, 24);
        assert!((v1 - v2).abs() < 0.1 * v1.abs(), "{v1} vs {v2}");
    }

    #[test]
    fn flat_patch_gives_zero() {
        let patch = Image::filled(24, 24, 123.0);
        for kind in [
            HaarKind::TwoVertical,
            HaarKind::TwoHorizontal,
            HaarKind::ThreeHorizontal,
            HaarKind::ThreeVertical,
            HaarKind::Four,
        ] {
            let f = HaarFeature {
                kind,
                x: 2,
                y: 2,
                w: 12,
                h: 12,
            };
            assert_eq!(f.eval_patch(&patch, 24), 0.0);
        }
    }

    #[test]
    fn scaled_window_matches_unscaled_pattern() {
        // Evaluate the same geometric pattern at 24 and 48 pixels: the
        // normalized responses should be close.
        let p24 = Image::from_fn(24, 24, |x, _| if x < 12 { 200.0 } else { 50.0 });
        let p48 = Image::from_fn(48, 48, |x, _| if x < 24 { 200.0 } else { 50.0 });
        let f = HaarFeature {
            kind: HaarKind::TwoHorizontal,
            x: 4,
            y: 4,
            w: 16,
            h: 16,
        };
        let v24 = f.eval_patch(&p24, 24);
        let ii = IntegralImage::new(&p48);
        let ii2 = IntegralImage::squared(&p48);
        let win = NormalizedWindow::new(&ii, &ii2, 0, 0, 48, 24);
        let v48 = f.eval(&ii, &win);
        assert!(
            (v24 - v48).abs() < 0.15 * v24.abs().max(0.1),
            "{v24} vs {v48}"
        );
    }

    #[test]
    fn feature_pool_is_reasonable() {
        let feats = generate_features(24, 4);
        assert!(feats.len() > 300, "only {} features", feats.len());
        assert!(feats.len() < 20000, "{} features is excessive", feats.len());
        // All inside the window.
        for f in &feats {
            assert!(f.x + f.w <= 24 && f.y + f.h <= 24, "{f:?}");
        }
        // All five kinds present.
        for kind in [
            HaarKind::TwoVertical,
            HaarKind::TwoHorizontal,
            HaarKind::ThreeHorizontal,
            HaarKind::ThreeVertical,
            HaarKind::Four,
        ] {
            assert!(feats.iter().any(|f| f.kind == kind), "{kind:?} missing");
        }
    }

    #[test]
    fn four_kind_fires_on_checkerboard() {
        let patch = Image::from_fn(24, 24, |x, y| {
            let qx = x < 12;
            let qy = y < 12;
            if qx == qy {
                200.0
            } else {
                50.0
            }
        });
        let f = HaarFeature {
            kind: HaarKind::Four,
            x: 0,
            y: 0,
            w: 24,
            h: 24,
        };
        let v = f.eval_patch(&patch, 24);
        assert!(v > 0.5, "checkerboard response {v}");
    }
}
