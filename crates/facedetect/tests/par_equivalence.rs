//! Serial vs parallel equivalence for the sliding-window cascade scan.
//!
//! `DetectorConfig::exec` promises **bit-identical** detections under any
//! [`ExecPolicy`]: scan rows are distributed over workers and their
//! detections rejoined in serial scan order, so the stabilization
//! (merge) stage sees the same raw window sequence. Verified for 1, 2
//! and 4 threads at the paper's three input sizes.

use proptest::prelude::*;
use sdvbs_exec::ExecPolicy;
use sdvbs_facedetect::{detect_faces, Cascade, CascadeConfig, DetectorConfig};
use sdvbs_profile::Profiler;
use sdvbs_synth::face_scene;
use std::sync::OnceLock;

/// The paper's three input sizes: SQCIF, QCIF, CIF.
const SIZES: [(usize, usize); 3] = [(128, 96), (176, 144), (352, 288)];

/// Training dominates the test cost; share one cascade across all cases.
fn cascade() -> &'static Cascade {
    static CASCADE: OnceLock<Cascade> = OnceLock::new();
    CASCADE.get_or_init(|| {
        let mut prof = Profiler::new();
        Cascade::train(&CascadeConfig::default(), &mut prof).expect("training succeeds")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    #[test]
    fn detections_are_policy_invariant(seed in 0u64..10_000, size in 0usize..3) {
        let (w, h) = SIZES[size];
        let scene = face_scene(w, h, seed, 2);
        let base = DetectorConfig::default();
        let mut prof = Profiler::new();
        let serial = detect_faces(&scene.image, cascade(), &base, &mut prof);
        for n in [1usize, 2, 4] {
            let cfg = DetectorConfig { exec: ExecPolicy::Threads(n), ..base };
            let mut prof = Profiler::new();
            let par = detect_faces(&scene.image, cascade(), &cfg, &mut prof);
            prop_assert_eq!(&par, &serial, "threads = {}", n);
            // The scan kernel is still attributed after absorption.
            prop_assert!(
                prof.report().occupancy("ExtractFaces").is_some(),
                "ExtractFaces attribution lost at {} threads",
                n
            );
        }
    }
}

#[test]
fn auto_policy_matches_serial_too() {
    let scene = face_scene(128, 96, 3, 1);
    let mut prof = Profiler::new();
    let serial = detect_faces(
        &scene.image,
        cascade(),
        &DetectorConfig::default(),
        &mut prof,
    );
    let cfg = DetectorConfig {
        exec: ExecPolicy::Auto,
        ..DetectorConfig::default()
    };
    let par = detect_faces(&scene.image, cascade(), &cfg, &mut prof);
    assert_eq!(par, serial);
}
