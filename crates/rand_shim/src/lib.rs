//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the small slice of the `rand 0.8` API it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`]) plus the [`Rng::gen`] /
//! [`Rng::gen_range`] methods. The generator is SplitMix64 (Steele et al.,
//! "Fast splittable pseudorandom number generators"), not ChaCha12 as in
//! upstream `rand`, so streams differ from upstream for the same seed —
//! every consumer in this workspace treats the stream as an arbitrary
//! deterministic function of the seed, which both implementations satisfy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly over their whole domain
/// (the `Standard` distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types with a uniform-range sampler. The single blanket
/// [`SampleRange`] impl below hangs off this trait so that type inference
/// unifies unsuffixed literals with the context type, exactly as upstream
/// `rand` does (`0.2..0.8` must infer as `f32` when the result is used
/// as one).
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `lo..hi` (`inclusive` widens to `lo..=hi`).
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128 + i128::from(inclusive)) as u128;
                assert!(span > 0, "cannot sample empty range");
                let off = (u128::from(rng.next_u64()) * span) >> 64;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(if inclusive { lo <= hi } else { lo < hi }, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_range(*self.start(), *self.end(), true, rng)
    }
}

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    /// Draws one value from the whole domain of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws one value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `0.0..=1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in 0..=1");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64: full-period, passes BigCrush; one add + two xorshifts.
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let av: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = r.gen_range(-2.5..4.5);
            assert!((-2.5..4.5).contains(&f));
            let i: u8 = r.gen_range(0..=255);
            let _ = i;
        }
    }

    #[test]
    fn unit_floats_are_uniformish() {
        let mut r = StdRng::seed_from_u64(9);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(0);
        let _: usize = r.gen_range(5..5);
    }
}
