//! Regression pin: the runner's retry accounting and the coordinator's
//! orphan-requeue accounting are the *same* semantics.
//!
//! Both sides count `attempts` as executions begun, allow `budget + 1`
//! of them, and quarantine at exactly that count. The runner expresses
//! it as `max_retries`; the coordinator as `RetryPolicy::budget` and
//! `orphan_disposition`. This test runs the real runner (on a virtual
//! clock, so the retry backoff costs no wall time) against
//! `sdvbs_serve::protocol` for every small budget and pins that the two
//! agree execution for execution.

use sdvbs_core::{ExecPolicy, InputSize};
use sdvbs_exec::ClockHandle;
use sdvbs_runner::{run_jobs_report, FaultPlan, Job, RunStatus, RunnerConfig};
use sdvbs_serve::{orphan_disposition, OrphanDisposition, RetryPolicy};

fn tiny() -> InputSize {
    InputSize::Custom {
        width: 32,
        height: 24,
    }
}

#[test]
fn runner_and_coordinator_agree_on_attempt_accounting() {
    for budget in 0u32..4 {
        let policy = RetryPolicy { budget };

        // Coordinator side: budget + 1 executions permitted, exhaustion
        // exactly at that boundary.
        assert_eq!(policy.max_attempts(), budget + 1);
        assert!(!policy.exhausted(budget));
        assert!(policy.exhausted(budget + 1));

        // Runner side: a job that fails every attempt is quarantined
        // with `attempts` equal to the same budget + 1.
        let (clock, _virtual) = ClockHandle::simulated();
        let jobs = vec![Job::new("Disparity Map", tiny(), ExecPolicy::Serial, 1, 1)];
        let cfg = RunnerConfig {
            fault_plan: Some(FaultPlan::parse("panic:1.0", 9).expect("valid plan")),
            max_retries: budget,
            clock,
            ..RunnerConfig::default()
        };
        let report = run_jobs_report(&jobs, &cfg).expect("runner never aborts");
        let rec = &report.records[0];
        assert_eq!(rec.status, RunStatus::Panicked);
        assert!(rec.quarantined, "budget {budget}: record not quarantined");
        assert_eq!(
            rec.attempts,
            policy.max_attempts(),
            "budget {budget}: runner counted {} executions where the \
             coordinator's policy permits {}",
            rec.attempts,
            policy.max_attempts()
        );
        // The execution-for-execution agreement: after every failed
        // execution the runner actually performed except the last, the
        // coordinator would have requeued; after the last, quarantined.
        for failed in 1..rec.attempts {
            assert_eq!(
                orphan_disposition(failed, policy, false),
                OrphanDisposition::Requeue,
                "budget {budget}: disposition diverged at {failed} failed executions"
            );
        }
        assert_eq!(
            orphan_disposition(rec.attempts, policy, false),
            OrphanDisposition::Quarantine,
            "budget {budget}: coordinator would not quarantine where the runner did"
        );
    }
}

#[test]
fn clean_runs_cost_exactly_one_attempt_on_both_sides() {
    let (clock, _virtual) = ClockHandle::simulated();
    let jobs = vec![Job::new("Disparity Map", tiny(), ExecPolicy::Serial, 1, 1)];
    let cfg = RunnerConfig {
        max_retries: 2,
        clock,
        ..RunnerConfig::default()
    };
    let report = run_jobs_report(&jobs, &cfg).expect("clean run");
    let rec = &report.records[0];
    assert_eq!(rec.status, RunStatus::Completed);
    assert_eq!(rec.attempts, 1);
    assert!(!rec.quarantined);
    assert!(!RetryPolicy { budget: 2 }.exhausted(0));
}

#[test]
fn quarantine_wins_over_drain_rejection() {
    // An exhausted orphan during a drain is reported as what it is — a
    // quarantine — not masked as a drain rejection; an unexhausted one
    // is rejected because no new execution may start.
    let policy = RetryPolicy { budget: 1 };
    assert_eq!(
        orphan_disposition(2, policy, true),
        OrphanDisposition::Quarantine
    );
    assert_eq!(
        orphan_disposition(1, policy, true),
        OrphanDisposition::RejectDraining
    );
}
