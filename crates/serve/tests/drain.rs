//! Graceful-drain integration test over real connections (satellite of
//! the serving layer): in-flight work completes, queued-but-unstarted
//! work is rejected with `503`, submissions during the drain are refused,
//! the listener closes, and no server thread outlives [`Server::wait`].
//!
//! This file intentionally holds a single test so the thread-count
//! assertion sees only this test's threads.

use sdvbs_core::{ExecPolicy, InputSize};
use sdvbs_runner::Job;
use sdvbs_serve::{spec_body, Client, EngineConfig, Server, ServerConfig};
use sdvbs_trace::jsonl::Value;
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn spec(seed: u64) -> String {
    spec_body(
        &Job::new(
            "Disparity Map",
            InputSize::Custom {
                width: 32,
                height: 24,
            },
            ExecPolicy::Serial,
            seed,
            1,
        ),
        seed,
    )
}

fn state_of(body: &str) -> String {
    Value::parse(body)
        .ok()
        .and_then(|v| v.get("state").and_then(Value::as_str).map(String::from))
        .unwrap_or_else(|| format!("<unparsable: {body}>"))
}

fn thread_count() -> Option<usize> {
    std::fs::read_to_string("/proc/self/status")
        .ok()?
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

#[test]
fn drain_completes_running_rejects_queued_and_leaks_nothing() {
    let threads_before = thread_count();

    // One worker with a 300 ms hold: the first job is observably running
    // while the second sits in the queue when the drain starts.
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        engine: EngineConfig {
            workers: 1,
            queue_capacity: 4,
            hold: Some(Duration::from_millis(300)),
            ..EngineConfig::default()
        },
    })
    .expect("bind loopback");
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");

    // S1: submitted and picked up by the worker.
    let resp = client
        .request("POST", "/v1/jobs", Some(&spec(1)))
        .expect("submit S1");
    assert_eq!(resp.status, 202, "{}", resp.body_text());
    let running_id = Value::parse(&resp.body_text())
        .ok()
        .and_then(|v| v.get("id").and_then(Value::as_u64))
        .expect("job id");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let resp = client
            .request("GET", &format!("/v1/jobs/{running_id}"), None)
            .expect("poll S1");
        if state_of(&resp.body_text()) == "running" {
            break;
        }
        assert!(Instant::now() < deadline, "S1 never started running");
        std::thread::sleep(Duration::from_millis(5));
    }

    // S2: queued behind it.
    let resp = client
        .request("POST", "/v1/jobs", Some(&spec(2)))
        .expect("submit S2");
    assert_eq!(resp.status, 202, "{}", resp.body_text());
    let queued_id = Value::parse(&resp.body_text())
        .ok()
        .and_then(|v| v.get("id").and_then(Value::as_u64))
        .expect("job id");

    // Drain, from a second connection — in-flight connections stay usable.
    let mut second = Client::connect(&addr).expect("connect second");
    let resp = second
        .request("POST", "/v1/shutdown", None)
        .expect("shutdown");
    assert_eq!(resp.status, 200);
    let resp = second.request("GET", "/healthz", None).expect("healthz");
    assert!(
        resp.body_text().contains("draining"),
        "{}",
        resp.body_text()
    );

    // S3: a submission during the drain is refused with 503.
    let resp = client
        .request("POST", "/v1/jobs", Some(&spec(3)))
        .expect("submit S3");
    assert_eq!(resp.status, 503, "{}", resp.body_text());

    // The running job completes; the queued one is rejected with 503.
    let resp = client
        .request("GET", &format!("/v1/jobs/{running_id}?wait_ms=30000"), None)
        .expect("poll S1 terminal");
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    assert_eq!(state_of(&resp.body_text()), "done");
    let resp = client
        .request("GET", &format!("/v1/jobs/{queued_id}?wait_ms=30000"), None)
        .expect("poll S2 terminal");
    assert_eq!(resp.status, 503, "{}", resp.body_text());
    assert_eq!(state_of(&resp.body_text()), "rejected");

    drop(client);
    drop(second);
    let report = server.wait();
    assert!(report.completed >= 1, "report: {report:?}");
    assert!(report.rejected >= 1, "report: {report:?}");

    // The listener is closed: new connections are refused.
    let refused = Instant::now() + Duration::from_secs(2);
    loop {
        if TcpStream::connect(&addr).is_err() {
            break;
        }
        assert!(
            Instant::now() < refused,
            "listener still accepting after drain"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // Every server thread was joined: the process thread count returns
    // to its pre-server level (Linux-only observation).
    if let Some(before) = threads_before {
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            let now = thread_count().unwrap_or(before);
            if now <= before {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "thread leak after drain: {before} -> {now}"
            );
            std::thread::sleep(Duration::from_millis(50));
        }
    }
}
