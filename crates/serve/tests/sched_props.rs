//! Property tests for the scheduling tier, driven by a hand-rolled
//! seeded LCG (no external property-testing dependency):
//!
//! 1. Batched dispatch is a pure throughput optimization — records are
//!    bit-identical on every deterministic field to unbatched dispatch.
//! 2. Deficit round robin never delays a newly arrived interactive job
//!    beyond the documented [`starvation_bound`], no matter how the
//!    batch-class arrivals and dequeues interleave.

use sdvbs_core::{ExecPolicy, InputSize};
use sdvbs_runner::Job;
use sdvbs_serve::engine::{Engine, EngineConfig, Submission};
use sdvbs_serve::sched::Drr;
use sdvbs_serve::{starvation_bound, JobClass, SchedConfig};
use std::time::Duration;

/// Splitmix-style step: deterministic, well-mixed, dependency-free.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The deterministic record fields: everything except timings and host.
fn fingerprint(r: &sdvbs_runner::RunRecord) -> String {
    format!(
        "{}|{}|{}|{}|{}|{:?}|{:?}|{}",
        r.benchmark, r.size, r.policy, r.seed, r.iterations, r.status, r.quality, r.detail
    )
}

#[test]
fn batched_dispatch_is_bit_identical_to_unbatched() {
    // A mixed workload across three benchmark x size groups and both
    // classes, generated once and replayed against two engines that
    // differ only in the batch window.
    let mut rng = 0x5eed_cafe_u64;
    let pool: [(&str, InputSize); 3] = [
        (
            "Disparity Map",
            InputSize::Custom {
                width: 32,
                height: 24,
            },
        ),
        (
            "Disparity Map",
            InputSize::Custom {
                width: 64,
                height: 48,
            },
        ),
        ("Feature Tracking", InputSize::Sqcif),
    ];
    let mut workload = Vec::new();
    for _ in 0..9 {
        let (bench, size) = pool[(next(&mut rng) % 3) as usize];
        let seed = 7000 + next(&mut rng) % 1000;
        let class = if next(&mut rng).is_multiple_of(2) {
            JobClass::Interactive
        } else {
            JobClass::Batch
        };
        workload.push((Job::new(bench, size, ExecPolicy::Serial, seed, 1), class));
    }

    let run = |max_batch: usize| -> Vec<String> {
        let engine = Engine::start(EngineConfig {
            workers: 1,
            queue_capacity: workload.len() * 2,
            sched: SchedConfig {
                max_batch,
                ..SchedConfig::default()
            },
            ..EngineConfig::default()
        });
        let mut ids = Vec::new();
        for (spec, class) in &workload {
            match engine.submit(spec.clone(), true, *class) {
                Submission::Queued(id) => ids.push(id),
                other => panic!("expected Queued, got {other:?}"),
            }
        }
        let mut prints = Vec::new();
        for id in ids {
            let snap = engine
                .wait_terminal(id, Duration::from_secs(120))
                .expect("job exists");
            let record = snap
                .record
                .unwrap_or_else(|| panic!("job {id} did not complete: {}", snap.detail));
            prints.push(fingerprint(&record));
        }
        engine.drain();
        prints
    };

    let unbatched = run(1);
    let batched = run(8);
    // Dispatch order may differ between the two schedules; the record
    // each submission resolves to may not.
    assert_eq!(unbatched, batched);
}

#[test]
fn drr_never_delays_an_interactive_probe_beyond_the_documented_bound() {
    // Adversarial interleavings of batch-class arrivals, probe arrivals,
    // and dequeues, across randomized scheduler configs. The probe is
    // always lone in its class, so the documented bound is
    // `starvation_bound(cfg, 0)` batch-class dispatches after it arrives.
    for seed in 0..24u64 {
        let mut rng = 0xd00d_0000 ^ (seed.wrapping_mul(0x1234_5678_9abc));
        let cfg = SchedConfig {
            max_batch: 1 + (next(&mut rng) % 8) as usize,
            quantum_interactive: 1 + (next(&mut rng) % 20) as u32,
            quantum_batch: 1 + (next(&mut rng) % 4) as u32,
        };
        let bound = starvation_bound(&cfg, 0);
        let mut drr = Drr::new(cfg.clone());
        let mut next_id = 0u64;
        // (probe id, batch-class jobs dispatched since it arrived)
        let mut probe: Option<(u64, usize)> = None;

        let check = |popped: Option<sdvbs_serve::sched::Batch>,
                     probe: &mut Option<(u64, usize)>| {
            let Some(batch) = popped else { return };
            match batch.class {
                JobClass::Batch => {
                    if let Some((_, count)) = probe.as_mut() {
                        *count += batch.ids.len();
                    }
                }
                JobClass::Interactive => {
                    let (id, count) = probe.take().expect("only the probe is interactive");
                    assert_eq!(batch.ids, vec![id]);
                    assert!(
                        count <= bound,
                        "seed {seed}: probe waited behind {count} batch jobs, \
                         documented bound is {bound} ({cfg:?})"
                    );
                }
            }
        };

        for _ in 0..400 {
            match next(&mut rng) % 100 {
                0..=44 => {
                    let group = format!("g{}", next(&mut rng) % 4);
                    drr.push_back(next_id, &group, JobClass::Batch);
                    next_id += 1;
                }
                45..=59 => {
                    if probe.is_none() {
                        drr.push_back(next_id, "probe", JobClass::Interactive);
                        probe = Some((next_id, 0));
                        next_id += 1;
                    }
                }
                _ => check(drr.pop_batch(), &mut probe),
            }
        }
        // Drain the tail so an outstanding probe still gets verified.
        loop {
            let popped = drr.pop_batch();
            if popped.is_none() {
                break;
            }
            check(popped, &mut probe);
        }
        assert!(probe.is_none(), "seed {seed}: probe never dispatched");
    }
}
