//! End-to-end tests of the serving daemon over real loopback
//! connections: result caching, request coalescing, admission control,
//! `fresh=1` re-execution, and the error surface of the job API.

use sdvbs_core::{ExecPolicy, InputSize};
use sdvbs_runner::Job;
use sdvbs_serve::{spec_body, Client, EngineConfig, Server, ServerConfig};
use sdvbs_trace::jsonl::Value;
use std::time::{Duration, Instant};

fn spec(seed: u64) -> String {
    spec_body(
        &Job::new(
            "Disparity Map",
            InputSize::Custom {
                width: 32,
                height: 24,
            },
            ExecPolicy::Serial,
            seed,
            1,
        ),
        seed,
    )
}

fn start(engine: EngineConfig) -> (Server, Client) {
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        engine,
    })
    .expect("bind loopback");
    let client = Client::connect(&server.addr().to_string()).expect("connect");
    (server, client)
}

fn json(body: &str) -> Value {
    Value::parse(body).unwrap_or_else(|e| panic!("unparsable body {body:?}: {e}"))
}

fn submit(client: &mut Client, body: &str, query: &str) -> (u16, Value) {
    let resp = client
        .request("POST", &format!("/v1/jobs{query}"), Some(body))
        .expect("POST /v1/jobs");
    (resp.status, json(&resp.body_text()))
}

fn poll_done(client: &mut Client, id: u64) -> Value {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let resp = client
            .request("GET", &format!("/v1/jobs/{id}?wait_ms=500"), None)
            .expect("poll");
        let v = json(&resp.body_text());
        match v.get("state").and_then(Value::as_str) {
            Some("done") => return v,
            Some("queued" | "running") => {}
            other => panic!("job {id} reached {other:?} instead of done"),
        }
        assert!(Instant::now() < deadline, "job {id} never finished");
    }
}

/// Scrapes one counter off `/metrics`.
fn counter(client: &mut Client, name: &str) -> u64 {
    let resp = client.request("GET", "/metrics", None).expect("metrics");
    resp.body_text()
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .and_then(|v| v.parse::<f64>().ok())
        .map_or(0, |v| v as u64)
}

#[test]
fn identical_specs_hit_the_cache_and_fresh_bypasses_it() {
    let (server, mut client) = start(EngineConfig::default());
    let (status, v) = submit(&mut client, &spec(1), "");
    assert_eq!(status, 202);
    assert_eq!(v.get("cached"), Some(&Value::Bool(false)));
    let id = v.get("id").and_then(Value::as_u64).expect("id");
    let done = poll_done(&mut client, id);
    let record = done.get("record").expect("record rides along");
    assert_eq!(
        record.get("benchmark").and_then(Value::as_str),
        Some("Disparity Map")
    );

    // The identical spec is a cache hit: answered 200 with the record,
    // and the engine does not execute anything new.
    let (status, v) = submit(&mut client, &spec(1), "");
    assert_eq!(status, 200);
    assert_eq!(v.get("cached"), Some(&Value::Bool(true)));
    assert_eq!(
        v.get("record")
            .and_then(|r| r.get("seed"))
            .and_then(Value::as_u64),
        Some(1)
    );
    assert_eq!(counter(&mut client, "sdvbs_serve_jobs_executed"), 1);
    assert_eq!(counter(&mut client, "sdvbs_serve_cache_hits"), 1);

    // fresh=1 forces a re-execution of the same spec.
    let (status, v) = submit(&mut client, &spec(1), "?fresh=1");
    assert_eq!(status, 202);
    let fresh_id = v.get("id").and_then(Value::as_u64).expect("id");
    assert_ne!(fresh_id, id);
    poll_done(&mut client, fresh_id);
    assert_eq!(counter(&mut client, "sdvbs_serve_jobs_executed"), 2);

    server.shutdown();
}

#[test]
fn concurrent_identical_specs_coalesce_to_one_execution() {
    let (server, mut client) = start(EngineConfig {
        hold: Some(Duration::from_millis(300)),
        ..EngineConfig::default()
    });
    let (status, v) = submit(&mut client, &spec(5), "");
    assert_eq!(status, 202);
    assert_eq!(v.get("coalesced"), Some(&Value::Bool(false)));
    let id = v.get("id").and_then(Value::as_u64).expect("id");

    // While the first is in flight, the same spec attaches to it.
    let (status, v) = submit(&mut client, &spec(5), "");
    assert_eq!(status, 202);
    assert_eq!(v.get("coalesced"), Some(&Value::Bool(true)));
    assert_eq!(v.get("id").and_then(Value::as_u64), Some(id));

    poll_done(&mut client, id);
    assert_eq!(counter(&mut client, "sdvbs_serve_jobs_executed"), 1);
    assert_eq!(counter(&mut client, "sdvbs_serve_coalesced"), 1);
    server.shutdown();
}

#[test]
fn full_queue_answers_429_with_retry_after() {
    let (server, mut client) = start(EngineConfig {
        workers: 1,
        queue_capacity: 1,
        hold: Some(Duration::from_millis(300)),
        ..EngineConfig::default()
    });
    let (status, v) = submit(&mut client, &spec(10), "");
    assert_eq!(status, 202);
    let first = v.get("id").and_then(Value::as_u64).expect("id");
    // Wait for the worker to take it, freeing the queue slot.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let resp = client
            .request("GET", &format!("/v1/jobs/{first}"), None)
            .expect("poll");
        if json(&resp.body_text()).get("state").and_then(Value::as_str) != Some("queued") {
            break;
        }
        assert!(Instant::now() < deadline, "first job never started");
        std::thread::sleep(Duration::from_millis(5));
    }
    let (status, _) = submit(&mut client, &spec(11), "");
    assert_eq!(status, 202);
    let resp = client
        .request("POST", "/v1/jobs", Some(&spec(12)))
        .expect("overflow");
    assert_eq!(resp.status, 429, "{}", resp.body_text());
    assert_eq!(resp.header("retry-after"), Some("1"));
    server.shutdown();
}

#[test]
fn the_error_surface_is_precise() {
    let (server, mut client) = start(EngineConfig::default());

    // Unknown benchmark and malformed JSON: 400 with a JSON error.
    let resp = client
        .request("POST", "/v1/jobs", Some("{\"benchmark\":\"Nope\"}"))
        .expect("bad spec");
    assert_eq!(resp.status, 400);
    assert!(json(&resp.body_text()).get("error").is_some());
    let resp = client
        .request("POST", "/v1/jobs", Some("this is not json"))
        .expect("bad json");
    assert_eq!(resp.status, 400);

    // Unknown job id: 404. Non-numeric id: 400.
    let resp = client
        .request("GET", "/v1/jobs/9999", None)
        .expect("unknown id");
    assert_eq!(resp.status, 404);
    let resp = client.request("GET", "/v1/jobs/abc", None).expect("bad id");
    assert_eq!(resp.status, 400);

    // Unknown endpoint: 404. Wrong method on a known one: 405.
    let resp = client
        .request("GET", "/v1/nope", None)
        .expect("unknown endpoint");
    assert_eq!(resp.status, 404);
    let resp = client
        .request("DELETE", "/metrics", None)
        .expect("bad method");
    assert_eq!(resp.status, 405);

    // Health reports ok while up.
    let resp = client.request("GET", "/healthz", None).expect("healthz");
    assert_eq!(resp.status, 200);
    assert!(resp.body_text().contains("ok"));
    server.shutdown();
}
