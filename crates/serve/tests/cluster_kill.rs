//! Cluster fault-tolerance over real sockets and real worker processes:
//! a coordinator loses a worker to SIGKILL mid-sweep and must finish
//! every job elsewhere (or quarantine it honestly), then name the dead
//! worker in its drain report.

use sdvbs_core::{ExecPolicy, InputSize};
use sdvbs_runner::Job;
use sdvbs_serve::{Backend, ClusterConfig, ClusterEngine, JobClass, Submission};
use std::io::{BufRead, BufReader};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::{Duration, Instant};

/// A worker subprocess; the stdout handle stays open so the worker's
/// post-drain prints never hit a closed pipe.
struct Worker {
    child: Child,
    addr: String,
    _stdout: BufReader<ChildStdout>,
}

impl Worker {
    fn spawn() -> Worker {
        let mut child = Command::new(env!("CARGO_BIN_EXE_sdvbs-serve"))
            .args(["worker", "--addr", "127.0.0.1:0", "--workers", "1"])
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn a worker process");
        let mut stdout = BufReader::new(child.stdout.take().expect("worker stdout"));
        let mut banner = String::new();
        stdout.read_line(&mut banner).expect("worker banner");
        let addr = banner
            .split("listening on ")
            .nth(1)
            .unwrap_or_else(|| panic!("unexpected worker banner: {banner:?}"))
            .trim()
            .to_string();
        Worker {
            child,
            addr,
            _stdout: stdout,
        }
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn job(seed: u64) -> Job {
    Job::new(
        "Disparity Map",
        InputSize::Custom {
            width: 64,
            height: 48,
        },
        ExecPolicy::Serial,
        seed,
        1,
    )
}

#[test]
fn killed_worker_loses_no_jobs_silently() {
    let mut workers = [Worker::spawn(), Worker::spawn()];
    let cluster = ClusterEngine::start(ClusterConfig {
        workers: workers.iter().map(|w| w.addr.clone()).collect(),
        queue_capacity: 32,
        heartbeat: Duration::from_millis(100),
        liveness: Duration::from_millis(1500),
        ..ClusterConfig::default()
    })
    .expect("cluster startup");

    // A sweep wide enough that both shards hold work when the axe falls.
    let mut ids = Vec::new();
    for seed in 0..12u64 {
        match cluster.submit(job(9000 + seed), false, JobClass::Interactive) {
            Submission::Queued(id) => ids.push(id),
            other => panic!("submit: unexpected {other:?}"),
        }
    }
    std::thread::sleep(Duration::from_millis(100));

    // SIGKILL one worker mid-sweep. The coordinator must notice via the
    // broken link and requeue that worker's in-flight jobs.
    workers[1].child.kill().expect("kill -9 the victim worker");
    let _ = workers[1].child.wait();

    // Every job must reach a terminal state: completed on the survivor
    // or quarantined with an honest detail. None may hang.
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut done = 0usize;
    let mut quarantined = 0usize;
    for id in ids {
        let left = deadline.saturating_duration_since(Instant::now());
        let snap = cluster.wait_terminal(id, left).expect("job exists");
        match snap.state {
            "done" => done += 1,
            "rejected" => {
                assert!(
                    snap.detail.contains("w1") || snap.detail.contains("worker"),
                    "rejection without a worker-death detail: {:?}",
                    snap.detail
                );
                quarantined += 1;
            }
            other => panic!("job {id} stuck in {other:?} after the kill"),
        }
    }
    assert_eq!(done + quarantined, 12, "every job must be accounted for");
    assert!(
        done > 0,
        "the surviving worker should finish most of the sweep"
    );

    // The death is visible before the drain...
    assert_eq!(cluster.alive_workers(), vec!["w0".to_string()]);
    let health = cluster.health_extra().expect("cluster health");
    assert!(health.contains("\"workers_alive\":1"), "health: {health}");
    assert!(
        health.contains("\"dead_workers\":[\"w1\"]"),
        "health: {health}"
    );

    // ...and the drain report names the dead worker and accounts for
    // every admitted job.
    let report = cluster.drain();
    assert_eq!(report.dead_workers, vec!["w1".to_string()]);
    assert_eq!(
        report.completed + report.rejected + report.quarantined,
        12,
        "drain report dropped jobs: {report:?}"
    );
    assert_eq!(report.completed, done);
    assert_eq!(report.rejected + report.quarantined, quarantined);
}

#[test]
fn cluster_serves_and_drains_cleanly_without_faults() {
    let workers = [Worker::spawn(), Worker::spawn()];
    let cluster = ClusterEngine::start(ClusterConfig {
        workers: workers.iter().map(|w| w.addr.clone()).collect(),
        ..ClusterConfig::default()
    })
    .expect("cluster startup");

    let mut ids = Vec::new();
    for seed in 0..6u64 {
        match cluster.submit(job(7000 + seed), false, JobClass::Interactive) {
            Submission::Queued(id) => ids.push(id),
            other => panic!("submit: unexpected {other:?}"),
        }
    }
    for id in ids {
        let snap = cluster
            .wait_terminal(id, Duration::from_secs(120))
            .expect("job exists");
        assert_eq!(snap.state, "done", "job {id}: {}", snap.detail);
        let record = snap.record.expect("done without a record");
        assert_eq!(record.seed, 7000 + id);
    }

    // An identical resubmission is a coordinator-side cache hit — no
    // wire round trip.
    match cluster.submit(job(7000), false, JobClass::Interactive) {
        Submission::Cached(record) => assert_eq!(record.seed, 7000),
        other => panic!("expected a cache hit, got {other:?}"),
    }

    let report = cluster.drain();
    assert_eq!(report.completed, 6);
    assert_eq!(report.rejected, 0);
    assert_eq!(report.quarantined, 0);
    assert!(report.dead_workers.is_empty());
    for mut w in workers {
        // Drained workers exit on their own; reap rather than kill.
        let status = w.child.wait().expect("worker exit status");
        assert!(status.success(), "worker exited {status:?}");
    }
}
