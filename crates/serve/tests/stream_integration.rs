//! Streaming-tier integration tests over real loopback sockets
//! (satellites of the stream subsystem): the HTTP front must preserve
//! the pipelines' bit-exact results, and a drain that lands mid-stream
//! must leave every in-flight frame either completed or honestly
//! rejected — never lost.

use sdvbs_core::InputSize;
use sdvbs_serve::{stream_spec_body, Client, EngineConfig, Server, ServerConfig};
use sdvbs_stream::{
    fold_digest, run_one_shot, DegradePolicy, PipelineKind, StreamSpec, DIGEST_SEED,
};
use sdvbs_trace::jsonl::Value;
use std::time::{Duration, Instant};

fn get_u64(body: &str, field: &str) -> u64 {
    Value::parse(body)
        .ok()
        .and_then(|v| v.get(field).and_then(Value::as_u64))
        .unwrap_or_else(|| panic!("missing {field:?} in {body}"))
}

fn open_stream(client: &mut Client, spec: &StreamSpec) -> u64 {
    let resp = client
        .request("POST", "/v1/streams", Some(&stream_spec_body(spec)))
        .expect("open stream");
    assert_eq!(resp.status, 201, "{}", resp.body_text());
    get_u64(&resp.body_text(), "id")
}

/// Polls job `id` to a terminal state and returns it.
fn poll_terminal(client: &mut Client, id: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let resp = client
            .request("GET", &format!("/v1/jobs/{id}?wait_ms=500"), None)
            .expect("poll job");
        let body = resp.body_text();
        let state = Value::parse(&body)
            .ok()
            .and_then(|v| v.get("state").and_then(Value::as_str).map(String::from))
            .unwrap_or_else(|| panic!("unparsable poll body {body}"));
        if state == "done" || state == "rejected" {
            return state;
        }
        assert!(Instant::now() < deadline, "job {id} stuck in {state:?}");
    }
}

#[test]
fn unloaded_stream_over_http_matches_the_one_shot_run() {
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        engine: EngineConfig {
            workers: 2,
            queue_capacity: 16,
            ..EngineConfig::default()
        },
    })
    .expect("bind loopback");
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");

    let spec = StreamSpec {
        pipeline: PipelineKind::Disparity,
        size: InputSize::Sqcif,
        seed: 21,
        fps: 1.0, // a 1000 ms budget: never pressured while unloaded
        policy: DegradePolicy::Degrade,
    };
    let id = open_stream(&mut client, &spec);
    const FRAMES: u64 = 4;
    for _ in 0..FRAMES {
        let resp = client
            .request("POST", &format!("/v1/streams/{id}/frames"), None)
            .expect("submit frame");
        assert_eq!(resp.status, 202, "{}", resp.body_text());
        let body = resp.body_text();
        let ticket = Value::parse(&body).expect("ticket parses");
        assert_eq!(
            ticket.get("dropped"),
            Some(&Value::Bool(false)),
            "unloaded frame dropped: {body}"
        );
        assert_eq!(
            ticket.get("degraded"),
            Some(&Value::Bool(false)),
            "unloaded frame degraded: {body}"
        );
        let job = get_u64(&body, "job_id");
        assert_eq!(poll_terminal(&mut client, job), "done");
    }

    let resp = client
        .request("GET", &format!("/v1/streams/{id}"), None)
        .expect("status");
    let body = resp.body_text();
    assert_eq!(get_u64(&body, "completed"), FRAMES, "{body}");
    assert_eq!(get_u64(&body, "dropped") + get_u64(&body, "failed"), 0);
    let streamed = Value::parse(&body)
        .ok()
        .and_then(|v| {
            v.get("rolling_digest")
                .and_then(Value::as_str)
                .map(String::from)
        })
        .expect("rolling digest");
    let expected = run_one_shot(&spec, FRAMES)
        .expect("one-shot run")
        .iter()
        .fold(DIGEST_SEED, |acc, r| fold_digest(acc, r.digest));
    assert_eq!(
        streamed,
        format!("{expected:#018x}"),
        "HTTP-served stream diverged from the one-shot run"
    );

    let resp = client
        .request("POST", "/v1/shutdown", None)
        .expect("shutdown");
    assert_eq!(resp.status, 200);
    drop(client);
    server.wait();
}

#[test]
fn drain_during_an_active_stream_accounts_for_every_frame() {
    // One worker with a 200 ms hold: when the drain starts, the first
    // frame is running and the rest sit behind the per-stream gate.
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        engine: EngineConfig {
            workers: 1,
            queue_capacity: 16,
            hold: Some(Duration::from_millis(200)),
            ..EngineConfig::default()
        },
    })
    .expect("bind loopback");
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");

    let spec = StreamSpec {
        pipeline: PipelineKind::Tracking,
        size: InputSize::Sqcif,
        seed: 9,
        fps: 30.0,
        policy: DegradePolicy::Drop,
    };
    let id = open_stream(&mut client, &spec);

    // Back-to-back submissions all land before the first completion, so
    // nothing is pressured and every frame is accepted.
    const FRAMES: usize = 6;
    let mut jobs = Vec::new();
    for _ in 0..FRAMES {
        let resp = client
            .request("POST", &format!("/v1/streams/{id}/frames"), None)
            .expect("submit frame");
        assert_eq!(resp.status, 202, "{}", resp.body_text());
        let body = resp.body_text();
        assert_eq!(
            Value::parse(&body).expect("ticket").get("dropped"),
            Some(&Value::Bool(false)),
            "{body}"
        );
        jobs.push(get_u64(&body, "job_id"));
    }

    let resp = client
        .request("POST", "/v1/shutdown", None)
        .expect("shutdown");
    assert_eq!(resp.status, 200);

    // New frames are refused outright during the drain...
    let resp = client
        .request("POST", &format!("/v1/streams/{id}/frames"), None)
        .expect("post-drain submit");
    assert_eq!(resp.status, 503, "{}", resp.body_text());

    // ...while every already-accepted frame ends terminal: done or an
    // honest rejection, nothing hung, nothing lost.
    let mut done = 0u64;
    let mut rejected = 0u64;
    for job in jobs {
        match poll_terminal(&mut client, job).as_str() {
            "done" => done += 1,
            _ => rejected += 1,
        }
    }
    assert_eq!(done + rejected, FRAMES as u64);
    assert!(done >= 1, "the running frame must finish, not be rejected");

    // The stream's own accounting must agree with the per-job states.
    let deadline = Instant::now() + Duration::from_secs(10);
    let body = loop {
        let resp = client
            .request("GET", &format!("/v1/streams/{id}"), None)
            .expect("status");
        let body = resp.body_text();
        if get_u64(&body, "in_flight") == 0 {
            break body;
        }
        assert!(
            Instant::now() < deadline,
            "stream stats never settled: {body}"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(get_u64(&body, "submitted"), FRAMES as u64, "{body}");
    assert_eq!(get_u64(&body, "completed"), done, "{body}");
    assert_eq!(get_u64(&body, "rejected"), rejected, "{body}");
    assert_eq!(get_u64(&body, "dropped") + get_u64(&body, "failed"), 0);

    drop(client);
    server.wait();
}
