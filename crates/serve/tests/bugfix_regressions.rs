//! Regression tests for the serving layer's production bugs: unbounded
//! cache growth, digest-collision cache poisoning, unbounded job-table
//! growth, and lifetime-counting drain reports. Each test pins the fixed
//! behavior at the engine's public surface.

use sdvbs_core::{ExecPolicy, InputSize};
use sdvbs_runner::Job;
use sdvbs_serve::engine::{Engine, EngineConfig, Submission};
use sdvbs_serve::{fnv1a, DrainReport, JobClass, ResultCache};
use std::time::Duration;

fn spec(seed: u64) -> Job {
    Job::new(
        "Disparity Map",
        InputSize::Custom {
            width: 32,
            height: 24,
        },
        ExecPolicy::Serial,
        seed,
        1,
    )
}

fn queue(engine: &Engine, spec: Job) -> u64 {
    match engine.submit(spec, true, JobClass::Interactive) {
        Submission::Queued(id) => id,
        other => panic!("expected Queued, got {other:?}"),
    }
}

fn wait(engine: &Engine, id: u64) {
    let snap = engine
        .wait_terminal(id, Duration::from_secs(120))
        .expect("job exists");
    assert!(snap.is_terminal(), "job {id} stuck in {:?}", snap.state);
}

/// Bug 1: the result cache was an unbounded `HashMap` — every distinct
/// spec a long-lived daemon ever served stayed resident forever. It is
/// now capacity-bounded with LRU eviction, and filling past capacity
/// evicts instead of growing.
#[test]
fn result_cache_fill_past_capacity_evicts_instead_of_growing() {
    let engine = Engine::start(EngineConfig {
        workers: 1,
        queue_capacity: 32,
        cache_capacity: 4,
        ..EngineConfig::default()
    });
    // 10 distinct completed specs through a capacity-4 cache.
    for seed in 0..10u64 {
        let id = queue(&engine, spec(seed));
        wait(&engine, id);
    }
    assert_eq!(engine.counter("jobs_executed"), 10);
    assert_eq!(
        engine.cache_evictions(),
        6,
        "10 inserts into a capacity-4 cache must evict exactly 6"
    );
    assert_eq!(engine.counter("cache_evictions"), 6);
    engine.drain();
}

/// Bug 2: cache hits trusted the 64-bit FNV-1a digest alone, so a digest
/// collision served one spec's record for a different spec. The canonical
/// preimage is now stored beside each record and verified on every hit:
/// a collision is a miss, never a wrong answer.
#[test]
fn digest_collisions_are_detected_not_served() {
    use sdvbs_serve::cache::CacheLookup;
    // Two hand-constructed colliding keys: distinct canonical preimages
    // behind one digest value (the situation a real 2^32-work FNV-1a
    // collision produces), injected at the digest layer the cache trusts.
    let cache = ResultCache::with_capacity(8);
    let key_a = "Disparity Map|sqcif|serial|seed1|iters:1";
    let key_b = "SVM|cif|serial|seed2|iters:3";
    assert_ne!(key_a, key_b);
    let digest = fnv1a(b"whatever both specs hash to");
    // Store A's record under the shared digest, then look B up: the old
    // code returned A's record; the fix answers a collision-miss.
    assert!(cache.put(digest, key_a, &test_record()).stored);
    match cache.get(digest, key_b) {
        CacheLookup::Collision => {}
        other => panic!("colliding key must not hit: {other:?}"),
    }
    match cache.get(digest, key_a) {
        CacheLookup::Hit(r) => assert_eq!(r.seed, 1),
        other => panic!("own key must still hit: {other:?}"),
    }
}

/// A minimal completed run record — enough for the cache to store.
fn test_record() -> sdvbs_runner::RunRecord {
    sdvbs_runner::RunRecord {
        job_id: 0,
        benchmark: "Disparity Map".into(),
        size: "sqcif".into(),
        policy: "serial".into(),
        threads: 1,
        seed: 1,
        iterations: 1,
        status: sdvbs_runner::RunStatus::Completed,
        times_ms: vec![1.0],
        min_ms: 1.0,
        p50_ms: 1.0,
        mean_ms: 1.0,
        max_ms: 1.0,
        wall_ms: 2.0,
        quality: None,
        detail: String::new(),
        kernels: Vec::new(),
        non_kernel_percent: 0.0,
        occupancy_mode: "wall-clock".into(),
        host: sdvbs_runner::HostMeta {
            os: "t".into(),
            cpu: "t".into(),
            logical_cpus: 1,
        },
        attempts: 1,
        injected: Vec::new(),
        quarantined: false,
    }
}

/// Bug 3: `EngineState.jobs` was a `Vec` that retained every terminal
/// job forever — the job table grew monotonically for the life of the
/// daemon. Terminal entries now retire after a poll-grace TTL, ids stay
/// stable, and a few thousand jobs leave the table bounded.
#[test]
fn job_table_stays_bounded_over_thousands_of_jobs() {
    let engine = Engine::start(EngineConfig {
        workers: 2,
        queue_capacity: 64,
        retire_ttl: Duration::ZERO,
        ..EngineConfig::default()
    });
    // An unknown benchmark is rejected by the executor immediately, so
    // thousands of jobs cycle through the table in seconds.
    let total = 3000u64;
    let mut submitted = 0u64;
    let mut last_id = 0u64;
    while submitted < total {
        let job = Job::new(
            "No Such Benchmark",
            InputSize::Sqcif,
            ExecPolicy::Serial,
            submitted,
            1,
        );
        match engine.submit(job, true, JobClass::Batch) {
            Submission::Queued(id) => {
                last_id = id;
                submitted += 1;
            }
            Submission::QueueFull => std::thread::sleep(Duration::from_millis(1)),
            other => panic!("unexpected submission outcome: {other:?}"),
        }
        // The table may hold the queue, the running jobs, and the
        // terminal entries not yet swept by a submission — but never
        // anything close to the full submission history.
        let len = engine.jobs_table_len();
        assert!(
            len <= 256,
            "job table grew to {len} entries after {submitted} submissions"
        );
    }
    wait(&engine, last_id);
    assert!(engine.counter("jobs_retired") > 0);
    assert_eq!(engine.counter("jobs_invalid"), total);
    // Ids never restarted: the last id is the last submission's ordinal.
    assert_eq!(last_id, total - 1);
    engine.drain();
    assert!(engine.jobs_table_len() <= 256);
}

/// Bug 4: `DrainReport.completed` counted lifetime completions, so a
/// drain that resolved one running job after a thousand served requests
/// reported `completed: 1001`. The report now covers only the jobs that
/// were queued or running when the drain began.
#[test]
fn drain_report_counts_drain_work_not_lifetime_history() {
    let engine = Engine::start(EngineConfig {
        workers: 1,
        queue_capacity: 8,
        ..EngineConfig::default()
    });
    // Build up pre-drain history: three completions, fully terminal.
    for seed in 100..103u64 {
        let id = queue(&engine, spec(seed));
        wait(&engine, id);
    }
    assert_eq!(engine.counter("jobs_executed"), 3);
    let report = engine.drain();
    assert_eq!(
        report,
        DrainReport::default(),
        "nothing was open when the drain began, so the report must be empty"
    );
}
