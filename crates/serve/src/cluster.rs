//! The cluster coordinator: a [`Backend`] that shards jobs over TCP to
//! `sdvbs-serve worker` processes.
//!
//! The coordinator keeps the whole serving front local — the result
//! cache, request coalescing, and admission control are exactly the
//! single-process mechanisms, sitting above a dispatch layer instead of a
//! thread pool. An admitted job is **sharded** to its home worker
//! (`digest % workers`, so identical specs always land on the same
//! process and its engine-level state stays warm) and **stolen** to the
//! least-loaded live worker when the home shard is backed up or dead.
//!
//! Worker death is detected two ways: an I/O error or torn frame on the
//! link (immediate), or heartbeat staleness past the liveness window
//! (for a hung-but-connected process). A dead worker's in-flight jobs are
//! requeued onto survivors; a job that keeps landing on dying workers is
//! **quarantined** after its retry budget — the same terminal-but-honest
//! semantics the runner's fault layer uses — and the drain report names
//! every dead worker. Heartbeat staleness is ignored once a drain starts:
//! a worker blocked finishing its queue legitimately stops answering.
//!
//! Metrics and traces aggregate on demand: `/metrics` renders the
//! coordinator's own registry plus each worker's, both folded into the
//! cluster totals and re-exported under a `w<N>_` prefix; `/v1/trace`
//! fetches per-worker event streams and merges them with
//! [`merge_process_traces`] onto worker-labelled tracks, aligning each
//! worker's trace epoch by the clock offset estimated at handshake.

use crate::backend::Backend;
use crate::cache::{cache_preimage, spec_digest, CacheLookup, ResultCache, DEFAULT_CACHE_CAPACITY};
use crate::coalesce::InflightMap;
use crate::engine::{group_key, JobSnapshot, Submission};
use crate::protocol::{self, OrphanDisposition, RetryPolicy};
use crate::sched::{Drr, JobClass, SchedConfig};
use crate::shutdown::DrainReport;
use sdvbs_exec::ClockHandle;
use sdvbs_runner::{Job, RunRecord};
use sdvbs_trace::{
    merge_process_traces, now_us, MetricsRegistry, ProcessTrace, TraceEvent, TrackId,
};
use sdvbs_wire::{tcp_pair, FrameRx, FrameTx, Message, WireError, PROTO_VERSION};
use std::collections::{HashSet, VecDeque};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// Merged worker tracks start here — far above both the engine's
/// per-worker tracks (0..N) and the connection tracks allocated from
/// [`sdvbs_trace::DYNAMIC_TRACK_BASE`], so a merged cluster trace never
/// collides with the coordinator's own spans.
pub const CLUSTER_TRACK_BASE: TrackId = 1 << 20;

/// How long a metrics/trace/drain request waits for its worker's reply.
const RPC_TIMEOUT: Duration = Duration::from_secs(10);

/// Cluster sizing and liveness tuning.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Worker addresses (`host:port`), connected at startup. Order is
    /// identity: worker `i` is named `w<i>` in traces, metrics, and
    /// drain reports.
    pub workers: Vec<String>,
    /// Admission bound: outstanding (admitted, non-terminal) jobs beyond
    /// this are refused with [`Submission::QueueFull`].
    pub queue_capacity: usize,
    /// Most jobs dispatched-and-unfinished on one worker before the
    /// dispatcher steals to another shard.
    pub per_worker_inflight: usize,
    /// Heartbeat send interval.
    pub heartbeat: Duration,
    /// A worker whose last heartbeat reply is older than this is declared
    /// dead (ignored while draining — see the module docs).
    pub liveness: Duration,
    /// Retries a job gets beyond its first execution before it is
    /// quarantined (same accounting as the runner's `max_retries`; see
    /// [`crate::protocol::RetryPolicy`]). One worker death costs one
    /// attempt; a `Busy` bounce costs none.
    pub retry_budget: u32,
    /// Time source for heartbeat pacing and staleness measurement. The
    /// default system clock is production; tests substitute a virtual
    /// one.
    pub clock: ClockHandle,
    /// Coordinator-side result-cache bound (`--cache-capacity`).
    pub cache_capacity: usize,
    /// Scheduler knobs for the pending queue's deficit round robin.
    pub sched: SchedConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            workers: Vec::new(),
            queue_capacity: 32,
            per_worker_inflight: 8,
            heartbeat: Duration::from_millis(300),
            liveness: Duration::from_secs(3),
            retry_budget: 2,
            clock: ClockHandle::system(),
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            sched: SchedConfig::default(),
        }
    }
}

/// Where a cluster job is in its lifecycle.
enum CJobState {
    /// Admitted, waiting for the dispatcher.
    Pending,
    /// Dispatched to worker `i`, awaiting its result.
    Dispatched(usize),
    /// Finished with a record.
    Done(Box<RunRecord>),
    /// Refused without a result (drain, or a worker-side validation
    /// error).
    Rejected(String),
    /// Abandoned after exhausting the retry budget across worker deaths.
    Quarantined(String),
}

struct CJob {
    spec: Job,
    digest: u64,
    /// The canonical cache preimage, verified on every cache hit.
    key: String,
    /// The benchmark×size scheduling group.
    group: String,
    class: JobClass,
    state: CJobState,
    attempts: u32,
}

struct ClusterState {
    jobs: Vec<CJob>,
    inflight: InflightMap,
    /// Admitted-not-dispatched jobs, scheduled by deficit round robin
    /// across QoS classes with benchmark×size batching.
    pending: Drr,
    /// The batch the dispatcher is currently working through (popped from
    /// `pending`; drain rejects these too).
    current: VecDeque<u64>,
    outstanding: usize,
    draining: bool,
    dead: Vec<String>,
}

/// One connected worker process.
struct WorkerLink {
    index: usize,
    name: String,
    /// The sending half of the link; internally serialized, shared by
    /// the dispatcher, heartbeat, and rpc paths.
    tx: Box<dyn FrameTx>,
    alive: AtomicBool,
    /// [`ClockHandle::now`] of the last heartbeat reply.
    last_beat: Mutex<Duration>,
    /// `coordinator_now_us - worker_now_us`, refreshed on every heartbeat
    /// reply; aligns the worker's trace epoch onto ours.
    offset_us: AtomicI64,
    /// Jobs dispatched to this worker and not yet resolved.
    dispatched: Mutex<HashSet<u64>>,
    /// Serializes metrics/trace/drain request-reply exchanges.
    rpc: Mutex<()>,
    replies: Mutex<mpsc::Receiver<Message>>,
    reply_tx: mpsc::Sender<Message>,
}

impl WorkerLink {
    fn inflight_len(&self) -> usize {
        self.dispatched
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }
}

/// The coordinator backend. Construct with [`ClusterEngine::start`];
/// always behind an [`Arc`] because its service threads hold references.
pub struct ClusterEngine {
    state: Mutex<ClusterState>,
    changed: Condvar,
    cache: ResultCache,
    metrics: Mutex<MetricsRegistry>,
    links: Vec<Arc<WorkerLink>>,
    cfg: ClusterConfig,
    threads: Mutex<Vec<thread::JoinHandle<()>>>,
    /// Raised when the drain starts tearing links down, so link closure
    /// is no longer treated as a death.
    stopping: AtomicBool,
}

impl ClusterEngine {
    /// Connects to every worker, completes the version handshake, and
    /// spawns the dispatcher, per-link readers, and the heartbeat
    /// monitor.
    ///
    /// # Errors
    ///
    /// A connect failure, handshake I/O error, or protocol-version
    /// mismatch on any worker aborts startup — a cluster that begins life
    /// degraded is a misconfiguration, not a fault to tolerate.
    pub fn start(cfg: ClusterConfig) -> Result<Arc<ClusterEngine>, String> {
        if cfg.workers.is_empty() {
            return Err("cluster mode needs at least one worker address".into());
        }
        let mut links = Vec::new();
        let mut readers = Vec::new();
        for (index, addr) in cfg.workers.iter().enumerate() {
            let (link, rx) = connect_worker(index, addr, &cfg.clock)?;
            links.push(Arc::new(link));
            readers.push(rx);
        }
        let engine = Arc::new(ClusterEngine {
            state: Mutex::new(ClusterState {
                jobs: Vec::new(),
                inflight: InflightMap::new(),
                pending: Drr::new(cfg.sched.clone()),
                current: VecDeque::new(),
                outstanding: 0,
                draining: false,
                dead: Vec::new(),
            }),
            changed: Condvar::new(),
            cache: ResultCache::with_capacity(cfg.cache_capacity),
            metrics: Mutex::new(MetricsRegistry::new()),
            links,
            cfg,
            threads: Mutex::new(Vec::new()),
            stopping: AtomicBool::new(false),
        });
        let mut handles = Vec::new();
        for (link, mut rx) in engine.links.iter().zip(readers) {
            let engine2 = Arc::clone(&engine);
            let link2 = Arc::clone(link);
            handles.push(
                thread::Builder::new()
                    .name(format!("sdvbs-coord-read-{}", link.name))
                    .spawn(move || engine2.reader_loop(&link2, rx.as_mut()))
                    .expect("spawning a link reader"),
            );
        }
        {
            let engine2 = Arc::clone(&engine);
            handles.push(
                thread::Builder::new()
                    .name("sdvbs-coord-dispatch".to_string())
                    .spawn(move || engine2.dispatch_loop())
                    .expect("spawning the dispatcher"),
            );
        }
        {
            let engine2 = Arc::clone(&engine);
            handles.push(
                thread::Builder::new()
                    .name("sdvbs-coord-heartbeat".to_string())
                    .spawn(move || engine2.heartbeat_loop())
                    .expect("spawning the heartbeat monitor"),
            );
        }
        *engine
            .threads
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = handles;
        Ok(engine)
    }

    /// Worker names still answering, in index order.
    pub fn alive_workers(&self) -> Vec<String> {
        self.links
            .iter()
            .filter(|l| l.alive.load(Ordering::SeqCst))
            .map(|l| l.name.clone())
            .collect()
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, ClusterState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn incr(&self, name: &str) {
        self.metrics
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .incr(name, 1);
    }

    fn observe(&self, name: &str, value: f64) {
        self.metrics
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .observe(name, value);
    }

    /// Picks the target worker for a job via the shared protocol policy
    /// ([`protocol::pick_target`]): home shard when alive with headroom,
    /// else least-loaded live worker. `None` when no live worker has
    /// headroom.
    fn pick_worker(&self, digest: u64) -> Option<usize> {
        let alive: Vec<bool> = self
            .links
            .iter()
            .map(|l| l.alive.load(Ordering::SeqCst))
            .collect();
        let inflight: Vec<usize> = self.links.iter().map(|l| l.inflight_len()).collect();
        protocol::pick_target(digest, &alive, &inflight, self.cfg.per_worker_inflight)
    }

    fn dispatch_loop(&self) {
        loop {
            // Take the next pending job, or learn that we are done.
            let (id, spec, w) = {
                let mut st = self.lock_state();
                loop {
                    // Refill the dispatch window from the scheduler: one
                    // DRR batch at a time, dispatched id by id below.
                    if st.current.is_empty() {
                        if let Some(batch) = st.pending.pop_batch() {
                            self.observe("batch_size", batch.ids.len() as f64);
                            st.current.extend(batch.ids);
                        }
                    }
                    if let Some(&id) = st.current.front() {
                        if self.links.iter().all(|l| !l.alive.load(Ordering::SeqCst)) {
                            // Nothing left to run on: every admitted job
                            // fails loudly rather than waiting forever.
                            st.current.pop_front();
                            self.fail_job(
                                &mut st,
                                id,
                                CJobState::Quarantined("no live workers".into()),
                            );
                            self.incr("jobs_quarantined");
                            continue;
                        }
                        if let Some(w) = self.pick_worker(st.jobs[id as usize].digest) {
                            st.current.pop_front();
                            let job = &mut st.jobs[id as usize];
                            job.state = CJobState::Dispatched(w);
                            job.attempts += 1;
                            let home = (job.digest % self.links.len() as u64) as usize;
                            if w != home {
                                self.incr("jobs_stolen");
                            }
                            self.links[w]
                                .dispatched
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner)
                                .insert(id);
                            break (id, job.spec.clone(), w);
                        }
                        // All live workers are at their in-flight cap: a
                        // completion or death frees a slot and notifies.
                        let (guard, _) = self
                            .changed
                            .wait_timeout(st, Duration::from_millis(50))
                            .unwrap_or_else(PoisonError::into_inner);
                        st = guard;
                        continue;
                    }
                    if self.stopping.load(Ordering::SeqCst) {
                        return;
                    }
                    st = self
                        .changed
                        .wait(st)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            };
            let link = &self.links[w];
            if link.tx.send(&Message::Dispatch { id, spec }).is_err() {
                self.mark_dead(w, "dispatch write failed");
            }
        }
    }

    /// One link's read loop: results, heartbeat replies, and rpc replies.
    fn reader_loop(&self, link: &Arc<WorkerLink>, rx: &mut dyn FrameRx) {
        loop {
            match rx.recv() {
                Ok(Message::Done { id, record }) => self.job_done(link, id, *record),
                Ok(Message::Rejected { id, detail }) => self.job_rejected(link, id, &detail),
                Ok(Message::Busy { id }) => self.job_busy(link, id),
                Ok(Message::HeartbeatOk { now_us: theirs, .. }) => {
                    *link
                        .last_beat
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner) = self.cfg.clock.now();
                    link.offset_us
                        .store(now_us() as i64 - theirs as i64, Ordering::SeqCst);
                }
                Ok(
                    msg @ (Message::MetricsOk { .. }
                    | Message::TraceOk { .. }
                    | Message::DrainOk { .. }),
                ) => {
                    let _ = link.reply_tx.send(msg);
                }
                Ok(Message::Error { message }) => {
                    eprintln!("worker {}: {message}", link.name);
                }
                Ok(_) => {} // Not a worker-to-coordinator message; ignore.
                Err(WireError::Closed) if self.stopping.load(Ordering::SeqCst) => return,
                Err(e) => {
                    self.mark_dead(link.index, &e.to_string());
                    return;
                }
            }
        }
    }

    /// Declares worker `w` dead and requeues (or quarantines) everything
    /// it had in flight. Idempotent; a no-op during shutdown teardown.
    fn mark_dead(&self, w: usize, why: &str) {
        let link = &self.links[w];
        if !link.alive.swap(false, Ordering::SeqCst) {
            return;
        }
        if self.stopping.load(Ordering::SeqCst) {
            return;
        }
        eprintln!("worker {} declared dead: {why}", link.name);
        self.incr("workers_died");
        let orphans: Vec<u64> = link
            .dispatched
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain()
            .collect();
        let mut st = self.lock_state();
        st.dead.push(link.name.clone());
        let policy = RetryPolicy {
            budget: self.cfg.retry_budget,
        };
        for id in orphans {
            let Some(job) = st.jobs.get(id as usize) else {
                continue;
            };
            if !matches!(job.state, CJobState::Dispatched(d) if d == w) {
                continue;
            }
            // Every execution of this job so far has failed (the last one
            // just died with its worker), so `attempts` *is* the
            // failed-execution count the shared policy judges.
            let attempts = job.attempts;
            match protocol::orphan_disposition(attempts, policy, st.draining) {
                OrphanDisposition::Quarantine => {
                    let detail = format!(
                        "quarantined after {attempts} attempts; worker {} died mid-run",
                        link.name
                    );
                    self.fail_job(&mut st, id, CJobState::Quarantined(detail));
                    self.incr("jobs_quarantined");
                }
                OrphanDisposition::RejectDraining => {
                    // The drain contract only finishes work that is
                    // actually running; an orphan re-entering the queue
                    // mid-drain is rejected like any other queued job.
                    let detail = format!("worker {} died during drain", link.name);
                    self.fail_job(&mut st, id, CJobState::Rejected(detail));
                    self.incr("rejected_draining");
                }
                OrphanDisposition::Requeue => {
                    // An orphan must not lose its place to later arrivals:
                    // it goes to the front of the current dispatch window.
                    st.jobs[id as usize].state = CJobState::Pending;
                    st.current.push_front(id);
                    self.incr("jobs_requeued");
                }
            }
        }
        self.changed.notify_all();
    }

    /// Moves job `id` to a terminal failure state and releases its
    /// coalescing claim. Caller holds the state lock.
    fn fail_job(&self, st: &mut ClusterState, id: u64, terminal: CJobState) {
        let job = &mut st.jobs[id as usize];
        job.state = terminal;
        let digest = job.digest;
        st.inflight.release(digest, id);
        st.outstanding = st.outstanding.saturating_sub(1);
        self.changed.notify_all();
    }

    fn job_done(&self, link: &Arc<WorkerLink>, id: u64, record: RunRecord) {
        link.dispatched
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&id);
        let mut st = self.lock_state();
        let Some(job) = st.jobs.get_mut(id as usize) else {
            return;
        };
        if !matches!(job.state, CJobState::Dispatched(_)) {
            return;
        }
        let outcome = self.cache.put(job.digest, &job.key, &record);
        if outcome.evicted {
            self.incr("cache_evictions");
        }
        if outcome.collided {
            self.incr("cache_key_collisions");
        }
        self.observe("job_exec_ms", record.wall_ms);
        job.state = CJobState::Done(Box::new(record));
        let digest = job.digest;
        st.inflight.release(digest, id);
        st.outstanding = st.outstanding.saturating_sub(1);
        drop(st);
        self.incr("jobs_executed");
        self.changed.notify_all();
    }

    fn job_rejected(&self, link: &Arc<WorkerLink>, id: u64, detail: &str) {
        link.dispatched
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&id);
        let mut st = self.lock_state();
        if !matches!(
            st.jobs.get(id as usize).map(|j| &j.state),
            Some(CJobState::Dispatched(_))
        ) {
            return;
        }
        self.fail_job(&mut st, id, CJobState::Rejected(detail.to_string()));
        drop(st);
        self.incr("jobs_invalid");
    }

    /// The worker's queue was full: put the job back for the dispatcher,
    /// which will steal it to a less loaded shard. The bounced dispatch
    /// never executed, so it gives back the attempt it charged — `Busy`
    /// must not consume retry budget (attempts counts executions begun,
    /// the unified accounting in [`crate::protocol`]).
    fn job_busy(&self, link: &Arc<WorkerLink>, id: u64) {
        link.dispatched
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&id);
        let mut st = self.lock_state();
        if !matches!(
            st.jobs.get(id as usize).map(|j| &j.state),
            Some(CJobState::Dispatched(_))
        ) {
            return;
        }
        let job = &mut st.jobs[id as usize];
        job.state = CJobState::Pending;
        job.attempts = job.attempts.saturating_sub(1);
        let (group, class) = (job.group.clone(), job.class);
        st.pending.push_back(id, &group, class);
        drop(st);
        self.incr("busy_redispatched");
        self.changed.notify_all();
    }

    fn heartbeat_loop(&self) {
        let mut seq = 0u64;
        while !self.stopping.load(Ordering::SeqCst) {
            seq += 1;
            let draining = self.lock_state().draining;
            for (w, link) in self.links.iter().enumerate() {
                if !link.alive.load(Ordering::SeqCst) {
                    continue;
                }
                if link.tx.send(&Message::Heartbeat { seq }).is_err() {
                    self.mark_dead(w, "heartbeat write failed");
                    continue;
                }
                // Staleness is judged by the shared protocol policy: a
                // draining worker is allowed to go quiet (its read loop
                // is blocked finishing the queue); I/O errors still kill.
                let age = {
                    let beat = *link
                        .last_beat
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner);
                    self.cfg.clock.since(beat)
                };
                if protocol::is_stale(age, self.cfg.liveness, draining) {
                    self.mark_dead(w, "missed heartbeats");
                }
            }
            self.cfg.clock.sleep(self.cfg.heartbeat);
        }
    }

    /// One request-reply exchange with a worker. Replies are matched by
    /// message kind; stale replies from a timed-out earlier exchange are
    /// discarded first.
    fn rpc(&self, link: &Arc<WorkerLink>, req: Message, want: &str) -> Option<Message> {
        let _serial = link.rpc.lock().unwrap_or_else(PoisonError::into_inner);
        let replies = link.replies.lock().unwrap_or_else(PoisonError::into_inner);
        while replies.try_recv().is_ok() {}
        if link.tx.send(&req).is_err() {
            return None;
        }
        let deadline = Instant::now() + RPC_TIMEOUT;
        loop {
            let left = deadline.checked_duration_since(Instant::now())?;
            match replies.recv_timeout(left) {
                Ok(msg) if msg.kind() == want => return Some(msg),
                Ok(_) => {} // A stale reply of another kind; keep waiting.
                Err(_) => return None,
            }
        }
    }
}

impl Backend for ClusterEngine {
    fn submit(&self, spec: Job, fresh: bool, class: JobClass) -> Submission {
        let digest = spec_digest(&spec);
        let key = cache_preimage(&spec);
        let mut st = self.lock_state();
        if st.draining {
            self.incr("rejected_draining");
            return Submission::Draining;
        }
        if !fresh {
            match self.cache.get(digest, &key) {
                CacheLookup::Hit(record) => {
                    self.incr("cache_hits");
                    return Submission::Cached(record);
                }
                CacheLookup::Collision => {
                    self.incr("cache_key_collisions");
                }
                CacheLookup::Miss => {}
            }
            if let Some(id) = st.inflight.get(digest) {
                self.incr("coalesced");
                return Submission::Coalesced(id);
            }
        }
        if st.outstanding >= self.cfg.queue_capacity.max(1) {
            self.incr("rejected_queue_full");
            return Submission::QueueFull;
        }
        let id = st.jobs.len() as u64;
        let group = group_key(&spec);
        st.jobs.push(CJob {
            spec,
            digest,
            key,
            group: group.clone(),
            class,
            state: CJobState::Pending,
            attempts: 0,
        });
        st.inflight.claim(digest, id);
        st.pending.push_back(id, &group, class);
        st.outstanding += 1;
        drop(st);
        self.incr("jobs_submitted");
        self.incr(&format!("submitted_{}", class.label()));
        self.changed.notify_all();
        Submission::Queued(id)
    }

    fn get(&self, id: u64) -> Option<JobSnapshot> {
        let st = self.lock_state();
        st.jobs.get(id as usize).map(|job| snapshot(id, job))
    }

    fn wait_terminal(&self, id: u64, wait: Duration) -> Option<JobSnapshot> {
        let deadline = Instant::now() + wait;
        let mut st = self.lock_state();
        loop {
            let snap = st.jobs.get(id as usize).map(|job| snapshot(id, job))?;
            if snap.is_terminal() {
                return Some(snap);
            }
            let now = Instant::now();
            if now >= deadline {
                return Some(snap);
            }
            let (guard, _) = self
                .changed
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        }
    }

    fn begin_drain(&self) {
        let mut st = self.lock_state();
        st.draining = true;
        // Reject everything admitted but not yet dispatched — the cluster
        // analog of the engine popping and rejecting its queue. The
        // current dispatch window counts as undispatched too.
        let mut pending: Vec<u64> = st.current.drain(..).collect();
        pending.extend(st.pending.drain_all());
        for id in pending {
            self.fail_job(
                &mut st,
                id,
                CJobState::Rejected("server shutting down before execution".into()),
            );
            self.incr("rejected_draining");
        }
        self.changed.notify_all();
    }

    fn drain(&self) -> DrainReport {
        self.begin_drain();
        // Wait for every dispatched job to resolve (a worker death mid-
        // drain resolves its orphans via `mark_dead`).
        let mut st = self.lock_state();
        while st
            .jobs
            .iter()
            .any(|j| matches!(j.state, CJobState::Pending | CJobState::Dispatched(_)))
        {
            st = self
                .changed
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        let report = DrainReport {
            completed: st
                .jobs
                .iter()
                .filter(|j| matches!(j.state, CJobState::Done(_)))
                .count(),
            rejected: st
                .jobs
                .iter()
                .filter(|j| matches!(j.state, CJobState::Rejected(_)))
                .count(),
            quarantined: st
                .jobs
                .iter()
                .filter(|j| matches!(j.state, CJobState::Quarantined(_)))
                .count(),
            dead_workers: st.dead.clone(),
        };
        drop(st);
        // Tear the cluster down: tell each surviving worker to drain and
        // exit. From here on link closure is shutdown, not death.
        self.stopping.store(true, Ordering::SeqCst);
        for link in &self.links {
            if !link.alive.load(Ordering::SeqCst) {
                continue;
            }
            let _ = self.rpc(link, Message::Drain, "drain_ok");
            link.alive.store(false, Ordering::SeqCst);
        }
        self.changed.notify_all();
        let handles: Vec<_> = self
            .threads
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
        report
    }

    fn is_draining(&self) -> bool {
        self.lock_state().draining
    }

    fn metrics_text(&self) -> String {
        let mut agg = MetricsRegistry::new();
        agg.merge(&self.metrics.lock().unwrap_or_else(PoisonError::into_inner));
        for link in &self.links {
            if !link.alive.load(Ordering::SeqCst) {
                continue;
            }
            let Some(Message::MetricsOk { registry }) =
                self.rpc(link, Message::MetricsReq, "metrics_ok")
            else {
                continue;
            };
            // Fold into the cluster totals, and re-export per worker.
            agg.merge(&registry);
            for (name, v) in registry.counters() {
                agg.incr(&format!("{}_{name}", link.name), v);
            }
            for (name, h) in registry.histograms() {
                let labelled = format!("{}_{name}", link.name);
                for &s in h.samples() {
                    agg.observe(&labelled, s);
                }
            }
        }
        agg.to_prometheus("sdvbs_serve")
    }

    fn merge_metrics(&self, other: &MetricsRegistry) {
        self.metrics
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .merge(other);
    }

    fn counter(&self, name: &str) -> u64 {
        self.metrics
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .counter(name)
    }

    fn trace_events(&self) -> Vec<TraceEvent> {
        let mut parts = Vec::new();
        for link in &self.links {
            if !link.alive.load(Ordering::SeqCst) {
                continue;
            }
            let Some(Message::TraceOk {
                events,
                now_us: theirs,
            }) = self.rpc(link, Message::TraceReq, "trace_ok")
            else {
                continue;
            };
            // Refresh the epoch-skew estimate with this reply, then use
            // it to land the worker's events on our timeline.
            link.offset_us
                .store(now_us() as i64 - theirs as i64, Ordering::SeqCst);
            parts.push(ProcessTrace {
                name: link.name.clone(),
                offset_us: link.offset_us.load(Ordering::SeqCst),
                events,
            });
        }
        merge_process_traces(CLUSTER_TRACK_BASE, &parts)
            .events()
            .to_vec()
    }

    fn health_extra(&self) -> Option<String> {
        let alive = self.alive_workers();
        let dead = self.lock_state().dead.clone();
        let names = |list: &[String]| {
            list.iter()
                .map(|n| format!("\"{n}\""))
                .collect::<Vec<_>>()
                .join(",")
        };
        Some(format!(
            "\"workers_alive\":{},\"workers_total\":{},\"workers\":[{}],\"dead_workers\":[{}]",
            alive.len(),
            self.links.len(),
            names(&alive),
            names(&dead),
        ))
    }
}

fn snapshot(id: u64, job: &CJob) -> JobSnapshot {
    match &job.state {
        CJobState::Pending => JobSnapshot {
            id,
            state: "queued",
            record: None,
            detail: String::new(),
        },
        CJobState::Dispatched(_) => JobSnapshot {
            id,
            state: "running",
            record: None,
            detail: String::new(),
        },
        CJobState::Done(record) => JobSnapshot {
            id,
            state: "done",
            record: Some(record.as_ref().clone()),
            detail: String::new(),
        },
        CJobState::Rejected(why) | CJobState::Quarantined(why) => JobSnapshot {
            id,
            state: "rejected",
            record: None,
            detail: why.clone(),
        },
    }
}

/// Connects and handshakes one worker link, returning its send half
/// (inside the [`WorkerLink`]) and receive half (for the reader thread).
fn connect_worker(
    index: usize,
    addr: &str,
    clock: &ClockHandle,
) -> Result<(WorkerLink, Box<dyn FrameRx>), String> {
    let stream = TcpStream::connect(addr)
        .map_err(|e| format!("connecting worker {index} at {addr}: {e}"))?;
    stream
        .set_nodelay(true)
        .map_err(|e| format!("worker {index}: {e}"))?;
    let (tx, mut rx) = tcp_pair(stream).map_err(|e| format!("worker {index}: {e}"))?;
    tx.send(&Message::Hello {
        version: PROTO_VERSION,
        role: "coordinator".to_string(),
        name: "coordinator".to_string(),
    })
    .map_err(|e| format!("worker {index} handshake: {e}"))?;
    let offset = match rx.recv() {
        Ok(Message::HelloOk {
            version,
            now_us: theirs,
            ..
        }) => {
            if version != PROTO_VERSION {
                return Err(WireError::BadVersion {
                    ours: PROTO_VERSION,
                    theirs: version,
                }
                .to_string());
            }
            now_us() as i64 - theirs as i64
        }
        Ok(other) => {
            return Err(format!(
                "worker {index} handshake: expected hello_ok, got {}",
                other.kind()
            ))
        }
        Err(e) => return Err(format!("worker {index} handshake: {e}")),
    };
    let (reply_tx, replies) = mpsc::channel();
    let link = WorkerLink {
        index,
        name: format!("w{index}"),
        tx: Box::new(tx),
        alive: AtomicBool::new(true),
        last_beat: Mutex::new(clock.now()),
        offset_us: AtomicI64::new(offset),
        dispatched: Mutex::new(HashSet::new()),
        rpc: Mutex::new(()),
        replies: Mutex::new(replies),
        reply_tx,
    };
    Ok((link, Box::new(rx)))
}
