//! The serving engine: a job table over the runner's bounded queue with
//! long-lived worker threads.
//!
//! Submission is admission-controlled: the job queue is the runner's
//! [`BoundedQueue`], and a submission that finds it full is refused
//! immediately (the router turns that into `429 Too Many Requests`) —
//! the server never buffers unbounded work. Before a spec reaches the
//! queue it passes the result cache (serve a completed record without
//! re-executing) and the in-flight map (attach to an identical queued or
//! running job instead of duplicating it).
//!
//! Draining ([`Engine::drain`]) closes the queue: the job currently on a
//! worker runs to completion, everything still queued is popped and
//! rejected (`503` when polled), and the workers exit once the queue is
//! drained. One state mutex covers the job table and the in-flight map,
//! so cache/coalesce/admission decisions are atomic with respect to
//! worker completions.

use crate::cache::{spec_digest, ResultCache};
use crate::coalesce::InflightMap;
use crate::shutdown::DrainReport;
use sdvbs_core::ExecPolicy;
use sdvbs_runner::{execute_job, BoundedQueue, HostMeta, Job, RunRecord, TryPushError};
use sdvbs_trace::{now_us, MetricsRegistry, Phase, TraceEvent};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// Engine sizing and test instrumentation.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads executing jobs (clamped to at least 1).
    pub workers: usize,
    /// Queue capacity — the admission-control bound. Submissions that
    /// find the queue full are refused with [`Submission::QueueFull`].
    pub queue_capacity: usize,
    /// Per-job watchdog deadline (see [`sdvbs_runner::supervise`]).
    pub timeout: Option<Duration>,
    /// Deterministic test instrument: each worker sleeps this long after
    /// picking a job up, *before* executing it. Tests use the hold window
    /// to observe a job in the `running` state, fill the queue behind it,
    /// and drive admission-control and drain paths without racing the
    /// benchmark's actual runtime. `None` (the default) in production.
    pub hold: Option<Duration>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 1,
            queue_capacity: 16,
            timeout: None,
            hold: None,
        }
    }
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone)]
enum JobState {
    /// Accepted and waiting in the queue.
    Queued,
    /// A worker is executing it.
    Running,
    /// Execution finished; the record is the result (which may itself
    /// report a failed status — that is still a terminal, pollable state).
    /// Boxed to keep the variant near the size of its siblings.
    Done(Box<RunRecord>),
    /// The engine refused to run it (drain started before a worker picked
    /// it up, or the spec failed validation inside the engine).
    Rejected(String),
}

struct JobEntry {
    spec: Job,
    digest: u64,
    state: JobState,
}

struct EngineState {
    jobs: Vec<JobEntry>,
    inflight: InflightMap,
    draining: bool,
}

/// How the engine answered a submission.
#[derive(Debug, Clone)]
pub enum Submission {
    /// Served from the result cache without executing anything. Boxed to
    /// keep the variant near the size of its siblings.
    Cached(Box<RunRecord>),
    /// Accepted as a new job with this id.
    Queued(u64),
    /// Attached to an identical in-flight job with this id.
    Coalesced(u64),
    /// The queue is at capacity; retry later (`429`).
    QueueFull,
    /// The engine is draining; no new work is accepted (`503`).
    Draining,
}

/// A point-in-time copy of one job's externally visible state.
#[derive(Debug, Clone)]
pub struct JobSnapshot {
    /// The job id.
    pub id: u64,
    /// `"queued"`, `"running"`, `"done"`, or `"rejected"`.
    pub state: &'static str,
    /// The run record, once done.
    pub record: Option<RunRecord>,
    /// The rejection reason, when rejected.
    pub detail: String,
}

impl JobSnapshot {
    /// Whether the job has reached a terminal state.
    pub fn is_terminal(&self) -> bool {
        matches!(self.state, "done" | "rejected")
    }
}

/// The benchmark-serving engine. Construct with [`Engine::start`]; always
/// wrapped in an [`Arc`] because the worker threads hold a reference.
pub struct Engine {
    state: Mutex<EngineState>,
    changed: Condvar,
    queue: BoundedQueue<u64>,
    cache: ResultCache,
    metrics: Mutex<MetricsRegistry>,
    trace: Mutex<Vec<TraceEvent>>,
    workers: Mutex<Vec<thread::JoinHandle<()>>>,
    cfg: EngineConfig,
    auto_threads: usize,
    host: HostMeta,
}

impl Engine {
    /// Builds the engine and spawns its worker threads.
    pub fn start(cfg: EngineConfig) -> Arc<Engine> {
        let queue =
            BoundedQueue::new(cfg.queue_capacity.max(1)).expect("capacity clamped to at least 1");
        let engine = Arc::new(Engine {
            state: Mutex::new(EngineState {
                jobs: Vec::new(),
                inflight: InflightMap::new(),
                draining: false,
            }),
            changed: Condvar::new(),
            queue,
            cache: ResultCache::new(),
            metrics: Mutex::new(MetricsRegistry::new()),
            trace: Mutex::new(Vec::new()),
            workers: Mutex::new(Vec::new()),
            auto_threads: ExecPolicy::Auto.worker_count(),
            host: HostMeta::collect(),
            cfg,
        });
        let mut handles = Vec::new();
        for w in 0..engine.cfg.workers.max(1) {
            let engine = Arc::clone(&engine);
            handles.push(
                thread::Builder::new()
                    .name(format!("sdvbs-serve-worker-{w}"))
                    .spawn(move || engine.worker_loop(w))
                    .expect("spawning an engine worker"),
            );
        }
        *engine
            .workers
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = handles;
        engine
    }

    /// Submits a spec. `fresh` bypasses both the cache lookup and
    /// coalescing — the client explicitly wants a re-execution.
    pub fn submit(&self, spec: Job, fresh: bool) -> Submission {
        let digest = spec_digest(&spec);
        let mut st = self.lock_state();
        if st.draining {
            self.incr("rejected_draining");
            return Submission::Draining;
        }
        if !fresh {
            if let Some(record) = self.cache.get(digest) {
                self.incr("cache_hits");
                return Submission::Cached(Box::new(record));
            }
            if let Some(id) = st.inflight.get(digest) {
                self.incr("coalesced");
                return Submission::Coalesced(id);
            }
        }
        let id = st.jobs.len() as u64;
        st.jobs.push(JobEntry {
            spec,
            digest,
            state: JobState::Queued,
        });
        st.inflight.claim(digest, id);
        // try_push under the state lock keeps the entry/queue transition
        // atomic; workers take the queue lock only with the state lock
        // released, so the ordering is acyclic.
        match self.queue.try_push(id) {
            Ok(()) => {
                self.incr("jobs_submitted");
                Submission::Queued(id)
            }
            Err(refusal) => {
                st.jobs.pop();
                st.inflight.release(digest, id);
                match refusal {
                    TryPushError::Full(_) => {
                        self.incr("rejected_queue_full");
                        Submission::QueueFull
                    }
                    TryPushError::Closed(_) => {
                        self.incr("rejected_draining");
                        Submission::Draining
                    }
                }
            }
        }
    }

    /// A snapshot of job `id`, or `None` for an unknown id.
    pub fn get(&self, id: u64) -> Option<JobSnapshot> {
        let st = self.lock_state();
        st.jobs.get(id as usize).map(|entry| snapshot(id, entry))
    }

    /// Long-poll: blocks until job `id` reaches a terminal state or
    /// `wait` elapses, then returns its (possibly still non-terminal)
    /// snapshot. `None` for an unknown id.
    pub fn wait_terminal(&self, id: u64, wait: Duration) -> Option<JobSnapshot> {
        let deadline = Instant::now() + wait;
        let mut st = self.lock_state();
        loop {
            let snap = st.jobs.get(id as usize).map(|entry| snapshot(id, entry))?;
            if snap.is_terminal() {
                return Some(snap);
            }
            let now = Instant::now();
            if now >= deadline {
                return Some(snap);
            }
            let (guard, _) = self
                .changed
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        }
    }

    /// Starts and completes a graceful drain: refuses new submissions,
    /// lets running jobs finish, rejects everything still queued, then
    /// joins the worker threads. Blocks until every job is terminal.
    /// Idempotent — a second call just waits for the first drain's state.
    pub fn drain(&self) -> DrainReport {
        self.begin_drain();
        let mut st = self.lock_state();
        while st
            .jobs
            .iter()
            .any(|j| matches!(j.state, JobState::Queued | JobState::Running))
        {
            st = self
                .changed
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        let report = DrainReport {
            completed: st
                .jobs
                .iter()
                .filter(|j| matches!(j.state, JobState::Done(_)))
                .count(),
            rejected: st
                .jobs
                .iter()
                .filter(|j| matches!(j.state, JobState::Rejected(_)))
                .count(),
            ..DrainReport::default()
        };
        drop(st);
        let handles: Vec<_> = self
            .workers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
        report
    }

    /// Starts the drain without waiting for it: refuses new submissions
    /// and closes the queue. The shutdown endpoint calls this inline
    /// before responding, so a submission that arrives after the shutdown
    /// response is deterministically answered `503`, never `429`.
    pub fn begin_drain(&self) {
        self.lock_state().draining = true;
        self.queue.close();
    }

    /// Whether a drain has started.
    pub fn is_draining(&self) -> bool {
        self.lock_state().draining
    }

    /// Renders the engine's process-lifetime metrics in the Prometheus
    /// text format under the `sdvbs_serve` prefix.
    pub fn metrics_text(&self) -> String {
        self.metrics
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .to_prometheus("sdvbs_serve")
    }

    /// Folds an external registry (e.g. a connection thread's request
    /// stats) into the engine's lifetime registry.
    pub fn merge_metrics(&self, other: &MetricsRegistry) {
        self.metrics
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .merge(other);
    }

    /// Current value of a lifetime counter (for tests and the smoke gate).
    pub fn counter(&self, name: &str) -> u64 {
        self.metrics
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .counter(name)
    }

    /// Execution-side trace events: one track per engine worker carrying
    /// a span per executed job.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.trace
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// A standalone copy of the lifetime registry, for shipping over the
    /// wire to a coordinator.
    pub fn metrics_snapshot(&self) -> MetricsRegistry {
        let mut out = MetricsRegistry::new();
        out.merge(&self.metrics.lock().unwrap_or_else(PoisonError::into_inner));
        out
    }

    fn push_trace(&self, event: TraceEvent) {
        self.trace
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(event);
    }

    fn worker_loop(&self, worker: usize) {
        // Engine workers record on low track ids (one per worker);
        // connection tracks come from `alloc_track()` which starts at
        // `DYNAMIC_TRACK_BASE`, so the two ranges never collide.
        let track = worker as u32;
        self.push_trace(TraceEvent::new(
            format!("exec {worker}"),
            "meta",
            Phase::Meta,
            0,
            track,
        ));
        while let Some(id) = self.queue.pop() {
            let spec = {
                let mut st = self.lock_state();
                if st.draining {
                    // Queued at drain time: reject without executing.
                    let entry = &mut st.jobs[id as usize];
                    entry.state =
                        JobState::Rejected("server shutting down before execution".into());
                    let digest = entry.digest;
                    st.inflight.release(digest, id);
                    self.incr("rejected_draining");
                    self.changed.notify_all();
                    continue;
                }
                let entry = &mut st.jobs[id as usize];
                entry.state = JobState::Running;
                self.changed.notify_all();
                entry.spec.clone()
            };
            if let Some(hold) = self.cfg.hold {
                thread::sleep(hold);
            }
            self.push_trace(TraceEvent::new(
                spec.benchmark.clone(),
                "job",
                Phase::Begin,
                now_us(),
                track,
            ));
            let started = Instant::now();
            let result = execute_job(&spec, id, self.auto_threads, &self.host, self.cfg.timeout);
            let exec_ms = started.elapsed().as_secs_f64() * 1e3;
            self.push_trace(TraceEvent::new(
                spec.benchmark.clone(),
                "job",
                Phase::End,
                now_us(),
                track,
            ));
            let mut st = self.lock_state();
            let entry = &mut st.jobs[id as usize];
            match result {
                Ok(record) => {
                    self.cache.put(entry.digest, &record);
                    entry.state = JobState::Done(Box::new(record));
                    self.incr("jobs_executed");
                    self.observe("job_exec_ms", exec_ms);
                }
                Err(e) => {
                    entry.state = JobState::Rejected(e.to_string());
                    self.incr("jobs_invalid");
                }
            }
            let digest = entry.digest;
            st.inflight.release(digest, id);
            self.changed.notify_all();
        }
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, EngineState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn incr(&self, name: &str) {
        self.metrics
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .incr(name, 1);
    }

    fn observe(&self, name: &str, value: f64) {
        self.metrics
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .observe(name, value);
    }
}

fn snapshot(id: u64, entry: &JobEntry) -> JobSnapshot {
    match &entry.state {
        JobState::Queued => JobSnapshot {
            id,
            state: "queued",
            record: None,
            detail: String::new(),
        },
        JobState::Running => JobSnapshot {
            id,
            state: "running",
            record: None,
            detail: String::new(),
        },
        JobState::Done(record) => JobSnapshot {
            id,
            state: "done",
            record: Some(record.as_ref().clone()),
            detail: String::new(),
        },
        JobState::Rejected(why) => JobSnapshot {
            id,
            state: "rejected",
            record: None,
            detail: why.clone(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdvbs_core::InputSize;

    fn spec(seed: u64) -> Job {
        Job::new(
            "Disparity Map",
            InputSize::Custom {
                width: 32,
                height: 24,
            },
            ExecPolicy::Serial,
            seed,
            1,
        )
    }

    fn wait_done(engine: &Engine, id: u64) -> JobSnapshot {
        let snap = engine
            .wait_terminal(id, Duration::from_secs(60))
            .expect("job exists");
        assert!(snap.is_terminal(), "job {id} still {:?}", snap.state);
        snap
    }

    #[test]
    fn execute_then_serve_identical_spec_from_cache() {
        let engine = Engine::start(EngineConfig::default());
        let id = match engine.submit(spec(1), false) {
            Submission::Queued(id) => id,
            other => panic!("expected Queued, got {other:?}"),
        };
        let first = wait_done(&engine, id);
        assert_eq!(first.state, "done");
        // Second submission: served from cache, no new job id allocated.
        match engine.submit(spec(1), false) {
            Submission::Cached(rec) => assert_eq!(rec.seed, 1),
            other => panic!("expected Cached, got {other:?}"),
        }
        assert_eq!(engine.counter("jobs_executed"), 1);
        assert_eq!(engine.counter("cache_hits"), 1);
        // fresh=1 bypasses the cache and re-executes.
        let id2 = match engine.submit(spec(1), true) {
            Submission::Queued(id) => id,
            other => panic!("expected Queued, got {other:?}"),
        };
        wait_done(&engine, id2);
        assert_eq!(engine.counter("jobs_executed"), 2);
        engine.drain();
    }

    #[test]
    fn identical_inflight_specs_coalesce() {
        // Hold each job 200 ms so the first is reliably in flight when
        // the duplicate arrives.
        let engine = Engine::start(EngineConfig {
            hold: Some(Duration::from_millis(200)),
            ..EngineConfig::default()
        });
        let id = match engine.submit(spec(2), false) {
            Submission::Queued(id) => id,
            other => panic!("expected Queued, got {other:?}"),
        };
        match engine.submit(spec(2), false) {
            Submission::Coalesced(other) => assert_eq!(other, id),
            other => panic!("expected Coalesced, got {other:?}"),
        }
        let snap = wait_done(&engine, id);
        assert_eq!(snap.state, "done");
        assert_eq!(engine.counter("jobs_executed"), 1);
        assert_eq!(engine.counter("coalesced"), 1);
        engine.drain();
    }

    #[test]
    fn full_queue_refuses_admission() {
        let engine = Engine::start(EngineConfig {
            workers: 1,
            queue_capacity: 1,
            hold: Some(Duration::from_millis(300)),
            ..EngineConfig::default()
        });
        let first = match engine.submit(spec(10), false) {
            Submission::Queued(id) => id,
            other => panic!("expected Queued, got {other:?}"),
        };
        // Wait until the worker picks it up (frees the queue slot).
        while engine.get(first).unwrap().state == "queued" {
            thread::sleep(Duration::from_millis(2));
        }
        // Fill the single slot, then overflow it.
        assert!(matches!(
            engine.submit(spec(11), false),
            Submission::Queued(_)
        ));
        assert!(matches!(
            engine.submit(spec(12), false),
            Submission::QueueFull
        ));
        assert_eq!(engine.counter("rejected_queue_full"), 1);
        engine.drain();
    }

    #[test]
    fn drain_finishes_running_work_and_rejects_queued_work() {
        let engine = Engine::start(EngineConfig {
            workers: 1,
            queue_capacity: 4,
            hold: Some(Duration::from_millis(300)),
            ..EngineConfig::default()
        });
        let running = match engine.submit(spec(20), false) {
            Submission::Queued(id) => id,
            other => panic!("expected Queued, got {other:?}"),
        };
        while engine.get(running).unwrap().state == "queued" {
            thread::sleep(Duration::from_millis(2));
        }
        let queued = match engine.submit(spec(21), false) {
            Submission::Queued(id) => id,
            other => panic!("expected Queued, got {other:?}"),
        };
        let report = engine.drain();
        assert_eq!(engine.get(running).unwrap().state, "done");
        assert_eq!(engine.get(queued).unwrap().state, "rejected");
        assert_eq!(
            report,
            DrainReport {
                completed: 1,
                rejected: 1,
                ..DrainReport::default()
            }
        );
        // Post-drain submissions are refused.
        assert!(matches!(
            engine.submit(spec(22), false),
            Submission::Draining
        ));
    }
}
