//! The serving engine: a job table over the scheduling tier with
//! long-lived worker threads.
//!
//! Submission is admission-controlled: the job queue is the scheduler's
//! [`SchedQueue`], and a submission that finds it full is refused
//! immediately (the router turns that into `429 Too Many Requests`) —
//! the server never buffers unbounded work. Before a spec reaches the
//! queue it passes the result cache (serve a completed record without
//! re-executing) and the in-flight map (attach to an identical queued or
//! running job instead of duplicating it).
//!
//! Workers dequeue [`Batch`]es, not single jobs: the scheduler groups
//! pending jobs by benchmark×size (deficit-round-robin across QoS
//! classes), and a worker executes a batch back to back with warm-start
//! amortization — the first job pays benchmark warmup, the followers skip
//! it. `ExecPolicy::Auto` jobs are resolved through the per-group scaling
//! model ([`sched::pick_threads`]) instead of a static core count.
//!
//! Terminal jobs are **retired** from the job table after
//! [`EngineConfig::retire_ttl`] (a poll-grace window): ids stay stable —
//! the table is a map, never reindexed — but a long-lived daemon's memory
//! no longer grows with every job it has ever run. Polling a retired id
//! answers `404`, same as an id that never existed.
//!
//! Draining ([`Engine::drain`]) closes the queue: jobs currently on
//! workers run to completion, everything still queued is dequeued and
//! rejected (`503` when polled), and the workers exit once the queue is
//! empty. The [`DrainReport`] counts **only the work that was open
//! (queued or running) when the drain began** — not lifetime totals. One
//! state mutex covers the job table and the in-flight map, so
//! cache/coalesce/admission decisions are atomic with respect to worker
//! completions.

use crate::cache::{cache_preimage, spec_digest, CacheLookup, ResultCache, DEFAULT_CACHE_CAPACITY};
use crate::coalesce::InflightMap;
use crate::sched::{self, Batch, JobClass, SchedConfig, SchedPushError, SchedQueue};
use crate::shutdown::DrainReport;
use crate::stream::{
    self, FrameDecision, FrameTask, FrameTicket, StreamEntry, StreamRefused, StreamStatus,
    StreamTable, MAX_STREAMS,
};
use sdvbs_core::ExecPolicy;
use sdvbs_exec::ClockHandle;
use sdvbs_runner::{execute_job_warm, size_label, HostMeta, Job, RunRecord, RunStatus};
use sdvbs_stream::{fold_digest, StreamSpec};
use sdvbs_trace::jsonl::Value;
use sdvbs_trace::{alloc_track, now_us, MetricsRegistry, Phase, TraceEvent};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// Retained samples per benchmark×size×threads execution histogram — the
/// scaling model's observation window.
const EXEC_HISTORY_WINDOW: usize = 64;

/// Retained samples per stream's frame-latency histogram.
const FRAME_LATENCY_WINDOW: usize = 1024;

/// Engine sizing and test instrumentation.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads executing jobs (clamped to at least 1).
    pub workers: usize,
    /// Queue capacity — the admission-control bound. Submissions that
    /// find the queue full are refused with [`Submission::QueueFull`].
    pub queue_capacity: usize,
    /// Per-job watchdog deadline (see [`sdvbs_runner::supervise`]).
    pub timeout: Option<Duration>,
    /// Deterministic test instrument: each worker sleeps this long after
    /// picking a job up, *before* executing it. Tests use the hold window
    /// to observe a job in the `running` state, fill the queue behind it,
    /// and drive admission-control and drain paths without racing the
    /// benchmark's actual runtime. `None` (the default) in production.
    pub hold: Option<Duration>,
    /// Scheduler knobs: batch window and DRR quanta.
    pub sched: SchedConfig,
    /// Result-cache bound (`--cache-capacity`).
    pub cache_capacity: usize,
    /// Poll-grace window: how long a terminal job stays pollable before
    /// its table entry is retired.
    pub retire_ttl: Duration,
    /// The clock retirement ages against — virtual under `sdvbs-sim`.
    pub clock: ClockHandle,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 1,
            queue_capacity: 16,
            timeout: None,
            hold: None,
            sched: SchedConfig::default(),
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            retire_ttl: Duration::from_secs(300),
            clock: ClockHandle::system(),
        }
    }
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone)]
enum JobState {
    /// Accepted and waiting in the queue.
    Queued,
    /// A worker is executing it.
    Running,
    /// Execution finished; the record is the result (which may itself
    /// report a failed status — that is still a terminal, pollable state).
    /// Boxed to keep the variant near the size of its siblings.
    Done(Box<RunRecord>),
    /// A stream frame finished; the string is the pipeline's one-line
    /// summary (frames have no [`RunRecord`] — their results live in the
    /// stream's status window).
    FrameDone(String),
    /// The engine refused to run it (drain started before a worker picked
    /// it up, or the spec failed validation inside the engine).
    Rejected(String),
}

/// What a job-table entry executes: a one-shot benchmark spec, or one
/// frame of an open stream.
enum Payload {
    Bench(Job),
    Frame(FrameTask),
}

struct JobEntry {
    payload: Payload,
    /// Spec digest for cache/coalescing. Frames never cache or coalesce
    /// (each is a unique stateful step) and carry 0 here.
    digest: u64,
    /// The canonical cache preimage, verified on every cache hit.
    key: String,
    state: JobState,
    /// Clock time after which the terminal entry may be retired.
    retire_at: Option<Duration>,
}

struct EngineState {
    /// Job table keyed by id — a map, not a vec, so retiring old entries
    /// never moves or reuses a live id.
    jobs: HashMap<u64, JobEntry>,
    next_id: u64,
    inflight: InflightMap,
    draining: bool,
    /// `Some(n)` once a drain has begun: jobs that were queued/running at
    /// that moment and are not yet terminal. The drain completes at 0.
    drain_open: Option<usize>,
    /// Of the drain-open jobs, how many completed / were rejected.
    drain_completed: usize,
    drain_rejected: usize,
}

/// How the engine answered a submission.
#[derive(Debug, Clone)]
pub enum Submission {
    /// Served from the result cache without executing anything. Boxed to
    /// keep the variant near the size of its siblings.
    Cached(Box<RunRecord>),
    /// Accepted as a new job with this id.
    Queued(u64),
    /// Attached to an identical in-flight job with this id.
    Coalesced(u64),
    /// The queue is at capacity; retry later (`429`).
    QueueFull,
    /// The engine is draining; no new work is accepted (`503`).
    Draining,
}

/// A point-in-time copy of one job's externally visible state.
#[derive(Debug, Clone)]
pub struct JobSnapshot {
    /// The job id.
    pub id: u64,
    /// `"queued"`, `"running"`, `"done"`, or `"rejected"`.
    pub state: &'static str,
    /// The run record, once done.
    pub record: Option<RunRecord>,
    /// The rejection reason, when rejected.
    pub detail: String,
}

impl JobSnapshot {
    /// Whether the job has reached a terminal state.
    pub fn is_terminal(&self) -> bool {
        matches!(self.state, "done" | "rejected")
    }
}

/// The scheduler group key a spec batches under: `benchmark|size`.
pub fn group_key(spec: &Job) -> String {
    format!("{}|{}", spec.benchmark, size_label(spec.size))
}

/// The benchmark-serving engine. Construct with [`Engine::start`]; always
/// wrapped in an [`Arc`] because the worker threads hold a reference.
pub struct Engine {
    state: Mutex<EngineState>,
    changed: Condvar,
    queue: SchedQueue,
    cache: ResultCache,
    metrics: Mutex<MetricsRegistry>,
    trace: Mutex<Vec<TraceEvent>>,
    workers: Mutex<Vec<thread::JoinHandle<()>>>,
    streams: Mutex<StreamTable>,
    cfg: EngineConfig,
    auto_threads: usize,
    host: HostMeta,
}

impl Engine {
    /// Builds the engine and spawns its worker threads.
    pub fn start(cfg: EngineConfig) -> Arc<Engine> {
        let queue = SchedQueue::new(cfg.queue_capacity.max(1), cfg.sched.clone());
        let engine = Arc::new(Engine {
            state: Mutex::new(EngineState {
                jobs: HashMap::new(),
                next_id: 0,
                inflight: InflightMap::new(),
                draining: false,
                drain_open: None,
                drain_completed: 0,
                drain_rejected: 0,
            }),
            changed: Condvar::new(),
            queue,
            cache: ResultCache::with_capacity(cfg.cache_capacity),
            metrics: Mutex::new(MetricsRegistry::new()),
            trace: Mutex::new(Vec::new()),
            workers: Mutex::new(Vec::new()),
            streams: Mutex::new(StreamTable::default()),
            auto_threads: ExecPolicy::Auto.worker_count(),
            host: HostMeta::collect(),
            cfg,
        });
        let mut handles = Vec::new();
        for w in 0..engine.cfg.workers.max(1) {
            let engine = Arc::clone(&engine);
            handles.push(
                thread::Builder::new()
                    .name(format!("sdvbs-serve-worker-{w}"))
                    .spawn(move || engine.worker_loop(w))
                    .expect("spawning an engine worker"),
            );
        }
        *engine
            .workers
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = handles;
        engine
    }

    /// Submits a spec. `fresh` bypasses both the cache lookup and
    /// coalescing — the client explicitly wants a re-execution. `class`
    /// picks the QoS lane the job is scheduled in.
    pub fn submit(&self, spec: Job, fresh: bool, class: JobClass) -> Submission {
        let digest = spec_digest(&spec);
        let key = cache_preimage(&spec);
        let mut st = self.lock_state();
        self.sweep_retired(&mut st);
        if st.draining {
            self.incr("rejected_draining");
            return Submission::Draining;
        }
        if !fresh {
            match self.cache.get(digest, &key) {
                CacheLookup::Hit(record) => {
                    self.incr("cache_hits");
                    return Submission::Cached(record);
                }
                CacheLookup::Collision => {
                    // A 64-bit digest collision: treat as a miss so the
                    // right spec executes, and surface it.
                    self.incr("cache_key_collisions");
                }
                CacheLookup::Miss => {}
            }
            if let Some(id) = st.inflight.get(digest) {
                self.incr("coalesced");
                return Submission::Coalesced(id);
            }
        }
        let id = st.next_id;
        let group = group_key(&spec);
        st.jobs.insert(
            id,
            JobEntry {
                payload: Payload::Bench(spec),
                digest,
                key,
                state: JobState::Queued,
                retire_at: None,
            },
        );
        st.inflight.claim(digest, id);
        // try_push under the state lock keeps the entry/queue transition
        // atomic; workers take the queue lock only with the state lock
        // released, so the ordering is acyclic.
        match self.queue.try_push(id, &group, class) {
            Ok(()) => {
                st.next_id += 1;
                self.incr("jobs_submitted");
                self.incr(&format!("submitted_{}", class.label()));
                Submission::Queued(id)
            }
            Err(refusal) => {
                st.jobs.remove(&id);
                st.inflight.release(digest, id);
                match refusal {
                    SchedPushError::Full => {
                        self.incr("rejected_queue_full");
                        Submission::QueueFull
                    }
                    SchedPushError::Closed => {
                        self.incr("rejected_draining");
                        Submission::Draining
                    }
                }
            }
        }
    }

    /// A snapshot of job `id`, or `None` for an unknown (or retired) id.
    pub fn get(&self, id: u64) -> Option<JobSnapshot> {
        let st = self.lock_state();
        st.jobs.get(&id).map(|entry| snapshot(id, entry))
    }

    /// Long-poll: blocks until job `id` reaches a terminal state or
    /// `wait` elapses, then returns its (possibly still non-terminal)
    /// snapshot. `None` for an unknown or retired id.
    pub fn wait_terminal(&self, id: u64, wait: Duration) -> Option<JobSnapshot> {
        let deadline = Instant::now() + wait;
        let mut st = self.lock_state();
        loop {
            let snap = st.jobs.get(&id).map(|entry| snapshot(id, entry))?;
            if snap.is_terminal() {
                return Some(snap);
            }
            let now = Instant::now();
            if now >= deadline {
                return Some(snap);
            }
            let (guard, _) = self
                .changed
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        }
    }

    /// Current number of entries in the job table (tests pin the
    /// retirement bound with this).
    pub fn jobs_table_len(&self) -> usize {
        self.lock_state().jobs.len()
    }

    /// Lifetime LRU evictions from the result cache.
    pub fn cache_evictions(&self) -> u64 {
        self.cache.evictions()
    }

    /// Starts and completes a graceful drain: refuses new submissions,
    /// lets running jobs finish, rejects everything still queued, then
    /// joins the worker threads. Blocks until every job that was open
    /// when the drain began is terminal. Idempotent — a second call just
    /// waits for the first drain's state.
    ///
    /// The report counts **only the work resolved by this drain**: jobs
    /// queued or running at the moment the drain began. Jobs that were
    /// already terminal are history, not drain work.
    pub fn drain(&self) -> DrainReport {
        self.begin_drain();
        let mut st = self.lock_state();
        while st.drain_open.is_some_and(|open| open > 0) {
            st = self
                .changed
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        let report = DrainReport {
            completed: st.drain_completed,
            rejected: st.drain_rejected,
            ..DrainReport::default()
        };
        drop(st);
        let handles: Vec<_> = self
            .workers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
        report
    }

    /// Starts the drain without waiting for it: refuses new submissions
    /// and closes the queue. The shutdown endpoint calls this inline
    /// before responding, so a submission that arrives after the shutdown
    /// response is deterministically answered `503`, never `429`. The
    /// first call snapshots the set of open jobs the eventual
    /// [`DrainReport`] accounts for.
    pub fn begin_drain(&self) {
        {
            let mut st = self.lock_state();
            if st.drain_open.is_none() {
                let open = st
                    .jobs
                    .values()
                    .filter(|e| matches!(e.state, JobState::Queued | JobState::Running))
                    .count();
                st.drain_open = Some(open);
                st.draining = true;
            }
        }
        self.queue.close();
    }

    /// Whether a drain has started.
    pub fn is_draining(&self) -> bool {
        self.lock_state().draining
    }

    /// Opens a stream: validates the spec, builds its stateful pipeline,
    /// and allocates it a trace track. Refused while draining or at the
    /// [`MAX_STREAMS`] open-stream cap.
    ///
    /// # Errors
    ///
    /// [`StreamRefused::Draining`], [`StreamRefused::LimitReached`], or
    /// [`StreamRefused::BadSpec`].
    pub fn open_stream(&self, spec: StreamSpec) -> Result<u64, StreamRefused> {
        if self.lock_state().draining {
            return Err(StreamRefused::Draining);
        }
        let pipeline = stream::build_for(&spec)?;
        let mut tbl = self.lock_streams();
        self.sweep_streams(&mut tbl);
        if tbl.open_count() >= MAX_STREAMS {
            self.incr("streams_refused_limit");
            return Err(StreamRefused::LimitReached);
        }
        let id = tbl.next_id;
        tbl.next_id += 1;
        let track = alloc_track();
        self.push_trace(TraceEvent::new(
            format!("stream {id} ({})", spec.pipeline.label()),
            "meta",
            Phase::Meta,
            0,
            track,
        ));
        tbl.streams
            .insert(id, Arc::new(StreamEntry::new(id, spec, track, pipeline)));
        self.incr("streams_opened");
        Ok(id)
    }

    /// Submits the next frame of stream `stream_id`. The backpressure
    /// policy decides its fate at admission: process at full size,
    /// process degraded, or drop (counted, never enqueued). A dropped
    /// frame is a *successful* submission — the ticket says so — because
    /// shedding is the declared contract, not a failure.
    ///
    /// # Errors
    ///
    /// [`StreamRefused::NoSuchStream`], [`StreamRefused::Closed`], or
    /// [`StreamRefused::Draining`] (the frame is then uncounted — the
    /// client knows it never entered the stream).
    pub fn submit_frame(&self, stream_id: u64) -> Result<FrameTicket, StreamRefused> {
        let entry = self
            .stream_entry(stream_id)
            .ok_or(StreamRefused::NoSuchStream)?;
        // Lock order: stream stats, then engine state. Workers take them
        // one at a time, never nested in the other direction.
        let mut stats = entry.lock_stats();
        if stats.closed {
            return Err(StreamRefused::Closed);
        }
        let frame = stats.submitted;
        let decision = stats.admit(entry.spec.policy, entry.sla_ms);
        if decision == FrameDecision::Drop {
            stats.submitted += 1;
            stats.dropped += 1;
            drop(stats);
            self.incr("stream_frames_submitted");
            self.incr("stream_frames_dropped");
            self.incr(&format!("stream_{stream_id}_frames_dropped"));
            return Ok(FrameTicket {
                job_id: None,
                frame,
                dropped: true,
                degraded: false,
            });
        }
        let degraded = matches!(decision, FrameDecision::Process { degraded: true });
        let mut st = self.lock_state();
        self.sweep_retired(&mut st);
        if st.draining {
            return Err(StreamRefused::Draining);
        }
        let id = st.next_id;
        let seq = stats.next_seq;
        st.jobs.insert(
            id,
            JobEntry {
                payload: Payload::Frame(FrameTask {
                    stream: stream_id,
                    frame,
                    seq,
                    degraded,
                    submitted: Instant::now(),
                }),
                digest: 0,
                key: String::new(),
                state: JobState::Queued,
                retire_at: None,
            },
        );
        match self
            .queue
            .try_push(id, &format!("stream:{stream_id}"), JobClass::Interactive)
        {
            Ok(()) => {
                st.next_id += 1;
                stats.submitted += 1;
                stats.next_seq += 1;
                stats.in_flight += 1;
                drop(st);
                drop(stats);
                self.incr("stream_frames_submitted");
                if degraded {
                    self.incr("stream_frames_degraded");
                    self.incr(&format!("stream_{stream_id}_frames_degraded"));
                }
                Ok(FrameTicket {
                    job_id: Some(id),
                    frame,
                    dropped: false,
                    degraded,
                })
            }
            Err(SchedPushError::Full) => {
                // Queue pressure sheds the frame under either policy —
                // counted, like a policy drop, so accounting stays exact.
                st.jobs.remove(&id);
                stats.submitted += 1;
                stats.dropped += 1;
                drop(st);
                drop(stats);
                self.incr("stream_frames_submitted");
                self.incr("stream_frames_dropped");
                self.incr(&format!("stream_{stream_id}_frames_dropped"));
                Ok(FrameTicket {
                    job_id: None,
                    frame,
                    dropped: true,
                    degraded: false,
                })
            }
            Err(SchedPushError::Closed) => {
                st.jobs.remove(&id);
                Err(StreamRefused::Draining)
            }
        }
    }

    /// A point-in-time status of stream `id`, or `None` if unknown.
    pub fn stream_status(&self, id: u64) -> Option<StreamStatus> {
        Some(self.stream_entry(id)?.status())
    }

    /// Closes stream `id`: no further frames are accepted; in-flight
    /// frames finish normally. Returns the status at close, or `None`
    /// for an unknown id. Idempotent.
    pub fn close_stream(&self, id: u64) -> Option<StreamStatus> {
        let entry = self.stream_entry(id)?;
        {
            let mut stats = entry.lock_stats();
            if !stats.closed {
                stats.closed = true;
                stats.closed_at = Some(self.cfg.clock.now());
            } else {
                return Some(entry.status());
            }
        }
        self.incr("streams_closed");
        Some(entry.status())
    }

    fn stream_entry(&self, id: u64) -> Option<Arc<StreamEntry>> {
        self.lock_streams().streams.get(&id).cloned()
    }

    fn lock_streams(&self) -> std::sync::MutexGuard<'_, StreamTable> {
        self.streams.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Retires closed streams with no in-flight frames once their close
    /// is older than the poll-grace TTL — same contract as job-table
    /// retirement: a long-lived daemon's memory does not grow with every
    /// stream it has ever served.
    fn sweep_streams(&self, tbl: &mut StreamTable) {
        let now = self.cfg.clock.now();
        let ttl = self.cfg.retire_ttl;
        let before = tbl.streams.len();
        tbl.streams.retain(|_, entry| {
            let stats = entry.lock_stats();
            !(stats.closed
                && stats.in_flight == 0
                && stats.closed_at.is_some_and(|at| at + ttl <= now))
        });
        let retired = before - tbl.streams.len();
        if retired > 0 {
            self.incr("streams_retired");
        }
    }

    /// Renders the engine's process-lifetime metrics in the Prometheus
    /// text format under the `sdvbs_serve` prefix.
    pub fn metrics_text(&self) -> String {
        self.metrics
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .to_prometheus("sdvbs_serve")
    }

    /// Folds an external registry (e.g. a connection thread's request
    /// stats) into the engine's lifetime registry.
    pub fn merge_metrics(&self, other: &MetricsRegistry) {
        self.metrics
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .merge(other);
    }

    /// Current value of a lifetime counter (for tests and the smoke gate).
    pub fn counter(&self, name: &str) -> u64 {
        self.metrics
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .counter(name)
    }

    /// Execution-side trace events: one track per engine worker carrying
    /// a span per batch, with the jobs' spans nested inside.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.trace
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// A standalone copy of the lifetime registry, for shipping over the
    /// wire to a coordinator.
    pub fn metrics_snapshot(&self) -> MetricsRegistry {
        let mut out = MetricsRegistry::new();
        out.merge(&self.metrics.lock().unwrap_or_else(PoisonError::into_inner));
        out
    }

    fn push_trace(&self, event: TraceEvent) {
        self.trace
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(event);
    }

    /// Retires terminal entries whose poll-grace TTL has elapsed. Called
    /// with the state lock held, from the submission path only — a job
    /// that just went terminal always survives until the next submission,
    /// so a client never loses the poll race to its own job's retirement.
    fn sweep_retired(&self, st: &mut EngineState) {
        let now = self.cfg.clock.now();
        let before = st.jobs.len();
        st.jobs
            .retain(|_, entry| entry.retire_at.is_none_or(|at| at > now));
        let retired = before - st.jobs.len();
        if retired > 0 {
            self.incr("jobs_retired");
        }
    }

    /// The clock time at which a job going terminal now may be retired.
    fn retire_deadline(&self) -> Option<Duration> {
        Some(self.cfg.clock.now() + self.cfg.retire_ttl)
    }

    fn worker_loop(&self, worker: usize) {
        // Engine workers record on low track ids (one per worker);
        // connection tracks come from `alloc_track()` which starts at
        // `DYNAMIC_TRACK_BASE`, so the two ranges never collide.
        let track = worker as u32;
        self.push_trace(TraceEvent::new(
            format!("exec {worker}"),
            "meta",
            Phase::Meta,
            0,
            track,
        ));
        while let Some(batch) = self.queue.pop_batch() {
            self.observe("batch_size", batch.ids.len() as f64);
            let mut begin = TraceEvent::new(
                format!("batch {}", batch.group),
                "batch",
                Phase::Begin,
                now_us(),
                track,
            );
            begin.args = vec![
                ("size".to_string(), Value::Num(batch.ids.len() as f64)),
                (
                    "class".to_string(),
                    Value::Str(batch.class.label().to_string()),
                ),
            ];
            self.push_trace(begin);
            // The first job in the batch pays warmup; followers start warm
            // — same benchmark×size just ran on this thread. Stream-frame
            // batches dispatch through the frame path instead.
            let frames = batch.group.starts_with("stream:");
            let mut warm = false;
            let n = batch.ids.len();
            for (i, &id) in batch.ids.iter().enumerate() {
                if frames {
                    self.run_frame(&batch, id, track, i + 1 == n);
                } else if self.run_one(&batch, id, warm, track, i + 1 == n) {
                    warm = true;
                }
            }
        }
    }

    /// Closes the dispatch-window span. Called by [`Engine::run_one`] for
    /// the batch's last job *before* that job's terminal state becomes
    /// externally visible — a trace fetched after every submitted job
    /// polls done therefore never catches the window still open.
    fn push_batch_end(&self, batch: &Batch, track: u32) {
        self.push_trace(TraceEvent::new(
            format!("batch {}", batch.group),
            "batch",
            Phase::End,
            now_us(),
            track,
        ));
    }

    /// Executes (or drain-rejects) one job of a batch. Returns whether the
    /// benchmark actually ran (and the batch is therefore warm).
    fn run_one(&self, batch: &Batch, id: u64, warm: bool, track: u32, last: bool) -> bool {
        let spec = {
            let mut st = self.lock_state();
            if st.draining {
                // Dequeued after the drain began: reject without executing.
                // The window span closes while the state lock is still
                // held, so the rejection is never visible before it.
                if last {
                    self.push_batch_end(batch, track);
                }
                if let Some(entry) = st.jobs.get_mut(&id) {
                    entry.state =
                        JobState::Rejected("server shutting down before execution".into());
                    entry.retire_at = self.retire_deadline();
                    let digest = entry.digest;
                    st.inflight.release(digest, id);
                    note_terminal(&mut st, false);
                    self.incr("rejected_draining");
                    self.changed.notify_all();
                }
                return false;
            }
            let entry = st
                .jobs
                .get_mut(&id)
                .expect("a queued job stays in the table until terminal + TTL");
            entry.state = JobState::Running;
            self.changed.notify_all();
            match &entry.payload {
                Payload::Bench(spec) => spec.clone(),
                Payload::Frame(_) => unreachable!("frame jobs dispatch through run_frame"),
            }
        };
        if let Some(hold) = self.cfg.hold {
            thread::sleep(hold);
        }
        // Auto policies go through the scaling model; everything else is
        // exactly what the client asked for.
        let tuned = matches!(spec.policy, ExecPolicy::Auto).then(|| {
            let reg = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
            sched::pick_threads(&reg, &batch.group, &spec.benchmark, self.auto_threads)
        });
        let auto_threads = tuned.unwrap_or(self.auto_threads);
        self.push_trace(TraceEvent::new(
            spec.benchmark.clone(),
            "job",
            Phase::Begin,
            now_us(),
            track,
        ));
        let started = Instant::now();
        let result = execute_job_warm(&spec, id, auto_threads, &self.host, self.cfg.timeout, warm);
        let exec_ms = started.elapsed().as_secs_f64() * 1e3;
        self.push_trace(TraceEvent::new(
            spec.benchmark.clone(),
            "job",
            Phase::End,
            now_us(),
            track,
        ));
        if last {
            self.push_batch_end(batch, track);
        }
        let mut st = self.lock_state();
        let entry = st
            .jobs
            .get_mut(&id)
            .expect("a running job stays in the table until terminal + TTL");
        let digest = entry.digest;
        let executed = match result {
            Ok(record) => {
                let outcome = self.cache.put(digest, &entry.key, &record);
                if outcome.evicted {
                    self.incr("cache_evictions");
                }
                if outcome.collided {
                    self.incr("cache_key_collisions");
                }
                // Feed the scaling model: the best pipeline time at this
                // thread width, windowed so a long-lived daemon tracks
                // recent behavior in bounded memory.
                if record.status == RunStatus::Completed && record.min_ms > 0.0 {
                    self.metrics
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .observe_windowed(
                            &sched::exec_hist_name(&batch.group, record.threads),
                            record.min_ms,
                            EXEC_HISTORY_WINDOW,
                        );
                }
                if tuned.is_some() {
                    self.incr("sched_tuned_jobs");
                }
                entry.state = JobState::Done(Box::new(record));
                entry.retire_at = self.retire_deadline();
                note_terminal(&mut st, true);
                self.incr("jobs_executed");
                self.observe("job_exec_ms", exec_ms);
                true
            }
            Err(e) => {
                entry.state = JobState::Rejected(e.to_string());
                entry.retire_at = self.retire_deadline();
                note_terminal(&mut st, false);
                self.incr("jobs_invalid");
                false
            }
        };
        st.inflight.release(digest, id);
        self.changed.notify_all();
        executed
    }

    /// Executes (or drain-rejects) one stream frame. Frames never touch
    /// the result cache or the in-flight map — each is a unique stateful
    /// step of its pipeline. The stream's sequence gate serializes
    /// execution: even when frames of one stream land on several
    /// workers, they process strictly in submission order (pipeline
    /// state makes order a correctness property).
    fn run_frame(&self, batch: &Batch, id: u64, track: u32, last: bool) {
        let (task, draining) = {
            let mut st = self.lock_state();
            let draining = st.draining;
            let entry = st
                .jobs
                .get_mut(&id)
                .expect("a queued frame stays in the table until terminal + TTL");
            let Payload::Frame(task) = &entry.payload else {
                unreachable!("stream-group jobs always carry frame payloads")
            };
            let task = task.clone();
            if !draining {
                entry.state = JobState::Running;
                self.changed.notify_all();
            }
            (task, draining)
        };
        let Some(stream) = self.stream_entry(task.stream) else {
            // Unreachable in practice: a stream is only swept once it has
            // no in-flight frames. Account the frame as failed anyway
            // rather than wedging the drain.
            let mut st = self.lock_state();
            if let Some(entry) = st.jobs.get_mut(&id) {
                entry.state = JobState::Rejected("stream no longer exists".into());
                entry.retire_at = self.retire_deadline();
                note_terminal(&mut st, false);
                self.changed.notify_all();
            }
            if last {
                self.push_batch_end(batch, track);
            }
            return;
        };
        if draining {
            // Honest drain accounting: wait for this frame's turn (so the
            // stream's execution order never inverts), reject it, then
            // open the gate for the next frame. The gate is taken with no
            // other lock held.
            if last {
                self.push_batch_end(batch, track);
            }
            stream.wait_turn(task.seq);
            {
                let mut st = self.lock_state();
                if let Some(entry) = st.jobs.get_mut(&id) {
                    entry.state =
                        JobState::Rejected("server shutting down before execution".into());
                    entry.retire_at = self.retire_deadline();
                    note_terminal(&mut st, false);
                    self.incr("rejected_draining");
                    self.changed.notify_all();
                }
            }
            stream.advance_turn(task.seq);
            let mut stats = stream.lock_stats();
            stats.in_flight = stats.in_flight.saturating_sub(1);
            stats.rejected += 1;
            drop(stats);
            self.incr("stream_frames_rejected");
            return;
        }
        stream.wait_turn(task.seq);
        self.push_trace(TraceEvent::new(
            format!("frame {}", task.frame),
            "frame",
            Phase::Begin,
            now_us(),
            stream.track,
        ));
        let started = Instant::now();
        // Unlike the bench path, the hold window counts as frame
        // execution: it stands in for per-frame processing cost, and the
        // backpressure estimator must see that cost for held tests to
        // exercise the backlog projection. Since it models compute over
        // the frame's pixels, a degraded frame pays only the degraded
        // size's share of it — otherwise degrading could never shed a
        // held stream's load.
        if let Some(hold) = self.cfg.hold {
            let hold = if task.degraded {
                let (fw, fh) = stream.spec.full_dims();
                let (dw, dh) = stream.spec.degraded_dims();
                hold.mul_f64((dw * dh) as f64 / (fw * fh) as f64)
            } else {
                hold
            };
            thread::sleep(hold);
        }
        let result = {
            let mut pipeline = stream
                .pipeline
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            pipeline.process(task.frame, task.degraded)
        };
        let exec_ms = started.elapsed().as_secs_f64() * 1e3;
        self.push_trace(TraceEvent::new(
            format!("frame {}", task.frame),
            "frame",
            Phase::End,
            now_us(),
            stream.track,
        ));
        if last {
            self.push_batch_end(batch, track);
        }
        stream.advance_turn(task.seq);
        let latency_ms = task.submitted.elapsed().as_secs_f64() * 1e3;
        let completed = result.is_ok();
        let state = {
            let mut stats = stream.lock_stats();
            stats.in_flight = stats.in_flight.saturating_sub(1);
            stats.note_exec(exec_ms);
            let violated = stats.note_latency(latency_ms, stream.sla_ms);
            if violated {
                self.incr("stream_sla_violations");
                self.incr(&format!("stream_{}_sla_violations", stream.id));
            }
            match result {
                Ok(r) => {
                    stats.completed += 1;
                    if task.degraded {
                        stats.completed_degraded += 1;
                    }
                    stats.rolling_digest = fold_digest(stats.rolling_digest, r.digest);
                    let detail = r.detail.clone();
                    stats.push_recent(stream::summarize(&r, latency_ms));
                    JobState::FrameDone(detail)
                }
                Err(e) => {
                    stats.failed += 1;
                    JobState::Rejected(e.to_string())
                }
            }
        };
        self.metrics
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .observe_windowed(
                &format!("stream_{}_frame_latency_ms", stream.id),
                latency_ms,
                FRAME_LATENCY_WINDOW,
            );
        self.observe("stream_frame_exec_ms", exec_ms);
        if completed {
            self.incr("stream_frames_completed");
        } else {
            self.incr("stream_frames_failed");
        }
        let mut st = self.lock_state();
        if let Some(entry) = st.jobs.get_mut(&id) {
            entry.state = state;
            entry.retire_at = self.retire_deadline();
            note_terminal(&mut st, completed);
            self.changed.notify_all();
        }
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, EngineState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn incr(&self, name: &str) {
        self.metrics
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .incr(name, 1);
    }

    fn observe(&self, name: &str, value: f64) {
        self.metrics
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .observe(name, value);
    }
}

/// Accounts a terminal transition against an in-progress drain (a no-op
/// before `begin_drain`; afterwards no new jobs are admitted, so every
/// transition belongs to the drain-open set).
fn note_terminal(st: &mut EngineState, completed: bool) {
    if let Some(open) = st.drain_open {
        if completed {
            st.drain_completed += 1;
        } else {
            st.drain_rejected += 1;
        }
        st.drain_open = Some(open.saturating_sub(1));
    }
}

fn snapshot(id: u64, entry: &JobEntry) -> JobSnapshot {
    match &entry.state {
        JobState::Queued => JobSnapshot {
            id,
            state: "queued",
            record: None,
            detail: String::new(),
        },
        JobState::Running => JobSnapshot {
            id,
            state: "running",
            record: None,
            detail: String::new(),
        },
        JobState::Done(record) => JobSnapshot {
            id,
            state: "done",
            record: Some(record.as_ref().clone()),
            detail: String::new(),
        },
        JobState::FrameDone(detail) => JobSnapshot {
            id,
            state: "done",
            record: None,
            detail: detail.clone(),
        },
        JobState::Rejected(why) => JobSnapshot {
            id,
            state: "rejected",
            record: None,
            detail: why.clone(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdvbs_core::InputSize;
    use sdvbs_stream::{run_one_shot, DegradePolicy, PipelineKind, DIGEST_SEED};

    fn spec(seed: u64) -> Job {
        Job::new(
            "Disparity Map",
            InputSize::Custom {
                width: 32,
                height: 24,
            },
            ExecPolicy::Serial,
            seed,
            1,
        )
    }

    fn submit(engine: &Engine, spec: Job, fresh: bool) -> Submission {
        engine.submit(spec, fresh, JobClass::Interactive)
    }

    fn wait_done(engine: &Engine, id: u64) -> JobSnapshot {
        let snap = engine
            .wait_terminal(id, Duration::from_secs(60))
            .expect("job exists");
        assert!(snap.is_terminal(), "job {id} still {:?}", snap.state);
        snap
    }

    #[test]
    fn execute_then_serve_identical_spec_from_cache() {
        let engine = Engine::start(EngineConfig::default());
        let id = match submit(&engine, spec(1), false) {
            Submission::Queued(id) => id,
            other => panic!("expected Queued, got {other:?}"),
        };
        let first = wait_done(&engine, id);
        assert_eq!(first.state, "done");
        // Second submission: served from cache, no new job id allocated.
        match submit(&engine, spec(1), false) {
            Submission::Cached(rec) => assert_eq!(rec.seed, 1),
            other => panic!("expected Cached, got {other:?}"),
        }
        assert_eq!(engine.counter("jobs_executed"), 1);
        assert_eq!(engine.counter("cache_hits"), 1);
        // fresh=1 bypasses the cache and re-executes.
        let id2 = match submit(&engine, spec(1), true) {
            Submission::Queued(id) => id,
            other => panic!("expected Queued, got {other:?}"),
        };
        wait_done(&engine, id2);
        assert_eq!(engine.counter("jobs_executed"), 2);
        engine.drain();
    }

    #[test]
    fn identical_inflight_specs_coalesce() {
        // Hold each job 200 ms so the first is reliably in flight when
        // the duplicate arrives.
        let engine = Engine::start(EngineConfig {
            hold: Some(Duration::from_millis(200)),
            ..EngineConfig::default()
        });
        let id = match submit(&engine, spec(2), false) {
            Submission::Queued(id) => id,
            other => panic!("expected Queued, got {other:?}"),
        };
        match submit(&engine, spec(2), false) {
            Submission::Coalesced(other) => assert_eq!(other, id),
            other => panic!("expected Coalesced, got {other:?}"),
        }
        let snap = wait_done(&engine, id);
        assert_eq!(snap.state, "done");
        assert_eq!(engine.counter("jobs_executed"), 1);
        assert_eq!(engine.counter("coalesced"), 1);
        engine.drain();
    }

    #[test]
    fn full_queue_refuses_admission() {
        let engine = Engine::start(EngineConfig {
            workers: 1,
            queue_capacity: 1,
            hold: Some(Duration::from_millis(300)),
            ..EngineConfig::default()
        });
        let first = match submit(&engine, spec(10), false) {
            Submission::Queued(id) => id,
            other => panic!("expected Queued, got {other:?}"),
        };
        // Wait until the worker picks it up (frees the queue slot).
        while engine.get(first).unwrap().state == "queued" {
            thread::sleep(Duration::from_millis(2));
        }
        // Fill the single slot, then overflow it.
        assert!(matches!(
            submit(&engine, spec(11), false),
            Submission::Queued(_)
        ));
        assert!(matches!(
            submit(&engine, spec(12), false),
            Submission::QueueFull
        ));
        assert_eq!(engine.counter("rejected_queue_full"), 1);
        engine.drain();
    }

    #[test]
    fn drain_finishes_running_work_and_rejects_queued_work() {
        let engine = Engine::start(EngineConfig {
            workers: 1,
            queue_capacity: 4,
            hold: Some(Duration::from_millis(300)),
            ..EngineConfig::default()
        });
        let running = match submit(&engine, spec(20), false) {
            Submission::Queued(id) => id,
            other => panic!("expected Queued, got {other:?}"),
        };
        while engine.get(running).unwrap().state == "queued" {
            thread::sleep(Duration::from_millis(2));
        }
        let queued = match submit(&engine, spec(21), false) {
            Submission::Queued(id) => id,
            other => panic!("expected Queued, got {other:?}"),
        };
        let report = engine.drain();
        assert_eq!(engine.get(running).unwrap().state, "done");
        assert_eq!(engine.get(queued).unwrap().state, "rejected");
        assert_eq!(
            report,
            DrainReport {
                completed: 1,
                rejected: 1,
                ..DrainReport::default()
            }
        );
        // Post-drain submissions are refused.
        assert!(matches!(
            submit(&engine, spec(22), false),
            Submission::Draining
        ));
    }

    #[test]
    fn drain_report_excludes_jobs_already_terminal_when_drain_began() {
        // Regression: DrainReport.completed used to count lifetime
        // completions. A job finished *before* the drain begins must not
        // appear in the report; only drain-open work counts.
        let engine = Engine::start(EngineConfig {
            workers: 1,
            queue_capacity: 4,
            ..EngineConfig::default()
        });
        let done_before = match submit(&engine, spec(30), false) {
            Submission::Queued(id) => id,
            other => panic!("expected Queued, got {other:?}"),
        };
        assert_eq!(wait_done(&engine, done_before).state, "done");
        let report = engine.drain();
        assert_eq!(
            report,
            DrainReport::default(),
            "a pre-drain completion is history, not drain work"
        );
        // The job itself is still pollable (within its TTL) as done.
        assert_eq!(engine.get(done_before).unwrap().state, "done");
    }

    #[test]
    fn terminal_jobs_retire_after_the_poll_grace_ttl() {
        // retire_ttl = 0: a terminal entry is swept by the next state
        // transition or submission. Ids never come back — a retired id
        // answers None like any unknown id.
        let engine = Engine::start(EngineConfig {
            workers: 1,
            queue_capacity: 4,
            retire_ttl: Duration::ZERO,
            ..EngineConfig::default()
        });
        let id = match submit(&engine, spec(40), true) {
            Submission::Queued(id) => id,
            other => panic!("expected Queued, got {other:?}"),
        };
        wait_done(&engine, id);
        // The next submission sweeps the table.
        let id2 = match submit(&engine, spec(41), true) {
            Submission::Queued(id) => id,
            other => panic!("expected Queued, got {other:?}"),
        };
        assert!(engine.get(id).is_none(), "terminal job should be retired");
        assert!(id2 > id, "ids stay monotone; slots are never reused");
        wait_done(&engine, id2);
        engine.drain();
        assert!(engine.counter("jobs_retired") >= 1);
    }

    fn stream_spec(seed: u64, fps: f64) -> StreamSpec {
        StreamSpec {
            pipeline: PipelineKind::Tracking,
            size: InputSize::Sqcif,
            seed,
            fps,
            policy: DegradePolicy::Degrade,
        }
    }

    fn one_shot_digest(spec: &StreamSpec, frames: u64) -> u64 {
        run_one_shot(spec, frames)
            .expect("one-shot reference run")
            .iter()
            .fold(DIGEST_SEED, |acc, r| fold_digest(acc, r.digest))
    }

    #[test]
    fn unloaded_stream_is_bit_identical_to_the_one_shot_run() {
        let engine = Engine::start(EngineConfig {
            workers: 2,
            queue_capacity: 32,
            ..EngineConfig::default()
        });
        // 1 fps → a 1000 ms per-frame budget: never pressured, so every
        // frame runs at full resolution and the digests must match the
        // one-shot reference exactly.
        let spec = stream_spec(3, 1.0);
        let id = engine.open_stream(spec).expect("open stream");
        let frames = 6u64;
        for _ in 0..frames {
            let ticket = engine.submit_frame(id).expect("submit frame");
            assert!(!ticket.dropped && !ticket.degraded);
            let snap = engine
                .wait_terminal(ticket.job_id.unwrap(), Duration::from_secs(60))
                .expect("frame job exists");
            assert_eq!(snap.state, "done");
        }
        let status = engine.stream_status(id).expect("stream status");
        assert_eq!(status.submitted, frames);
        assert_eq!(status.completed, frames);
        assert_eq!(status.dropped + status.rejected + status.failed, 0);
        assert_eq!(status.sla_violations, 0);
        assert_eq!(status.rolling_digest, one_shot_digest(&spec, frames));
        let closed = engine.close_stream(id).expect("close stream");
        assert_eq!(closed.state, "closed");
        assert!(matches!(
            engine.submit_frame(id),
            Err(StreamRefused::Closed)
        ));
        engine.drain();
    }

    #[test]
    fn burst_submission_across_workers_preserves_frame_order() {
        // Submit every frame up front with several workers: the sequence
        // gate must still execute them in order, which the rolling digest
        // proves (fold_digest is order-sensitive).
        let engine = Engine::start(EngineConfig {
            workers: 3,
            queue_capacity: 64,
            ..EngineConfig::default()
        });
        let spec = stream_spec(8, 1.0);
        let id = engine.open_stream(spec).expect("open stream");
        let frames = 10u64;
        let mut last_job = None;
        for _ in 0..frames {
            let ticket = engine.submit_frame(id).expect("submit frame");
            assert!(
                !ticket.dropped,
                "an unloaded burst within the SLA budget never drops"
            );
            last_job = ticket.job_id;
        }
        let snap = engine
            .wait_terminal(last_job.unwrap(), Duration::from_secs(60))
            .expect("last frame exists");
        assert_eq!(snap.state, "done");
        let status = engine.stream_status(id).expect("stream status");
        assert_eq!(status.completed, frames);
        assert_eq!(status.in_flight, 0);
        assert_eq!(status.rolling_digest, one_shot_digest(&spec, frames));
        engine.drain();
    }

    #[test]
    fn stream_limit_and_unknown_ids_are_refused() {
        let engine = Engine::start(EngineConfig::default());
        assert!(engine.stream_status(99).is_none());
        assert!(engine.close_stream(99).is_none());
        assert!(matches!(
            engine.submit_frame(99),
            Err(StreamRefused::NoSuchStream)
        ));
        for _ in 0..MAX_STREAMS {
            engine.open_stream(stream_spec(1, 1.0)).expect("open");
        }
        assert!(matches!(
            engine.open_stream(stream_spec(1, 1.0)),
            Err(StreamRefused::LimitReached)
        ));
        engine.drain();
        assert!(matches!(
            engine.open_stream(stream_spec(1, 1.0)),
            Err(StreamRefused::Draining)
        ));
    }

    #[test]
    fn batched_group_executes_every_job() {
        // Four same-group jobs through one worker: all must complete, and
        // the batch_size histogram must have seen a multi-job batch.
        let engine = Engine::start(EngineConfig {
            workers: 1,
            queue_capacity: 16,
            hold: Some(Duration::from_millis(50)),
            ..EngineConfig::default()
        });
        let ids: Vec<u64> = (0..4)
            .map(|seed| match submit(&engine, spec(100 + seed), true) {
                Submission::Queued(id) => id,
                other => panic!("expected Queued, got {other:?}"),
            })
            .collect();
        for id in ids {
            assert_eq!(wait_done(&engine, id).state, "done");
        }
        assert_eq!(engine.counter("jobs_executed"), 4);
        let text = engine.metrics_text();
        assert!(
            text.contains("sdvbs_serve_batch_size"),
            "batch_size histogram missing from metrics:\n{text}"
        );
        engine.drain();
    }
}
