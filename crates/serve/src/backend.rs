//! The serving backend abstraction: one HTTP front end, two engines.
//!
//! The router and the TCP front end never execute jobs themselves — they
//! speak to a [`Backend`], and two implementations exist:
//!
//! * the single-process [`Engine`](crate::engine::Engine), which runs
//!   jobs on its own worker-thread pool, and
//! * the [`ClusterEngine`](crate::cluster::ClusterEngine), which shards
//!   jobs over TCP to `sdvbs-serve worker` processes.
//!
//! Both keep the same serving mechanics at the front: the result cache,
//! request coalescing, and admission control all live *above* the
//! backend's execution substrate, so a cached or coalesced answer never
//! crosses a process boundary in either mode.

use crate::engine::{Engine, JobSnapshot, Submission};
use crate::sched::JobClass;
use crate::shutdown::DrainReport;
use crate::stream::{FrameTicket, StreamRefused, StreamStatus};
use sdvbs_runner::Job;
use sdvbs_stream::StreamSpec;
use sdvbs_trace::{MetricsRegistry, TraceEvent};
use std::time::Duration;

/// What the HTTP layer needs from an execution substrate. Object-safe so
/// the server holds an `Arc<dyn Backend>`.
pub trait Backend: Send + Sync {
    /// Submits a spec; `fresh` bypasses cache and coalescing, `class`
    /// picks the QoS lane the job is scheduled in.
    fn submit(&self, spec: Job, fresh: bool, class: JobClass) -> Submission;
    /// A snapshot of job `id`, or `None` for an unknown id.
    fn get(&self, id: u64) -> Option<JobSnapshot>;
    /// Long-poll: blocks until job `id` is terminal or `wait` elapses.
    fn wait_terminal(&self, id: u64, wait: Duration) -> Option<JobSnapshot>;
    /// Starts the drain without waiting for it.
    fn begin_drain(&self);
    /// Starts and completes a graceful drain; blocks until every job is
    /// terminal and the execution substrate has shut down.
    fn drain(&self) -> DrainReport;
    /// Whether a drain has started.
    fn is_draining(&self) -> bool;
    /// Prometheus text exposition of the backend's lifetime metrics.
    fn metrics_text(&self) -> String;
    /// Folds an external registry (e.g. a connection thread's request
    /// stats) into the backend's lifetime registry.
    fn merge_metrics(&self, other: &MetricsRegistry);
    /// Current value of a lifetime counter (tests and smoke gates).
    fn counter(&self, name: &str) -> u64;
    /// Execution-side trace events (job spans on worker tracks; in
    /// cluster mode, the merged multi-process timeline).
    fn trace_events(&self) -> Vec<TraceEvent>;
    /// Extra `key:value` JSON fields for `/healthz` (cluster mode reports
    /// worker liveness); `None` keeps the plain single-process body.
    fn health_extra(&self) -> Option<String> {
        None
    }
    /// Opens a video stream. Backends without a streaming tier (the
    /// cluster coordinator) refuse with [`StreamRefused::Unsupported`].
    ///
    /// # Errors
    ///
    /// See [`StreamRefused`].
    fn open_stream(&self, _spec: StreamSpec) -> Result<u64, StreamRefused> {
        Err(StreamRefused::Unsupported)
    }
    /// Submits the next frame of an open stream.
    ///
    /// # Errors
    ///
    /// See [`StreamRefused`].
    fn submit_frame(&self, _stream_id: u64) -> Result<FrameTicket, StreamRefused> {
        Err(StreamRefused::Unsupported)
    }
    /// A point-in-time status of a stream, or `None` if unknown.
    fn stream_status(&self, _id: u64) -> Option<StreamStatus> {
        None
    }
    /// Closes a stream (idempotent); `None` for an unknown id.
    fn close_stream(&self, _id: u64) -> Option<StreamStatus> {
        None
    }
}

impl Backend for Engine {
    fn submit(&self, spec: Job, fresh: bool, class: JobClass) -> Submission {
        Engine::submit(self, spec, fresh, class)
    }
    fn get(&self, id: u64) -> Option<JobSnapshot> {
        Engine::get(self, id)
    }
    fn wait_terminal(&self, id: u64, wait: Duration) -> Option<JobSnapshot> {
        Engine::wait_terminal(self, id, wait)
    }
    fn begin_drain(&self) {
        Engine::begin_drain(self);
    }
    fn drain(&self) -> DrainReport {
        Engine::drain(self)
    }
    fn is_draining(&self) -> bool {
        Engine::is_draining(self)
    }
    fn metrics_text(&self) -> String {
        Engine::metrics_text(self)
    }
    fn merge_metrics(&self, other: &MetricsRegistry) {
        Engine::merge_metrics(self, other);
    }
    fn counter(&self, name: &str) -> u64 {
        Engine::counter(self, name)
    }
    fn trace_events(&self) -> Vec<TraceEvent> {
        Engine::trace_events(self)
    }
    fn open_stream(&self, spec: StreamSpec) -> Result<u64, StreamRefused> {
        Engine::open_stream(self, spec)
    }
    fn submit_frame(&self, stream_id: u64) -> Result<FrameTicket, StreamRefused> {
        Engine::submit_frame(self, stream_id)
    }
    fn stream_status(&self, id: u64) -> Option<StreamStatus> {
        Engine::stream_status(self, id)
    }
    fn close_stream(&self, id: u64) -> Option<StreamStatus> {
        Engine::close_stream(self, id)
    }
}
