//! A hand-rolled HTTP/1.1 message layer over byte buffers.
//!
//! No sockets here: [`parse_request`] and [`parse_response`] consume a
//! byte slice and either return a complete message plus the number of
//! bytes it occupied (so keep-alive connections can parse pipelined
//! messages out of one buffer) or report [`HttpError::Incomplete`],
//! telling the caller to read more. The server and the load generator
//! both drive these parsers from their own socket loops.
//!
//! Request bodies support both HTTP/1.1 framings — `Content-Length` and
//! `Transfer-Encoding: chunked` — and [`Request::to_bytes`] can serialize
//! with either, which is what the property test round-trips.

use std::fmt;

/// Hard cap on the request head (request line + headers).
pub const MAX_HEAD: usize = 16 * 1024;
/// Hard cap on a request body; a job spec is a few hundred bytes.
pub const MAX_BODY: usize = 1 << 20;

/// Why a buffer did not yield a complete message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The buffer ends mid-message; read more bytes and retry.
    Incomplete,
    /// The bytes cannot be an HTTP/1.1 message (or exceed a size cap);
    /// the connection should answer 400 and close.
    Malformed(String),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Incomplete => write!(f, "incomplete HTTP message"),
            HttpError::Malformed(why) => write!(f, "malformed HTTP message: {why}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// How a serialized request frames its body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Framing {
    /// A `Content-Length: N` header followed by the body verbatim.
    ContentLength,
    /// `Transfer-Encoding: chunked`, splitting the body into chunks of at
    /// most `chunk` bytes (clamped to at least 1).
    Chunked {
        /// Maximum bytes per chunk.
        chunk: usize,
    },
}

/// A parsed HTTP/1.1 request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, `POST`, …), verbatim.
    pub method: String,
    /// Request target: path plus optional query, verbatim.
    pub target: String,
    /// Headers in order; names lowercased by the parser, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The de-framed body bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// A bodiless request with no headers.
    pub fn new(method: impl Into<String>, target: impl Into<String>) -> Self {
        Request {
            method: method.into(),
            target: target.into(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// First header value under `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The target's path component (before any `?`).
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// The target's query parameters, as decoded `key=value` pairs (no
    /// percent-decoding — the job API never needs it).
    pub fn query(&self) -> Vec<(String, String)> {
        let Some((_, q)) = self.target.split_once('?') else {
            return Vec::new();
        };
        q.split('&')
            .filter(|kv| !kv.is_empty())
            .map(|kv| match kv.split_once('=') {
                Some((k, v)) => (k.to_string(), v.to_string()),
                None => (kv.to_string(), String::new()),
            })
            .collect()
    }

    /// Serializes the request with the given body framing. The framing
    /// header (`content-length` or `transfer-encoding`) is appended after
    /// the stored headers, which is exactly where [`parse_request`] will
    /// report it on the way back in.
    pub fn to_bytes(&self, framing: Framing) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.body.len() + 256);
        out.extend_from_slice(format!("{} {} HTTP/1.1\r\n", self.method, self.target).as_bytes());
        for (name, value) in &self.headers {
            out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        match framing {
            Framing::ContentLength => {
                out.extend_from_slice(
                    format!("content-length: {}\r\n\r\n", self.body.len()).as_bytes(),
                );
                out.extend_from_slice(&self.body);
            }
            Framing::Chunked { chunk } => {
                out.extend_from_slice(b"transfer-encoding: chunked\r\n\r\n");
                for piece in self.body.chunks(chunk.max(1)) {
                    out.extend_from_slice(format!("{:x}\r\n", piece.len()).as_bytes());
                    out.extend_from_slice(piece);
                    out.extend_from_slice(b"\r\n");
                }
                out.extend_from_slice(b"0\r\n\r\n");
            }
        }
        out
    }
}

/// A parsed HTTP/1.1 response (the load generator's half of the
/// conversation). Only `Content-Length` framing — the server always
/// responds with an explicit length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseMsg {
    /// Status code.
    pub status: u16,
    /// Headers in order; names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl ResponseMsg {
    /// First header value under `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// An outgoing response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers beyond `content-type` / `content-length`.
    pub headers: Vec<(String, String)>,
    content_type: &'static str,
    body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            headers: Vec::new(),
            content_type: "application/json",
            body: body.into().into_bytes(),
        }
    }

    /// A plain-text response (the `/metrics` exposition).
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            headers: Vec::new(),
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
        }
    }

    /// Appends a header.
    #[must_use]
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// Serializes the response with `Content-Length` framing.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.body.len() + 128);
        out.extend_from_slice(
            format!("HTTP/1.1 {} {}\r\n", self.status, reason(self.status)).as_bytes(),
        );
        out.extend_from_slice(format!("content-type: {}\r\n", self.content_type).as_bytes());
        out.extend_from_slice(format!("content-length: {}\r\n", self.body.len()).as_bytes());
        for (name, value) in &self.headers {
            out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }
}

/// Canonical reason phrase for the status codes this server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Parses one request from the front of `buf`, returning it together with
/// the number of bytes consumed.
///
/// # Errors
///
/// [`HttpError::Incomplete`] when `buf` ends mid-message;
/// [`HttpError::Malformed`] for bytes that can never become a valid
/// request (bad request line, bad framing, or a size cap exceeded).
pub fn parse_request(buf: &[u8]) -> Result<(Request, usize), HttpError> {
    let head_end = find_head_end(buf)?;
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::Malformed("head is not UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(HttpError::Malformed(format!(
                "bad request line {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("bad version {version:?}")));
    }
    let headers = parse_headers(lines)?;
    let mut req = Request {
        method: method.to_string(),
        target: target.to_string(),
        headers,
        body: Vec::new(),
    };
    let body_start = head_end + 4;
    let consumed = match body_framing(&req)? {
        BodyFraming::None => body_start,
        BodyFraming::Length(n) => {
            if n > MAX_BODY {
                return Err(HttpError::Malformed(format!("body of {n} bytes over cap")));
            }
            if buf.len() < body_start + n {
                return Err(HttpError::Incomplete);
            }
            req.body = buf[body_start..body_start + n].to_vec();
            body_start + n
        }
        BodyFraming::Chunked => {
            let (body, consumed) = parse_chunked(&buf[body_start..])?;
            req.body = body;
            body_start + consumed
        }
    };
    Ok((req, consumed))
}

/// Parses one response from the front of `buf` (status line, headers, and
/// a `Content-Length` body), returning it with the bytes consumed.
///
/// # Errors
///
/// Same contract as [`parse_request`].
pub fn parse_response(buf: &[u8]) -> Result<(ResponseMsg, usize), HttpError> {
    let head_end = find_head_end(buf)?;
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::Malformed("head is not UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let mut parts = status_line.splitn(3, ' ');
    let (version, code) = (
        parts.next().unwrap_or_default(),
        parts.next().unwrap_or_default(),
    );
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!(
            "bad status line {status_line:?}"
        )));
    }
    let status: u16 = code
        .parse()
        .map_err(|_| HttpError::Malformed(format!("bad status code {code:?}")))?;
    let headers = parse_headers(lines)?;
    let msg = ResponseMsg {
        status,
        headers,
        body: Vec::new(),
    };
    let body_start = head_end + 4;
    let n = match msg.header("content-length") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed(format!("bad content-length {v:?}")))?,
        None => 0,
    };
    if n > MAX_BODY {
        return Err(HttpError::Malformed(format!("body of {n} bytes over cap")));
    }
    if buf.len() < body_start + n {
        return Err(HttpError::Incomplete);
    }
    Ok((
        ResponseMsg {
            body: buf[body_start..body_start + n].to_vec(),
            ..msg
        },
        body_start + n,
    ))
}

/// Locates the `\r\n\r\n` head terminator, enforcing [`MAX_HEAD`].
fn find_head_end(buf: &[u8]) -> Result<usize, HttpError> {
    match buf.windows(4).take(MAX_HEAD).position(|w| w == b"\r\n\r\n") {
        Some(pos) => Ok(pos),
        None if buf.len() >= MAX_HEAD => {
            Err(HttpError::Malformed("head exceeds 16 KiB cap".into()))
        }
        None => Err(HttpError::Incomplete),
    }
}

/// Parses `name: value` header lines; names lowercased, values trimmed.
fn parse_headers<'a>(
    lines: impl Iterator<Item = &'a str>,
) -> Result<Vec<(String, String)>, HttpError> {
    let mut headers = Vec::new();
    for line in lines {
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("bad header line {line:?}")))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::Malformed(format!("bad header name {name:?}")));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok(headers)
}

enum BodyFraming {
    None,
    Length(usize),
    Chunked,
}

/// Decides the request's body framing from its headers. A request with
/// both framings is malformed (smuggling ambiguity).
fn body_framing(req: &Request) -> Result<BodyFraming, HttpError> {
    let chunked = req
        .header("transfer-encoding")
        .is_some_and(|v| v.to_ascii_lowercase().contains("chunked"));
    match (chunked, req.header("content-length")) {
        (true, Some(_)) => Err(HttpError::Malformed(
            "both transfer-encoding and content-length".into(),
        )),
        (true, None) => Ok(BodyFraming::Chunked),
        (false, Some(v)) => v
            .parse::<usize>()
            .map(BodyFraming::Length)
            .map_err(|_| HttpError::Malformed(format!("bad content-length {v:?}"))),
        (false, None) => Ok(BodyFraming::None),
    }
}

/// De-frames a chunked body starting at `buf[0]`, returning the body and
/// the encoded length (through the terminating zero chunk).
fn parse_chunked(buf: &[u8]) -> Result<(Vec<u8>, usize), HttpError> {
    let mut body = Vec::new();
    let mut at = 0usize;
    loop {
        let line_end = buf[at..]
            .windows(2)
            .position(|w| w == b"\r\n")
            .ok_or(HttpError::Incomplete)?;
        let size_text = std::str::from_utf8(&buf[at..at + line_end])
            .map_err(|_| HttpError::Malformed("chunk size is not UTF-8".into()))?;
        // Chunk extensions (after ';') are allowed and ignored.
        let size_text = size_text.split(';').next().unwrap_or_default().trim();
        let size = usize::from_str_radix(size_text, 16)
            .map_err(|_| HttpError::Malformed(format!("bad chunk size {size_text:?}")))?;
        if body.len() + size > MAX_BODY {
            return Err(HttpError::Malformed("chunked body over cap".into()));
        }
        at += line_end + 2;
        if size == 0 {
            // No trailer support: the zero chunk must be followed by the
            // final CRLF immediately.
            if buf.len() < at + 2 {
                return Err(HttpError::Incomplete);
            }
            if &buf[at..at + 2] != b"\r\n" {
                return Err(HttpError::Malformed("trailers are not supported".into()));
            }
            return Ok((body, at + 2));
        }
        if buf.len() < at + size + 2 {
            return Err(HttpError::Incomplete);
        }
        body.extend_from_slice(&buf[at..at + size]);
        if &buf[at + size..at + size + 2] != b"\r\n" {
            return Err(HttpError::Malformed("chunk data missing CRLF".into()));
        }
        at += size + 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_length_request_roundtrips() {
        let mut req = Request::new("POST", "/v1/jobs?fresh=1");
        req.headers.push(("host".into(), "localhost".into()));
        req.body = b"{\"benchmark\":\"Disparity Map\"}".to_vec();
        let bytes = req.to_bytes(Framing::ContentLength);
        let (parsed, used) = parse_request(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(parsed.method, "POST");
        assert_eq!(parsed.path(), "/v1/jobs");
        assert_eq!(parsed.query(), vec![("fresh".to_string(), "1".to_string())]);
        assert_eq!(parsed.body, req.body);
        assert_eq!(parsed.header("host"), Some("localhost"));
        assert_eq!(parsed.header("content-length"), Some("29"));
    }

    #[test]
    fn chunked_request_roundtrips() {
        let mut req = Request::new("POST", "/v1/jobs");
        req.body = (0u8..=255).collect();
        let bytes = req.to_bytes(Framing::Chunked { chunk: 7 });
        let (parsed, used) = parse_request(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(parsed.body, req.body);
        assert_eq!(parsed.header("transfer-encoding"), Some("chunked"));
    }

    #[test]
    fn truncated_requests_report_incomplete_at_every_prefix() {
        let mut req = Request::new("POST", "/v1/jobs");
        req.body = b"hello world".to_vec();
        for framing in [Framing::ContentLength, Framing::Chunked { chunk: 4 }] {
            let bytes = req.to_bytes(framing);
            for cut in 0..bytes.len() {
                assert_eq!(
                    parse_request(&bytes[..cut]).unwrap_err(),
                    HttpError::Incomplete,
                    "prefix of {cut} bytes under {framing:?}"
                );
            }
        }
    }

    #[test]
    fn pipelined_requests_parse_in_sequence() {
        let a = Request::new("GET", "/healthz").to_bytes(Framing::ContentLength);
        let b = Request::new("GET", "/metrics").to_bytes(Framing::ContentLength);
        let buf = [a.clone(), b].concat();
        let (first, used) = parse_request(&buf).unwrap();
        assert_eq!(first.target, "/healthz");
        assert_eq!(used, a.len());
        let (second, _) = parse_request(&buf[used..]).unwrap();
        assert_eq!(second.target, "/metrics");
    }

    #[test]
    fn malformed_requests_are_rejected() {
        let cases: &[&[u8]] = &[
            b"NOT-HTTP\r\n\r\n",
            b"GET /x SPDY/3\r\n\r\n",
            b"GET /x HTTP/1.1\r\nbad header line\r\n\r\n",
            b"POST /x HTTP/1.1\r\ncontent-length: ten\r\n\r\n",
            b"POST /x HTTP/1.1\r\ncontent-length: 3\r\ntransfer-encoding: chunked\r\n\r\n",
            b"POST /x HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\nzz\r\n",
        ];
        for bytes in cases {
            assert!(
                matches!(parse_request(bytes), Err(HttpError::Malformed(_))),
                "{:?}",
                String::from_utf8_lossy(bytes)
            );
        }
    }

    #[test]
    fn oversized_heads_are_rejected_not_buffered_forever() {
        let huge = vec![b'a'; MAX_HEAD + 1];
        assert!(matches!(parse_request(&huge), Err(HttpError::Malformed(_))));
    }

    #[test]
    fn responses_roundtrip() {
        let resp =
            Response::json(429, "{\"error\":\"queue full\"}").with_header("retry-after", "1");
        let bytes = resp.to_bytes();
        let (parsed, used) = parse_response(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(parsed.status, 429);
        assert_eq!(parsed.header("retry-after"), Some("1"));
        assert_eq!(parsed.body_text(), "{\"error\":\"queue full\"}");
        assert_eq!(
            parse_response(&bytes[..bytes.len() - 1]).unwrap_err(),
            HttpError::Incomplete
        );
    }
}
