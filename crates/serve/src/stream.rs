//! Per-stream serving state: SLA tracking, the backpressure state
//! machine, in-order execution gating, and the wire representations of
//! stream specs and statuses.
//!
//! A stream is a declared contract ([`sdvbs_stream::StreamSpec`]): a
//! pipeline, an input size, a frame rate whose inverse is the per-frame
//! SLA, and a policy for what happens when the SLA budget is missed —
//! `drop` skips frames (counted, never processed), `degrade` processes
//! them at a smaller input size until latency recovers. Frames ride the
//! scheduler as interactive-class jobs grouped per stream, so DRR keeps
//! streams from starving batch work and vice versa; a per-stream
//! sequence gate serializes execution (pipelines are stateful — frame
//! order is correctness, not politeness).

use sdvbs_runner::{parse_size, size_label};
use sdvbs_stream::{
    build_pipeline, DegradePolicy, FrameResult, PipelineKind, StreamPipeline, StreamSpec,
    DIGEST_SEED,
};
use sdvbs_trace::jsonl::Value;
use std::collections::HashMap;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Most concurrently open streams the engine accepts.
pub(crate) const MAX_STREAMS: usize = 64;
/// Per-frame summaries retained in a stream's status window.
const RESULT_WINDOW: usize = 32;
/// Latency samples retained per stream for the percentile report.
const LATENCY_WINDOW: usize = 1024;
/// Consecutive healthy frames required before degrade disengages —
/// hysteresis so the mode doesn't oscillate every other frame.
const HEALTHY_RUN: u64 = 6;
/// A frame is "healthy" when its latency is below this fraction of the
/// SLA (and nothing else is in flight).
const HEALTHY_FRAC: f64 = 0.7;
/// Smoothing for the per-stream execution-time estimate.
const EWMA_ALPHA: f64 = 0.3;

/// Why the engine refused a stream operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamRefused {
    /// This backend does not serve streams (e.g. the cluster coordinator).
    Unsupported,
    /// The engine is draining; no new streams or frames.
    Draining,
    /// Too many open streams.
    LimitReached,
    /// Unknown stream id.
    NoSuchStream,
    /// The stream was closed by the client.
    Closed,
    /// The spec failed validation.
    BadSpec(String),
}

/// How the engine answered a frame submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameTicket {
    /// The job-table id the frame runs under, when accepted.
    pub job_id: Option<u64>,
    /// The frame index within the stream's video.
    pub frame: u64,
    /// The frame was dropped by backpressure (counted, never processed).
    pub dropped: bool,
    /// The frame will process at the degraded input size.
    pub degraded: bool,
}

/// A frame job riding the scheduler queue (the engine's job table holds
/// one per accepted frame).
#[derive(Debug, Clone)]
pub(crate) struct FrameTask {
    /// Owning stream id.
    pub stream: u64,
    /// Frame index within the stream's video (dropped frames leave gaps;
    /// the scene is a pure function of the index, so the camera keeps
    /// moving through a drop).
    pub frame: u64,
    /// Execution-order sequence number (contiguous over *accepted*
    /// frames; the stream's gate admits them strictly in this order).
    pub seq: u64,
    /// Process at the degraded input size.
    pub degraded: bool,
    /// When the frame was accepted — frame latency is measured from here.
    pub submitted: Instant,
}

/// One frame's outcome in the status window.
#[derive(Debug, Clone)]
pub struct FrameSummary {
    /// Frame index.
    pub frame: u64,
    /// Processed at the degraded size.
    pub degraded: bool,
    /// The pipeline's per-frame digest.
    pub digest: u64,
    /// The pipeline's quality score in `0..=1`.
    pub quality: f64,
    /// Submit-to-completion latency.
    pub latency_ms: f64,
    /// The pipeline's one-line summary.
    pub detail: String,
}

/// Mutable per-stream accounting. One invariant matters above all:
/// `completed + failed + dropped + rejected == submitted` once
/// `in_flight == 0` — every submitted frame is accounted for exactly
/// once, including under drain.
#[derive(Debug, Default)]
pub(crate) struct StreamStats {
    pub submitted: u64,
    pub completed: u64,
    pub completed_degraded: u64,
    pub dropped: u64,
    pub rejected: u64,
    pub failed: u64,
    pub in_flight: u64,
    /// Next execution-order sequence number to assign.
    pub next_seq: u64,
    pub sla_violations: u64,
    /// Whether the degrade policy is currently engaged.
    pub degraded_mode: bool,
    /// Times the mode flipped (either direction).
    pub degrade_transitions: u64,
    /// Consecutive healthy completions while degraded (the hysteresis
    /// counter).
    healthy_run: u64,
    pub last_latency_ms: f64,
    /// EWMA of pipeline execution time, the backpressure estimator.
    pub ewma_exec_ms: f64,
    /// FNV-1a fold of completed frames' digests in execution order.
    pub rolling_digest: u64,
    /// Ring of recent latencies for the percentile report.
    latencies: Vec<f64>,
    latency_next: usize,
    /// Ring of recent frame summaries.
    recent: Vec<FrameSummary>,
    pub closed: bool,
    /// Clock time the stream was closed at (drives table sweeping).
    pub closed_at: Option<Duration>,
}

/// What [`StreamStats::admit`] decided for a submitted frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FrameDecision {
    /// Enqueue the frame, degraded or not.
    Process {
        /// Run at the degraded input size.
        degraded: bool,
    },
    /// Skip the frame (drop policy under pressure).
    Drop,
}

impl StreamStats {
    fn new() -> StreamStats {
        StreamStats {
            rolling_digest: DIGEST_SEED,
            ..StreamStats::default()
        }
    }

    /// Whether the stream is currently over its SLA budget: the last
    /// frame missed it, or the backlog's projected completion time
    /// (in-flight frames plus this one, at the EWMA execution rate)
    /// exceeds it.
    fn pressured(&self, sla_ms: f64) -> bool {
        self.last_latency_ms > sla_ms || (self.in_flight + 1) as f64 * self.ewma_exec_ms > sla_ms
    }

    /// The backpressure state machine's submission step.
    pub(crate) fn admit(&mut self, policy: DegradePolicy, sla_ms: f64) -> FrameDecision {
        let pressured = self.pressured(sla_ms);
        match policy {
            DegradePolicy::Drop => {
                if pressured {
                    FrameDecision::Drop
                } else {
                    FrameDecision::Process { degraded: false }
                }
            }
            DegradePolicy::Degrade => {
                if pressured && !self.degraded_mode {
                    self.degraded_mode = true;
                    self.degrade_transitions += 1;
                    self.healthy_run = 0;
                }
                FrameDecision::Process {
                    degraded: self.degraded_mode,
                }
            }
        }
    }

    /// The backpressure state machine's completion step: latency
    /// bookkeeping plus the hysteresis that disengages degrade only
    /// after [`HEALTHY_RUN`] consecutive healthy, backlog-free frames.
    pub(crate) fn note_latency(&mut self, latency_ms: f64, sla_ms: f64) -> bool {
        self.last_latency_ms = latency_ms;
        if self.latencies.len() < LATENCY_WINDOW {
            self.latencies.push(latency_ms);
        } else {
            self.latencies[self.latency_next] = latency_ms;
            self.latency_next = (self.latency_next + 1) % LATENCY_WINDOW;
        }
        let violated = latency_ms > sla_ms;
        if violated {
            self.sla_violations += 1;
        }
        if self.degraded_mode {
            if latency_ms < HEALTHY_FRAC * sla_ms && self.in_flight == 0 {
                self.healthy_run += 1;
                if self.healthy_run >= HEALTHY_RUN {
                    self.degraded_mode = false;
                    self.degrade_transitions += 1;
                    self.healthy_run = 0;
                }
            } else {
                self.healthy_run = 0;
            }
        }
        violated
    }

    pub(crate) fn note_exec(&mut self, exec_ms: f64) {
        self.ewma_exec_ms = if self.ewma_exec_ms == 0.0 {
            exec_ms
        } else {
            EWMA_ALPHA * exec_ms + (1.0 - EWMA_ALPHA) * self.ewma_exec_ms
        };
    }

    pub(crate) fn push_recent(&mut self, summary: FrameSummary) {
        if self.recent.len() >= RESULT_WINDOW {
            self.recent.remove(0);
        }
        self.recent.push(summary);
    }

    fn percentile(&self, q: f64) -> f64 {
        if self.latencies.is_empty() {
            return 0.0;
        }
        let mut sorted = self.latencies.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }
}

/// One open (or recently closed) stream.
pub(crate) struct StreamEntry {
    pub id: u64,
    pub spec: StreamSpec,
    pub sla_ms: f64,
    /// The trace track this stream's frame spans land on.
    pub track: u32,
    /// The stateful pipeline — exactly one frame holds this at a time
    /// (the gate serializes callers).
    pub pipeline: Mutex<Box<dyn StreamPipeline>>,
    /// Execution-order gate: the sequence number allowed to run next.
    gate: Mutex<u64>,
    gate_cv: Condvar,
    pub stats: Mutex<StreamStats>,
}

impl StreamEntry {
    pub(crate) fn new(
        id: u64,
        spec: StreamSpec,
        track: u32,
        pipeline: Box<dyn StreamPipeline>,
    ) -> StreamEntry {
        StreamEntry {
            id,
            spec,
            sla_ms: spec.sla_ms(),
            track,
            pipeline: Mutex::new(pipeline),
            gate: Mutex::new(0),
            gate_cv: Condvar::new(),
            stats: Mutex::new(StreamStats::new()),
        }
    }

    pub(crate) fn lock_stats(&self) -> MutexGuard<'_, StreamStats> {
        self.stats.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Blocks until sequence number `seq` is allowed to run. Deadlock-
    /// free: the scheduler's group queue is FIFO, so every predecessor
    /// sequence number is already on (or through) a worker.
    pub(crate) fn wait_turn(&self, seq: u64) {
        let mut g = self.gate.lock().unwrap_or_else(PoisonError::into_inner);
        while *g < seq {
            g = self.gate_cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Releases the gate past `seq`.
    pub(crate) fn advance_turn(&self, seq: u64) {
        let mut g = self.gate.lock().unwrap_or_else(PoisonError::into_inner);
        *g = (*g).max(seq + 1);
        self.gate_cv.notify_all();
    }

    /// A point-in-time status snapshot.
    pub(crate) fn status(&self) -> StreamStatus {
        let stats = self.lock_stats();
        StreamStatus {
            id: self.id,
            pipeline: self.spec.pipeline.label(),
            size: size_label(self.spec.size),
            fps: self.spec.fps,
            sla_ms: self.sla_ms,
            policy: self.spec.policy.label(),
            state: if stats.closed { "closed" } else { "open" },
            submitted: stats.submitted,
            completed: stats.completed,
            completed_degraded: stats.completed_degraded,
            dropped: stats.dropped,
            rejected: stats.rejected,
            failed: stats.failed,
            in_flight: stats.in_flight,
            sla_violations: stats.sla_violations,
            degraded_mode: stats.degraded_mode,
            degrade_transitions: stats.degrade_transitions,
            rolling_digest: stats.rolling_digest,
            last_latency_ms: stats.last_latency_ms,
            p50_ms: stats.percentile(0.50),
            p95_ms: stats.percentile(0.95),
            p99_ms: stats.percentile(0.99),
            recent: stats.recent.clone(),
        }
    }
}

/// The engine's stream table.
#[derive(Default)]
pub(crate) struct StreamTable {
    pub streams: HashMap<u64, std::sync::Arc<StreamEntry>>,
    pub next_id: u64,
}

impl StreamTable {
    pub(crate) fn open_count(&self) -> usize {
        self.streams
            .values()
            .filter(|e| !e.lock_stats().closed)
            .count()
    }
}

/// A point-in-time copy of one stream's externally visible state.
#[derive(Debug, Clone)]
pub struct StreamStatus {
    /// Stream id.
    pub id: u64,
    /// Pipeline label (`tracking` / `disparity` / `stitch`).
    pub pipeline: &'static str,
    /// Input-size label.
    pub size: String,
    /// Declared frame rate.
    pub fps: f64,
    /// The per-frame SLA in milliseconds.
    pub sla_ms: f64,
    /// Backpressure policy label.
    pub policy: &'static str,
    /// `"open"` or `"closed"`.
    pub state: &'static str,
    /// Frames the client submitted (including dropped ones).
    pub submitted: u64,
    /// Frames that ran to completion (degraded ones included).
    pub completed: u64,
    /// Of the completed frames, how many ran degraded.
    pub completed_degraded: u64,
    /// Frames skipped by backpressure or queue overflow.
    pub dropped: u64,
    /// Frames refused by the drain after acceptance.
    pub rejected: u64,
    /// Frames whose pipeline errored.
    pub failed: u64,
    /// Frames accepted but not yet terminal.
    pub in_flight: u64,
    /// Completed frames whose latency exceeded the SLA.
    pub sla_violations: u64,
    /// Whether degrade is currently engaged.
    pub degraded_mode: bool,
    /// Mode flips, either direction.
    pub degrade_transitions: u64,
    /// FNV-1a fold of completed frames' digests, in order.
    pub rolling_digest: u64,
    /// The last completed frame's latency.
    pub last_latency_ms: f64,
    /// Frame-latency percentiles over the retained window.
    pub p50_ms: f64,
    /// See [`StreamStatus::p50_ms`].
    pub p95_ms: f64,
    /// See [`StreamStatus::p50_ms`].
    pub p99_ms: f64,
    /// The most recent frames' outcomes.
    pub recent: Vec<FrameSummary>,
}

impl StreamStatus {
    /// Renders the status as JSON. Digests are hex strings — they use
    /// all 64 bits, beyond JSON's exact-integer range.
    pub fn to_json(&self) -> String {
        let recent: Vec<String> = self
            .recent
            .iter()
            .map(|f| {
                format!(
                    "{{\"frame\":{},\"degraded\":{},\"digest\":\"{:#018x}\",\
                     \"quality\":{:.4},\"latency_ms\":{:.3},\"detail\":{}}}",
                    f.frame,
                    f.degraded,
                    f.digest,
                    f.quality,
                    f.latency_ms,
                    Value::Str(f.detail.clone())
                )
            })
            .collect();
        format!(
            "{{\"id\":{},\"pipeline\":\"{}\",\"size\":\"{}\",\"fps\":{},\
             \"sla_ms\":{:.3},\"policy\":\"{}\",\"state\":\"{}\",\
             \"submitted\":{},\"completed\":{},\"completed_degraded\":{},\
             \"dropped\":{},\"rejected\":{},\"failed\":{},\"in_flight\":{},\
             \"sla_violations\":{},\"degraded_mode\":{},\
             \"degrade_transitions\":{},\"rolling_digest\":\"{:#018x}\",\
             \"last_latency_ms\":{:.3},\"p50_ms\":{:.3},\"p95_ms\":{:.3},\
             \"p99_ms\":{:.3},\"recent\":[{}]}}",
            self.id,
            self.pipeline,
            self.size,
            self.fps,
            self.sla_ms,
            self.policy,
            self.state,
            self.submitted,
            self.completed,
            self.completed_degraded,
            self.dropped,
            self.rejected,
            self.failed,
            self.in_flight,
            self.sla_violations,
            self.degraded_mode,
            self.degrade_transitions,
            self.rolling_digest,
            self.last_latency_ms,
            self.p50_ms,
            self.p95_ms,
            self.p99_ms,
            recent.join(",")
        )
    }
}

/// Builds a [`FrameSummary`] from a pipeline result.
pub(crate) fn summarize(result: &FrameResult, latency_ms: f64) -> FrameSummary {
    FrameSummary {
        frame: result.frame,
        degraded: result.degraded,
        digest: result.digest,
        quality: result.quality,
        latency_ms,
        detail: result.detail.clone(),
    }
}

/// Parses a stream spec from a JSON request body:
/// `{"pipeline":"tracking","size":"qcif","seed":1,"fps":20,
///   "policy":"degrade"}` — only `pipeline` is required; the defaults
/// are `qcif`, seed 1, 10 fps, `degrade`.
///
/// # Errors
///
/// Describes the offending field.
pub fn parse_stream_spec(body: &[u8]) -> Result<StreamSpec, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    if text.trim().is_empty() {
        return Err("empty body; expected a JSON stream spec".into());
    }
    let v = Value::parse(text).map_err(|e| format!("bad JSON: {e}"))?;
    let pipeline = v
        .get("pipeline")
        .and_then(Value::as_str)
        .ok_or_else(|| "missing required field \"pipeline\"".to_string())
        .and_then(PipelineKind::parse)?;
    let size = match v.get("size") {
        Some(s) => parse_size(
            s.as_str()
                .ok_or_else(|| "\"size\" must be a string".to_string())?,
        )?,
        None => parse_size("qcif")?,
    };
    let seed = match v.get("seed") {
        Some(s) => s
            .as_u64()
            .ok_or_else(|| "\"seed\" must be a non-negative integer".to_string())?,
        None => 1,
    };
    let fps = match v.get("fps") {
        Some(f) => f
            .as_f64()
            .ok_or_else(|| "\"fps\" must be a number".to_string())?,
        None => 10.0,
    };
    let policy = match v.get("policy") {
        Some(p) => DegradePolicy::parse(
            p.as_str()
                .ok_or_else(|| "\"policy\" must be a string".to_string())?,
        )?,
        None => DegradePolicy::Degrade,
    };
    let spec = StreamSpec {
        pipeline,
        size,
        seed,
        fps,
        policy,
    };
    spec.validate()?;
    Ok(spec)
}

/// Builds a stream's pipeline, mapping build failures to
/// [`StreamRefused::BadSpec`].
pub(crate) fn build_for(spec: &StreamSpec) -> Result<Box<dyn StreamPipeline>, StreamRefused> {
    build_pipeline(spec).map_err(|e| StreamRefused::BadSpec(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_specs_parse_with_defaults_and_reject_garbage() {
        let spec = parse_stream_spec(b"{\"pipeline\":\"tracking\"}").unwrap();
        assert_eq!(spec.pipeline, PipelineKind::Tracking);
        assert_eq!(size_label(spec.size), "qcif");
        assert_eq!(spec.seed, 1);
        assert!((spec.fps - 10.0).abs() < 1e-12);
        assert_eq!(spec.policy, DegradePolicy::Degrade);

        let spec = parse_stream_spec(
            b"{\"pipeline\":\"stitch\",\"size\":\"sqcif\",\"seed\":7,\
              \"fps\":25,\"policy\":\"drop\"}",
        )
        .unwrap();
        assert_eq!(spec.pipeline, PipelineKind::Stitch);
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.policy, DegradePolicy::Drop);

        assert!(parse_stream_spec(b"").is_err());
        assert!(parse_stream_spec(b"{}").is_err());
        assert!(parse_stream_spec(b"{\"pipeline\":\"sift\"}").is_err());
        assert!(parse_stream_spec(b"{\"pipeline\":\"tracking\",\"fps\":0}").is_err());
        assert!(parse_stream_spec(b"{\"pipeline\":\"tracking\",\"size\":\"48x36\"}").is_err());
    }

    #[test]
    fn drop_policy_sheds_under_pressure_and_recovers() {
        let mut stats = StreamStats::new();
        let sla = 100.0;
        assert_eq!(
            stats.admit(DegradePolicy::Drop, sla),
            FrameDecision::Process { degraded: false }
        );
        stats.note_latency(250.0, sla);
        assert_eq!(stats.sla_violations, 1);
        assert_eq!(stats.admit(DegradePolicy::Drop, sla), FrameDecision::Drop);
        stats.note_latency(20.0, sla);
        assert_eq!(
            stats.admit(DegradePolicy::Drop, sla),
            FrameDecision::Process { degraded: false }
        );
    }

    #[test]
    fn degrade_engages_under_pressure_and_disengages_with_hysteresis() {
        let mut stats = StreamStats::new();
        let sla = 100.0;
        stats.note_latency(250.0, sla);
        assert_eq!(
            stats.admit(DegradePolicy::Degrade, sla),
            FrameDecision::Process { degraded: true }
        );
        assert_eq!(stats.degrade_transitions, 1);
        // One healthy frame is not enough — hysteresis holds the mode.
        stats.note_latency(10.0, sla);
        assert_eq!(
            stats.admit(DegradePolicy::Degrade, sla),
            FrameDecision::Process { degraded: true }
        );
        for _ in 0..HEALTHY_RUN {
            stats.note_latency(10.0, sla);
        }
        assert!(!stats.degraded_mode, "healthy run should disengage degrade");
        assert_eq!(stats.degrade_transitions, 2);
        assert_eq!(
            stats.admit(DegradePolicy::Degrade, sla),
            FrameDecision::Process { degraded: false }
        );
    }

    #[test]
    fn backlog_pressure_projects_from_the_ewma() {
        let mut stats = StreamStats::new();
        let sla = 100.0;
        stats.note_exec(60.0);
        // One in-flight frame at ~60 ms each projects 120 ms > SLA.
        stats.in_flight = 1;
        assert_eq!(stats.admit(DegradePolicy::Drop, sla), FrameDecision::Drop);
        stats.in_flight = 0;
        assert_eq!(
            stats.admit(DegradePolicy::Drop, sla),
            FrameDecision::Process { degraded: false }
        );
    }

    #[test]
    fn status_json_parses_and_carries_the_accounting_fields() {
        let entry = StreamEntry::new(
            3,
            parse_stream_spec(b"{\"pipeline\":\"tracking\",\"size\":\"sqcif\"}").unwrap(),
            2048,
            build_for(
                &parse_stream_spec(b"{\"pipeline\":\"tracking\",\"size\":\"sqcif\"}").unwrap(),
            )
            .unwrap(),
        );
        {
            let mut stats = entry.lock_stats();
            stats.submitted = 5;
            stats.completed = 3;
            stats.dropped = 1;
            stats.failed = 1;
            stats.note_latency(12.5, entry.sla_ms);
        }
        let body = entry.status().to_json();
        let v = Value::parse(&body).expect("status JSON parses");
        assert_eq!(v.get("id").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("submitted").and_then(Value::as_u64), Some(5));
        assert_eq!(v.get("completed").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("dropped").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("failed").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("state").and_then(Value::as_str), Some("open"));
        let digest = v.get("rolling_digest").and_then(Value::as_str).unwrap();
        assert!(digest.starts_with("0x") && digest.len() == 18, "{digest}");
    }

    #[test]
    fn gate_admits_sequence_numbers_in_order() {
        let spec = parse_stream_spec(b"{\"pipeline\":\"tracking\",\"size\":\"sqcif\"}").unwrap();
        let entry = std::sync::Arc::new(StreamEntry::new(0, spec, 2049, build_for(&spec).unwrap()));
        let e2 = std::sync::Arc::clone(&entry);
        let t = std::thread::spawn(move || {
            e2.wait_turn(2);
        });
        entry.wait_turn(0);
        entry.advance_turn(0);
        entry.advance_turn(1);
        entry.advance_turn(2);
        t.join().expect("waiter finishes once the gate opens");
    }
}
