//! The TCP front end: accept loop, per-connection threads, and the
//! graceful-drain wiring.
//!
//! Each accepted connection gets its own thread with a read timeout, a
//! per-connection [`Recorder`] (one request span per handled request, on
//! the connection's own trace track), and a per-connection
//! [`MetricsRegistry`]; both are folded into the shared state when the
//! connection closes, so the request hot path takes no cross-connection
//! locks. Connections are keep-alive by default and handle pipelined
//! requests; `Connection: close` is honored.
//!
//! Shutdown follows the two phases described in [`crate::shutdown`]:
//! whoever wins [`ShutdownController::request`] spawns the single drain
//! thread, which drains the engine, stores the report, raises the stop
//! flag, and pokes the accept loop awake with a loopback connection.
//! [`Server::wait`] then joins the accept thread, the drain thread, and
//! every connection thread — shutdown leaks nothing.

use crate::backend::Backend;
use crate::engine::{Engine, EngineConfig};
use crate::http::{parse_request, HttpError, Response};
use crate::router::{err_json, route, Ctx, Routed};
use crate::shutdown::{DrainReport, ShutdownController};
use sdvbs_trace::{MetricsRegistry, Recorder};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// How long a connection thread blocks in `read` before re-checking the
/// stop flag. Bounds how long shutdown waits on an idle keep-alive
/// connection.
const READ_TICK: Duration = Duration::from_millis(200);

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; `127.0.0.1:0` picks an ephemeral loopback port.
    pub addr: String,
    /// Engine sizing (workers, queue capacity, watchdog, test hold).
    pub engine: EngineConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            engine: EngineConfig::default(),
        }
    }
}

/// State shared by the accept loop, connection threads, and drain thread.
struct Shared {
    ctx: Ctx,
    addr: SocketAddr,
    stop: AtomicBool,
    next_conn: AtomicU64,
    conns: Mutex<Vec<thread::JoinHandle<()>>>,
    drainer: Mutex<Option<thread::JoinHandle<()>>>,
}

impl Shared {
    /// Spawns the one drain thread. Callers must hold the `true` return
    /// of [`ShutdownController::request`] — that is what makes this
    /// single-shot.
    fn start_drain(self: &Arc<Self>) {
        let shared = Arc::clone(self);
        let handle = thread::Builder::new()
            .name("sdvbs-serve-drain".to_string())
            .spawn(move || {
                let report = shared.ctx.engine.drain();
                // Raise stop before publishing the report so a waiter that
                // wakes on `finish` immediately finds joinable threads.
                shared.stop.store(true, Ordering::SeqCst);
                // Poke the accept loop out of `accept()`.
                let _ = TcpStream::connect(shared.addr);
                shared.ctx.shutdown.finish(report);
            })
            .expect("spawning the drain thread");
        *self.drainer.lock().unwrap_or_else(PoisonError::into_inner) = Some(handle);
    }
}

/// A running benchmark-serving daemon.
pub struct Server {
    shared: Arc<Shared>,
    accept: Option<thread::JoinHandle<()>>,
}

impl Server {
    /// Binds the listener, starts a single-process engine, and spawns the
    /// accept loop.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable.
    pub fn start(cfg: ServerConfig) -> std::io::Result<Server> {
        Server::start_with_backend(&cfg.addr, Engine::start(cfg.engine))
    }

    /// Binds the listener over an already-running backend — the cluster
    /// coordinator's entry point, and the generic form of
    /// [`Server::start`].
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable.
    pub fn start_with_backend(addr: &str, backend: Arc<dyn Backend>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            ctx: Ctx {
                engine: backend,
                shutdown: Arc::new(ShutdownController::new()),
                trace: Arc::new(Mutex::new(Vec::new())),
            },
            addr,
            stop: AtomicBool::new(false),
            next_conn: AtomicU64::new(0),
            conns: Mutex::new(Vec::new()),
            drainer: Mutex::new(None),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("sdvbs-serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawning the accept thread")
        };
        Ok(Server {
            shared,
            accept: Some(accept),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The serving backend (for in-process tests and the smoke gates).
    pub fn backend(&self) -> &Arc<dyn Backend> {
        &self.shared.ctx.engine
    }

    /// Whether a shutdown has been requested.
    pub fn draining(&self) -> bool {
        self.shared.ctx.shutdown.requested()
    }

    /// Blocks until a drain (started by `POST /v1/shutdown` or
    /// [`Server::shutdown`]) finishes, then joins the accept, drain, and
    /// connection threads. Returns the drain report.
    pub fn wait(mut self) -> DrainReport {
        let report = self.shared.ctx.shutdown.wait();
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self
            .shared
            .drainer
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
        {
            let _ = handle.join();
        }
        let conns: Vec<_> = self
            .shared
            .conns
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
            .collect();
        for handle in conns {
            let _ = handle.join();
        }
        report
    }

    /// Initiates a graceful drain (if not already started) and waits for
    /// it, joining every server thread.
    pub fn shutdown(self) -> DrainReport {
        if self.shared.ctx.shutdown.request() {
            self.shared.start_drain();
        }
        self.wait()
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.stop.load(Ordering::SeqCst) {
                    // The drain thread's wake-up connection (or a client
                    // racing the stop): the listener is closing.
                    break;
                }
                let idx = shared.next_conn.fetch_add(1, Ordering::Relaxed);
                let conn_shared = Arc::clone(shared);
                let spawned = thread::Builder::new()
                    .name(format!("sdvbs-serve-conn-{idx}"))
                    .spawn(move || conn_loop(stream, idx, &conn_shared));
                if let Ok(handle) = spawned {
                    shared
                        .conns
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .push(handle);
                }
            }
            Err(_) => {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                // Transient accept error: keep serving.
            }
        }
    }
}

/// One connection: parse → route → respond, keep-alive until the client
/// closes, asks to close, errors, or the server stops.
fn conn_loop(stream: TcpStream, idx: u64, shared: &Arc<Shared>) {
    let mut recorder = Recorder::new();
    recorder.set_label(format!("conn {idx}"));
    let mut local = MetricsRegistry::new();
    serve_conn(&stream, shared, &mut recorder, &mut local);
    shared
        .ctx
        .trace
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .extend(recorder.into_events());
    shared.ctx.engine.merge_metrics(&local);
}

fn serve_conn(
    mut stream: &TcpStream,
    shared: &Arc<Shared>,
    recorder: &mut Recorder,
    local: &mut MetricsRegistry,
) {
    if stream.set_read_timeout(Some(READ_TICK)).is_err() {
        return;
    }
    // Responses are one write each; don't let Nagle hold them back.
    let _ = stream.set_nodelay(true);
    let mut buf: Vec<u8> = Vec::new();
    let mut scratch = [0u8; 8192];
    loop {
        // Drain every complete (possibly pipelined) request in the buffer.
        loop {
            match parse_request(&buf) {
                Ok((req, consumed)) => {
                    buf.drain(..consumed);
                    let started = Instant::now();
                    recorder.begin(&format!("{} {}", req.method, req.path()), "http");
                    let Routed {
                        response,
                        initiate_shutdown,
                    } = route(&req, &shared.ctx);
                    let wrote = stream.write_all(&response.to_bytes()).is_ok();
                    recorder.end();
                    local.incr("http_requests", 1);
                    local.observe("request_ms", started.elapsed().as_secs_f64() * 1e3);
                    if initiate_shutdown {
                        shared.start_drain();
                    }
                    let close = req
                        .header("connection")
                        .is_some_and(|v| v.eq_ignore_ascii_case("close"));
                    if !wrote || close {
                        return;
                    }
                }
                Err(HttpError::Incomplete) => break,
                Err(HttpError::Malformed(why)) => {
                    let resp = Response::json(400, err_json(&format!("bad request: {why}")));
                    let _ = stream.write_all(&resp.to_bytes());
                    return;
                }
            }
        }
        // Sample the stop flag *before* blocking in read: a request the
        // client sent just as the drain completed (e.g. the follow-up
        // poll after a long-poll was answered at drain time) must still
        // get its response. Only a line that stays quiet for a full
        // read tick after the stop closes without one.
        let stopping = shared.stop.load(Ordering::SeqCst);
        match stream.read(&mut scratch) {
            Ok(0) => return,
            Ok(n) => buf.extend_from_slice(&scratch[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if stopping {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}
