//! The scheduling tier: batching, QoS classes, and policy auto-tuning.
//!
//! Sits between [`Engine::submit`](crate::engine::Engine::submit) and the
//! worker pool, replacing the plain FIFO queue with three mechanisms:
//!
//! * **Batching** — queued jobs sharing a benchmark×size *group* are
//!   dequeued together as one [`Batch`], so a worker amortizes benchmark
//!   warmup (LUTs, lazy allocations, instruction cache) across the whole
//!   window instead of paying it per job. Batches are formed at dequeue
//!   time from whatever is pending — no timers, no artificial delay, and
//!   fully deterministic under a virtual clock.
//! * **QoS classes** — every submission carries a [`JobClass`]
//!   (`interactive` or `batch`), and the queue dequeues by deficit round
//!   robin: each class accrues a per-visit quantum of jobs and spends it
//!   before yielding the dispatcher, so a CIF sweep in the batch class can
//!   never starve an interactive SQCIF probe (see [`starvation_bound`]).
//! * **Policy auto-tuning** — [`pick_threads`] chooses a concrete thread
//!   count for `ExecPolicy::Auto` jobs from a per-benchmark×size scaling
//!   model: an Amdahl curve seeded from the committed Table-IV-derived
//!   prior ([`prior_parallel_fraction`]) and refined online from observed
//!   execution times in the engine's [`MetricsRegistry`].
//!
//! The [`Drr`] core is a plain (externally synchronized) data structure so
//! the cluster coordinator can drive it under its own state lock;
//! [`SchedQueue`] wraps it with a mutex + condvar for the single-process
//! engine's blocking workers.

use sdvbs_trace::MetricsRegistry;
use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex, PoisonError};

/// The QoS class a submission rides in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum JobClass {
    /// Latency-sensitive probes; the DRR dispatcher favors this class and
    /// bounds how much batch work can be dispatched ahead of it.
    #[default]
    Interactive,
    /// Throughput work (sweeps, bulk re-runs); scheduled fairly but never
    /// at the expense of interactive latency.
    Batch,
}

/// Number of QoS classes (the DRR state arrays are this wide).
pub const CLASSES: usize = 2;

impl JobClass {
    /// Parses the `?class=` query value. Empty and `interactive` mean
    /// interactive (the default); `batch` means batch.
    ///
    /// # Errors
    ///
    /// Returns the offending value for anything else, so the router can
    /// answer `400` instead of silently misclassifying.
    pub fn parse(text: &str) -> Result<JobClass, String> {
        match text {
            "" | "interactive" => Ok(JobClass::Interactive),
            "batch" => Ok(JobClass::Batch),
            other => Err(format!(
                "unknown class {other:?} (expected \"interactive\" or \"batch\")"
            )),
        }
    }

    /// The wire/query label.
    pub fn label(self) -> &'static str {
        match self {
            JobClass::Interactive => "interactive",
            JobClass::Batch => "batch",
        }
    }

    fn index(self) -> usize {
        match self {
            JobClass::Interactive => 0,
            JobClass::Batch => 1,
        }
    }

    fn from_index(i: usize) -> JobClass {
        if i == 0 {
            JobClass::Interactive
        } else {
            JobClass::Batch
        }
    }
}

/// Scheduler tuning knobs.
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// Most jobs dispatched in one batch (clamped to at least 1). 1
    /// disables batching entirely — every dispatch is a single job.
    pub max_batch: usize,
    /// DRR quantum for the interactive class: jobs it may dispatch per
    /// visit before yielding.
    pub quantum_interactive: u32,
    /// DRR quantum for the batch class. This constant *is* the starvation
    /// bound: at most this many batch jobs are dispatched ahead of a
    /// newly arrived interactive job (see [`starvation_bound`]).
    pub quantum_batch: u32,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            max_batch: 16,
            quantum_interactive: 16,
            quantum_batch: 2,
        }
    }
}

impl SchedConfig {
    fn quantum(&self, class: usize) -> u64 {
        let q = if class == 0 {
            self.quantum_interactive
        } else {
            self.quantum_batch
        };
        u64::from(q.max(1))
    }
}

/// The documented DRR delay bound, in *batch-class jobs dispatched*, for
/// an interactive job that arrives with `interactive_ahead` jobs already
/// pending in its own class.
///
/// Derivation: each full DRR round dispatches at least
/// `quantum_interactive` interactive jobs (or empties the class) and at
/// most `quantum_batch` batch jobs; one extra batch visit may already be
/// in progress (with a freshly accrued quantum) when the job arrives. So
/// the job waits at most
/// `quantum_batch × (⌈(interactive_ahead + 1) / quantum_interactive⌉ + 1)`
/// batch-class dispatches. For a lone probe (`interactive_ahead = 0`) the
/// bound is `2 × quantum_batch` — with the defaults, 4 batch jobs — no
/// matter how deep the batch backlog is.
pub fn starvation_bound(cfg: &SchedConfig, interactive_ahead: usize) -> usize {
    let qi = cfg.quantum_interactive.max(1) as usize;
    let qb = cfg.quantum_batch.max(1) as usize;
    let rounds = interactive_ahead / qi + 1;
    qb * (rounds + 1)
}

/// One dispatch window: consecutive jobs from a single benchmark×size
/// group in a single class, executed back to back by one worker.
#[derive(Debug, Clone)]
pub struct Batch {
    /// The class the batch was dequeued from.
    pub class: JobClass,
    /// The shared benchmark×size group key.
    pub group: String,
    /// Job ids, in submission order.
    pub ids: Vec<u64>,
}

/// One class's pending jobs, grouped by benchmark×size with round-robin
/// rotation across groups.
#[derive(Debug, Default)]
struct ClassQueue {
    /// Group visit order (front is next to dispatch from).
    order: VecDeque<String>,
    groups: HashMap<String, VecDeque<u64>>,
    len: usize,
}

impl ClassQueue {
    fn push(&mut self, id: u64, group: &str, front: bool) {
        let q = self.groups.entry(group.to_string()).or_insert_with(|| {
            if front {
                self.order.push_front(group.to_string());
            } else {
                self.order.push_back(group.to_string());
            }
            VecDeque::new()
        });
        if front {
            q.push_front(id);
        } else {
            q.push_back(id);
        }
        self.len += 1;
    }

    /// Takes up to `limit` jobs from the front group; the group rotates to
    /// the back of the visit order if it still has jobs (intra-class
    /// fairness across groups — warmth is amortized within the batch).
    fn pop_group_batch(&mut self, limit: usize) -> Option<(String, Vec<u64>)> {
        let group = self.order.pop_front()?;
        let q = self
            .groups
            .get_mut(&group)
            .expect("every ordered group has a queue");
        let take = limit.max(1).min(q.len());
        let ids: Vec<u64> = q.drain(..take).collect();
        self.len -= ids.len();
        if q.is_empty() {
            self.groups.remove(&group);
        } else {
            self.order.push_back(group.clone());
        }
        Some((group, ids))
    }

    fn drain_all(&mut self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.len);
        while let Some((_, ids)) = self.pop_group_batch(usize::MAX) {
            out.extend(ids);
        }
        out
    }
}

/// The deficit-round-robin batching core. Externally synchronized — the
/// engine wraps it in [`SchedQueue`], the cluster coordinator holds it
/// under its own state lock.
#[derive(Debug)]
pub struct Drr {
    cfg: SchedConfig,
    classes: [ClassQueue; CLASSES],
    deficit: [u64; CLASSES],
    /// Next class to visit (0 = interactive).
    cursor: usize,
}

impl Drr {
    /// An empty scheduler.
    pub fn new(cfg: SchedConfig) -> Drr {
        Drr {
            cfg,
            classes: [ClassQueue::default(), ClassQueue::default()],
            deficit: [0; CLASSES],
            cursor: 0,
        }
    }

    /// Total pending jobs across both classes.
    pub fn len(&self) -> usize {
        self.classes.iter().map(|c| c.len).sum()
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues a job at the back of its group.
    pub fn push_back(&mut self, id: u64, group: &str, class: JobClass) {
        self.classes[class.index()].push(id, group, false);
    }

    /// Re-enqueues a job at the front of its group (orphan requeue after a
    /// worker death must not lose its place to later arrivals).
    pub fn push_front(&mut self, id: u64, group: &str, class: JobClass) {
        self.classes[class.index()].push(id, group, true);
    }

    /// Dequeues the next batch by deficit round robin, or `None` when
    /// empty.
    ///
    /// Each visit to a non-empty class accrues that class's quantum; the
    /// class keeps dispatching (possibly across several `pop_batch` calls)
    /// until its deficit is spent or it empties, then the cursor advances.
    /// An emptied class forfeits its leftover deficit — credit never
    /// accumulates while there is nothing to spend it on, which is what
    /// keeps [`starvation_bound`] tight.
    pub fn pop_batch(&mut self) -> Option<Batch> {
        if self.is_empty() {
            return None;
        }
        loop {
            let c = self.cursor;
            if self.classes[c].len == 0 {
                self.deficit[c] = 0;
                self.cursor = (c + 1) % CLASSES;
                continue; // total is non-empty, so this skips at most once per class
            }
            if self.deficit[c] == 0 {
                self.deficit[c] = self.cfg.quantum(c);
            }
            let limit = self.cfg.max_batch.max(1).min(self.deficit[c] as usize);
            let (group, ids) = self.classes[c]
                .pop_group_batch(limit)
                .expect("class checked non-empty");
            self.deficit[c] -= ids.len() as u64;
            if self.classes[c].len == 0 {
                self.deficit[c] = 0;
            }
            if self.deficit[c] == 0 {
                self.cursor = (c + 1) % CLASSES;
            }
            return Some(Batch {
                class: JobClass::from_index(c),
                group,
                ids,
            });
        }
    }

    /// Removes and returns every pending job (drain rejects them all).
    pub fn drain_all(&mut self) -> Vec<u64> {
        let mut out = Vec::new();
        for class in &mut self.classes {
            out.extend(class.drain_all());
        }
        self.deficit = [0; CLASSES];
        out
    }
}

/// Why [`SchedQueue::try_push`] refused a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPushError {
    /// The queue is at capacity (admission control → `429`).
    Full,
    /// The queue is closed for drain (→ `503`).
    Closed,
}

struct SchedState {
    drr: Drr,
    closed: bool,
}

/// The engine's blocking scheduler queue: [`Drr`] under a mutex, with a
/// condvar parking the workers while it is empty. Capacity-bounded for
/// admission control; closing wakes everyone and lets workers finish the
/// remaining batches before `pop_batch` returns `None`.
pub struct SchedQueue {
    state: Mutex<SchedState>,
    ready: Condvar,
    capacity: usize,
}

impl SchedQueue {
    /// A queue admitting at most `capacity` pending jobs (clamped ≥ 1).
    pub fn new(capacity: usize, cfg: SchedConfig) -> SchedQueue {
        SchedQueue {
            state: Mutex::new(SchedState {
                drr: Drr::new(cfg),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues without blocking; refuses when full or closed.
    ///
    /// # Errors
    ///
    /// [`SchedPushError::Full`] at capacity, [`SchedPushError::Closed`]
    /// after [`SchedQueue::close`].
    pub fn try_push(&self, id: u64, group: &str, class: JobClass) -> Result<(), SchedPushError> {
        let mut st = self.lock();
        if st.closed {
            return Err(SchedPushError::Closed);
        }
        if st.drr.len() >= self.capacity {
            return Err(SchedPushError::Full);
        }
        st.drr.push_back(id, group, class);
        drop(st);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until a batch is available (or the queue is closed *and*
    /// empty, which returns `None` — the worker-exit signal).
    pub fn pop_batch(&self) -> Option<Batch> {
        let mut st = self.lock();
        loop {
            if let Some(batch) = st.drr.pop_batch() {
                return Some(batch);
            }
            if st.closed {
                return None;
            }
            st = self.ready.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: future pushes are refused, workers drain the
    /// remaining batches and then see `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Pending jobs right now.
    pub fn len(&self) -> usize {
        self.lock().drr.len()
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

// ---------------------------------------------------------------------------
// Policy auto-tuning: the per-benchmark×size scaling model.
// ---------------------------------------------------------------------------

/// Table-IV-derived prior: the parallel fraction `p` of each benchmark's
/// pipeline for the Amdahl model `t(n) = t(1)·((1−p) + p/n)`.
///
/// The paper's Table IV reports per-kernel parallelism on idealized
/// hardware (e.g. Disparity's SSD at 1,800×, Stitch's LS solver at
/// 20,900×, Tracking's matrix inversion at 171,000×); a kernel with
/// parallelism `S` contributes `1 − 1/S ≈ 1` of its time as parallel
/// work, so the benchmark-level prior is dominated by how much of the
/// pipeline its parallel kernels cover. These constants fold that in with
/// the suite's measured kernel occupancy (Figure 3): stencil-heavy
/// pipelines are nearly all parallel; the tree/sequential benchmarks
/// (localization's particle resampling, texture synthesis's sequential
/// patch placement) much less so.
pub const TABLE_IV_PRIOR: &[(&str, f64)] = &[
    ("Disparity Map", 0.95),    // correlation/SSD/sort: 160×–1,800×
    ("Feature Tracking", 0.92), // gaussian/integral/area sum: 425×–171,000×
    ("SIFT", 0.90),             // SIFT/interpolation/integral: 180×–16,000×
    ("Image Stitch", 0.90),     // LS solver/SVD/convolution: 4,500×–20,900×
    ("SVM", 0.90),              // matrix ops/learning: 851×–1,000×
    ("Image Segmentation", 0.85),
    ("Face Detection", 0.80),
    ("Robot Localization", 0.40),
    ("Texture Synthesis", 0.30),
];

/// Prior parallel fraction for `benchmark` (0.5 for anything unlisted).
pub fn prior_parallel_fraction(benchmark: &str) -> f64 {
    TABLE_IV_PRIOR
        .iter()
        .find(|(name, _)| *name == benchmark)
        .map_or(0.5, |(_, p)| *p)
}

/// Observations needed at a thread count before its measured mean is
/// trusted over the model's prediction.
pub const MIN_OBSERVATIONS: usize = 2;

/// Jobs whose serial pipeline runs under this many milliseconds are not
/// worth parallelizing — thread spawn/join overhead dominates.
pub const PARALLEL_MIN_MS: f64 = 2.0;

/// Per-extra-thread overhead charged by the model, in ms (spawn + join +
/// sharing), so the tuner never picks a wide policy for marginal gains.
const THREAD_OVERHEAD_MS: f64 = 0.06;

/// The windowed histogram name the engine feeds with observed pipeline
/// times for one benchmark×size group at one thread count.
pub fn exec_hist_name(group: &str, threads: usize) -> String {
    format!("exec_ms|{group}|t{threads}")
}

/// The mean observed pipeline time for `group` at `threads`, once at
/// least [`MIN_OBSERVATIONS`] samples exist.
fn observed_mean(reg: &MetricsRegistry, group: &str, threads: usize) -> Option<f64> {
    let h = reg.histogram(&exec_hist_name(group, threads))?;
    (h.count() >= MIN_OBSERVATIONS).then(|| h.mean())
}

/// Thread counts the tuner considers: powers of two up to `auto_threads`,
/// plus `auto_threads` itself.
fn candidates(auto_threads: usize) -> Vec<usize> {
    let auto = auto_threads.max(1);
    let mut out = vec![1usize];
    let mut n = 2usize;
    while n < auto {
        out.push(n);
        n *= 2;
    }
    if auto > 1 {
        out.push(auto);
    }
    out
}

/// Picks the thread count for an `ExecPolicy::Auto` job of `benchmark` in
/// `group` (benchmark×size), given the engine's metrics history.
///
/// Deterministic in the registry contents: the Amdahl curve uses the
/// Table-IV prior until both a serial and a parallel mean are observed,
/// then refines `p` from the measured ratio. Measured means (at
/// [`MIN_OBSERVATIONS`]+ samples) always override the model at their own
/// thread count. Jobs measured faster than [`PARALLEL_MIN_MS`] serially
/// stay serial.
pub fn pick_threads(
    reg: &MetricsRegistry,
    group: &str,
    benchmark: &str,
    auto_threads: usize,
) -> usize {
    let auto = auto_threads.max(1);
    if auto == 1 {
        return 1;
    }
    let candidates = candidates(auto);
    let t1 = observed_mean(reg, group, 1);
    if let Some(t1) = t1 {
        if t1 < PARALLEL_MIN_MS {
            return 1;
        }
    }
    // Refine the prior from the widest thread count with data (the widest
    // gives the best-conditioned estimate of the serial fraction).
    let mut p = prior_parallel_fraction(benchmark);
    if let Some(t1) = t1 {
        let refined = candidates
            .iter()
            .rev()
            .filter(|&&n| n > 1)
            .find_map(|&n| observed_mean(reg, group, n).map(|tn| (n, tn)));
        if let Some((n, tn)) = refined {
            let speed_fraction = (1.0 - tn / t1.max(f64::MIN_POSITIVE)) / (1.0 - 1.0 / n as f64);
            p = speed_fraction.clamp(0.0, 0.995);
        }
    }
    // Relative serial time 1.0 when unmeasured: the overhead term then
    // reads "fraction of a typical serial run", which is conservative.
    let base = t1.unwrap_or(1.0);
    let mut best = (1usize, f64::INFINITY);
    for &n in &candidates {
        let predicted = observed_mean(reg, group, n).unwrap_or_else(|| {
            base * ((1.0 - p) + p / n as f64) + THREAD_OVERHEAD_MS * (n - 1) as f64
        });
        if predicted < best.1 {
            best = (n, predicted);
        }
    }
    best.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(max_batch: usize, qi: u32, qb: u32) -> SchedConfig {
        SchedConfig {
            max_batch,
            quantum_interactive: qi,
            quantum_batch: qb,
        }
    }

    #[test]
    fn class_parsing_defaults_to_interactive() {
        assert_eq!(JobClass::parse(""), Ok(JobClass::Interactive));
        assert_eq!(JobClass::parse("interactive"), Ok(JobClass::Interactive));
        assert_eq!(JobClass::parse("batch"), Ok(JobClass::Batch));
        assert!(JobClass::parse("urgent").is_err());
    }

    #[test]
    fn one_group_dequeues_as_one_batch_up_to_max() {
        let mut drr = Drr::new(cfg(4, 16, 2));
        for id in 0..6 {
            drr.push_back(id, "Disparity Map|sqcif", JobClass::Interactive);
        }
        let b = drr.pop_batch().unwrap();
        assert_eq!(b.ids, vec![0, 1, 2, 3]);
        assert_eq!(b.group, "Disparity Map|sqcif");
        let b = drr.pop_batch().unwrap();
        assert_eq!(b.ids, vec![4, 5]);
        assert!(drr.pop_batch().is_none());
    }

    #[test]
    fn groups_within_a_class_round_robin() {
        let mut drr = Drr::new(cfg(2, 16, 2));
        for id in 0..4 {
            drr.push_back(id, "A", JobClass::Interactive);
        }
        for id in 10..12 {
            drr.push_back(id, "B", JobClass::Interactive);
        }
        assert_eq!(drr.pop_batch().unwrap().ids, vec![0, 1]); // A rotates back
        assert_eq!(drr.pop_batch().unwrap().ids, vec![10, 11]); // B's turn
        assert_eq!(drr.pop_batch().unwrap().ids, vec![2, 3]);
        assert!(drr.is_empty());
    }

    #[test]
    fn batch_class_yields_within_its_quantum() {
        // 10 batch jobs pending, then an interactive arrival: at most
        // 2×quantum_batch batch jobs dispatch before the probe.
        let c = cfg(16, 16, 2);
        let mut drr = Drr::new(c.clone());
        for id in 0..10 {
            drr.push_back(id, "CIF sweep", JobClass::Batch);
        }
        // The dispatcher is mid-stream: take one batch first.
        let first = drr.pop_batch().unwrap();
        assert_eq!(first.class, JobClass::Batch);
        drr.push_back(100, "probe", JobClass::Interactive);
        let mut batch_before_probe = first.ids.len();
        loop {
            let b = drr.pop_batch().unwrap();
            if b.class == JobClass::Interactive {
                assert_eq!(b.ids, vec![100]);
                break;
            }
            batch_before_probe += b.ids.len();
        }
        assert!(
            batch_before_probe <= starvation_bound(&c, 0),
            "{batch_before_probe} batch jobs dispatched ahead of the probe \
             (bound {})",
            starvation_bound(&c, 0)
        );
    }

    #[test]
    fn push_front_requeues_ahead_of_later_arrivals() {
        let mut drr = Drr::new(cfg(1, 16, 2));
        drr.push_back(1, "A", JobClass::Interactive);
        drr.push_back(2, "A", JobClass::Interactive);
        let b = drr.pop_batch().unwrap();
        assert_eq!(b.ids, vec![1]);
        drr.push_front(1, "A", JobClass::Interactive); // worker died; requeue
        assert_eq!(drr.pop_batch().unwrap().ids, vec![1]);
        assert_eq!(drr.pop_batch().unwrap().ids, vec![2]);
    }

    #[test]
    fn drain_all_empties_both_classes() {
        let mut drr = Drr::new(cfg(4, 16, 2));
        drr.push_back(1, "A", JobClass::Interactive);
        drr.push_back(2, "B", JobClass::Batch);
        drr.push_back(3, "A", JobClass::Batch);
        let mut ids = drr.drain_all();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2, 3]);
        assert!(drr.is_empty());
        assert!(drr.pop_batch().is_none());
    }

    #[test]
    fn sched_queue_enforces_capacity_and_close() {
        let q = SchedQueue::new(2, cfg(4, 16, 2));
        assert_eq!(q.try_push(1, "A", JobClass::Interactive), Ok(()));
        assert_eq!(q.try_push(2, "A", JobClass::Interactive), Ok(()));
        assert_eq!(
            q.try_push(3, "A", JobClass::Interactive),
            Err(SchedPushError::Full)
        );
        q.close();
        assert_eq!(
            q.try_push(4, "A", JobClass::Interactive),
            Err(SchedPushError::Closed)
        );
        // Remaining work still dequeues after close; then None.
        assert_eq!(q.pop_batch().unwrap().ids, vec![1, 2]);
        assert!(q.pop_batch().is_none());
    }

    #[test]
    fn tuner_uses_the_prior_cold_and_measurements_warm() {
        let reg = MetricsRegistry::new();
        // Cold, highly parallel prior: go wide (the per-thread overhead
        // term keeps the cold pick conservative, but it must leave 1).
        assert!(pick_threads(&reg, "Disparity Map|cif", "Disparity Map", 8) >= 4);
        // Cold, mostly serial prior: stay narrow.
        assert!(pick_threads(&reg, "Texture Synthesis|cif", "Texture Synthesis", 8) <= 2);
        // auto_threads=1 short-circuits.
        assert_eq!(pick_threads(&reg, "g", "Disparity Map", 1), 1);

        // Tiny measured serial time: stay serial regardless of prior.
        let mut reg = MetricsRegistry::new();
        for _ in 0..MIN_OBSERVATIONS {
            reg.observe(&exec_hist_name("Disparity Map|sqcif", 1), 0.4);
        }
        assert_eq!(
            pick_threads(&reg, "Disparity Map|sqcif", "Disparity Map", 8),
            1
        );

        // Measured anti-scaling overrides an optimistic prior: t(8) worse
        // than t(1) refines p to 0 and the tuner falls back to serial.
        let mut reg = MetricsRegistry::new();
        for _ in 0..MIN_OBSERVATIONS {
            reg.observe(&exec_hist_name("g", 1), 20.0);
            reg.observe(&exec_hist_name("g", 8), 30.0);
        }
        assert_eq!(pick_threads(&reg, "g", "Disparity Map", 8), 1);

        // Measured healthy scaling keeps the wide pick.
        let mut reg = MetricsRegistry::new();
        for _ in 0..MIN_OBSERVATIONS {
            reg.observe(&exec_hist_name("g", 1), 40.0);
            reg.observe(&exec_hist_name("g", 8), 8.0);
        }
        assert_eq!(pick_threads(&reg, "g", "Disparity Map", 8), 8);
    }

    #[test]
    fn starvation_bound_formula_matches_the_docs() {
        let c = cfg(16, 16, 2);
        assert_eq!(starvation_bound(&c, 0), 4); // lone probe: 2×quantum_batch
        assert_eq!(starvation_bound(&c, 15), 4); // still one round
        assert_eq!(starvation_bound(&c, 16), 6); // two rounds
        assert_eq!(starvation_bound(&c, 47), 8);
    }
}
