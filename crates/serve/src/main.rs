//! `sdvbs-serve` — CLI for the benchmark-serving daemon.
//!
//! ```text
//! sdvbs-serve serve   [--addr HOST:PORT] [--workers N] [--queue N]
//!                     [--timeout-ms N]
//! sdvbs-serve loadgen --addr HOST:PORT [--conns N] [--requests N]
//!                     [--bench NAME] [--size S] [--policy P] [--seed N]
//!                     [--iterations N] [--unique N] [--poll-ms N]
//! sdvbs-serve smoke
//! ```
//!
//! `serve` runs until a client posts `/v1/shutdown`, then drains
//! gracefully and exits. `loadgen` drives a running server closed-loop
//! and prints hit/miss latency percentiles. `smoke` is the CI gate: it
//! starts servers in-process and checks caching, coalescing, admission
//! control, graceful drain, the metrics exposition, and the trace
//! endpoint end to end.
//!
//! Exit codes: 0 success, 1 a smoke/loadgen gate failed, 2 usage or
//! runtime error.

use sdvbs_core::{all_benchmarks, ExecPolicy, InputSize};
use sdvbs_runner::{parse_policy, parse_size, Job};
use sdvbs_serve::{
    run_loadgen, spec_body, Client, EngineConfig, LoadgenConfig, Server, ServerConfig,
};
use sdvbs_trace::jsonl::Value;
use sdvbs_trace::Trace;
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match cmd.as_str() {
        "serve" => cmd_serve(rest),
        "loadgen" => cmd_loadgen(rest),
        "smoke" => cmd_smoke(rest),
        "-h" | "--help" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  sdvbs-serve serve   [--addr HOST:PORT] [--workers N] [--queue N]
                      [--timeout-ms N]
  sdvbs-serve loadgen --addr HOST:PORT [--conns N] [--requests N]
                      [--bench NAME] [--size S] [--policy P] [--seed N]
                      [--iterations N] [--unique N] [--poll-ms N]
  sdvbs-serve smoke

serve runs until a client POSTs /v1/shutdown, then drains and exits.
sizes: sqcif | qcif | cif | WxH     policies: serial | threads:N | auto";

fn cmd_serve(args: &[String]) -> Result<ExitCode, String> {
    let mut cfg = ServerConfig {
        addr: "127.0.0.1:8099".to_string(),
        engine: EngineConfig::default(),
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => cfg.addr = value("--addr")?,
            "--workers" => cfg.engine.workers = parse_num(&value("--workers")?, "--workers")?,
            "--queue" => {
                cfg.engine.queue_capacity = parse_num(&value("--queue")?, "--queue")?;
            }
            "--timeout-ms" => {
                let ms: u64 = parse_num(&value("--timeout-ms")?, "--timeout-ms")?;
                cfg.engine.timeout = Some(Duration::from_millis(ms));
            }
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    let (workers, queue) = (cfg.engine.workers.max(1), cfg.engine.queue_capacity.max(1));
    let server = Server::start(cfg).map_err(|e| format!("bind failed: {e}"))?;
    println!(
        "sdvbs-serve listening on {} ({workers} workers, queue {queue})",
        server.addr(),
    );
    let report = server.wait();
    println!(
        "drained: {} completed, {} rejected",
        report.completed, report.rejected
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_loadgen(args: &[String]) -> Result<ExitCode, String> {
    let mut addr = None;
    let mut conns = 4usize;
    let mut requests = 50usize;
    let mut bench = "Disparity Map".to_string();
    let mut size = InputSize::Sqcif;
    let mut policy = ExecPolicy::Serial;
    let mut seed = 1u64;
    let mut iterations = 1usize;
    let mut unique = 4u64;
    let mut poll_ms = 1000u64;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => addr = Some(value("--addr")?),
            "--conns" => conns = parse_num(&value("--conns")?, "--conns")?,
            "--requests" => requests = parse_num(&value("--requests")?, "--requests")?,
            "--bench" => bench = value("--bench")?,
            "--size" => size = parse_size(&value("--size")?)?,
            "--policy" => policy = parse_policy(&value("--policy")?)?,
            "--seed" => seed = parse_num(&value("--seed")?, "--seed")?,
            "--iterations" => iterations = parse_num(&value("--iterations")?, "--iterations")?,
            "--unique" => unique = parse_num(&value("--unique")?, "--unique")?,
            "--poll-ms" => poll_ms = parse_num(&value("--poll-ms")?, "--poll-ms")?,
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    let addr = addr.ok_or("loadgen requires --addr HOST:PORT")?;
    if !all_benchmarks().iter().any(|b| b.info().name == bench) {
        return Err(format!("unknown benchmark {bench:?}"));
    }
    let cfg = LoadgenConfig {
        addr,
        conns,
        requests,
        spec: Job::new(bench, size, policy, seed, iterations),
        unique,
        poll_ms,
    };
    let report = run_loadgen(&cfg).map_err(|e| format!("loadgen failed: {e}"))?;
    print!("{report}");
    Ok(if report.errors == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

/// The CI smoke gate. Everything runs in-process on loopback.
fn cmd_smoke(args: &[String]) -> Result<ExitCode, String> {
    if !args.is_empty() {
        return Err(format!("smoke takes no flags\n{USAGE}"));
    }
    match smoke() {
        Ok(()) => {
            println!("serve smoke: PASS");
            Ok(ExitCode::SUCCESS)
        }
        Err(why) => {
            eprintln!("serve smoke: FAIL: {why}");
            Ok(ExitCode::from(1))
        }
    }
}

fn smoke() -> Result<(), String> {
    let threads_before = thread_count();

    // --- Server A: single worker, single queue slot, held execution, so
    // cache / coalescing / 429 / drain transitions are deterministic. ---
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        engine: EngineConfig {
            workers: 1,
            queue_capacity: 1,
            timeout: None,
            hold: Some(Duration::from_millis(400)),
        },
    })
    .map_err(|e| format!("bind: {e}"))?;
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).map_err(|e| format!("connect: {e}"))?;
    let spec = Job::new(
        "Disparity Map",
        InputSize::Custom {
            width: 32,
            height: 24,
        },
        ExecPolicy::Serial,
        7,
        1,
    );

    // 1. Miss: submit, long-poll to done; the sample includes the hold.
    let started = Instant::now();
    let resp = post_jobs(&mut client, &spec_body(&spec, 7), "")?;
    expect_status("first submission", resp.0, 202)?;
    let id = field_u64(&resp.1, "id")?;
    poll_until(&mut client, id, "done", Duration::from_secs(60))?;
    let miss_ms = started.elapsed().as_secs_f64() * 1e3;

    // 2. Hit: identical spec is answered from cache, fast.
    let started = Instant::now();
    let resp = post_jobs(&mut client, &spec_body(&spec, 7), "")?;
    let hit_ms = started.elapsed().as_secs_f64() * 1e3;
    expect_status("cached submission", resp.0, 200)?;
    if !field_bool(&resp.1, "cached")? {
        return Err(format!("expected \"cached\":true, got {}", resp.1));
    }
    if hit_ms >= miss_ms * 0.01 {
        return Err(format!(
            "cache hit not cheap enough: hit {hit_ms:.3} ms vs miss {miss_ms:.3} ms (gate: <1%)"
        ));
    }
    println!("  cache: miss {miss_ms:.1} ms, hit {hit_ms:.3} ms");

    // 3. fresh=1 bypasses the cache and re-executes.
    let resp = post_jobs(&mut client, &spec_body(&spec, 7), "?fresh=1")?;
    expect_status("fresh submission", resp.0, 202)?;
    let fresh_id = field_u64(&resp.1, "id")?;
    poll_until(&mut client, fresh_id, "running", Duration::from_secs(10))?;

    // 4. Fill the single queue slot with an uncached spec...
    let resp = post_jobs(&mut client, &spec_body(&spec, 8), "")?;
    expect_status("queue-filling submission", resp.0, 202)?;
    let queued_id = field_u64(&resp.1, "id")?;

    // 5. ...then coalesce onto it: the identical spec attaches to the
    // in-flight job instead of consuming another queue slot.
    let resp = post_jobs(&mut client, &spec_body(&spec, 8), "")?;
    expect_status("coalesced submission", resp.0, 202)?;
    if !field_bool(&resp.1, "coalesced")? {
        return Err(format!("expected \"coalesced\":true, got {}", resp.1));
    }
    if field_u64(&resp.1, "id")? != queued_id {
        return Err("coalesced submission did not attach to the in-flight job".into());
    }

    // 6. Admission control: the queue slot is taken, so a third distinct
    // spec is refused.
    let resp = post_jobs(&mut client, &spec_body(&spec, 9), "")?;
    expect_status("overflow submission", resp.0, 429)?;
    if resp.2.as_deref() != Some("1") {
        return Err(format!("429 without retry-after: {:?}", resp.2));
    }
    println!("  admission: 429 with retry-after on a full queue");

    // 7. Graceful drain: running work finishes, queued work is rejected,
    // new work is refused, every thread is joined.
    let resp = client
        .request("POST", "/v1/shutdown", None)
        .map_err(|e| format!("shutdown request: {e}"))?;
    expect_status("shutdown", resp.status, 200)?;
    let resp = post_jobs(&mut client, &spec_body(&spec, 10), "")?;
    expect_status("post-shutdown submission", resp.0, 503)?;
    poll_until(&mut client, fresh_id, "done", Duration::from_secs(60))?;
    poll_until(&mut client, queued_id, "rejected", Duration::from_secs(60))?;
    drop(client);
    let report = server.wait();
    if report.completed < 2 || report.rejected < 1 {
        return Err(format!("unexpected drain report: {report:?}"));
    }
    println!(
        "  drain: {} completed, {} rejected, listener closed",
        report.completed, report.rejected
    );
    if let (Some(before), Some(_)) = (threads_before, thread_count()) {
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            let now = thread_count().unwrap_or(before);
            if now <= before {
                break;
            }
            if Instant::now() >= deadline {
                return Err(format!("thread leak after drain: {before} -> {now}"));
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    // --- Server B: real concurrency, a loadgen burst, and the metrics /
    // trace exposition gates. ---
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        engine: EngineConfig {
            workers: 2,
            queue_capacity: 32,
            timeout: None,
            hold: None,
        },
    })
    .map_err(|e| format!("bind: {e}"))?;
    let addr = server.addr().to_string();
    let cfg = LoadgenConfig {
        addr: addr.clone(),
        conns: 4,
        requests: 50,
        spec: Job::new(
            "Disparity Map",
            InputSize::Custom {
                width: 32,
                height: 24,
            },
            ExecPolicy::Serial,
            100,
            1,
        ),
        unique: 4,
        poll_ms: 1000,
    };
    let lg = run_loadgen(&cfg).map_err(|e| format!("loadgen: {e}"))?;
    print!("{lg}");
    if lg.errors != 0 || lg.sent != 50 {
        return Err(format!(
            "loadgen burst: {} ok, {} errors",
            lg.sent, lg.errors
        ));
    }
    if lg.hits.count() == 0 || lg.misses.count() == 0 {
        return Err(format!(
            "expected both latency classes populated: {} hits, {} misses",
            lg.hits.count(),
            lg.misses.count()
        ));
    }

    check_metrics(&addr)?;
    check_trace(&addr)?;
    let mut client = Client::connect(&addr).map_err(|e| format!("connect: {e}"))?;
    let resp = client
        .request("POST", "/v1/shutdown", None)
        .map_err(|e| format!("shutdown request: {e}"))?;
    expect_status("shutdown", resp.status, 200)?;
    drop(client);
    server.wait();
    Ok(())
}

/// Structural gate on the `/metrics` exposition: every line is
/// `name value` or `name{stat="..."} value`, every name carries the
/// `sdvbs_serve_` prefix, every value parses as a float, and the
/// counters/histograms the dashboardable story depends on are present.
/// Connection-local request stats merge when their connection closes, so
/// this retries briefly until they appear.
fn check_metrics(addr: &str) -> Result<(), String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let deadline = Instant::now() + Duration::from_secs(5);
    let text = loop {
        let resp = client
            .request("GET", "/metrics", None)
            .map_err(|e| format!("GET /metrics: {e}"))?;
        expect_status("/metrics", resp.status, 200)?;
        let text = resp.body_text();
        if text.contains("sdvbs_serve_http_requests ") || Instant::now() >= deadline {
            break text;
        }
        std::thread::sleep(Duration::from_millis(100));
    };
    let mut names = Vec::new();
    for line in text.lines().filter(|l| !l.is_empty()) {
        let (name_part, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("metrics line without value: {line:?}"))?;
        value
            .parse::<f64>()
            .map_err(|_| format!("metrics value not a number: {line:?}"))?;
        let name = name_part.split('{').next().unwrap_or_default();
        if !name.starts_with("sdvbs_serve_") {
            return Err(format!("metrics name missing prefix: {line:?}"));
        }
        if let Some(rest) = name_part.strip_prefix(name) {
            let labels_ok =
                rest.is_empty() || (rest.starts_with("{stat=\"") && rest.ends_with("\"}"));
            if !labels_ok {
                return Err(format!("bad metrics labels: {line:?}"));
            }
        }
        names.push(name_part.to_string());
    }
    for required in [
        "sdvbs_serve_jobs_executed",
        "sdvbs_serve_cache_hits",
        "sdvbs_serve_http_requests",
        "sdvbs_serve_job_exec_ms{stat=\"count\"}",
        "sdvbs_serve_request_ms{stat=\"p99\"}",
    ] {
        if !names.iter().any(|n| n == required) {
            return Err(format!("missing required metric {required:?}"));
        }
    }
    println!("  metrics: {} exposition lines, structure ok", names.len());
    Ok(())
}

/// The `/v1/trace` endpoint must serve a loadable, structurally valid
/// Chrome trace of the request spans recorded so far.
fn check_trace(addr: &str) -> Result<(), String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let resp = client
            .request("GET", "/v1/trace", None)
            .map_err(|e| format!("GET /v1/trace: {e}"))?;
        expect_status("/v1/trace", resp.status, 200)?;
        let trace = Trace::from_chrome_json(&resp.body_text())
            .map_err(|e| format!("trace does not parse: {e}"))?;
        if !trace.is_empty() {
            let stats = trace
                .validate()
                .map_err(|e| format!("trace does not validate: {e}"))?;
            println!(
                "  trace: {} events across {} tracks, spans balanced",
                trace.events().len(),
                stats.tracks
            );
            return Ok(());
        }
        if Instant::now() >= deadline {
            return Err("trace stayed empty (no connection spans absorbed)".into());
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// POSTs a job spec; returns (status, body, retry-after header).
fn post_jobs(
    client: &mut Client,
    body: &str,
    query: &str,
) -> Result<(u16, String, Option<String>), String> {
    let resp = client
        .request("POST", &format!("/v1/jobs{query}"), Some(body))
        .map_err(|e| format!("POST /v1/jobs: {e}"))?;
    let retry_after = resp.header("retry-after").map(str::to_string);
    Ok((resp.status, resp.body_text(), retry_after))
}

/// Polls `GET /v1/jobs/<id>` until its state equals `want`.
fn poll_until(client: &mut Client, id: u64, want: &str, limit: Duration) -> Result<(), String> {
    let deadline = Instant::now() + limit;
    loop {
        let resp = client
            .request("GET", &format!("/v1/jobs/{id}?wait_ms=200"), None)
            .map_err(|e| format!("GET /v1/jobs/{id}: {e}"))?;
        let state = Value::parse(&resp.body_text())
            .ok()
            .and_then(|v| v.get("state").and_then(Value::as_str).map(String::from))
            .ok_or_else(|| format!("job {id}: unparsable poll body"))?;
        if state == want {
            return Ok(());
        }
        if matches!(state.as_str(), "done" | "rejected") || Instant::now() >= deadline {
            return Err(format!("job {id}: wanted state {want:?}, got {state:?}"));
        }
    }
}

fn expect_status(what: &str, got: u16, want: u16) -> Result<(), String> {
    if got == want {
        Ok(())
    } else {
        Err(format!("{what}: expected HTTP {want}, got {got}"))
    }
}

fn field_u64(body: &str, field: &str) -> Result<u64, String> {
    Value::parse(body)
        .ok()
        .and_then(|v| v.get(field).and_then(Value::as_u64))
        .ok_or_else(|| format!("missing numeric field {field:?} in {body}"))
}

fn field_bool(body: &str, field: &str) -> Result<bool, String> {
    let v = Value::parse(body).map_err(|e| format!("unparsable body {body}: {e}"))?;
    match v.get(field) {
        Some(Value::Bool(b)) => Ok(*b),
        _ => Err(format!("missing bool field {field:?} in {body}")),
    }
}

/// Current thread count from `/proc/self/status` (Linux only).
fn thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

fn parse_num<T: std::str::FromStr>(text: &str, flag: &str) -> Result<T, String> {
    text.parse()
        .map_err(|_| format!("{flag}: not a number: {text:?}"))
}
