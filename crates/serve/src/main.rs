//! `sdvbs-serve` — CLI for the benchmark-serving daemon.
//!
//! ```text
//! sdvbs-serve serve       [--addr HOST:PORT] [--workers N] [--queue N]
//!                         [--timeout-ms N] [--hold-ms N]
//! sdvbs-serve worker      [--addr HOST:PORT] [--name S] [--workers N]
//!                         [--queue N] [--timeout-ms N] [--hold-ms N]
//! sdvbs-serve coordinator --workers ADDR,ADDR,... [--addr HOST:PORT]
//!                         [--queue N] [--heartbeat-ms N] [--liveness-ms N]
//!                         [--retries N]
//! sdvbs-serve loadgen     --addr HOST:PORT[,HOST:PORT...] [--conns N]
//!                         [--requests N] [--bench NAME] [--size S]
//!                         [--policy P] [--seed N] [--iterations N]
//!                         [--unique N] [--poll-ms N]
//! sdvbs-serve loadgen     --addr HOST:PORT --stream PIPE[:POLICY][@FPS][,...]
//!                         [--frames N] [--fps F] [--size S] [--seed N]
//! sdvbs-serve smoke
//! sdvbs-serve sched-smoke
//! sdvbs-serve cluster-smoke
//! sdvbs-serve stream-smoke
//! ```
//!
//! `serve` runs until a client posts `/v1/shutdown`, then drains
//! gracefully and exits. `worker` and `coordinator` are the cluster
//! mode: workers execute jobs shipped over the wire protocol, the
//! coordinator keeps the HTTP front (cache, coalescing, admission) and
//! shards admitted jobs across them. `loadgen` drives running servers
//! closed-loop and prints hit/miss latency percentiles (per target and
//! aggregate); with `--stream` it instead opens one video stream per
//! spec, feeds frames at the declared rate, and reports the server's
//! per-frame latency percentiles, SLA violations, and degraded/dropped
//! frame counts. `smoke` is the single-process CI gate; `sched-smoke`
//! gates the scheduling tier (batching throughput, QoS starvation bound,
//! auto-tuning); `cluster-smoke` boots real worker subprocesses and
//! gates scaling, result fidelity, and worker-death handling;
//! `stream-smoke` gates the streaming tier (one-shot bit-identity,
//! degrade engage/disengage under an overload burst, drop-policy
//! shedding, exact frame accounting, per-stream metrics and trace).
//!
//! Exit codes: 0 success, 1 a smoke/loadgen gate failed, 2 usage or
//! runtime error.

use sdvbs_core::{all_benchmarks, ExecPolicy, InputSize};
use sdvbs_runner::{parse_policy, parse_size, Job, RunRecord};
use sdvbs_serve::{
    run_loadgen, run_stream_loadgen, run_worker, spec_body, starvation_bound, stream_spec_body,
    Client, ClusterConfig, ClusterEngine, Engine, EngineConfig, JobClass, LoadgenConfig,
    LoadgenReport, SchedConfig, Server, ServerConfig, StreamLoadConfig, StreamRun, Submission,
    WorkerConfig,
};
use sdvbs_stream::{
    fold_digest, run_one_shot, DegradePolicy, PipelineKind, StreamSpec, DIGEST_SEED,
};
use sdvbs_trace::jsonl::Value;
use sdvbs_trace::Trace;
use std::io::BufRead;
use std::process::{Child, Command, ExitCode, Stdio};
use std::time::{Duration, Instant};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match cmd.as_str() {
        "serve" => cmd_serve(rest),
        "worker" => cmd_worker(rest),
        "coordinator" => cmd_coordinator(rest),
        "loadgen" => cmd_loadgen(rest),
        "smoke" => cmd_smoke(rest),
        "sched-smoke" => cmd_sched_smoke(rest),
        "cluster-smoke" => cmd_cluster_smoke(rest),
        "stream-smoke" => cmd_stream_smoke(rest),
        "-h" | "--help" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  sdvbs-serve serve       [--addr HOST:PORT] [--workers N] [--queue N]
                          [--timeout-ms N] [--hold-ms N]
                          [--cache-capacity N] [--max-batch N]
  sdvbs-serve worker      [--addr HOST:PORT] [--name S] [--workers N]
                          [--queue N] [--timeout-ms N] [--hold-ms N]
                          [--cache-capacity N] [--max-batch N]
  sdvbs-serve coordinator --workers ADDR,ADDR,... [--addr HOST:PORT]
                          [--queue N] [--heartbeat-ms N] [--liveness-ms N]
                          [--retries N] [--cache-capacity N] [--max-batch N]
  sdvbs-serve loadgen     --addr HOST:PORT[,HOST:PORT...] [--conns N]
                          [--requests N] [--bench NAME] [--size S]
                          [--policy P] [--seed N] [--iterations N]
                          [--unique N] [--poll-ms N]
  sdvbs-serve loadgen     --addr HOST:PORT --stream PIPE[:POLICY][@FPS][,...]
                          [--frames N] [--fps F] [--size S] [--seed N]
  sdvbs-serve smoke
  sdvbs-serve sched-smoke
  sdvbs-serve cluster-smoke
  sdvbs-serve stream-smoke

serve and coordinator run until a client POSTs /v1/shutdown, then drain
and exit; a worker exits after its coordinator drains it (or vanishes).
--max-batch 1 disables dispatch batching; --cache-capacity bounds the
result cache (LRU eviction past it). --stream opens one video stream
per item and paces frames at --fps (an @FPS suffix overrides it for
that one stream); streams get seeds seed, seed+1, ...
sizes: sqcif | qcif | cif | WxH     policies: serial | threads:N | auto
stream pipelines: tracking | disparity | stitch
stream policies:  drop | degrade (default)";

fn cmd_serve(args: &[String]) -> Result<ExitCode, String> {
    let mut cfg = ServerConfig {
        addr: "127.0.0.1:8099".to_string(),
        engine: EngineConfig::default(),
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => cfg.addr = value("--addr")?,
            "--workers" => cfg.engine.workers = parse_num(&value("--workers")?, "--workers")?,
            "--queue" => {
                cfg.engine.queue_capacity = parse_num(&value("--queue")?, "--queue")?;
            }
            "--timeout-ms" => {
                let ms: u64 = parse_num(&value("--timeout-ms")?, "--timeout-ms")?;
                cfg.engine.timeout = Some(Duration::from_millis(ms));
            }
            "--hold-ms" => {
                let ms: u64 = parse_num(&value("--hold-ms")?, "--hold-ms")?;
                cfg.engine.hold = Some(Duration::from_millis(ms));
            }
            "--cache-capacity" => {
                cfg.engine.cache_capacity =
                    parse_num(&value("--cache-capacity")?, "--cache-capacity")?;
            }
            "--max-batch" => {
                cfg.engine.sched.max_batch = parse_num(&value("--max-batch")?, "--max-batch")?;
            }
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    let (workers, queue) = (cfg.engine.workers.max(1), cfg.engine.queue_capacity.max(1));
    let server = Server::start(cfg).map_err(|e| format!("bind failed: {e}"))?;
    println!(
        "sdvbs-serve listening on {} ({workers} workers, queue {queue})",
        server.addr(),
    );
    let report = server.wait();
    println!(
        "drained: {} completed, {} rejected",
        report.completed, report.rejected
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_worker(args: &[String]) -> Result<ExitCode, String> {
    let mut cfg = WorkerConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => cfg.addr = value("--addr")?,
            "--name" => cfg.name = value("--name")?,
            "--workers" => cfg.engine.workers = parse_num(&value("--workers")?, "--workers")?,
            "--queue" => {
                cfg.engine.queue_capacity = parse_num(&value("--queue")?, "--queue")?;
            }
            "--timeout-ms" => {
                let ms: u64 = parse_num(&value("--timeout-ms")?, "--timeout-ms")?;
                cfg.engine.timeout = Some(Duration::from_millis(ms));
            }
            "--hold-ms" => {
                let ms: u64 = parse_num(&value("--hold-ms")?, "--hold-ms")?;
                cfg.engine.hold = Some(Duration::from_millis(ms));
            }
            "--cache-capacity" => {
                cfg.engine.cache_capacity =
                    parse_num(&value("--cache-capacity")?, "--cache-capacity")?;
            }
            "--max-batch" => {
                cfg.engine.sched.max_batch = parse_num(&value("--max-batch")?, "--max-batch")?;
            }
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    run_worker(cfg)?;
    Ok(ExitCode::SUCCESS)
}

fn cmd_coordinator(args: &[String]) -> Result<ExitCode, String> {
    let mut addr = "127.0.0.1:8099".to_string();
    let mut cfg = ClusterConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr")?,
            "--workers" => {
                cfg.workers = value("--workers")?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
            }
            "--queue" => cfg.queue_capacity = parse_num(&value("--queue")?, "--queue")?,
            "--heartbeat-ms" => {
                let ms: u64 = parse_num(&value("--heartbeat-ms")?, "--heartbeat-ms")?;
                cfg.heartbeat = Duration::from_millis(ms.max(1));
            }
            "--liveness-ms" => {
                let ms: u64 = parse_num(&value("--liveness-ms")?, "--liveness-ms")?;
                cfg.liveness = Duration::from_millis(ms.max(1));
            }
            "--retries" => cfg.retry_budget = parse_num(&value("--retries")?, "--retries")?,
            "--cache-capacity" => {
                cfg.cache_capacity = parse_num(&value("--cache-capacity")?, "--cache-capacity")?;
            }
            "--max-batch" => {
                cfg.sched.max_batch = parse_num(&value("--max-batch")?, "--max-batch")?;
            }
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    if cfg.workers.is_empty() {
        return Err("coordinator requires --workers ADDR,ADDR,...".into());
    }
    let worker_count = cfg.workers.len();
    let backend = ClusterEngine::start(cfg)?;
    let server = Server::start_with_backend(&addr, backend).map_err(|e| format!("bind: {e}"))?;
    println!(
        "sdvbs-serve coordinator listening on {} ({worker_count} workers)",
        server.addr(),
    );
    let report = server.wait();
    println!(
        "drained: {} completed, {} rejected, {} quarantined{}",
        report.completed,
        report.rejected,
        report.quarantined,
        if report.dead_workers.is_empty() {
            String::new()
        } else {
            format!("; dead workers: {}", report.dead_workers.join(", "))
        }
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_loadgen(args: &[String]) -> Result<ExitCode, String> {
    let mut addrs: Vec<String> = Vec::new();
    let mut conns = 4usize;
    let mut requests = 50usize;
    let mut bench = "Disparity Map".to_string();
    let mut size = InputSize::Sqcif;
    let mut policy = ExecPolicy::Serial;
    let mut seed = 1u64;
    let mut iterations = 1usize;
    let mut unique = 4u64;
    let mut poll_ms = 1000u64;
    let mut streams: Vec<String> = Vec::new();
    let mut frames = 50usize;
    let mut fps = 10.0f64;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            // Repeatable and/or comma-separated: every named address
            // becomes a loadgen target with its own report section.
            "--addr" => addrs.extend(
                value("--addr")?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_string),
            ),
            "--conns" => conns = parse_num(&value("--conns")?, "--conns")?,
            "--requests" => requests = parse_num(&value("--requests")?, "--requests")?,
            "--bench" => bench = value("--bench")?,
            "--size" => size = parse_size(&value("--size")?)?,
            "--policy" => policy = parse_policy(&value("--policy")?)?,
            "--seed" => seed = parse_num(&value("--seed")?, "--seed")?,
            "--iterations" => iterations = parse_num(&value("--iterations")?, "--iterations")?,
            "--unique" => unique = parse_num(&value("--unique")?, "--unique")?,
            "--poll-ms" => poll_ms = parse_num(&value("--poll-ms")?, "--poll-ms")?,
            "--stream" => streams.extend(
                value("--stream")?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_string),
            ),
            "--frames" => frames = parse_num(&value("--frames")?, "--frames")?,
            "--fps" => fps = parse_num(&value("--fps")?, "--fps")?,
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    if addrs.is_empty() {
        return Err("loadgen requires --addr HOST:PORT".into());
    }
    if !streams.is_empty() {
        let specs = streams
            .iter()
            .enumerate()
            .map(|(i, item)| {
                // PIPE[:POLICY][@FPS] — the @FPS suffix overrides the
                // global --fps for this one stream, which is how a demo
                // pushes a single stream past its SLA budget.
                let (item, fps) = match item.rsplit_once('@') {
                    Some((rest, f)) => (rest, parse_num(f, "--stream @fps")?),
                    None => (item.as_str(), fps),
                };
                let (pipeline, policy) = match item.split_once(':') {
                    Some((p, pol)) => (p, DegradePolicy::parse(pol)?),
                    None => (item, DegradePolicy::Degrade),
                };
                let spec = StreamSpec {
                    pipeline: PipelineKind::parse(pipeline)?,
                    size,
                    seed: seed + i as u64,
                    fps,
                    policy,
                };
                spec.validate()?;
                Ok(spec)
            })
            .collect::<Result<Vec<StreamSpec>, String>>()?;
        let cfg = StreamLoadConfig {
            addr: addrs[0].clone(),
            specs,
            frames,
            drain_limit: Duration::from_secs(300),
        };
        let report = run_stream_loadgen(&cfg).map_err(|e| format!("stream loadgen failed: {e}"))?;
        print!("{report}");
        let ok = report.errors == 0
            && report.streams.len() == streams.len()
            && report.streams.iter().all(StreamRun::accounted);
        return Ok(if ok {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        });
    }
    if !all_benchmarks().iter().any(|b| b.info().name == bench) {
        return Err(format!("unknown benchmark {bench:?}"));
    }
    let cfg = LoadgenConfig {
        addrs,
        conns,
        requests,
        spec: Job::new(bench, size, policy, seed, iterations),
        unique,
        poll_ms,
    };
    let report = run_loadgen(&cfg).map_err(|e| format!("loadgen failed: {e}"))?;
    print!("{report}");
    Ok(if report.errors == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

/// The CI smoke gate. Everything runs in-process on loopback.
fn cmd_smoke(args: &[String]) -> Result<ExitCode, String> {
    if !args.is_empty() {
        return Err(format!("smoke takes no flags\n{USAGE}"));
    }
    match smoke() {
        Ok(()) => {
            println!("serve smoke: PASS");
            Ok(ExitCode::SUCCESS)
        }
        Err(why) => {
            eprintln!("serve smoke: FAIL: {why}");
            Ok(ExitCode::from(1))
        }
    }
}

fn smoke() -> Result<(), String> {
    let threads_before = thread_count();

    // --- Server A: single worker, single queue slot, held execution, so
    // cache / coalescing / 429 / drain transitions are deterministic. ---
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        engine: EngineConfig {
            workers: 1,
            queue_capacity: 1,
            hold: Some(Duration::from_millis(400)),
            ..EngineConfig::default()
        },
    })
    .map_err(|e| format!("bind: {e}"))?;
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).map_err(|e| format!("connect: {e}"))?;
    let spec = Job::new(
        "Disparity Map",
        InputSize::Custom {
            width: 32,
            height: 24,
        },
        ExecPolicy::Serial,
        7,
        1,
    );

    // 1. Miss: submit, long-poll to done; the sample includes the hold.
    let started = Instant::now();
    let resp = post_jobs(&mut client, &spec_body(&spec, 7), "")?;
    expect_status("first submission", resp.0, 202)?;
    let id = field_u64(&resp.1, "id")?;
    poll_until(&mut client, id, "done", Duration::from_secs(60))?;
    let miss_ms = started.elapsed().as_secs_f64() * 1e3;

    // 2. Hit: identical spec is answered from cache, fast.
    let started = Instant::now();
    let resp = post_jobs(&mut client, &spec_body(&spec, 7), "")?;
    let hit_ms = started.elapsed().as_secs_f64() * 1e3;
    expect_status("cached submission", resp.0, 200)?;
    if !field_bool(&resp.1, "cached")? {
        return Err(format!("expected \"cached\":true, got {}", resp.1));
    }
    if hit_ms >= miss_ms * 0.01 {
        return Err(format!(
            "cache hit not cheap enough: hit {hit_ms:.3} ms vs miss {miss_ms:.3} ms (gate: <1%)"
        ));
    }
    println!("  cache: miss {miss_ms:.1} ms, hit {hit_ms:.3} ms");

    // 3. fresh=1 bypasses the cache and re-executes.
    let resp = post_jobs(&mut client, &spec_body(&spec, 7), "?fresh=1")?;
    expect_status("fresh submission", resp.0, 202)?;
    let fresh_id = field_u64(&resp.1, "id")?;
    poll_until(&mut client, fresh_id, "running", Duration::from_secs(10))?;

    // 4. Fill the single queue slot with an uncached spec...
    let resp = post_jobs(&mut client, &spec_body(&spec, 8), "")?;
    expect_status("queue-filling submission", resp.0, 202)?;
    let queued_id = field_u64(&resp.1, "id")?;

    // 5. ...then coalesce onto it: the identical spec attaches to the
    // in-flight job instead of consuming another queue slot.
    let resp = post_jobs(&mut client, &spec_body(&spec, 8), "")?;
    expect_status("coalesced submission", resp.0, 202)?;
    if !field_bool(&resp.1, "coalesced")? {
        return Err(format!("expected \"coalesced\":true, got {}", resp.1));
    }
    if field_u64(&resp.1, "id")? != queued_id {
        return Err("coalesced submission did not attach to the in-flight job".into());
    }

    // 6. Admission control: the queue slot is taken, so a third distinct
    // spec is refused.
    let resp = post_jobs(&mut client, &spec_body(&spec, 9), "")?;
    expect_status("overflow submission", resp.0, 429)?;
    if resp.2.as_deref() != Some("1") {
        return Err(format!("429 without retry-after: {:?}", resp.2));
    }
    println!("  admission: 429 with retry-after on a full queue");

    // 7. Graceful drain: running work finishes, queued work is rejected,
    // new work is refused, every thread is joined.
    let resp = client
        .request("POST", "/v1/shutdown", None)
        .map_err(|e| format!("shutdown request: {e}"))?;
    expect_status("shutdown", resp.status, 200)?;
    let resp = post_jobs(&mut client, &spec_body(&spec, 10), "")?;
    expect_status("post-shutdown submission", resp.0, 503)?;
    poll_until(&mut client, fresh_id, "done", Duration::from_secs(60))?;
    poll_until(&mut client, queued_id, "rejected", Duration::from_secs(60))?;
    drop(client);
    let report = server.wait();
    // Drain-scoped accounting: only the fresh job (running at drain
    // begin) and the queued job count; the pre-drain completions do not.
    if report.completed < 1 || report.rejected < 1 || report.completed > 2 {
        return Err(format!("unexpected drain report: {report:?}"));
    }
    println!(
        "  drain: {} completed, {} rejected, listener closed",
        report.completed, report.rejected
    );
    if let (Some(before), Some(_)) = (threads_before, thread_count()) {
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            let now = thread_count().unwrap_or(before);
            if now <= before {
                break;
            }
            if Instant::now() >= deadline {
                return Err(format!("thread leak after drain: {before} -> {now}"));
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    // --- Server B: real concurrency, a loadgen burst, and the metrics /
    // trace exposition gates. ---
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        engine: EngineConfig {
            workers: 2,
            queue_capacity: 32,
            ..EngineConfig::default()
        },
    })
    .map_err(|e| format!("bind: {e}"))?;
    let addr = server.addr().to_string();
    let cfg = LoadgenConfig {
        addrs: vec![addr.clone()],
        conns: 4,
        requests: 50,
        spec: Job::new(
            "Disparity Map",
            InputSize::Custom {
                width: 32,
                height: 24,
            },
            ExecPolicy::Serial,
            100,
            1,
        ),
        unique: 4,
        poll_ms: 1000,
    };
    let lg = run_loadgen(&cfg).map_err(|e| format!("loadgen: {e}"))?;
    print!("{lg}");
    if lg.errors != 0 || lg.sent != 50 {
        return Err(format!(
            "loadgen burst: {} ok, {} errors",
            lg.sent, lg.errors
        ));
    }
    if lg.hits.count() == 0 || lg.misses.count() == 0 {
        return Err(format!(
            "expected both latency classes populated: {} hits, {} misses",
            lg.hits.count(),
            lg.misses.count()
        ));
    }

    check_metrics(&addr)?;
    check_trace(&addr)?;
    let mut client = Client::connect(&addr).map_err(|e| format!("connect: {e}"))?;
    let resp = client
        .request("POST", "/v1/shutdown", None)
        .map_err(|e| format!("shutdown request: {e}"))?;
    expect_status("shutdown", resp.status, 200)?;
    drop(client);
    server.wait();
    Ok(())
}

fn cmd_sched_smoke(args: &[String]) -> Result<ExitCode, String> {
    if !args.is_empty() {
        return Err(format!("sched-smoke takes no flags\n{USAGE}"));
    }
    match sched_smoke() {
        Ok(()) => {
            println!("sched smoke: PASS");
            Ok(ExitCode::SUCCESS)
        }
        Err(why) => {
            eprintln!("sched smoke: FAIL: {why}");
            Ok(ExitCode::from(1))
        }
    }
}

/// One homogeneous burst through an in-process engine with the given
/// batch window; returns the wall time, the record fingerprints in
/// submission order, and the engine's metrics exposition.
fn sched_burst(jobs: &[Job], max_batch: usize) -> Result<(Duration, Vec<String>, String), String> {
    let engine = Engine::start(EngineConfig {
        workers: 1,
        queue_capacity: jobs.len().max(1) * 2,
        sched: SchedConfig {
            max_batch,
            ..SchedConfig::default()
        },
        ..EngineConfig::default()
    });
    let started = Instant::now();
    let mut ids = Vec::new();
    for job in jobs {
        // fresh: the gate measures execution, not the cache.
        match engine.submit(job.clone(), true, JobClass::Interactive) {
            Submission::Queued(id) => ids.push(id),
            other => return Err(format!("burst submit: unexpected {other:?}")),
        }
    }
    let mut fingerprints = Vec::new();
    for id in ids {
        let snap = engine
            .wait_terminal(id, Duration::from_secs(300))
            .ok_or("burst job vanished")?;
        let record = snap
            .record
            .ok_or_else(|| format!("burst job {id} ended {}: {}", snap.state, snap.detail))?;
        fingerprints.push(record_fingerprint(&record));
    }
    let wall = started.elapsed();
    let metrics = engine.metrics_text();
    engine.drain();
    Ok((wall, fingerprints, metrics))
}

/// The scheduling CI gate, all in-process:
///
/// 1. **Batching** — a homogeneous 50-job burst must run >= 1.2x faster
///    with the default batch window than with batching disabled
///    (`max_batch = 1`), and every record must be bit-identical between
///    the two runs on the deterministic fields.
/// 2. **QoS** — under a deep batch-class backlog, an interactive probe
///    must be dispatched within the documented DRR starvation bound.
/// 3. **Auto-tuning** — `policy: auto` jobs must route through the
///    scaling model (`sched_tuned_jobs`) and complete.
fn sched_smoke() -> Result<(), String> {
    // --- Phase 1: batching throughput + bit-identity. ---
    let burst: Vec<Job> = (0..50)
        .map(|s| {
            Job::new(
                "Disparity Map",
                InputSize::Custom {
                    width: 64,
                    height: 48,
                },
                ExecPolicy::Serial,
                9000 + s,
                1,
            )
        })
        .collect();
    let (unbatched_wall, unbatched_fp, _) = sched_burst(&burst, 1)?;
    let (batched_wall, batched_fp, batched_metrics) = sched_burst(&burst, 16)?;
    for (i, (u, b)) in unbatched_fp.iter().zip(&batched_fp).enumerate() {
        if u != b {
            return Err(format!(
                "batched result diverged from unbatched at job {i}:\n  unbatched: {u}\n  batched:   {b}"
            ));
        }
    }
    let speedup = unbatched_wall.as_secs_f64() / batched_wall.as_secs_f64().max(1e-9);
    println!(
        "  batching: unbatched {:.2} s, batched {:.2} s ({speedup:.2}x), {} records identical",
        unbatched_wall.as_secs_f64(),
        batched_wall.as_secs_f64(),
        batched_fp.len()
    );
    if speedup < 1.2 {
        return Err(format!(
            "batching only {speedup:.2}x faster on a homogeneous burst (gate: >= 1.2x)"
        ));
    }
    if !batched_metrics.contains("sdvbs_serve_batch_size") {
        return Err("batched engine exposes no batch_size histogram".into());
    }

    // --- Phase 2: DRR keeps interactive jobs inside the documented
    // bound under a deep batch-class backlog. ---
    let scfg = SchedConfig::default();
    let hold = Duration::from_millis(15);
    let engine = Engine::start(EngineConfig {
        workers: 1,
        queue_capacity: 128,
        hold: Some(hold),
        sched: scfg.clone(),
        ..EngineConfig::default()
    });
    for s in 0..60u64 {
        match engine.submit(backlog_spec(10_000 + s), true, JobClass::Batch) {
            Submission::Queued(_) => {}
            other => return Err(format!("backlog submit: unexpected {other:?}")),
        }
    }
    // Let the backlog reach steady state before probing.
    while engine.counter("jobs_executed") < 2 {
        std::thread::sleep(Duration::from_millis(5));
    }
    // The documented bound (batch jobs dispatched ahead of a lone probe)
    // plus the batch already past the scheduler: one dispatch window of
    // at most quantum_batch jobs, and one job mid-execution.
    let bound = starvation_bound(&scfg, 0);
    let allowed = bound + scfg.quantum_batch as usize + 1;
    let mut worst_batch_ran = 0u64;
    let mut waits_ms = Vec::new();
    for p in 0..5u64 {
        let before = engine.counter("jobs_executed");
        let started = Instant::now();
        let id = match engine.submit(backlog_spec(20_000 + p), true, JobClass::Interactive) {
            Submission::Queued(id) => id,
            other => return Err(format!("probe submit: unexpected {other:?}")),
        };
        let snap = engine
            .wait_terminal(id, Duration::from_secs(120))
            .ok_or("probe vanished")?;
        if snap.state != "done" {
            return Err(format!("probe ended {}: {}", snap.state, snap.detail));
        }
        waits_ms.push(started.elapsed().as_secs_f64() * 1e3);
        let batch_ran = (engine.counter("jobs_executed") - before).saturating_sub(1);
        worst_batch_ran = worst_batch_ran.max(batch_ran);
        if batch_ran > allowed as u64 {
            return Err(format!(
                "probe {p} waited behind {batch_ran} batch jobs \
                 (documented bound {bound} dispatched + {} in flight)",
                allowed - bound
            ));
        }
    }
    waits_ms.sort_by(|a, b| a.total_cmp(b));
    let p95 = waits_ms[waits_ms.len() - 1];
    println!(
        "  qos: worst probe saw {worst_batch_ran} batch jobs (allowed {allowed}), \
         interactive p95 {p95:.0} ms over a 60-job backlog"
    );
    // Generous wall-clock ceiling derived from the same bound: each
    // batch job costs ~hold + execution; 4x covers scheduling noise.
    let ceiling = (allowed + 1) as f64 * hold.as_secs_f64() * 1e3 * 4.0;
    if p95 > ceiling.max(500.0) {
        return Err(format!(
            "interactive p95 {p95:.0} ms exceeds the derived ceiling {ceiling:.0} ms"
        ));
    }
    engine.drain();

    // --- Phase 3: auto policies route through the scaling model. ---
    let engine = Engine::start(EngineConfig {
        workers: 1,
        queue_capacity: 16,
        ..EngineConfig::default()
    });
    for s in 0..3u64 {
        let spec = Job::new(
            "Disparity Map",
            InputSize::Custom {
                width: 64,
                height: 48,
            },
            ExecPolicy::Auto,
            30_000 + s,
            1,
        );
        let id = match engine.submit(spec, true, JobClass::Interactive) {
            Submission::Queued(id) => id,
            other => return Err(format!("auto submit: unexpected {other:?}")),
        };
        let snap = engine
            .wait_terminal(id, Duration::from_secs(120))
            .ok_or("auto job vanished")?;
        if snap.state != "done" {
            return Err(format!("auto job ended {}: {}", snap.state, snap.detail));
        }
    }
    let tuned = engine.counter("sched_tuned_jobs");
    engine.drain();
    if tuned < 3 {
        return Err(format!("expected 3 tuned auto jobs, counter says {tuned}"));
    }
    println!("  tuning: {tuned} auto jobs routed through the scaling model");
    Ok(())
}

/// The phase-2 backlog/probe spec: tiny, serial, distinct per seed.
fn backlog_spec(seed: u64) -> Job {
    Job::new(
        "Disparity Map",
        InputSize::Custom {
            width: 32,
            height: 24,
        },
        ExecPolicy::Serial,
        seed,
        1,
    )
}

fn cmd_cluster_smoke(args: &[String]) -> Result<ExitCode, String> {
    if !args.is_empty() {
        return Err(format!("cluster-smoke takes no flags\n{USAGE}"));
    }
    match cluster_smoke() {
        Ok(()) => {
            println!("cluster smoke: PASS");
            Ok(ExitCode::SUCCESS)
        }
        Err(why) => {
            eprintln!("cluster smoke: FAIL: {why}");
            Ok(ExitCode::from(1))
        }
    }
}

/// A spawned `sdvbs-serve worker` subprocess with its discovered address.
struct WorkerProc {
    child: Child,
    addr: String,
    /// Held open so the worker's final prints never hit a closed pipe.
    _stdout: std::io::BufReader<std::process::ChildStdout>,
}

impl WorkerProc {
    /// Spawns a worker on an ephemeral port and parses the bound address
    /// from its banner line. `hold_ms > 0` adds a sleep to every job so
    /// wall-clock concurrency is observable even on a single CPU.
    fn spawn(hold_ms: u64) -> Result<WorkerProc, String> {
        let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
        let mut cmd = Command::new(exe);
        cmd.args([
            "worker",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "1",
            "--queue",
            "16",
        ]);
        if hold_ms > 0 {
            cmd.args(["--hold-ms", &hold_ms.to_string()]);
        }
        let mut child = cmd
            .stdout(Stdio::piped())
            .spawn()
            .map_err(|e| format!("spawning a worker: {e}"))?;
        let mut stdout =
            std::io::BufReader::new(child.stdout.take().ok_or("worker has no stdout")?);
        let mut line = String::new();
        stdout
            .read_line(&mut line)
            .map_err(|e| format!("reading the worker banner: {e}"))?;
        let addr = line
            .split("listening on ")
            .nth(1)
            .ok_or_else(|| format!("unexpected worker banner: {line:?}"))?
            .trim()
            .to_string();
        Ok(WorkerProc {
            child,
            addr,
            _stdout: stdout,
        })
    }

    /// SIGKILL — the abrupt death the fault-tolerance path must absorb.
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Reaps a worker that is expected to exit on its own post-drain.
    fn reap(&mut self) {
        let _ = self.child.wait();
    }
}

/// Spawns `n` workers and a coordinator server over them on an ephemeral
/// front port.
fn start_cluster(
    n: usize,
    hold_ms: u64,
    cfg: ClusterConfig,
) -> Result<(Vec<WorkerProc>, Server), String> {
    let mut procs = Vec::new();
    for _ in 0..n {
        procs.push(WorkerProc::spawn(hold_ms)?);
    }
    let cfg = ClusterConfig {
        workers: procs.iter().map(|p| p.addr.clone()).collect(),
        ..cfg
    };
    let backend = ClusterEngine::start(cfg)?;
    let server = Server::start_with_backend("127.0.0.1:0", backend)
        .map_err(|e| format!("coordinator bind: {e}"))?;
    Ok((procs, server))
}

/// Graceful cluster shutdown: `POST /v1/shutdown`, wait out the drain,
/// reap the worker processes.
fn shutdown_cluster(
    server: Server,
    mut procs: Vec<WorkerProc>,
) -> Result<sdvbs_serve::DrainReport, String> {
    let mut client =
        Client::connect(&server.addr().to_string()).map_err(|e| format!("connect: {e}"))?;
    let resp = client
        .request("POST", "/v1/shutdown", None)
        .map_err(|e| format!("shutdown request: {e}"))?;
    expect_status("cluster shutdown", resp.status, 200)?;
    drop(client);
    let report = server.wait();
    for p in &mut procs {
        p.reap();
    }
    Ok(report)
}

/// An all-cache-miss closed-loop burst against one coordinator. The
/// workers run with a hold window (see [`WorkerProc::spawn`]) so each
/// job occupies ~`hold` of wall time; a cluster that actually overlaps
/// work across workers finishes the burst proportionally faster — on
/// any machine, including single-CPU CI runners.
fn cluster_burst(addr: &str, requests: usize, seed_base: u64) -> Result<LoadgenReport, String> {
    let cfg = LoadgenConfig {
        addrs: vec![addr.to_string()],
        conns: 8,
        requests,
        spec: Job::new(
            "Disparity Map",
            InputSize::Custom {
                width: 32,
                height: 24,
            },
            ExecPolicy::Serial,
            seed_base,
            1,
        ),
        unique: requests as u64,
        poll_ms: 1000,
    };
    run_loadgen(&cfg).map_err(|e| format!("cluster loadgen: {e}"))
}

/// The hold window the smoke workers run with: long enough to dominate
/// scheduling noise, short enough to keep the gate fast.
const SMOKE_HOLD_MS: u64 = 100;

/// The smoke sweep spec: every benchmark, smallest paper size, serial,
/// seed 1 — the same preset as `sdvbs-runner run --smoke`.
fn sweep_jobs() -> Vec<Job> {
    all_benchmarks()
        .iter()
        .map(|b| {
            Job::new(
                b.info().name.to_string(),
                InputSize::Sqcif,
                ExecPolicy::Serial,
                1,
                1,
            )
        })
        .collect()
}

/// The deterministic identity of a run record: everything that must be
/// bit-identical between cluster and single-process execution. Timing
/// and host/worker metadata legitimately differ.
fn record_fingerprint(r: &RunRecord) -> String {
    format!(
        "{}|{}|{}|{}|{}|{:?}|{:?}|{}",
        r.benchmark, r.size, r.policy, r.seed, r.iterations, r.status, r.quality, r.detail
    )
}

/// Runs the sweep on an in-process single-worker engine — the fidelity
/// baseline the cluster's records must match.
fn single_process_sweep() -> Result<Vec<RunRecord>, String> {
    let engine = Engine::start(EngineConfig {
        workers: 2,
        queue_capacity: 32,
        ..EngineConfig::default()
    });
    let mut ids = Vec::new();
    for job in sweep_jobs() {
        match engine.submit(job, false, JobClass::Interactive) {
            Submission::Queued(id) => ids.push(id),
            other => return Err(format!("baseline submit: unexpected {other:?}")),
        }
    }
    let mut records = Vec::new();
    for id in ids {
        let snap = engine
            .wait_terminal(id, Duration::from_secs(300))
            .ok_or("baseline job vanished")?;
        let record = snap
            .record
            .ok_or_else(|| format!("baseline job {id} ended {}: {}", snap.state, snap.detail))?;
        records.push(record);
    }
    engine.drain();
    Ok(records)
}

/// Polls job `id` to a terminal state; returns `(state, body)`.
fn poll_terminal(
    client: &mut Client,
    id: u64,
    limit: Duration,
) -> Result<(String, String), String> {
    let deadline = Instant::now() + limit;
    loop {
        let resp = client
            .request("GET", &format!("/v1/jobs/{id}?wait_ms=500"), None)
            .map_err(|e| format!("GET /v1/jobs/{id}: {e}"))?;
        let body = resp.body_text();
        let state = Value::parse(&body)
            .ok()
            .and_then(|v| v.get("state").and_then(Value::as_str).map(String::from))
            .ok_or_else(|| format!("job {id}: unparsable poll body {body}"))?;
        if state == "done" || state == "rejected" {
            return Ok((state, body));
        }
        if Instant::now() >= deadline {
            return Err(format!("job {id} stuck in state {state:?}"));
        }
    }
}

/// The cluster CI gate: real worker subprocesses over real sockets.
/// Gates throughput scaling, result fidelity against single-process
/// execution, metrics/trace aggregation, and kill-a-worker fault
/// handling with a clean cluster-wide drain.
fn cluster_smoke() -> Result<(), String> {
    // --- Phase 1+2: cache-miss throughput must scale with workers. ---
    let (procs, server) = start_cluster(1, SMOKE_HOLD_MS, ClusterConfig::default())?;
    let lg1 = cluster_burst(&server.addr().to_string(), 16, 1000)?;
    if lg1.errors != 0 {
        return Err(format!("1-worker burst had {} errors", lg1.errors));
    }
    shutdown_cluster(server, procs)?;

    let (procs, server) = start_cluster(2, SMOKE_HOLD_MS, ClusterConfig::default())?;
    let addr = server.addr().to_string();
    let lg2 = cluster_burst(&addr, 16, 1000)?;
    if lg2.errors != 0 {
        return Err(format!("2-worker burst had {} errors", lg2.errors));
    }
    let speedup = lg1.wall.as_secs_f64() / lg2.wall.as_secs_f64().max(1e-9);
    println!(
        "  scaling: 1 worker {:.2} s, 2 workers {:.2} s ({speedup:.2}x)",
        lg1.wall.as_secs_f64(),
        lg2.wall.as_secs_f64()
    );
    if speedup < 1.3 {
        return Err(format!(
            "2 workers only {speedup:.2}x faster than 1 (gate: >= 1.3x)"
        ));
    }

    // --- Phase 3: the full smoke sweep through the cluster must match
    // single-process execution on every deterministic field. ---
    let baseline = single_process_sweep()?;
    let mut client = Client::connect(&addr).map_err(|e| format!("connect: {e}"))?;
    let mut cluster_records = Vec::new();
    for job in sweep_jobs() {
        let resp = post_jobs(&mut client, &spec_body(&job, job.seed), "")?;
        expect_status("sweep submission", resp.0, 202)?;
        let id = field_u64(&resp.1, "id")?;
        let (state, body) = poll_terminal(&mut client, id, Duration::from_secs(300))?;
        if state != "done" {
            return Err(format!(
                "sweep job {}: ended {state}: {body}",
                job.benchmark
            ));
        }
        let record_json = Value::parse(&body)
            .map_err(|e| format!("sweep poll body: {e}"))?
            .get("record")
            .ok_or("done poll body without a record")?
            .to_string();
        cluster_records.push(
            RunRecord::from_json_line(&record_json)
                .map_err(|e| format!("sweep record does not parse: {e}"))?,
        );
    }
    for (base, clustered) in baseline.iter().zip(&cluster_records) {
        let (b, c) = (record_fingerprint(base), record_fingerprint(clustered));
        if b != c {
            return Err(format!(
                "cluster result diverged from single-process:\n  local:   {b}\n  cluster: {c}"
            ));
        }
    }
    println!(
        "  fidelity: {} benchmarks identical to single-process execution",
        cluster_records.len()
    );
    // Resubmitting a burst spec is a coordinator-side cache hit: answered
    // locally, no wire round trip, and it feeds the cache_hits counter
    // the metrics gate requires.
    let cached_spec = Job::new(
        "Disparity Map",
        InputSize::Custom {
            width: 32,
            height: 24,
        },
        ExecPolicy::Serial,
        1000,
        1,
    );
    let resp = post_jobs(&mut client, &spec_body(&cached_spec, 1000), "")?;
    expect_status("cached resubmission", resp.0, 200)?;
    check_metrics(&addr)?;
    check_trace(&addr)?;
    drop(client);
    shutdown_cluster(server, procs)?;

    // --- Phase 4: kill -9 one worker mid-burst; nothing may be lost
    // silently and the drain must name the dead worker. ---
    let cfg = ClusterConfig {
        heartbeat: Duration::from_millis(200),
        liveness: Duration::from_millis(1500),
        ..ClusterConfig::default()
    };
    let (mut procs, server) = start_cluster(2, SMOKE_HOLD_MS, cfg)?;
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).map_err(|e| format!("connect: {e}"))?;
    let spec = Job::new(
        "Disparity Map",
        InputSize::Custom {
            width: 32,
            height: 24,
        },
        ExecPolicy::Serial,
        5000,
        1,
    );
    let mut ids = Vec::new();
    for s in 0..12u64 {
        let resp = post_jobs(&mut client, &spec_body(&spec, 5000 + s), "")?;
        expect_status("kill-phase submission", resp.0, 202)?;
        ids.push(field_u64(&resp.1, "id")?);
    }
    std::thread::sleep(Duration::from_millis(150));
    procs[1].kill();
    let mut done = 0usize;
    let mut rejected = 0usize;
    for id in ids {
        match poll_terminal(&mut client, id, Duration::from_secs(120))?
            .0
            .as_str()
        {
            "done" => done += 1,
            _ => rejected += 1,
        }
    }
    println!("  worker kill: {done} completed elsewhere, {rejected} rejected/quarantined");
    // The coordinator must stay healthy and report the death.
    let resp = client
        .request("GET", "/healthz", None)
        .map_err(|e| format!("GET /healthz: {e}"))?;
    expect_status("/healthz", resp.status, 200)?;
    let health = resp.body_text();
    if !health.contains("\"workers_alive\":1") || !health.contains("\"w1\"") {
        return Err(format!("healthz does not report the dead worker: {health}"));
    }
    drop(client);
    let report = shutdown_cluster(server, procs)?;
    if !report.dead_workers.iter().any(|w| w == "w1") {
        return Err(format!(
            "drain report does not name the dead worker: {report:?}"
        ));
    }
    if report.completed + report.rejected + report.quarantined != 12 {
        return Err(format!(
            "jobs lost silently: {report:?} (expected 12 accounted)"
        ));
    }
    println!(
        "  drain: {} completed, {} rejected, {} quarantined; dead: {}",
        report.completed,
        report.rejected,
        report.quarantined,
        report.dead_workers.join(", ")
    );
    Ok(())
}

fn cmd_stream_smoke(args: &[String]) -> Result<ExitCode, String> {
    if !args.is_empty() {
        return Err(format!("stream-smoke takes no flags\n{USAGE}"));
    }
    match stream_smoke() {
        Ok(()) => {
            println!("stream smoke: PASS");
            Ok(ExitCode::SUCCESS)
        }
        Err(why) => {
            eprintln!("stream smoke: FAIL: {why}");
            Ok(ExitCode::from(1))
        }
    }
}

/// `POST /v1/streams`; returns the new stream's id.
fn open_stream_http(client: &mut Client, spec: &StreamSpec) -> Result<u64, String> {
    let resp = client
        .request("POST", "/v1/streams", Some(&stream_spec_body(spec)))
        .map_err(|e| format!("POST /v1/streams: {e}"))?;
    expect_status("stream open", resp.status, 201)?;
    field_u64(&resp.body_text(), "id")
}

/// `POST /v1/streams/<id>/frames`; returns the frame ticket as
/// `(job_id, dropped, degraded)`.
fn submit_frame_http(client: &mut Client, id: u64) -> Result<(Option<u64>, bool, bool), String> {
    let resp = client
        .request("POST", &format!("/v1/streams/{id}/frames"), None)
        .map_err(|e| format!("frame submit: {e}"))?;
    expect_status("frame submit", resp.status, 202)?;
    let body = resp.body_text();
    let job = Value::parse(&body)
        .ok()
        .and_then(|v| v.get("job_id").and_then(Value::as_u64));
    Ok((
        job,
        field_bool(&body, "dropped")?,
        field_bool(&body, "degraded")?,
    ))
}

/// `GET /v1/streams/<id>`; returns the parsed status body.
fn stream_status_http(client: &mut Client, id: u64) -> Result<Value, String> {
    let resp = client
        .request("GET", &format!("/v1/streams/{id}"), None)
        .map_err(|e| format!("stream status: {e}"))?;
    expect_status("stream status", resp.status, 200)?;
    Value::parse(&resp.body_text()).map_err(|e| format!("status body: {e}"))
}

/// Submits one frame and blocks until it completes; returns the ticket's
/// degraded flag. Errors if the frame was dropped.
fn frame_closed_loop(client: &mut Client, id: u64) -> Result<bool, String> {
    let (job, dropped, degraded) = submit_frame_http(client, id)?;
    if dropped {
        return Err(format!("stream {id}: unexpected dropped frame"));
    }
    let job = job.ok_or("accepted frame without a job id")?;
    poll_until(client, job, "done", Duration::from_secs(120))?;
    Ok(degraded)
}

/// A status field that must be a number.
fn status_u64(status: &Value, field: &str) -> Result<u64, String> {
    status
        .get(field)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("status body missing {field:?}"))
}

/// The accounting identity every idle stream must satisfy:
/// `completed + dropped + rejected + failed == submitted` with nothing
/// in flight.
fn check_accounting(status: &Value, what: &str) -> Result<(), String> {
    let [submitted, completed, dropped, rejected, failed, in_flight] = [
        status_u64(status, "submitted")?,
        status_u64(status, "completed")?,
        status_u64(status, "dropped")?,
        status_u64(status, "rejected")?,
        status_u64(status, "failed")?,
        status_u64(status, "in_flight")?,
    ];
    if in_flight != 0 {
        return Err(format!("{what}: {in_flight} frames still in flight"));
    }
    if completed + dropped + rejected + failed != submitted {
        return Err(format!(
            "{what}: accounting broken: {completed} completed + {dropped} dropped \
             + {rejected} rejected + {failed} failed != {submitted} submitted"
        ));
    }
    Ok(())
}

/// The per-frame cost floor the phase-2/3 server runs with: a hold makes
/// frame cost deterministic, so the SLA arithmetic below is machine-
/// independent. Full-size frames pay the whole window; degraded frames
/// pay their pixel share of it (a quarter, at SQCIF's half-resolution).
const STREAM_HOLD_MS: u64 = 25;
/// Warmup and burst sizes for the degrade phase.
const STREAM_WARMUP: usize = 8;
const STREAM_BURST: usize = 8;
/// Closed-loop frames after the burst. Sized so the burst's SLA misses
/// sit below the 5% mark: only the burst can violate (at most
/// `STREAM_BURST` frames), and `8 / 160 = 5%`, so the p95 gate holds
/// with margin.
const STREAM_RECOVERY: usize = 144;

/// The streaming CI gate, over real loopback sockets:
///
/// 1. **Bit-identity** — an unloaded stream's rolling digest must equal
///    the one-shot in-process run of the same spec, frame for frame.
/// 2. **Degrade** — a burst of back-to-back frames on a held server
///    must engage degrade, shed latency at the smaller size, and
///    disengage after a healthy run; the final p95 must sit within the
///    SLA and every frame must be accounted for exactly.
/// 3. **Drop** — a stream whose SLA is below the per-frame cost floor
///    must shed every frame after the first, all counted.
/// 4. **Exposition** — per-stream metrics and frame trace spans must be
///    present and structurally valid.
fn stream_smoke() -> Result<(), String> {
    // --- Phase 1: unloaded bit-identity through the HTTP front. ---
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        engine: EngineConfig {
            workers: 2,
            queue_capacity: 64,
            ..EngineConfig::default()
        },
    })
    .map_err(|e| format!("bind: {e}"))?;
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).map_err(|e| format!("connect: {e}"))?;
    let spec = StreamSpec {
        pipeline: PipelineKind::Tracking,
        size: InputSize::Sqcif,
        seed: 5,
        fps: 1.0, // a 1000 ms budget: never pressured while unloaded
        policy: DegradePolicy::Degrade,
    };
    let id = open_stream_http(&mut client, &spec)?;
    const IDENTITY_FRAMES: u64 = 6;
    for _ in 0..IDENTITY_FRAMES {
        if frame_closed_loop(&mut client, id)? {
            return Err("unloaded stream degraded a frame".into());
        }
    }
    let status = stream_status_http(&mut client, id)?;
    check_accounting(&status, "unloaded stream")?;
    for (field, want) in [
        ("submitted", IDENTITY_FRAMES),
        ("completed", IDENTITY_FRAMES),
        ("completed_degraded", 0),
        ("dropped", 0),
        ("sla_violations", 0),
    ] {
        let got = status_u64(&status, field)?;
        if got != want {
            return Err(format!("unloaded stream: {field} = {got}, want {want}"));
        }
    }
    let expected = run_one_shot(&spec, IDENTITY_FRAMES)
        .map_err(|e| format!("one-shot run: {e}"))?
        .iter()
        .fold(DIGEST_SEED, |acc, r| fold_digest(acc, r.digest));
    let expected = format!("{expected:#018x}");
    let digest = status
        .get("rolling_digest")
        .and_then(Value::as_str)
        .ok_or("status without rolling_digest")?;
    if digest != expected {
        return Err(format!(
            "stream digest {digest} != one-shot digest {expected}"
        ));
    }
    println!(
        "  identity: {IDENTITY_FRAMES} streamed frames fold to {expected}, one-shot identical"
    );
    let resp = client
        .request("POST", &format!("/v1/streams/{id}/close"), None)
        .map_err(|e| format!("close: {e}"))?;
    expect_status("stream close", resp.status, 200)?;
    let resp = client
        .request("POST", "/v1/shutdown", None)
        .map_err(|e| format!("shutdown: {e}"))?;
    expect_status("shutdown", resp.status, 200)?;
    drop(client);
    server.wait();

    // --- Phases 2-4: a held server, so frame cost (and therefore the
    // SLA arithmetic) is deterministic across machines. ---
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        engine: EngineConfig {
            workers: 2,
            queue_capacity: 64,
            hold: Some(Duration::from_millis(STREAM_HOLD_MS)),
            ..EngineConfig::default()
        },
    })
    .map_err(|e| format!("bind: {e}"))?;
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).map_err(|e| format!("connect: {e}"))?;

    // Phase 2: 10 fps over a ~27 ms frame cost leaves slack unloaded,
    // but a back-to-back burst projects past the budget and must flip
    // the stream into degrade.
    let spec = StreamSpec {
        pipeline: PipelineKind::Tracking,
        size: InputSize::Sqcif,
        seed: 2,
        fps: 10.0,
        policy: DegradePolicy::Degrade,
    };
    let sla_ms = spec.sla_ms();
    let degrade_id = open_stream_http(&mut client, &spec)?;
    for _ in 0..STREAM_WARMUP {
        frame_closed_loop(&mut client, degrade_id)?;
    }
    let status = stream_status_http(&mut client, degrade_id)?;
    if status.get("degraded_mode") != Some(&Value::Bool(false)) {
        return Err("degrade engaged during the unloaded warmup".into());
    }
    let mut last_job = None;
    for _ in 0..STREAM_BURST {
        let (job, dropped, _) = submit_frame_http(&mut client, degrade_id)?;
        if dropped {
            return Err("burst frame dropped under the degrade policy".into());
        }
        last_job = job;
    }
    let last_job = last_job.ok_or("burst frame without a job id")?;
    poll_until(&mut client, last_job, "done", Duration::from_secs(120))?;
    let status = stream_status_http(&mut client, degrade_id)?;
    if status.get("degraded_mode") != Some(&Value::Bool(true)) {
        return Err("overload burst did not engage degrade".into());
    }
    if status_u64(&status, "completed_degraded")? == 0 {
        return Err("degrade engaged but no frame ran at the degraded size".into());
    }
    let mut recovered_after = None;
    for i in 0..STREAM_RECOVERY {
        let degraded = frame_closed_loop(&mut client, degrade_id)?;
        if !degraded && recovered_after.is_none() {
            recovered_after = Some(i);
        }
    }
    let recovered_after =
        recovered_after.ok_or("degrade never disengaged over the recovery run")?;
    let status = stream_status_http(&mut client, degrade_id)?;
    check_accounting(&status, "degrade stream")?;
    if status.get("degraded_mode") != Some(&Value::Bool(false)) {
        return Err("degrade still engaged after the recovery run".into());
    }
    if status_u64(&status, "degrade_transitions")? < 2 {
        return Err("expected at least one engage + disengage transition".into());
    }
    let violations = status_u64(&status, "sla_violations")?;
    if violations > STREAM_BURST as u64 {
        return Err(format!(
            "{violations} SLA violations — more than the {STREAM_BURST}-frame burst can explain"
        ));
    }
    let p95 = status
        .get("p95_ms")
        .and_then(Value::as_f64)
        .ok_or("status without p95_ms")?;
    if p95 > sla_ms {
        return Err(format!(
            "p95 {p95:.1} ms exceeds the {sla_ms:.1} ms SLA despite degrade"
        ));
    }
    println!(
        "  degrade: engaged on an {STREAM_BURST}-frame burst, {} degraded frames, \
         disengaged after {} healthy frames; p95 {p95:.1} ms within the {sla_ms:.0} ms SLA, \
         {violations} violations (all burst)",
        status_u64(&status, "completed_degraded")?,
        recovered_after,
    );

    // Phase 3: 240 fps demands ~4 ms frames against a ~27 ms cost floor
    // — impossible, so the drop policy must shed every frame after the
    // first, all counted.
    let spec = StreamSpec {
        pipeline: PipelineKind::Tracking,
        size: InputSize::Sqcif,
        seed: 3,
        fps: 240.0,
        policy: DegradePolicy::Drop,
    };
    let drop_id = open_stream_http(&mut client, &spec)?;
    frame_closed_loop(&mut client, drop_id)?;
    const DROP_FRAMES: usize = 19;
    for _ in 0..DROP_FRAMES {
        let (_, dropped, _) = submit_frame_http(&mut client, drop_id)?;
        if !dropped {
            return Err("drop policy accepted a frame it cannot serve in time".into());
        }
    }
    let status = stream_status_http(&mut client, drop_id)?;
    check_accounting(&status, "drop stream")?;
    for (field, want) in [
        ("submitted", 1 + DROP_FRAMES as u64),
        ("completed", 1),
        ("dropped", DROP_FRAMES as u64),
    ] {
        let got = status_u64(&status, field)?;
        if got != want {
            return Err(format!("drop stream: {field} = {got}, want {want}"));
        }
    }
    println!(
        "  drop: 1 completed + {DROP_FRAMES} shed = {} submitted, counted exactly",
        1 + DROP_FRAMES
    );

    // Phase 4: per-stream metrics and frame trace spans. Streams share
    // the server with the ordinary job path, so run one bench job plus a
    // cache hit first — the baseline exposition gate covers both tiers.
    let job = Job::new(
        "Disparity Map",
        InputSize::Custom {
            width: 32,
            height: 24,
        },
        ExecPolicy::Serial,
        77,
        1,
    );
    let resp = post_jobs(&mut client, &spec_body(&job, 77), "")?;
    expect_status("bench-alongside-streams submission", resp.0, 202)?;
    poll_until(
        &mut client,
        field_u64(&resp.1, "id")?,
        "done",
        Duration::from_secs(60),
    )?;
    let resp = post_jobs(&mut client, &spec_body(&job, 77), "")?;
    expect_status("cached resubmission", resp.0, 200)?;
    for id in [degrade_id, drop_id] {
        let resp = client
            .request("POST", &format!("/v1/streams/{id}/close"), None)
            .map_err(|e| format!("close: {e}"))?;
        expect_status("stream close", resp.status, 200)?;
    }
    // Closing the connection merges its request stats into the lifetime
    // registry the exposition gates read.
    drop(client);
    check_stream_metrics(&addr, degrade_id)?;
    check_stream_trace(&addr, degrade_id)?;
    let mut client = Client::connect(&addr).map_err(|e| format!("connect: {e}"))?;
    let resp = client
        .request("POST", "/v1/shutdown", None)
        .map_err(|e| format!("shutdown: {e}"))?;
    expect_status("shutdown", resp.status, 200)?;
    drop(client);
    server.wait();
    Ok(())
}

/// The `/metrics` exposition must carry the streaming tier's aggregate
/// counters and the per-stream latency histogram of stream `id`.
fn check_stream_metrics(addr: &str, id: u64) -> Result<(), String> {
    check_metrics(addr)?;
    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let resp = client
        .request("GET", "/metrics", None)
        .map_err(|e| format!("GET /metrics: {e}"))?;
    expect_status("/metrics", resp.status, 200)?;
    let text = resp.body_text();
    let per_stream = format!("sdvbs_serve_stream_{id}_frame_latency_ms{{stat=\"p95\"}}");
    for required in [
        "sdvbs_serve_stream_frames_submitted",
        "sdvbs_serve_stream_frames_completed",
        "sdvbs_serve_stream_frames_degraded",
        "sdvbs_serve_stream_frames_dropped",
        "sdvbs_serve_stream_sla_violations",
        per_stream.as_str(),
    ] {
        if !text.lines().any(|l| l.starts_with(required)) {
            return Err(format!("missing required stream metric {required:?}"));
        }
    }
    println!("  metrics: stream counters and per-stream latency histogram present");
    Ok(())
}

/// The `/v1/trace` timeline must validate and carry the stream's own
/// track (its meta label) plus per-frame spans.
fn check_stream_trace(addr: &str, id: u64) -> Result<(), String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let resp = client
        .request("GET", "/v1/trace", None)
        .map_err(|e| format!("GET /v1/trace: {e}"))?;
    expect_status("/v1/trace", resp.status, 200)?;
    let trace = Trace::from_chrome_json(&resp.body_text())
        .map_err(|e| format!("trace does not parse: {e}"))?;
    trace
        .validate()
        .map_err(|e| format!("trace does not validate: {e}"))?;
    let label = format!("stream {id} ");
    if !trace.events().iter().any(|e| e.name.starts_with(&label)) {
        return Err(format!("trace has no track labelled for stream {id}"));
    }
    let frames = trace.events().iter().filter(|e| e.cat == "frame").count();
    if frames == 0 {
        return Err("trace has no frame spans".into());
    }
    println!("  trace: stream track labelled, {frames} frame span events");
    Ok(())
}

/// Structural gate on the `/metrics` exposition: every line is
/// `name value` or `name{stat="..."} value`, every name carries the
/// `sdvbs_serve_` prefix, every value parses as a float, and the
/// counters/histograms the dashboardable story depends on are present.
/// Connection-local request stats merge when their connection closes, so
/// this retries briefly until they appear.
fn check_metrics(addr: &str) -> Result<(), String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let deadline = Instant::now() + Duration::from_secs(5);
    let text = loop {
        let resp = client
            .request("GET", "/metrics", None)
            .map_err(|e| format!("GET /metrics: {e}"))?;
        expect_status("/metrics", resp.status, 200)?;
        let text = resp.body_text();
        if text.contains("sdvbs_serve_http_requests ") || Instant::now() >= deadline {
            break text;
        }
        std::thread::sleep(Duration::from_millis(100));
    };
    let mut names = Vec::new();
    for line in text.lines().filter(|l| !l.is_empty()) {
        let (name_part, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("metrics line without value: {line:?}"))?;
        value
            .parse::<f64>()
            .map_err(|_| format!("metrics value not a number: {line:?}"))?;
        let name = name_part.split('{').next().unwrap_or_default();
        if !name.starts_with("sdvbs_serve_") {
            return Err(format!("metrics name missing prefix: {line:?}"));
        }
        if let Some(rest) = name_part.strip_prefix(name) {
            let labels_ok =
                rest.is_empty() || (rest.starts_with("{stat=\"") && rest.ends_with("\"}"));
            if !labels_ok {
                return Err(format!("bad metrics labels: {line:?}"));
            }
        }
        names.push(name_part.to_string());
    }
    for required in [
        "sdvbs_serve_jobs_executed",
        "sdvbs_serve_cache_hits",
        "sdvbs_serve_http_requests",
        "sdvbs_serve_job_exec_ms{stat=\"count\"}",
        "sdvbs_serve_request_ms{stat=\"p99\"}",
    ] {
        if !names.iter().any(|n| n == required) {
            return Err(format!("missing required metric {required:?}"));
        }
    }
    println!("  metrics: {} exposition lines, structure ok", names.len());
    Ok(())
}

/// The `/v1/trace` endpoint must serve a loadable, structurally valid
/// Chrome trace of the request spans recorded so far.
fn check_trace(addr: &str) -> Result<(), String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let resp = client
            .request("GET", "/v1/trace", None)
            .map_err(|e| format!("GET /v1/trace: {e}"))?;
        expect_status("/v1/trace", resp.status, 200)?;
        let trace = Trace::from_chrome_json(&resp.body_text())
            .map_err(|e| format!("trace does not parse: {e}"))?;
        if !trace.is_empty() {
            let stats = trace
                .validate()
                .map_err(|e| format!("trace does not validate: {e}"))?;
            println!(
                "  trace: {} events across {} tracks, spans balanced",
                trace.events().len(),
                stats.tracks
            );
            return Ok(());
        }
        if Instant::now() >= deadline {
            return Err("trace stayed empty (no connection spans absorbed)".into());
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// POSTs a job spec; returns (status, body, retry-after header).
fn post_jobs(
    client: &mut Client,
    body: &str,
    query: &str,
) -> Result<(u16, String, Option<String>), String> {
    let resp = client
        .request("POST", &format!("/v1/jobs{query}"), Some(body))
        .map_err(|e| format!("POST /v1/jobs: {e}"))?;
    let retry_after = resp.header("retry-after").map(str::to_string);
    Ok((resp.status, resp.body_text(), retry_after))
}

/// Polls `GET /v1/jobs/<id>` until its state equals `want`.
fn poll_until(client: &mut Client, id: u64, want: &str, limit: Duration) -> Result<(), String> {
    let deadline = Instant::now() + limit;
    loop {
        let resp = client
            .request("GET", &format!("/v1/jobs/{id}?wait_ms=200"), None)
            .map_err(|e| format!("GET /v1/jobs/{id}: {e}"))?;
        let state = Value::parse(&resp.body_text())
            .ok()
            .and_then(|v| v.get("state").and_then(Value::as_str).map(String::from))
            .ok_or_else(|| format!("job {id}: unparsable poll body"))?;
        if state == want {
            return Ok(());
        }
        if matches!(state.as_str(), "done" | "rejected") || Instant::now() >= deadline {
            return Err(format!("job {id}: wanted state {want:?}, got {state:?}"));
        }
    }
}

fn expect_status(what: &str, got: u16, want: u16) -> Result<(), String> {
    if got == want {
        Ok(())
    } else {
        Err(format!("{what}: expected HTTP {want}, got {got}"))
    }
}

fn field_u64(body: &str, field: &str) -> Result<u64, String> {
    Value::parse(body)
        .ok()
        .and_then(|v| v.get(field).and_then(Value::as_u64))
        .ok_or_else(|| format!("missing numeric field {field:?} in {body}"))
}

fn field_bool(body: &str, field: &str) -> Result<bool, String> {
    let v = Value::parse(body).map_err(|e| format!("unparsable body {body}: {e}"))?;
    match v.get(field) {
        Some(Value::Bool(b)) => Ok(*b),
        _ => Err(format!("missing bool field {field:?} in {body}")),
    }
}

/// Current thread count from `/proc/self/status` (Linux only).
fn thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

fn parse_num<T: std::str::FromStr>(text: &str, flag: &str) -> Result<T, String> {
    text.parse()
        .map_err(|_| format!("{flag}: not a number: {text:?}"))
}
