//! Pure decision logic of the cluster protocol.
//!
//! Every judgment call the coordinator makes — which worker a job lands
//! on, what happens to a dead worker's orphans, when a silent worker is
//! declared dead, how many failures exhaust a retry budget — lives here
//! as a pure function of explicit inputs. [`crate::cluster`] calls these
//! from its threaded production loops; the `sdvbs-sim` discrete-event
//! harness calls the *same* functions from its single-threaded model, so
//! a policy bug found under simulation is by construction the production
//! policy's bug.
//!
//! ## Attempt accounting (unified with the runner)
//!
//! `attempts` counts **executions begun**: a dispatch that actually
//! reached a worker's engine. A [`Busy`](sdvbs_wire::Message::Busy)
//! bounce is *not* an attempt — the job never executed, so it must not
//! consume retry budget (the coordinator previously counted these, which
//! made its accounting diverge from the runner's, where only real
//! executions increment [`RunRecord::attempts`]). A [`RetryPolicy`] with
//! `budget = B` therefore allows `B + 1` total executions everywhere:
//! the runner's `max_retries = B` quarantines after `B + 1` failed runs,
//! and the coordinator quarantines an orphan after `B + 1` failed
//! dispatches.
//!
//! [`RunRecord::attempts`]: sdvbs_runner::RunRecord::attempts

use std::time::Duration;

/// How many times a job may fail before it is quarantined: the initial
/// execution plus `budget` retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries allowed *beyond the first attempt*. 0 disables retries.
    pub budget: u32,
}

impl RetryPolicy {
    /// Total executions this policy permits: `budget + 1`.
    pub fn max_attempts(self) -> u32 {
        self.budget.saturating_add(1)
    }

    /// Whether `failed_attempts` executions having all failed exhausts
    /// the policy (i.e. the job must be quarantined, not retried).
    pub fn exhausted(self, failed_attempts: u32) -> bool {
        failed_attempts >= self.max_attempts()
    }
}

/// What becomes of a job orphaned by its worker's death.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrphanDisposition {
    /// Requeue at the front of the pending queue for redispatch.
    Requeue,
    /// The retry budget is spent: terminal, honest failure.
    Quarantine,
    /// A drain is in progress; only already-running work may finish, so
    /// the orphan is rejected like any other queued job.
    RejectDraining,
}

/// Decides an orphan's fate from its failed-execution count, the retry
/// policy, and whether a drain has started. Quarantine wins over the
/// drain rejection so an exhausted job is reported as what it is.
pub fn orphan_disposition(
    failed_attempts: u32,
    policy: RetryPolicy,
    draining: bool,
) -> OrphanDisposition {
    if policy.exhausted(failed_attempts) {
        OrphanDisposition::Quarantine
    } else if draining {
        OrphanDisposition::RejectDraining
    } else {
        OrphanDisposition::Requeue
    }
}

/// Picks the worker a job is dispatched to.
///
/// The home shard is `digest % n`; identical specs always hash home to
/// the same worker so engine-level state stays warm. The home worker
/// wins when it is alive and under the in-flight `cap`; otherwise the
/// least-loaded live worker with headroom takes the job (work stealing),
/// ties broken by lowest index so the choice is deterministic. `None`
/// when no live worker has headroom (the dispatcher waits) or `alive`
/// and `inflight` are empty.
pub fn pick_target(digest: u64, alive: &[bool], inflight: &[usize], cap: usize) -> Option<usize> {
    let n = alive.len().min(inflight.len());
    if n == 0 {
        return None;
    }
    let home = (digest % n as u64) as usize;
    if alive[home] && inflight[home] < cap {
        return Some(home);
    }
    (0..n)
        .filter(|&i| alive[i] && inflight[i] < cap)
        .min_by_key(|&i| inflight[i])
}

/// Whether a worker whose last heartbeat reply is `age` old should be
/// declared dead. Never during a drain: a draining worker legitimately
/// goes quiet while it finishes its queue (its link breaking still kills
/// it through the I/O path).
pub fn is_stale(age: Duration, liveness: Duration, draining: bool) -> bool {
    !draining && age > liveness
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_policy_allows_budget_plus_one_executions() {
        let policy = RetryPolicy { budget: 2 };
        assert_eq!(policy.max_attempts(), 3);
        assert!(!policy.exhausted(0));
        assert!(!policy.exhausted(1));
        assert!(!policy.exhausted(2));
        assert!(policy.exhausted(3));
        // budget 0: one execution, no retries.
        let none = RetryPolicy { budget: 0 };
        assert!(!none.exhausted(0));
        assert!(none.exhausted(1));
    }

    #[test]
    fn orphans_requeue_until_exhausted_then_quarantine() {
        let policy = RetryPolicy { budget: 1 };
        assert_eq!(
            orphan_disposition(1, policy, false),
            OrphanDisposition::Requeue
        );
        assert_eq!(
            orphan_disposition(2, policy, false),
            OrphanDisposition::Quarantine
        );
        // Draining rejects a retryable orphan but never masks exhaustion.
        assert_eq!(
            orphan_disposition(1, policy, true),
            OrphanDisposition::RejectDraining
        );
        assert_eq!(
            orphan_disposition(2, policy, true),
            OrphanDisposition::Quarantine
        );
    }

    #[test]
    fn pick_target_prefers_home_then_least_loaded() {
        // Home (digest 5 % 3 = 2) alive and under cap: home wins even
        // when another worker is idler.
        assert_eq!(pick_target(5, &[true, true, true], &[0, 0, 3], 4), Some(2));
        // Home at cap: least-loaded live worker, lowest index on ties.
        assert_eq!(pick_target(5, &[true, true, true], &[1, 1, 4], 4), Some(0));
        // Home dead: steal.
        assert_eq!(pick_target(5, &[true, true, false], &[2, 1, 0], 4), Some(1));
        // Everyone at cap: wait.
        assert_eq!(pick_target(5, &[true, true, true], &[4, 4, 4], 4), None);
        // Nobody alive: wait (the dispatcher's all-dead path quarantines).
        assert_eq!(pick_target(5, &[false, false], &[0, 0], 4), None);
        assert_eq!(pick_target(5, &[], &[], 4), None);
    }

    #[test]
    fn staleness_requires_age_past_liveness_and_no_drain() {
        let liveness = Duration::from_secs(3);
        assert!(!is_stale(Duration::from_secs(3), liveness, false));
        assert!(is_stale(Duration::from_millis(3001), liveness, false));
        assert!(!is_stale(Duration::from_secs(60), liveness, true));
    }
}
