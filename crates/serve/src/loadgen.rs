//! A closed-loop load generator for the serving daemon.
//!
//! `conns` connections each drive a request loop: submit a job spec,
//! then — if the submission was queued or coalesced rather than answered
//! from cache — long-poll the job until it is terminal. Every request is
//! therefore closed-loop end-to-end: the latency sample covers submission
//! through result, which is what a client of the daemon actually
//! experiences. Samples are split into **cache-hit** (answered on the
//! spot from the result cache) and **cache-miss** (executed, possibly
//! coalesced) classes, because their latencies differ by orders of
//! magnitude and a single histogram would hide both.
//!
//! Seeds cycle through `unique` values, so a run exercises the cache
//! (repeat seeds hit after their first execution) as well as execution.
//! A `429` admission refusal is retried after a short pause and counted,
//! not treated as an error — that is the admission-control contract.

use crate::http::{parse_response, HttpError, ResponseMsg};
use sdvbs_runner::{policy_label, size_label, Job};
use sdvbs_stream::StreamSpec;
use sdvbs_trace::jsonl::Value;
use sdvbs_trace::Histogram;
use std::fmt;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::thread;
use std::time::{Duration, Instant};

/// How long to pause before retrying an admission-refused (`429`)
/// submission.
const RETRY_PAUSE: Duration = Duration::from_millis(50);
/// Give up on one request after this many admission retries.
const MAX_RETRIES: usize = 600;

/// A blocking keep-alive HTTP client over one connection. Public so
/// integration tests can speak to the server without their own socket
/// plumbing.
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:8099`).
    ///
    /// # Errors
    ///
    /// Propagates the connect error.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // Request/response latency matters more than segment coalescing.
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            buf: Vec::new(),
        })
    }

    /// Sends one request and blocks for its response. `body` implies a
    /// `content-length` frame; `None` sends no body.
    ///
    /// # Errors
    ///
    /// I/O errors from the socket, or `InvalidData` if the server's bytes
    /// do not parse as an HTTP/1.1 response.
    pub fn request(
        &mut self,
        method: &str,
        target: &str,
        body: Option<&str>,
    ) -> std::io::Result<ResponseMsg> {
        let body = body.unwrap_or_default();
        // One write per request: splitting head and body across segments
        // trips Nagle + delayed-ACK into ~40 ms stalls on loopback.
        let mut message = format!(
            "{method} {target} HTTP/1.1\r\nhost: sdvbs-serve\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        message.push_str(body);
        self.stream.write_all(message.as_bytes())?;
        let mut scratch = [0u8; 8192];
        loop {
            match parse_response(&self.buf) {
                Ok((msg, consumed)) => {
                    self.buf.drain(..consumed);
                    return Ok(msg);
                }
                Err(HttpError::Incomplete) => {}
                Err(HttpError::Malformed(why)) => {
                    return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, why));
                }
            }
            let n = self.stream.read(&mut scratch)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-response",
                ));
            }
            self.buf.extend_from_slice(&scratch[..n]);
        }
    }
}

/// Load-generator parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Target addresses (`host:port`), at least one. Connections are
    /// dealt across targets round-robin, and the report carries both
    /// per-target and aggregate percentiles — pointing one loadgen at a
    /// coordinator and its workers (or at several coordinators) shows
    /// who is slow.
    pub addrs: Vec<String>,
    /// Concurrent connections (clamped to at least 1).
    pub conns: usize,
    /// Total requests across all connections.
    pub requests: usize,
    /// The job spec template; its seed is the base of the seed cycle.
    pub spec: Job,
    /// Distinct seeds to cycle through (clamped to at least 1). One
    /// unique seed makes every request after the first a cache hit; more
    /// seeds force more executions.
    pub unique: u64,
    /// `wait_ms` used when long-polling a queued job.
    pub poll_ms: u64,
}

/// One target's share of a load-generator run.
#[derive(Debug, Clone)]
pub struct TargetStats {
    /// The target address.
    pub addr: String,
    /// Requests that completed against this target.
    pub sent: usize,
    /// Requests that failed against this target.
    pub errors: usize,
    /// Cache-hit latency (ms) against this target.
    pub hits: Histogram,
    /// Cache-miss latency (ms) against this target.
    pub misses: Histogram,
}

/// What a load-generator run measured.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Requests that completed (hit or miss).
    pub sent: usize,
    /// Requests that failed (transport error, unexpected status, or a
    /// rejected job).
    pub errors: usize,
    /// Total `429` admission retries absorbed.
    pub retried: usize,
    /// End-to-end latency (ms) of cache-hit requests.
    pub hits: Histogram,
    /// End-to-end latency (ms) of cache-miss (executed) requests.
    pub misses: Histogram,
    /// Wall-clock time of the whole run.
    pub wall: Duration,
    /// Per-target breakdown, in the order the targets were given.
    pub targets: Vec<TargetStats>,
}

impl LoadgenReport {
    /// Completed requests per second over the run's wall clock.
    pub fn throughput(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.sent as f64 / secs
        } else {
            0.0
        }
    }
}

impl fmt::Display for LoadgenReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "loadgen: {} ok, {} errors in {:.2} s ({:.1} req/s), {} admission retries",
            self.sent,
            self.errors,
            self.wall.as_secs_f64(),
            self.throughput(),
            self.retried,
        )?;
        for (label, h) in [("cache-hit", &self.hits), ("cache-miss", &self.misses)] {
            writeln!(
                f,
                "  {label:<10} n={:<4} p50 {:>9.3} ms  p95 {:>9.3} ms  p99 {:>9.3} ms  max {:>9.3} ms",
                h.count(),
                h.percentile(50.0).unwrap_or(0.0),
                h.percentile(95.0).unwrap_or(0.0),
                h.percentile(99.0).unwrap_or(0.0),
                h.max().unwrap_or(0.0),
            )?;
        }
        // A single target adds nothing over the aggregate lines above.
        if self.targets.len() > 1 {
            for t in &self.targets {
                writeln!(
                    f,
                    "  target {} ({} ok, {} errors)",
                    t.addr, t.sent, t.errors
                )?;
                for (label, h) in [("cache-hit", &t.hits), ("cache-miss", &t.misses)] {
                    writeln!(
                        f,
                        "    {label:<10} n={:<4} p50 {:>9.3} ms  p95 {:>9.3} ms  p99 {:>9.3} ms",
                        h.count(),
                        h.percentile(50.0).unwrap_or(0.0),
                        h.percentile(95.0).unwrap_or(0.0),
                        h.percentile(99.0).unwrap_or(0.0),
                    )?;
                }
            }
        }
        Ok(())
    }
}

/// The JSON job-spec body for `spec` with `seed` substituted.
pub fn spec_body(spec: &Job, seed: u64) -> String {
    Value::Obj(vec![
        ("benchmark".to_string(), Value::Str(spec.benchmark.clone())),
        ("size".to_string(), Value::Str(size_label(spec.size))),
        ("policy".to_string(), Value::Str(policy_label(spec.policy))),
        ("seed".to_string(), Value::Num(seed as f64)),
        (
            "iterations".to_string(),
            Value::Num(spec.iterations.max(1) as f64),
        ),
    ])
    .to_string()
}

/// What one request turned into.
enum Outcome {
    Hit(f64),
    Miss(f64),
    Error,
}

struct ConnTally {
    /// Index into `cfg.addrs` this connection drove.
    target: usize,
    hits: Histogram,
    misses: Histogram,
    errors: usize,
    retried: usize,
}

/// Runs the closed loop and collects the report. Requests are dealt to
/// connections round-robin; each connection issues its share serially.
///
/// # Errors
///
/// Only setup failures (the first connection refusing) are errors;
/// per-request failures are counted in the report instead.
pub fn run_loadgen(cfg: &LoadgenConfig) -> std::io::Result<LoadgenReport> {
    if cfg.addrs.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "loadgen needs at least one target address",
        ));
    }
    // Fail fast (and loudly) if any target is not there at all.
    for addr in &cfg.addrs {
        drop(Client::connect(addr)?);
    }
    let started = Instant::now();
    let conns = cfg.conns.max(1);
    let mut workers = Vec::new();
    for c in 0..conns {
        let cfg = cfg.clone();
        workers.push(thread::spawn(move || conn_worker(&cfg, c, conns)));
    }
    let mut report = LoadgenReport {
        sent: 0,
        errors: 0,
        retried: 0,
        hits: Histogram::new(),
        misses: Histogram::new(),
        wall: Duration::ZERO,
        targets: cfg
            .addrs
            .iter()
            .map(|addr| TargetStats {
                addr: addr.clone(),
                sent: 0,
                errors: 0,
                hits: Histogram::new(),
                misses: Histogram::new(),
            })
            .collect(),
    };
    for worker in workers {
        let Ok(tally) = worker.join() else {
            report.errors += 1;
            continue;
        };
        let target = &mut report.targets[tally.target];
        for &s in tally.hits.samples() {
            report.hits.observe(s);
            target.hits.observe(s);
        }
        for &s in tally.misses.samples() {
            report.misses.observe(s);
            target.misses.observe(s);
        }
        target.sent += tally.hits.count() + tally.misses.count();
        target.errors += tally.errors;
        report.errors += tally.errors;
        report.retried += tally.retried;
    }
    report.sent = report.hits.count() + report.misses.count();
    report.wall = started.elapsed();
    Ok(report)
}

/// One connection's share of the request stream, against one target.
fn conn_worker(cfg: &LoadgenConfig, conn_index: usize, conns: usize) -> ConnTally {
    let target = conn_index % cfg.addrs.len();
    let mut tally = ConnTally {
        target,
        hits: Histogram::new(),
        misses: Histogram::new(),
        errors: 0,
        retried: 0,
    };
    let Ok(mut client) = Client::connect(&cfg.addrs[target]) else {
        // Count every request this connection would have sent as failed.
        tally.errors = (conn_index..cfg.requests).step_by(conns.max(1)).count();
        return tally;
    };
    for id in (conn_index..cfg.requests).step_by(conns.max(1)) {
        let seed = cfg.spec.seed + (id as u64 % cfg.unique.max(1));
        match one_request(&mut client, cfg, seed, &mut tally.retried) {
            Outcome::Hit(ms) => tally.hits.observe(ms),
            Outcome::Miss(ms) => tally.misses.observe(ms),
            Outcome::Error => tally.errors += 1,
        }
    }
    tally
}

/// Submit → (retry admission refusals) → poll to terminal.
fn one_request(
    client: &mut Client,
    cfg: &LoadgenConfig,
    seed: u64,
    retried: &mut usize,
) -> Outcome {
    let body = spec_body(&cfg.spec, seed);
    let started = Instant::now();
    let submitted = loop {
        let Ok(resp) = client.request("POST", "/v1/jobs", Some(&body)) else {
            return Outcome::Error;
        };
        if resp.status != 429 {
            break resp;
        }
        *retried += 1;
        if *retried > MAX_RETRIES {
            return Outcome::Error;
        }
        thread::sleep(RETRY_PAUSE);
    };
    match submitted.status {
        200 => Outcome::Hit(started.elapsed().as_secs_f64() * 1e3),
        202 => {
            let Some(id) = Value::parse(&submitted.body_text())
                .ok()
                .and_then(|v| v.get("id").and_then(Value::as_u64))
            else {
                return Outcome::Error;
            };
            let target = format!("/v1/jobs/{id}?wait_ms={}", cfg.poll_ms.max(1));
            loop {
                let Ok(resp) = client.request("GET", &target, None) else {
                    return Outcome::Error;
                };
                if resp.status != 200 {
                    // 503: the job was rejected (drain); anything else is
                    // protocol breakage. Either way this request failed.
                    return Outcome::Error;
                }
                let state = Value::parse(&resp.body_text())
                    .ok()
                    .and_then(|v| v.get("state").and_then(Value::as_str).map(String::from));
                match state.as_deref() {
                    Some("done") => return Outcome::Miss(started.elapsed().as_secs_f64() * 1e3),
                    Some("queued" | "running") => {}
                    _ => return Outcome::Error,
                }
            }
        }
        _ => Outcome::Error,
    }
}

/// The JSON stream-spec body for `POST /v1/streams`.
pub fn stream_spec_body(spec: &StreamSpec) -> String {
    Value::Obj(vec![
        (
            "pipeline".to_string(),
            Value::Str(spec.pipeline.label().to_string()),
        ),
        ("size".to_string(), Value::Str(size_label(spec.size))),
        ("seed".to_string(), Value::Num(spec.seed as f64)),
        ("fps".to_string(), Value::Num(spec.fps)),
        (
            "policy".to_string(),
            Value::Str(spec.policy.label().to_string()),
        ),
    ])
    .to_string()
}

/// Parameters for the paced streaming mode (`loadgen --stream`).
#[derive(Debug, Clone)]
pub struct StreamLoadConfig {
    /// Target address (`host:port`). Streams are a single-engine feature,
    /// so unlike the job mode there is exactly one target.
    pub addr: String,
    /// One stream per spec; each gets its own connection and pacing
    /// thread.
    pub specs: Vec<StreamSpec>,
    /// Frames submitted per stream.
    pub frames: usize,
    /// Ceiling on waiting for the in-flight tail after the last
    /// submission.
    pub drain_limit: Duration,
}

/// What one stream's run ended as — the server's own accounting, read
/// back from the final close response, plus client-side errors.
#[derive(Debug, Clone)]
pub struct StreamRun {
    /// The server-assigned stream id.
    pub id: u64,
    /// Pipeline label.
    pub pipeline: String,
    /// Input-size label.
    pub size: String,
    /// Declared frame rate (the pacing target).
    pub fps: f64,
    /// Per-frame SLA derived from the rate.
    pub sla_ms: f64,
    /// Backpressure policy label.
    pub policy: String,
    /// Frames the client submitted.
    pub submitted: u64,
    /// Frames that ran to completion.
    pub completed: u64,
    /// Of those, frames processed at the degraded size.
    pub completed_degraded: u64,
    /// Frames shed by backpressure or queue overflow.
    pub dropped: u64,
    /// Frames refused by a drain after acceptance.
    pub rejected: u64,
    /// Frames whose pipeline errored.
    pub failed: u64,
    /// Completed frames that missed the SLA.
    pub sla_violations: u64,
    /// Degrade-mode flips, either direction.
    pub degrade_transitions: u64,
    /// Frame-latency percentiles over the server's retained window.
    pub p50_ms: f64,
    /// See [`StreamRun::p50_ms`].
    pub p95_ms: f64,
    /// See [`StreamRun::p50_ms`].
    pub p99_ms: f64,
    /// The stream's rolling result digest (hex).
    pub rolling_digest: String,
    /// Client-side failures (transport errors, unexpected statuses).
    pub errors: usize,
}

impl StreamRun {
    /// The accounting identity every drained stream must satisfy.
    pub fn accounted(&self) -> bool {
        self.completed + self.dropped + self.rejected + self.failed == self.submitted
    }
}

/// What a streaming load-generator run measured.
#[derive(Debug)]
pub struct StreamLoadReport {
    /// Per-stream results, in spec order. Streams whose setup failed
    /// outright are missing here and counted in `errors`.
    pub streams: Vec<StreamRun>,
    /// Wall-clock time of the whole run.
    pub wall: Duration,
    /// Client-side failures across all streams, including streams that
    /// never got off the ground.
    pub errors: usize,
}

impl fmt::Display for StreamLoadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "stream loadgen: {} streams in {:.2} s, {} client errors",
            self.streams.len(),
            self.wall.as_secs_f64(),
            self.errors,
        )?;
        for s in &self.streams {
            writeln!(
                f,
                "  stream {} {} {} @{:.0}fps sla {:.1} ms policy {}",
                s.id, s.pipeline, s.size, s.fps, s.sla_ms, s.policy
            )?;
            writeln!(
                f,
                "    frames: {} submitted = {} completed ({} degraded) + {} dropped \
                 + {} rejected + {} failed",
                s.submitted, s.completed, s.completed_degraded, s.dropped, s.rejected, s.failed
            )?;
            writeln!(
                f,
                "    latency: p50 {:>8.3} ms  p95 {:>8.3} ms  p99 {:>8.3} ms; \
                 {} SLA violations, {} degrade transitions, digest {}",
                s.p50_ms,
                s.p95_ms,
                s.p99_ms,
                s.sla_violations,
                s.degrade_transitions,
                s.rolling_digest
            )?;
        }
        Ok(())
    }
}

/// Runs one paced submission loop per stream and collects the report.
///
/// # Errors
///
/// Only setup failures (the target refusing the probe connection) are
/// errors; per-stream failures are counted in the report instead.
pub fn run_stream_loadgen(cfg: &StreamLoadConfig) -> std::io::Result<StreamLoadReport> {
    if cfg.specs.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "stream loadgen needs at least one stream spec",
        ));
    }
    drop(Client::connect(&cfg.addr)?);
    let started = Instant::now();
    let mut workers = Vec::new();
    for spec in cfg.specs.clone() {
        let addr = cfg.addr.clone();
        let (frames, drain_limit) = (cfg.frames, cfg.drain_limit);
        workers.push(thread::spawn(move || {
            stream_worker(&addr, &spec, frames, drain_limit)
        }));
    }
    let mut report = StreamLoadReport {
        streams: Vec::new(),
        wall: Duration::ZERO,
        errors: 0,
    };
    for worker in workers {
        match worker.join() {
            Ok(Ok(run)) => {
                report.errors += run.errors;
                report.streams.push(run);
            }
            Ok(Err(why)) => {
                eprintln!("stream worker failed: {why}");
                report.errors += 1;
            }
            Err(_) => report.errors += 1,
        }
    }
    report.streams.sort_by_key(|s| s.id);
    report.wall = started.elapsed();
    Ok(report)
}

/// Opens one stream, feeds it `frames` frames at the spec's frame rate
/// (absolute-deadline pacing, so a slow round trip does not skew the
/// rest of the schedule), waits out the in-flight tail, closes it, and
/// reads the server's final accounting back.
fn stream_worker(
    addr: &str,
    spec: &StreamSpec,
    frames: usize,
    drain_limit: Duration,
) -> Result<StreamRun, String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let resp = client
        .request("POST", "/v1/streams", Some(&stream_spec_body(spec)))
        .map_err(|e| format!("open: {e}"))?;
    if resp.status != 201 {
        return Err(format!(
            "open refused: HTTP {} {}",
            resp.status,
            resp.body_text()
        ));
    }
    let id = Value::parse(&resp.body_text())
        .ok()
        .and_then(|v| v.get("id").and_then(Value::as_u64))
        .ok_or("open response without an id")?;
    let interval = Duration::from_secs_f64(1.0 / spec.fps.max(1e-3));
    let mut errors = 0usize;
    let frames_target = format!("/v1/streams/{id}/frames");
    let paced_from = Instant::now();
    for i in 0..frames {
        let due = paced_from + interval.mul_f64(i as f64);
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            thread::sleep(wait);
        }
        match client.request("POST", &frames_target, None) {
            Ok(resp) if resp.status == 202 => {}
            Ok(_) | Err(_) => errors += 1,
        }
    }
    // Wait out the in-flight tail so the close-time accounting is final.
    let deadline = Instant::now() + drain_limit;
    loop {
        let resp = client
            .request("GET", &format!("/v1/streams/{id}"), None)
            .map_err(|e| format!("status: {e}"))?;
        let body = resp.body_text();
        let in_flight = Value::parse(&body)
            .ok()
            .and_then(|v| v.get("in_flight").and_then(Value::as_u64))
            .ok_or_else(|| format!("unparsable status body {body}"))?;
        if in_flight == 0 {
            break;
        }
        if Instant::now() >= deadline {
            return Err(format!(
                "stream {id}: {in_flight} frames still in flight after {drain_limit:?}"
            ));
        }
        thread::sleep(Duration::from_millis(20));
    }
    let resp = client
        .request("POST", &format!("/v1/streams/{id}/close"), None)
        .map_err(|e| format!("close: {e}"))?;
    if resp.status != 200 {
        return Err(format!("close: HTTP {}", resp.status));
    }
    let mut run = parse_stream_run(&resp.body_text())?;
    run.errors = errors;
    Ok(run)
}

/// Parses a server stream-status JSON body into a [`StreamRun`].
fn parse_stream_run(body: &str) -> Result<StreamRun, String> {
    let v = Value::parse(body).map_err(|e| format!("unparsable stream status: {e}"))?;
    let num = |field: &str| {
        v.get(field)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("status body missing {field:?}: {body}"))
    };
    let float = |field: &str| {
        v.get(field)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("status body missing {field:?}: {body}"))
    };
    let text = |field: &str| {
        v.get(field)
            .and_then(Value::as_str)
            .map(String::from)
            .ok_or_else(|| format!("status body missing {field:?}: {body}"))
    };
    Ok(StreamRun {
        id: num("id")?,
        pipeline: text("pipeline")?,
        size: text("size")?,
        fps: float("fps")?,
        sla_ms: float("sla_ms")?,
        policy: text("policy")?,
        submitted: num("submitted")?,
        completed: num("completed")?,
        completed_degraded: num("completed_degraded")?,
        dropped: num("dropped")?,
        rejected: num("rejected")?,
        failed: num("failed")?,
        sla_violations: num("sla_violations")?,
        degrade_transitions: num("degrade_transitions")?,
        p50_ms: float("p50_ms")?,
        p95_ms: float("p95_ms")?,
        p99_ms: float("p99_ms")?,
        rolling_digest: text("rolling_digest")?,
        errors: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdvbs_core::{ExecPolicy, InputSize};

    #[test]
    fn spec_bodies_are_valid_json_specs() {
        let spec = Job::new(
            "Disparity Map",
            InputSize::Custom {
                width: 32,
                height: 24,
            },
            ExecPolicy::Threads(2),
            5,
            3,
        );
        let body = spec_body(&spec, 9);
        let v = Value::parse(&body).unwrap();
        assert_eq!(
            v.get("benchmark").and_then(Value::as_str),
            Some("Disparity Map")
        );
        assert_eq!(v.get("size").and_then(Value::as_str), Some("32x24"));
        assert_eq!(v.get("policy").and_then(Value::as_str), Some("threads:2"));
        assert_eq!(v.get("seed").and_then(Value::as_u64), Some(9));
        assert_eq!(v.get("iterations").and_then(Value::as_u64), Some(3));
    }

    #[test]
    fn stream_spec_bodies_round_trip_through_the_parser() {
        let spec = StreamSpec {
            pipeline: sdvbs_stream::PipelineKind::Stitch,
            size: InputSize::Qcif,
            seed: 11,
            fps: 24.0,
            policy: sdvbs_stream::DegradePolicy::Drop,
        };
        let parsed = crate::stream::parse_stream_spec(stream_spec_body(&spec).as_bytes())
            .expect("generated body parses");
        assert_eq!(parsed.pipeline, spec.pipeline);
        assert_eq!(size_label(parsed.size), "qcif");
        assert_eq!(parsed.seed, 11);
        assert!((parsed.fps - 24.0).abs() < 1e-9);
        assert_eq!(parsed.policy, spec.policy);
    }

    #[test]
    fn stream_runs_parse_from_status_bodies_and_check_accounting() {
        let body = "{\"id\":4,\"pipeline\":\"tracking\",\"size\":\"qcif\",\"fps\":20,\
                    \"sla_ms\":50.0,\"policy\":\"degrade\",\"state\":\"closed\",\
                    \"submitted\":10,\"completed\":7,\"completed_degraded\":2,\
                    \"dropped\":2,\"rejected\":1,\"failed\":0,\"in_flight\":0,\
                    \"sla_violations\":3,\"degraded_mode\":false,\
                    \"degrade_transitions\":2,\"rolling_digest\":\"0x0123456789abcdef\",\
                    \"last_latency_ms\":12.0,\"p50_ms\":10.0,\"p95_ms\":40.0,\
                    \"p99_ms\":48.0,\"recent\":[]}";
        let run = parse_stream_run(body).expect("status parses");
        assert_eq!(run.id, 4);
        assert_eq!(run.submitted, 10);
        assert_eq!(run.completed_degraded, 2);
        assert!(run.accounted(), "7 + 2 + 1 + 0 == 10");
        assert_eq!(run.rolling_digest, "0x0123456789abcdef");
        let short = parse_stream_run("{\"id\":4}");
        assert!(short.is_err(), "missing fields must be named: {short:?}");
    }
}
