//! A closed-loop load generator for the serving daemon.
//!
//! `conns` connections each drive a request loop: submit a job spec,
//! then — if the submission was queued or coalesced rather than answered
//! from cache — long-poll the job until it is terminal. Every request is
//! therefore closed-loop end-to-end: the latency sample covers submission
//! through result, which is what a client of the daemon actually
//! experiences. Samples are split into **cache-hit** (answered on the
//! spot from the result cache) and **cache-miss** (executed, possibly
//! coalesced) classes, because their latencies differ by orders of
//! magnitude and a single histogram would hide both.
//!
//! Seeds cycle through `unique` values, so a run exercises the cache
//! (repeat seeds hit after their first execution) as well as execution.
//! A `429` admission refusal is retried after a short pause and counted,
//! not treated as an error — that is the admission-control contract.

use crate::http::{parse_response, HttpError, ResponseMsg};
use sdvbs_runner::{policy_label, size_label, Job};
use sdvbs_trace::jsonl::Value;
use sdvbs_trace::Histogram;
use std::fmt;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::thread;
use std::time::{Duration, Instant};

/// How long to pause before retrying an admission-refused (`429`)
/// submission.
const RETRY_PAUSE: Duration = Duration::from_millis(50);
/// Give up on one request after this many admission retries.
const MAX_RETRIES: usize = 600;

/// A blocking keep-alive HTTP client over one connection. Public so
/// integration tests can speak to the server without their own socket
/// plumbing.
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:8099`).
    ///
    /// # Errors
    ///
    /// Propagates the connect error.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // Request/response latency matters more than segment coalescing.
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            buf: Vec::new(),
        })
    }

    /// Sends one request and blocks for its response. `body` implies a
    /// `content-length` frame; `None` sends no body.
    ///
    /// # Errors
    ///
    /// I/O errors from the socket, or `InvalidData` if the server's bytes
    /// do not parse as an HTTP/1.1 response.
    pub fn request(
        &mut self,
        method: &str,
        target: &str,
        body: Option<&str>,
    ) -> std::io::Result<ResponseMsg> {
        let body = body.unwrap_or_default();
        // One write per request: splitting head and body across segments
        // trips Nagle + delayed-ACK into ~40 ms stalls on loopback.
        let mut message = format!(
            "{method} {target} HTTP/1.1\r\nhost: sdvbs-serve\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        message.push_str(body);
        self.stream.write_all(message.as_bytes())?;
        let mut scratch = [0u8; 8192];
        loop {
            match parse_response(&self.buf) {
                Ok((msg, consumed)) => {
                    self.buf.drain(..consumed);
                    return Ok(msg);
                }
                Err(HttpError::Incomplete) => {}
                Err(HttpError::Malformed(why)) => {
                    return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, why));
                }
            }
            let n = self.stream.read(&mut scratch)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-response",
                ));
            }
            self.buf.extend_from_slice(&scratch[..n]);
        }
    }
}

/// Load-generator parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Target addresses (`host:port`), at least one. Connections are
    /// dealt across targets round-robin, and the report carries both
    /// per-target and aggregate percentiles — pointing one loadgen at a
    /// coordinator and its workers (or at several coordinators) shows
    /// who is slow.
    pub addrs: Vec<String>,
    /// Concurrent connections (clamped to at least 1).
    pub conns: usize,
    /// Total requests across all connections.
    pub requests: usize,
    /// The job spec template; its seed is the base of the seed cycle.
    pub spec: Job,
    /// Distinct seeds to cycle through (clamped to at least 1). One
    /// unique seed makes every request after the first a cache hit; more
    /// seeds force more executions.
    pub unique: u64,
    /// `wait_ms` used when long-polling a queued job.
    pub poll_ms: u64,
}

/// One target's share of a load-generator run.
#[derive(Debug, Clone)]
pub struct TargetStats {
    /// The target address.
    pub addr: String,
    /// Requests that completed against this target.
    pub sent: usize,
    /// Requests that failed against this target.
    pub errors: usize,
    /// Cache-hit latency (ms) against this target.
    pub hits: Histogram,
    /// Cache-miss latency (ms) against this target.
    pub misses: Histogram,
}

/// What a load-generator run measured.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Requests that completed (hit or miss).
    pub sent: usize,
    /// Requests that failed (transport error, unexpected status, or a
    /// rejected job).
    pub errors: usize,
    /// Total `429` admission retries absorbed.
    pub retried: usize,
    /// End-to-end latency (ms) of cache-hit requests.
    pub hits: Histogram,
    /// End-to-end latency (ms) of cache-miss (executed) requests.
    pub misses: Histogram,
    /// Wall-clock time of the whole run.
    pub wall: Duration,
    /// Per-target breakdown, in the order the targets were given.
    pub targets: Vec<TargetStats>,
}

impl LoadgenReport {
    /// Completed requests per second over the run's wall clock.
    pub fn throughput(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.sent as f64 / secs
        } else {
            0.0
        }
    }
}

impl fmt::Display for LoadgenReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "loadgen: {} ok, {} errors in {:.2} s ({:.1} req/s), {} admission retries",
            self.sent,
            self.errors,
            self.wall.as_secs_f64(),
            self.throughput(),
            self.retried,
        )?;
        for (label, h) in [("cache-hit", &self.hits), ("cache-miss", &self.misses)] {
            writeln!(
                f,
                "  {label:<10} n={:<4} p50 {:>9.3} ms  p95 {:>9.3} ms  p99 {:>9.3} ms  max {:>9.3} ms",
                h.count(),
                h.percentile(50.0).unwrap_or(0.0),
                h.percentile(95.0).unwrap_or(0.0),
                h.percentile(99.0).unwrap_or(0.0),
                h.max().unwrap_or(0.0),
            )?;
        }
        // A single target adds nothing over the aggregate lines above.
        if self.targets.len() > 1 {
            for t in &self.targets {
                writeln!(
                    f,
                    "  target {} ({} ok, {} errors)",
                    t.addr, t.sent, t.errors
                )?;
                for (label, h) in [("cache-hit", &t.hits), ("cache-miss", &t.misses)] {
                    writeln!(
                        f,
                        "    {label:<10} n={:<4} p50 {:>9.3} ms  p95 {:>9.3} ms  p99 {:>9.3} ms",
                        h.count(),
                        h.percentile(50.0).unwrap_or(0.0),
                        h.percentile(95.0).unwrap_or(0.0),
                        h.percentile(99.0).unwrap_or(0.0),
                    )?;
                }
            }
        }
        Ok(())
    }
}

/// The JSON job-spec body for `spec` with `seed` substituted.
pub fn spec_body(spec: &Job, seed: u64) -> String {
    Value::Obj(vec![
        ("benchmark".to_string(), Value::Str(spec.benchmark.clone())),
        ("size".to_string(), Value::Str(size_label(spec.size))),
        ("policy".to_string(), Value::Str(policy_label(spec.policy))),
        ("seed".to_string(), Value::Num(seed as f64)),
        (
            "iterations".to_string(),
            Value::Num(spec.iterations.max(1) as f64),
        ),
    ])
    .to_string()
}

/// What one request turned into.
enum Outcome {
    Hit(f64),
    Miss(f64),
    Error,
}

struct ConnTally {
    /// Index into `cfg.addrs` this connection drove.
    target: usize,
    hits: Histogram,
    misses: Histogram,
    errors: usize,
    retried: usize,
}

/// Runs the closed loop and collects the report. Requests are dealt to
/// connections round-robin; each connection issues its share serially.
///
/// # Errors
///
/// Only setup failures (the first connection refusing) are errors;
/// per-request failures are counted in the report instead.
pub fn run_loadgen(cfg: &LoadgenConfig) -> std::io::Result<LoadgenReport> {
    if cfg.addrs.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "loadgen needs at least one target address",
        ));
    }
    // Fail fast (and loudly) if any target is not there at all.
    for addr in &cfg.addrs {
        drop(Client::connect(addr)?);
    }
    let started = Instant::now();
    let conns = cfg.conns.max(1);
    let mut workers = Vec::new();
    for c in 0..conns {
        let cfg = cfg.clone();
        workers.push(thread::spawn(move || conn_worker(&cfg, c, conns)));
    }
    let mut report = LoadgenReport {
        sent: 0,
        errors: 0,
        retried: 0,
        hits: Histogram::new(),
        misses: Histogram::new(),
        wall: Duration::ZERO,
        targets: cfg
            .addrs
            .iter()
            .map(|addr| TargetStats {
                addr: addr.clone(),
                sent: 0,
                errors: 0,
                hits: Histogram::new(),
                misses: Histogram::new(),
            })
            .collect(),
    };
    for worker in workers {
        let Ok(tally) = worker.join() else {
            report.errors += 1;
            continue;
        };
        let target = &mut report.targets[tally.target];
        for &s in tally.hits.samples() {
            report.hits.observe(s);
            target.hits.observe(s);
        }
        for &s in tally.misses.samples() {
            report.misses.observe(s);
            target.misses.observe(s);
        }
        target.sent += tally.hits.count() + tally.misses.count();
        target.errors += tally.errors;
        report.errors += tally.errors;
        report.retried += tally.retried;
    }
    report.sent = report.hits.count() + report.misses.count();
    report.wall = started.elapsed();
    Ok(report)
}

/// One connection's share of the request stream, against one target.
fn conn_worker(cfg: &LoadgenConfig, conn_index: usize, conns: usize) -> ConnTally {
    let target = conn_index % cfg.addrs.len();
    let mut tally = ConnTally {
        target,
        hits: Histogram::new(),
        misses: Histogram::new(),
        errors: 0,
        retried: 0,
    };
    let Ok(mut client) = Client::connect(&cfg.addrs[target]) else {
        // Count every request this connection would have sent as failed.
        tally.errors = (conn_index..cfg.requests).step_by(conns.max(1)).count();
        return tally;
    };
    for id in (conn_index..cfg.requests).step_by(conns.max(1)) {
        let seed = cfg.spec.seed + (id as u64 % cfg.unique.max(1));
        match one_request(&mut client, cfg, seed, &mut tally.retried) {
            Outcome::Hit(ms) => tally.hits.observe(ms),
            Outcome::Miss(ms) => tally.misses.observe(ms),
            Outcome::Error => tally.errors += 1,
        }
    }
    tally
}

/// Submit → (retry admission refusals) → poll to terminal.
fn one_request(
    client: &mut Client,
    cfg: &LoadgenConfig,
    seed: u64,
    retried: &mut usize,
) -> Outcome {
    let body = spec_body(&cfg.spec, seed);
    let started = Instant::now();
    let submitted = loop {
        let Ok(resp) = client.request("POST", "/v1/jobs", Some(&body)) else {
            return Outcome::Error;
        };
        if resp.status != 429 {
            break resp;
        }
        *retried += 1;
        if *retried > MAX_RETRIES {
            return Outcome::Error;
        }
        thread::sleep(RETRY_PAUSE);
    };
    match submitted.status {
        200 => Outcome::Hit(started.elapsed().as_secs_f64() * 1e3),
        202 => {
            let Some(id) = Value::parse(&submitted.body_text())
                .ok()
                .and_then(|v| v.get("id").and_then(Value::as_u64))
            else {
                return Outcome::Error;
            };
            let target = format!("/v1/jobs/{id}?wait_ms={}", cfg.poll_ms.max(1));
            loop {
                let Ok(resp) = client.request("GET", &target, None) else {
                    return Outcome::Error;
                };
                if resp.status != 200 {
                    // 503: the job was rejected (drain); anything else is
                    // protocol breakage. Either way this request failed.
                    return Outcome::Error;
                }
                let state = Value::parse(&resp.body_text())
                    .ok()
                    .and_then(|v| v.get("state").and_then(Value::as_str).map(String::from));
                match state.as_deref() {
                    Some("done") => return Outcome::Miss(started.elapsed().as_secs_f64() * 1e3),
                    Some("queued" | "running") => {}
                    _ => return Outcome::Error,
                }
            }
        }
        _ => Outcome::Error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdvbs_core::{ExecPolicy, InputSize};

    #[test]
    fn spec_bodies_are_valid_json_specs() {
        let spec = Job::new(
            "Disparity Map",
            InputSize::Custom {
                width: 32,
                height: 24,
            },
            ExecPolicy::Threads(2),
            5,
            3,
        );
        let body = spec_body(&spec, 9);
        let v = Value::parse(&body).unwrap();
        assert_eq!(
            v.get("benchmark").and_then(Value::as_str),
            Some("Disparity Map")
        );
        assert_eq!(v.get("size").and_then(Value::as_str), Some("32x24"));
        assert_eq!(v.get("policy").and_then(Value::as_str), Some("threads:2"));
        assert_eq!(v.get("seed").and_then(Value::as_u64), Some(9));
        assert_eq!(v.get("iterations").and_then(Value::as_u64), Some(3));
    }
}
