//! `sdvbs-serve` — a networked benchmark-serving layer over the SD-VBS
//! runner.
//!
//! The daemon accepts job specs (benchmark × input size × execution
//! policy × seed) over a hand-rolled HTTP/1.1 interface on
//! `std::net::TcpListener` — no external dependencies — and executes them
//! on the runner's bounded-queue worker pool. Three serving mechanisms
//! sit between the socket and the pool:
//!
//! - **Result caching** ([`cache`]): a completed record is stored under
//!   the content digest of its spec; an identical later submission is
//!   answered immediately (`?fresh=1` opts out).
//! - **Request coalescing** ([`coalesce`]): a submission identical to a
//!   queued or running job attaches to that job instead of duplicating
//!   the execution.
//! - **Admission control** ([`engine`]): the queue bound is the admission
//!   bound — a full queue refuses with `429 Too Many Requests` rather
//!   than buffering unbounded work, and a draining server answers `503`.
//!
//! [`server`] owns the sockets and graceful shutdown, [`router`] maps
//! endpoints to backend calls, and [`loadgen`] is a closed-loop client
//! that measures end-to-end latency split by cache-hit vs cache-miss.
//!
//! The HTTP front speaks to a [`backend::Backend`], and two exist: the
//! single-process [`engine::Engine`], and — the distributed tier — the
//! [`cluster::ClusterEngine`] coordinator, which shards admitted jobs
//! over the [`sdvbs_wire`] protocol to `sdvbs-serve worker` processes
//! ([`worker`]), with heartbeat-based failure detection, work stealing,
//! retry-then-quarantine on worker death, and cluster-wide drain.
//!
//! The streaming tier ([`stream`], over the `sdvbs-stream` crate) serves
//! multi-frame video pipelines with per-stream frame-rate SLAs: frames
//! ride the scheduler as interactive-class jobs grouped per stream, a
//! per-stream gate keeps stateful pipelines executing in submission
//! order, and a declared backpressure policy sheds load when the SLA
//! budget is missed — `drop` skips frames (counted exactly), `degrade`
//! processes them at a smaller input size until latency recovers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod cache;
pub mod cluster;
pub mod coalesce;
pub mod engine;
pub mod http;
pub mod loadgen;
pub mod protocol;
pub mod router;
pub mod sched;
pub mod server;
pub mod shutdown;
pub mod stream;
pub mod worker;

pub use backend::Backend;
pub use cache::{fnv1a, spec_digest, ResultCache};
pub use cluster::{ClusterConfig, ClusterEngine, CLUSTER_TRACK_BASE};
pub use coalesce::InflightMap;
pub use engine::{Engine, EngineConfig, JobSnapshot, Submission};
pub use http::{parse_request, parse_response, Framing, HttpError, Request, Response, ResponseMsg};
pub use loadgen::{
    run_loadgen, run_stream_loadgen, spec_body, stream_spec_body, Client, LoadgenConfig,
    LoadgenReport, StreamLoadConfig, StreamLoadReport, StreamRun, TargetStats,
};
pub use protocol::{orphan_disposition, pick_target, OrphanDisposition, RetryPolicy};
pub use sched::{starvation_bound, JobClass, SchedConfig, SchedQueue};
pub use server::{Server, ServerConfig};
pub use shutdown::{DrainReport, ShutdownController};
pub use stream::{parse_stream_spec, FrameSummary, FrameTicket, StreamRefused, StreamStatus};
pub use worker::{run_worker, WorkerConfig};
